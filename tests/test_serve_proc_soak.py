"""Process-tier chaos soak: hundreds of mixed-shape requests through the
multi-process tier while workers are SIGKILLed mid-batch at randomized
phases (pack / compute / reduce / reply) *and* the classic fault storm —
transient bit flips, sticky stuck bits, fail-stop thread deaths — strikes
inside the surviving workers.

The acceptance bar, end to end:

- **exactly-once** — zero lost, zero duplicated responses, whichever
  phase the kill hit and however many replays a batch took;
- **correctness** — every ``ok`` response matches the NumPy oracle;
- **containment** — every shared-memory segment is unlinked (no
  ``/dev/shm`` residue from dead workers);
- **liveness** — the drain terminates while processes are dying and
  being respawned through probation.

The storm is deterministic per seed: kill phases, fault models and plans
all derive from the workload seed, so a failing soak replays exactly.
"""

import glob

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.serve import (
    ServiceConfig,
    ShapeSpec,
    WorkloadConfig,
    make_fault_spec_factory,
    run_serve_workload,
)

SOAK_SHAPES = (
    ShapeSpec(8, 32, 32, weight=0.45),
    ShapeSpec(6, 48, 24, weight=0.35),
    ShapeSpec(8, 24, 16, weight=0.2, private_b=True),
)


def test_process_kill_chaos_soak_exactly_once_and_correct():
    before = set(glob.glob("/dev/shm/ftg*"))
    workload = WorkloadConfig(
        # burst submission: arrival gaps ~0.5 ms, so the request count —
        # not wall time — is what the soak controls
        duration_s=300.0,
        arrival_rate=2000.0,
        max_requests=320,
        fault_rate=0.12,
        fail_stop_fraction=0.35,
        errors_per_call=2,
        proc_kill_rate=0.08,
        seed=2027,
        shapes=SOAK_SHAPES,
    )
    config = ServiceConfig(
        processes=2,
        workers=2,
        capacity=400,
        max_batch=16,
        retry_budget=2,
        backoff_base_s=0.0005,
        gemm_threads=2,  # fail-stop specs need a team to kill threads in
        team_backend="simulated",
        proc_seed=2027,
        proc_max_replays=4,
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )

    # the storm actually carries every fault class before it runs
    spec_factory = make_fault_spec_factory(workload)
    specs = [
        spec_factory(f"r{i:06d}", config)
        for i in range(workload.max_requests)
    ]
    live = [s for s in specs if s is not None]
    assert len(live) >= 0.05 * workload.max_requests
    assert {s["model"] for s in live} == {"flip", "stuck"}
    assert any(s["fail_stop"] for s in live)

    report = run_serve_workload(config, workload, timeout_s=600.0)

    # the kill storm actually happened and was survived through replay
    assert report.submitted >= 300
    assert report.recovery["proc_deaths"] >= 3
    assert report.recovery["proc_replays"] >= 1
    assert report.recovery["proc_respawns"] >= 1

    # exactly-once and correct, regardless of what the storm did
    assert report.lost == 0
    assert report.duplicates == 0
    assert report.wrong == 0
    assert report.ok, report.summary()
    assert report.responses.get("ok", 0) == report.submitted
    assert sum(report.responses.values()) == report.submitted

    # containment: the registry accounts for every segment ever created
    assert report.recovery["proc_leaked_segments"] == 0
    assert set(glob.glob("/dev/shm/ftg*")) <= before

    # the batcher stayed live under fire
    assert report.scheduler["coalesced_batches"] >= 1
