"""Fault-storm soak: hundreds of mixed-shape requests through a live
service while transient bit flips, sticky stuck bits and fail-stop thread
deaths strike the execution substrate.

This is the serving layer's end-to-end guarantee under fire:

- **exactly-once** — every submitted request receives exactly one
  terminal response (zero lost, zero duplicated);
- **correctness** — every ``ok`` response matches the NumPy oracle built
  from the request's own operands (the workload driver audits all of
  them);
- **liveness** — the drain terminates even when workers are being
  quarantined and replaced mid-storm.

The fault mix is deterministic per (seed, request_id), so a failing soak
replays bit-identically.
"""

import numpy as np

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.serve import (
    GemmService,
    ServiceConfig,
    ShapeSpec,
    WorkloadConfig,
    make_injector_factory,
    run_workload,
)

#: small-M mixed shapes: two coalescible classes (shared B) and a
#: private-B control class that always executes as singletons
SOAK_SHAPES = (
    ShapeSpec(8, 32, 32, weight=0.45),
    ShapeSpec(6, 48, 24, weight=0.35),
    ShapeSpec(8, 24, 16, weight=0.2, private_b=True),
)


def _soak_config():
    return ServiceConfig(
        workers=2,
        capacity=600,
        max_batch=16,
        retry_budget=2,
        backoff_base_s=0.0005,
        quarantine_after=3,
        gemm_threads=2,  # fail-stops need a team to kill threads in
        team_backend="simulated",
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )


def test_fault_storm_soak_exactly_once_and_correct():
    workload = WorkloadConfig(
        # burst submission: the arrival gaps are ~0.5 ms, so all
        # max_requests go in long before duration_s runs out — the
        # request count is what the soak controls, not wall time
        duration_s=120.0,
        arrival_rate=2000.0,
        max_requests=520,
        fault_rate=0.12,
        fail_stop_fraction=0.35,
        errors_per_call=2,
        seed=2026,
        shapes=SOAK_SHAPES,
    )
    inner = make_injector_factory(workload)
    storm = {"faulted": 0, "fail_stops": 0, "models": set()}

    def counting_factory(shape, attempt, request_id, service_config):
        injector = inner(shape, attempt, request_id, service_config)
        if injector is not None:
            storm["faulted"] += 1
            storm["models"].add(type(injector.plan.model).__name__)
            if injector.plan.fail_stops:
                storm["fail_stops"] += 1
        return injector

    service = GemmService(
        _soak_config(), injector_factory=counting_factory
    ).start()
    report = run_workload(service, workload, timeout_s=300.0)

    # the storm actually happened, with every fault class represented
    assert report.submitted >= 500
    assert storm["faulted"] >= 0.05 * report.submitted
    assert storm["fail_stops"] >= 1
    assert {"BitFlip", "StuckBit"} <= storm["models"]

    # exactly-once and correct, regardless of what the storm did
    assert report.lost == 0
    assert report.duplicates == 0
    assert report.wrong == 0
    assert report.ok, report.summary()
    assert report.responses.get("ok", 0) == report.submitted
    assert sum(report.responses.values()) == report.submitted

    # the batcher was live during the storm (the throughput multiple is
    # benchmarked elsewhere; here it just must not have collapsed)
    assert report.scheduler["coalesced_batches"] >= 1


def test_soak_with_backpressure_and_deadlines_answers_everything():
    """A nastier variant: tiny queue, shed-lowest policy, tight deadlines
    and mixed priorities — requests leave through every door (ok, shed,
    rejected, expired), and still nothing is lost or answered twice."""
    workload = WorkloadConfig(
        duration_s=60.0,
        # nominal 50 us arrival gaps sit far below any sleep granularity,
        # so submission is an honest burst: the single worker (ms-scale
        # per request) cannot keep up and the 8-slot queue must shed or
        # reject, whatever the host's speed — a 2000/s nominal rate gets
        # silently stretched to ~1 ms gaps by the sleep floor, which a
        # fast host serves without ever building pressure
        arrival_rate=20000.0,
        max_requests=160,
        fault_rate=0.1,
        fail_stop_fraction=0.0,
        seed=7,
        shapes=SOAK_SHAPES,
        deadline_s=0.05,
        priorities=(0, 1, 2),
    )
    config = ServiceConfig(
        workers=1,
        capacity=8,
        policy="shed-lowest",
        max_batch=1,  # no coalescing: keeps the worker slower than arrivals
        retry_budget=1,
        backoff_base_s=0.0,
        gemm_threads=1,
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )
    service = GemmService(
        config, injector_factory=make_injector_factory(workload)
    ).start()
    report = run_workload(service, workload, timeout_s=120.0)

    assert report.lost == 0
    assert report.duplicates == 0
    assert report.wrong == 0
    assert report.ok, report.summary()
    assert sum(report.responses.values()) == report.submitted
    # the pressure valve actually opened at least once
    assert set(report.responses) - {"ok"}, report.responses
