"""Error-topology catalogue: every multi-error shape against both schemes.

The correction machinery's hard cases are *spatial patterns*, not counts.
This suite plants errors directly into computed C tiles (via the observer
hook, so checksums see them exactly as kernel faults) in every interesting
topology and requires a correct final result from the dual and the weighted
scheme alike. Topologies:

- scattered singles (distinct rows, columns, deltas)
- equal-delta pairs / triples (the dual scheme's ambiguity)
- row-aligned and column-aligned pairs (one residual line carries two)
- rectangle (i1,j1),(i1,j2),(i2,j1),(i2,j2) with equal deltas — the classic
  near-null-space pattern
- alternating-sign rectangle — *exactly* in the checksum null space (both
  schemes can only catch it mid-computation; final verification provably
  cannot; documented as the scheme's theoretical limit)
- L-shapes, diagonals, dense row segments
- non-finite values (inf, NaN) in several shapes
"""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.gemm.blocking import BlockingConfig

M, N, K = 34, 30, 22


def run_with_planted_errors(scheme, cells, rng, strict=True):
    """Plant ``cells = [(i, j, delta)]`` as last-K-block kernel faults.

    A fault in the final K-block's macro kernel corrupts C *and* the fused
    reference checksums derived from it, while the predicted checksums stay
    clean. We reproduce that state exactly: run the GEMM clean, apply the
    corruption to C, compute references from the corrupted C and
    predictions from the sources, then drive the Verifier — bit-for-bit the
    state the driver's epilogue would see, with full control of topology.
    """
    cfg = FTGemmConfig(
        blocking=BlockingConfig.small(),
        checksum_scheme=scheme,
        strict=strict,
    )
    a = rng.standard_normal((M, K))
    b = rng.standard_normal((K, N))
    ft = FTGemm(cfg)
    pending = dict()
    for (i, j, delta) in cells:
        pending.setdefault((i, j), 0.0)
        pending[(i, j)] += delta

    from repro.core.verification import ChecksumLedger, Verifier
    from repro.simcpu.counters import Counters

    clean = ft.gemm(a, b)
    c = clean.c.copy()
    weighted = scheme == "weighted"
    ledger = ChecksumLedger.zeros(M, N, weighted=weighted)
    ledger.row_pred = a.sum(axis=0) @ b
    ledger.col_pred = a @ b.sum(axis=1)
    ledger.env_row = np.abs(a).sum(axis=0) @ np.abs(b)
    ledger.env_col = np.abs(a) @ np.abs(b).sum(axis=1)
    if weighted:
        w_m = np.arange(1.0, M + 1.0)
        w_n = np.arange(1.0, N + 1.0)
        ledger.row_pred_w = (w_m @ a) @ b
        ledger.col_pred_w = a @ (b @ w_n)
    with np.errstate(invalid="ignore", over="ignore"):
        for (i, j), delta in pending.items():
            c[i, j] += delta
    ledger.row_ref = c.sum(axis=0)
    ledger.col_ref = c.sum(axis=1)
    if weighted:
        ledger.row_ref_w = w_m @ c
        ledger.col_ref_w = c @ w_n
    verifier = Verifier(
        a, b, alpha=1.0, beta=0.0, c0=None, config=cfg, counters=Counters()
    )
    reports, verified = verifier.finalize(c, ledger)
    return c, a @ b, verified, verifier.counters


SCHEMES = ("dual", "weighted")


@pytest.mark.parametrize("scheme", SCHEMES)
def test_scattered_distinct_deltas(scheme, rng):
    cells = [(2, 3, 7.0), (10, 20, -15.5), (30, 1, 3.25)]
    c, expected, verified, _ = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_equal_delta_pair(scheme, rng):
    cells = [(4, 6, 11.0), (18, 22, 11.0)]
    c, expected, verified, counters = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)
    if scheme == "weighted":
        assert counters.blocks_recomputed == 0  # corrected in place
    else:
        assert counters.blocks_recomputed > 0  # dual must recompute


@pytest.mark.parametrize("scheme", SCHEMES)
def test_equal_delta_triple(scheme, rng):
    cells = [(1, 2, 5.0), (9, 14, 5.0), (25, 27, 5.0)]
    c, expected, verified, _ = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_row_aligned_pair(scheme, rng):
    cells = [(7, 4, 3.0), (7, 19, -9.0)]  # two errors in one row
    c, expected, verified, _ = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_column_aligned_pair(scheme, rng):
    cells = [(3, 12, 8.0), (21, 12, 2.5)]  # two errors in one column
    c, expected, verified, _ = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_column_cancelling_pair(scheme, rng):
    cells = [(3, 12, 8.0), (21, 12, -8.0)]  # column residual cancels
    c, expected, verified, _ = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_rectangle_equal_deltas(scheme, rng):
    cells = [(5, 7, 6.0), (5, 17, 6.0), (23, 7, 6.0), (23, 17, 6.0)]
    c, expected, verified, _ = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_l_shape(scheme, rng):
    cells = [(6, 3, 4.0), (6, 11, -2.0), (15, 3, 9.0)]
    c, expected, verified, _ = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_diagonal_spread(scheme, rng):
    cells = [(i, i, float(2 + i)) for i in range(0, 25, 6)]
    c, expected, verified, _ = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_dense_row_segment(scheme, rng):
    cells = [(12, j, 1.0 + j) for j in range(5, 13)]  # 8 errors in one row
    c, expected, verified, _ = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_nan_single(scheme, rng):
    cells = [(9, 9, np.nan)]
    c, expected, verified, _ = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_inf_pair_mixed_signs(scheme, rng):
    cells = [(2, 5, np.inf), (20, 8, -np.inf)]
    c, expected, verified, _ = run_with_planted_errors(scheme, cells, rng)
    assert verified
    np.testing.assert_allclose(c, expected, rtol=1e-9, atol=1e-9)


def test_alternating_sign_rectangle_is_null_space(rng):
    """THE theoretical limit: +d, -d, -d, +d on a rectangle lies exactly in
    the null space of both plain and weighted checksums? Plain: yes.
    Weighted row checksum: w[j1]d - w[j2]d - w[j1]d + w[j2]d = 0 — also
    null. Final verification provably cannot see it; assert that honestly."""
    cells = [(5, 7, 6.0), (5, 17, -6.0), (23, 7, -6.0), (23, 17, 6.0)]
    c, expected, verified, counters = run_with_planted_errors(
        "weighted", cells, rng, strict=False
    )
    assert verified  # verification is clean...
    assert counters.errors_detected == 0
    err = np.abs(c - expected).max()
    assert err == pytest.approx(6.0)  # ...and the corruption survives
    # (the paper's scheme shares this bound; online per-K-block verification
    # shrinks the window in which all four strikes can accumulate)
