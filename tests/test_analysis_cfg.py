"""CFG construction and dataflow-lattice units.

The dataflow rules are only as honest as the graph under them, so the
edge semantics the rules rely on are pinned directly: exception edges
route through handlers and finallys (never around a finally), the else
clause of a try sits outside its handlers' protection, branch edges
carry their test expression, and the reaching-defs/dominator/control-
dependence queries give textbook answers on small functions.
"""

import ast

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    may_pass_through,
    reaches_without,
    reaching_defs,
)


def cfg_of(src, name=None):
    tree = ast.parse(src)
    fns = [
        n for n in ast.walk(tree)
        if isinstance(n, ast.FunctionDef)
        and (name is None or n.name == name)
    ]
    return build_cfg(fns[0])


def node_at(cfg, line):
    for node in cfg.stmt_nodes():
        if node.line == line:
            return node
    raise AssertionError(f"no node at line {line}")


def edge_kinds(node):
    return sorted(e.kind for e in node.succs)


# -------------------------------------------------------------- basic shape
def test_linear_flow_entry_to_exit():
    cfg = cfg_of("def f():\n    x = 1\n    y = 2\n")
    x = node_at(cfg, 2)
    y = node_at(cfg, 3)
    assert any(e.dst == x.index for e in cfg.nodes[cfg.entry].succs)
    assert any(e.dst == y.index and e.kind == "flow" for e in x.succs)
    assert any(e.dst == cfg.exit for e in y.succs)


def test_if_else_edges_carry_test():
    cfg = cfg_of("def f(a):\n    if a:\n        x = 1\n    else:\n        x = 2\n")
    branch = node_at(cfg, 2)
    kinds = {e.kind: e for e in branch.succs}
    assert {"true", "false"} <= set(kinds)
    assert isinstance(kinds["true"].test, ast.Name)
    assert isinstance(kinds["false"].test, ast.Name)


def test_if_without_else_has_explicit_false_edge_with_test():
    """The fallthrough side of a one-armed if still records what test it
    skipped — the ft-pruning in the ledger rule depends on it."""
    cfg = cfg_of("def f(a):\n    if a:\n        x = 1\n    y = 2\n")
    branch = node_at(cfg, 2)
    false = [e for e in branch.succs if e.kind == "false"]
    assert len(false) == 1
    assert isinstance(false[0].test, ast.Name) and false[0].test.id == "a"


def test_return_edges_to_exit_and_cuts_fallthrough():
    cfg = cfg_of("def f(a):\n    if a:\n        return 1\n    return 2\n")
    ret1 = node_at(cfg, 3)
    assert any(e.dst == cfg.exit for e in ret1.succs)
    # nothing flows from the first return to the second
    assert cfg.exit in cfg.reachable(ret1.index)
    assert node_at(cfg, 4).index not in cfg.reachable(ret1.index)


def test_while_true_has_no_false_exit():
    cfg = cfg_of("def f(q):\n    while True:\n        q.get()\n")
    branch = node_at(cfg, 2)
    assert not any(e.kind == "false" for e in branch.succs)


def test_with_stack_recorded_on_body_not_head():
    cfg = cfg_of(
        "def f(self):\n"
        "    with self._lock:\n"
        "        x = 1\n"
        "    y = 2\n"
    )
    head = node_at(cfg, 2)
    body = node_at(cfg, 3)
    after = node_at(cfg, 4)
    # the context expr evaluates before acquisition: the head is outside
    assert head.withs == ()
    assert len(body.withs) == 1
    assert after.withs == ()


# --------------------------------------------------------- exception routing
def test_try_body_raise_edges_to_handler():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    except ValueError:\n"
        "        x = 1\n"
    )
    risky = node_at(cfg, 3)
    handler = next(n for n in cfg.nodes if n.kind == "handler")
    assert any(
        e.kind == "exc" and e.dst == handler.index for e in risky.succs
    )


def test_catch_all_handler_stops_propagation():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    except Exception:\n"
        "        x = 1\n"
    )
    risky = node_at(cfg, 3)
    assert not any(e.dst == cfg.raise_exit for e in risky.succs)


def test_handler_body_raises_past_its_own_try():
    """Python does not re-dispatch to sibling handlers: an exception in a
    handler body propagates outward."""
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    except ValueError:\n"
        "        cleanup()\n"
        "    except Exception:\n"
        "        x = 1\n"
    )
    cleanup = node_at(cfg, 5)
    assert any(
        e.kind == "exc" and e.dst == cfg.raise_exit for e in cleanup.succs
    )


def test_else_clause_is_outside_handler_protection():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    except Exception:\n"
        "        x = 1\n"
        "    else:\n"
        "        also_risky()\n"
    )
    in_else = node_at(cfg, 7)
    handler = next(n for n in cfg.nodes if n.kind == "handler")
    assert not any(e.dst == handler.index for e in in_else.succs)
    assert any(e.dst == cfg.raise_exit for e in in_else.succs)


def test_finally_intercepts_escape_no_bypass_edge():
    """Nothing inside try..finally jumps straight to the raise exit —
    the exceptional path must traverse the finally, whose own exc edges
    then continue the propagation."""
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    finally:\n"
        "        close()\n"
    )
    risky = node_at(cfg, 3)
    close = node_at(cfg, 5)
    assert not any(e.dst == cfg.raise_exit for e in risky.succs)
    assert any(e.kind == "exc" for e in risky.succs)
    # escaping still possible — but only by passing through the finally
    assert cfg.raise_exit in cfg.reachable(risky.index)
    assert not reaches_without(
        cfg, risky.index, {close.index}, cfg.raise_exit
    )
    assert any(e.dst == cfg.raise_exit for e in close.succs)


def test_return_routes_through_finally_to_exit():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        return 1\n"
        "    finally:\n"
        "        close()\n"
    )
    ret = node_at(cfg, 3)
    close = node_at(cfg, 5)
    assert not any(e.dst == cfg.exit for e in ret.succs)
    assert not reaches_without(cfg, ret.index, {close.index}, cfg.exit)
    assert any(e.dst == cfg.exit and e.kind == "flow" for e in close.succs)


def test_identity_compare_cannot_raise():
    """``x is not None`` never dispatches __eq__, so the None-guard
    close idiom must not grow an exception edge of its own."""
    cfg = cfg_of("def f(x):\n    if x is not None:\n        pass\n")
    guard = node_at(cfg, 2)
    assert not any(e.kind == "exc" for e in guard.succs)
    cfg2 = cfg_of("def f(x, y):\n    if x == y:\n        pass\n")
    assert any(e.kind == "exc" for e in node_at(cfg2, 2).succs)


# ------------------------------------------------------------------ lattices
def test_reaching_defs_kill_and_merge():
    cfg = cfg_of(
        "def f(a):\n"
        "    x = 1\n"
        "    if a:\n"
        "        x = 2\n"
        "    use(x)\n"
    )
    defs = reaching_defs(cfg)
    use = node_at(cfg, 5)
    reaching = defs[use.index]["x"]
    lines = {cfg.nodes[d].line for d in reaching}
    assert lines == {2, 4}  # both defs merge at the join
    # inside the true arm only the redefinition is live... after it
    redef = node_at(cfg, 4)
    assert {cfg.nodes[d].line for d in defs[redef.index]["x"]} == {2}


def test_dominators_and_postdominators():
    cfg = cfg_of(
        "def f(a):\n"
        "    x = 1\n"
        "    if a:\n"
        "        y = 2\n"
        "    z = 3\n"
    )
    doms = cfg.dominators()
    x, y, z = (node_at(cfg, n) for n in (2, 4, 5))
    assert x.index in doms[y.index] and x.index in doms[z.index]
    assert y.index not in doms[z.index]
    pdoms = cfg.postdominators()
    assert z.index in pdoms[x.index]
    assert y.index not in pdoms[x.index]


def test_control_deps_finds_guarding_branch():
    cfg = cfg_of(
        "def f(a):\n"
        "    if a:\n"
        "        x = 1\n"
        "    y = 2\n"
    )
    deps = cfg.control_deps()
    branch = node_at(cfg, 2)
    x = node_at(cfg, 3)
    y = node_at(cfg, 4)
    assert (branch.index, "true") in deps[x.index]
    assert deps[y.index] == []


def test_reaches_without_blocks_paths_through():
    cfg = cfg_of(
        "def f(a):\n"
        "    if a:\n"
        "        evidence = 1\n"
        "    else:\n"
        "        evidence = 2\n"
        "    out = 3\n"
    )
    ev1 = node_at(cfg, 3)
    ev2 = node_at(cfg, 5)
    assert not reaches_without(
        cfg, cfg.entry, {ev1.index, ev2.index}, cfg.exit
    )
    assert reaches_without(cfg, cfg.entry, {ev1.index}, cfg.exit)


def test_may_pass_through_exception_path_skips_event():
    cfg = cfg_of(
        "def f():\n"
        "    risky()\n"
        "    done = 1\n"
    )
    done = node_at(cfg, 3)
    state = may_pass_through(
        cfg, lambda n: n.line == 3
    )
    assert state[cfg.exit] is True
    assert state[cfg.raise_exit] is False or state[done.index] is False
