"""Panel cache wired into the serving tier: hit accounting on hot-B
workloads, the corrupted-resident-panel campaign, the cache-aware
degraded-mode relief, the scheduler's recency consult, and the
cache-enabled fault-storm soak."""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.serve import (
    GemmRequest,
    GemmService,
    ServiceConfig,
    ShapeSpec,
    WorkloadConfig,
    make_injector_factory,
    run_workload,
)
from repro.util.errors import ConfigError


def _config(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault(
        "ft", FTGemmConfig(blocking=BlockingConfig.small(mr=4, nr=4))
    )
    kwargs.setdefault("panel_cache_bytes", 8 << 20)
    return ServiceConfig(**kwargs)


def _hot_requests(count, pool=2, m=5, k=16, n=12, seed=0):
    rng = np.random.default_rng(seed)
    bs = [rng.standard_normal((k, n)) for _ in range(pool)]
    return [
        GemmRequest(rng.standard_normal((m, k)), bs[i % pool])
        for i in range(count)
    ], bs


# ---------------------------------------------------------------- wiring
def test_hot_b_requests_hit_cache_and_stay_correct():
    requests, _ = _hot_requests(16)
    with GemmService(_config()) as service:
        tickets = [service.submit(r) for r in requests]
        service.drain()
        responses = [t.result(10.0) for t in tickets]
        stats = service.stats()
    assert all(r.ok and r.verified for r in responses)
    for req, resp in zip(requests, responses):
        np.testing.assert_allclose(
            resp.result.c, req.a @ req.b, rtol=1e-9, atol=1e-9
        )
    pc = stats["panel_cache"]
    assert pc["hits"] > 0
    assert pc["misses"] >= 2  # one cold miss per distinct B
    assert pc["entries"] == 2


def test_cache_off_service_has_no_cache_state():
    """panel_cache_bytes=None is byte-for-byte the pre-cache pipeline:
    no cache object, no stats key, identical responses."""
    requests, _ = _hot_requests(6)
    with GemmService(_config(panel_cache_bytes=None)) as service:
        tickets = [service.submit(r) for r in requests]
        service.drain()
        responses = [t.result(10.0) for t in tickets]
        assert service.panel_cache is None
        assert "panel_cache" not in service.stats()
    assert all(r.ok for r in responses)
    for req, resp in zip(requests, responses):
        np.testing.assert_allclose(
            resp.result.c, req.a @ req.b, rtol=1e-9, atol=1e-9
        )


def test_multithreaded_gemm_skips_cache():
    """Per-request team parallelism repacks per worker epoch, so the pool
    must not consult the cache for gemm_threads > 1 configs."""
    requests, _ = _hot_requests(6)
    cfg = _config(
        workers=1,
        gemm_threads=2,
        team_backend="simulated",
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )
    with GemmService(cfg) as service:
        tickets = [service.submit(r) for r in requests]
        service.drain()
        responses = [t.result(10.0) for t in tickets]
        pc = service.stats()["panel_cache"]
    assert all(r.ok for r in responses)
    assert pc["hits"] == 0 and pc["misses"] == 0


def test_scheduler_touch_keeps_hot_b_resident():
    """Admission-time consult: forming a batch around a hot B refreshes
    its LRU recency even between executions."""
    requests, bs = _hot_requests(4, pool=1)
    with GemmService(_config()) as service:
        tickets = [service.submit(r) for r in requests]
        service.drain()
        [t.result(10.0) for t in tickets]
        assert service.panel_cache.touch(id(bs[0]))


def test_request_bucket_is_memoized():
    a = np.zeros((3, 4))
    b = np.zeros((4, 5))
    request = GemmRequest(a, b)
    assert request.bucket() is request.bucket()


def test_panel_cache_bytes_validation():
    with pytest.raises(ConfigError):
        ServiceConfig(panel_cache_bytes=0).validate()
    with pytest.raises(ConfigError):
        ServiceConfig(degraded_cache_relief=0.5).validate()


# --------------------------------------------- corrupted resident panels
def test_corrupted_resident_panel_is_caught_at_admission():
    """The campaign the trust model exists for: a fault corrupts a panel
    while it sits in the cache *between* requests. Admission
    re-verification must catch it, rebuild from source, and every
    response must still be correct."""
    requests, bs = _hot_requests(12, pool=1, seed=3)
    warm, rest = requests[:4], requests[4:]
    with GemmService(_config()) as service:
        tickets = [service.submit(r) for r in warm]
        [t.result(10.0) for t in tickets]
        entry = service.panel_cache.peek(
            bs[0], service.config.ft.blocking
        )
        assert entry is not None
        # strike a resident B̃ element the way the injector's BitFlip
        # would (bit 51 of the mantissa): silent rot between requests
        victim = entry.psets[0].stack
        raw = np.float64(victim[1, 2]).view(np.uint64)
        victim[1, 2] = (raw ^ np.uint64(1 << 51)).view(np.float64)
        assert not entry.verify()
        tickets = [service.submit(r) for r in rest]
        service.drain()
        responses = [t.result(10.0) for t in tickets]
        pc = service.stats()["panel_cache"]
    assert pc["reverify_failed"] == 1
    assert all(r.ok and r.verified for r in responses)
    for req, resp in zip(rest, responses):
        np.testing.assert_allclose(
            resp.result.c, req.a @ req.b, rtol=1e-9, atol=1e-9
        )


# ------------------------------------------------- degraded-mode relief
def test_degraded_relief_scales_with_hit_ratio():
    """A hot cache stretches the degraded-mode threshold: with relief R
    and hit ratio h the effective depth is depth * (1 + (R-1)*h)."""
    cfg = _config(degraded_depth=4, degraded_cache_relief=3.0)
    service = GemmService(cfg)
    rng = np.random.default_rng(0)
    b = rng.standard_normal((16, 12))
    blocking = cfg.ft.blocking
    # saturate the recent-lookup window with hits -> ratio ~ 1.0
    service.panel_cache.acquire(b, blocking)
    for _ in range(63):
        service.panel_cache.acquire(b, blocking)
    assert service.panel_cache.recent_hit_ratio() > 0.95

    class _Depth:
        def __init__(self, depth):
            self.depth = depth

    service.queue = _Depth(8)
    service.scheduler = type(
        "S", (), {"ready_depth": 0}
    )()
    # depth 8 >= 4 would degrade cache-off; the hot cache stretches the
    # threshold to ~4 * 3 = 12, so 8 stays in full-quality mode
    assert not service._use_degraded()
    service.queue = _Depth(12)
    assert service._use_degraded()


def test_degraded_relief_inactive_on_cold_cache():
    cfg = _config(degraded_depth=4, degraded_cache_relief=3.0)
    service = GemmService(cfg)

    class _Depth:
        def __init__(self, depth):
            self.depth = depth

    service.queue = _Depth(4)
    service.scheduler = type("S", (), {"ready_depth": 0})()
    # no lookups yet: hit ratio 0.0, threshold stays at depth 4
    assert service._use_degraded()


# ------------------------------------------------------------------ soak
def test_fault_storm_soak_with_cache_enabled():
    """The storm soak rerun with the panel cache on: zero lost, zero
    duplicated, zero wrong — and the clean attempts actually used the
    cache. Faulted attempts bypass it by design, so detection/recovery
    paths are identical to the cache-off soak."""
    workload = WorkloadConfig(
        duration_s=60.0,
        arrival_rate=2000.0,
        max_requests=180,
        fault_rate=0.12,
        fail_stop_fraction=0.0,  # single-thread drivers: no team to kill
        errors_per_call=2,
        seed=2027,
        shapes=(
            ShapeSpec(8, 32, 32, weight=0.6),
            ShapeSpec(6, 48, 24, weight=0.4),
        ),
        hot_b_pool=3,
        zipf_s=1.2,
    )
    service = GemmService(
        ServiceConfig(
            workers=2,
            capacity=400,
            max_batch=8,
            retry_budget=2,
            backoff_base_s=0.0005,
            quarantine_after=3,
            ft=FTGemmConfig(blocking=BlockingConfig.small()),
            panel_cache_bytes=8 << 20,
        ),
        injector_factory=make_injector_factory(workload),
    ).start()
    report = run_workload(service, workload)
    assert report.ok, report.summary()
    assert report.lost == 0
    assert report.responses.get("ok", 0) == report.submitted
    assert report.panel_cache.get("hits", 0) > 0
