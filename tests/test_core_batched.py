"""Batched protected GEMM."""

import numpy as np
import pytest

from repro.core.batched import BatchedResult, ft_gemm_batched
from repro.core.config import FTGemmConfig
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive
from repro.gemm.blocking import BlockingConfig
from repro.util.errors import ShapeError


@pytest.fixture
def cfg():
    return FTGemmConfig(blocking=BlockingConfig.small())


def test_strided_batch(cfg, rng):
    a = rng.standard_normal((4, 12, 10))
    b = rng.standard_normal((4, 10, 14))
    out = ft_gemm_batched(a, b, config=cfg)
    assert out.verified
    np.testing.assert_allclose(out.stacked(), a @ b, rtol=1e-11)


def test_list_batch_varied_shapes(cfg, rng):
    a_list = [rng.standard_normal((m, 8)) for m in (5, 9, 13)]
    b_list = [rng.standard_normal((8, n)) for n in (7, 11, 6)]
    out = ft_gemm_batched(a_list, b_list, config=cfg)
    assert out.verified
    for got, a, b in zip(out.c, a_list, b_list):
        np.testing.assert_allclose(got, a @ b, rtol=1e-11)
    with pytest.raises(ShapeError):  # ragged shapes cannot stack
        out.stacked()


def test_batch_with_c_and_scalars(cfg, rng):
    a = rng.standard_normal((3, 10, 8))
    b = rng.standard_normal((3, 8, 12))
    c0 = rng.standard_normal((3, 10, 12))
    out = ft_gemm_batched(a, b, c0.copy(), alpha=2.0, beta=-1.0, config=cfg)
    np.testing.assert_allclose(out.stacked(), 2.0 * (a @ b) - c0, rtol=1e-10)


def test_injector_spans_the_batch(cfg, rng):
    """Invocation counters run across items: a strike scheduled past the
    first item's invocations lands in a later item."""
    a = rng.standard_normal((3, 16, 12))
    b = rng.standard_normal((3, 12, 16))
    from repro.faults.campaign import site_invocation_counts

    per_item = site_invocation_counts(16, 16, 12, cfg.blocking)["microkernel"]
    inj = FaultInjector(
        InjectionPlan.single(
            "microkernel", per_item + 3, model=Additive(magnitude=42.0)
        )
    )
    out = ft_gemm_batched(a, b, config=cfg, injector=inj)
    assert inj.n_injected == 1
    assert out.verified
    assert out.detected >= 1
    np.testing.assert_allclose(out.stacked(), a @ b, rtol=1e-10, atol=1e-10)
    # the strike hit the second item
    assert out.results[0].detected == 0
    assert out.results[1].detected >= 1


def test_counters_aggregate(cfg, rng):
    a = rng.standard_normal((2, 9, 9))
    out = ft_gemm_batched(a, a, config=cfg)
    assert out.counters.fma_flops == sum(
        r.counters.fma_flops for r in out.results
    )


def test_batch_validation(cfg, rng):
    with pytest.raises(ShapeError):
        ft_gemm_batched(rng.standard_normal((2, 3)), rng.standard_normal((2, 3, 4)))
    with pytest.raises(ShapeError):
        ft_gemm_batched([], [])
    with pytest.raises(ShapeError):
        ft_gemm_batched(
            [rng.standard_normal((3, 3))],
            [rng.standard_normal((3, 3)), rng.standard_normal((3, 3))],
        )


def test_transpose_flags(cfg, rng):
    """The BLAS op() interface on the serial driver."""
    from repro.core.ftgemm import FTGemm

    a = rng.standard_normal((11, 19))
    b = rng.standard_normal((23, 11))
    ft = FTGemm(cfg)
    result = ft.gemm(a, b, trans_a=True, trans_b=True)
    assert result.verified
    np.testing.assert_allclose(result.c, a.T @ b.T, rtol=1e-11)
    result = ft.gemm(a, a, trans_b=True)
    np.testing.assert_allclose(result.c, a @ a.T, rtol=1e-11)


def test_transpose_under_injection(cfg, rng):
    from repro.core.ftgemm import FTGemm

    a = rng.standard_normal((15, 21))
    inj = FaultInjector(
        InjectionPlan.single("microkernel", 4, model=Additive(magnitude=30.0))
    )
    result = FTGemm(cfg).gemm(a, a, trans_a=True, injector=inj)
    assert result.verified
    np.testing.assert_allclose(result.c, a.T @ a, rtol=1e-10, atol=1e-10)
