"""TLB simulator."""

import pytest

from repro.simcpu.machine import MachineSpec
from repro.simcpu.tlb import TLBSim
from repro.simcpu.trace import MemoryAccess
from repro.util.errors import ConfigError


def test_cold_miss_then_hit():
    tlb = TLBSim(entries=4, associativity=4)
    assert not tlb.access_page(0)
    assert tlb.access_page(0)
    assert tlb.counters.misses == 1
    assert tlb.counters.hits == 1


def test_capacity_eviction():
    tlb = TLBSim(entries=2, associativity=2)
    tlb.access_page(0)
    tlb.access_page(1)
    tlb.access_page(2)  # evicts page 0 (LRU)
    assert not tlb.access_page(0)
    assert tlb.counters.evictions >= 1


def test_bulk_access_page_granularity():
    tlb = TLBSim(entries=64, associativity=4, page_bytes=4096)
    misses = tlb.access(MemoryAccess(addr=0, size=3 * 4096))
    assert misses == 3
    assert tlb.access(MemoryAccess(addr=100, size=8)) == 0  # same page 0


def test_strided_matrix_walk_thrashes_small_tlb():
    """A column walk of a large row-major matrix touches one page per
    element — the access pattern packing exists to avoid."""
    tlb = TLBSim(entries=8, associativity=4)
    n = 64  # 64 rows x 4096B rows: each row on its own page
    row_bytes = 4096
    # walk one column twice: no reuse distance fits 8 entries
    for _ in range(2):
        for i in range(n):
            tlb.access(MemoryAccess(addr=i * row_bytes, size=8))
    assert tlb.counters.miss_rate == 1.0

    # packed (contiguous) walk of the same data: 64 pages, cold misses only
    packed = TLBSim(entries=8, associativity=4)
    for _ in range(2):
        packed.access(MemoryAccess(addr=0, size=n * 8))
    assert packed.counters.misses <= 1
    assert packed.counters.hits >= 1


def test_from_machine():
    tlb = TLBSim.from_machine(MachineSpec.cascade_lake_w2255())
    assert tlb.entries == 64
    assert tlb.page_bytes == 4096


def test_reset():
    tlb = TLBSim(entries=4, associativity=2)
    tlb.access_page(3)
    tlb.reset()
    assert tlb.counters.accesses == 0
    assert not tlb.access_page(3)  # cold again


def test_rejects_bad_geometry():
    with pytest.raises(ConfigError):
        TLBSim(entries=5, associativity=2)
    with pytest.raises(ConfigError):
        TLBSim(entries=0, associativity=1)
