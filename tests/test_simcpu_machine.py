"""Machine parameter sheets."""

import pytest

from repro.simcpu.machine import CacheSpec, MachineSpec
from repro.util.errors import ConfigError


def test_cascade_lake_matches_paper_testbed():
    m = MachineSpec.cascade_lake_w2255()
    assert m.cores == 10
    assert m.freq_ghz == 3.7  # "3.70 GHz base frequency"
    assert m.vector_lanes_f64 == 8  # AVX-512
    assert m.fma_ports == 2
    # 2 FMA x 8 lanes x 2 flops = 32 flops/cycle
    assert m.flops_per_cycle_per_core == 32.0


def test_peak_gflops_relations():
    m = MachineSpec.cascade_lake_w2255()
    assert m.peak_gflops_serial == pytest.approx(32 * 3.5)
    assert m.peak_gflops_parallel == pytest.approx(10 * 32 * 3.5)
    assert m.peak_gflops(4) == pytest.approx(4 * 32 * 3.5)
    # clamped at core count
    assert m.peak_gflops(50) == m.peak_gflops_parallel


def test_peak_gflops_rejects_nonpositive_threads():
    with pytest.raises(ConfigError):
        MachineSpec.cascade_lake_w2255().peak_gflops(0)


def test_cache_lookup_and_sharing():
    m = MachineSpec.cascade_lake_w2255()
    assert m.cache(1).size_bytes == 32 * 1024
    assert m.cache(2).size_bytes == 1024 * 1024
    assert not m.cache(2).shared
    assert m.last_level.shared
    with pytest.raises(ConfigError):
        m.cache(4)


def test_cache_spec_geometry():
    spec = CacheSpec(1, 1024, 64, 2, 2, 32.0)
    assert spec.n_sets == 8
    assert spec.capacity_doubles == 128


def test_cache_spec_rejects_bad_geometry():
    with pytest.raises(ConfigError):
        CacheSpec(1, 1000, 64, 2, 2, 32.0)  # size not divisible
    with pytest.raises(ConfigError):
        CacheSpec(1, 0, 64, 2, 2, 32.0)


def test_machine_rejects_unordered_levels():
    good = MachineSpec.small_test_machine()
    with pytest.raises(ConfigError):
        MachineSpec(
            name="bad",
            cores=1,
            freq_ghz=1.0,
            simd_freq_ghz=1.0,
            fma_ports=1,
            vector_lanes_f64=4,
            caches=tuple(reversed(good.caches)),
            mem_bandwidth_gbs=10.0,
            mem_latency_ns=100.0,
        )


def test_machine_rejects_bad_overlap():
    with pytest.raises(ConfigError):
        MachineSpec.small_test_machine().with_(overlap=1.5)


def test_with_returns_modified_copy():
    m = MachineSpec.small_test_machine()
    m2 = m.with_(cores=8)
    assert m2.cores == 8
    assert m.cores == 4
    assert m2.caches == m.caches


def test_small_test_machine_is_tiny():
    m = MachineSpec.small_test_machine()
    # small enough that a 100x100 matrix (80 KB) overflows every level
    assert m.last_level.size_bytes < 100 * 100 * 8
