"""The classic offline full-checksum GEMM."""

import numpy as np
import pytest

from repro.abft.huang_abraham import ChecksumGemm


@pytest.fixture
def rng():
    return np.random.default_rng(8)


def test_clean_run(rng):
    a = rng.standard_normal((9, 7))
    b = rng.standard_normal((7, 11))
    verdict = ChecksumGemm().run(a, b)
    assert verdict.clean
    np.testing.assert_allclose(verdict.c, a @ b, rtol=1e-12)


def test_encodings(rng):
    a = rng.standard_normal((4, 3))
    scheme = ChecksumGemm()
    enc = scheme.encode_a(a)
    assert enc.shape == (5, 3)
    np.testing.assert_allclose(enc[4], a.sum(axis=0))
    b = rng.standard_normal((3, 6))
    encb = scheme.encode_b(b)
    assert encb.shape == (3, 7)
    np.testing.assert_allclose(encb[:, 6], b.sum(axis=1))


def test_detects_and_corrects_kernel_fault(rng):
    a = rng.standard_normal((8, 6))
    b = rng.standard_normal((6, 9))

    def faulty_gemm(x, y):
        out = x @ y
        out[2, 4] += 50.0  # a fault inside the C body
        return out

    verdict = ChecksumGemm(gemm_fn=faulty_gemm).run(a, b)
    assert not verdict.clean
    assert verdict.corrected
    np.testing.assert_allclose(verdict.c, a @ b, rtol=1e-10)


def test_detects_checksum_row_fault(rng):
    """A fault in the checksum row itself: C is fine, pattern one-sided."""
    a = rng.standard_normal((8, 6))
    b = rng.standard_normal((6, 9))

    def faulty_gemm(x, y):
        out = x @ y
        out[8, 0] += 50.0  # the appended checksum row, not the body
        return out

    verdict = ChecksumGemm(gemm_fn=faulty_gemm).run(a, b)
    assert verdict.pattern.kind == "cols_only"
    assert verdict.outcome.checksum_suspect
    np.testing.assert_allclose(verdict.c, a @ b, rtol=1e-12)


def test_correct_false_leaves_corruption(rng):
    a = rng.standard_normal((5, 5))
    b = rng.standard_normal((5, 5))

    def faulty_gemm(x, y):
        out = x @ y
        out[0, 0] += 9.0
        return out

    verdict = ChecksumGemm(gemm_fn=faulty_gemm).run(a, b, correct=False)
    assert not verdict.clean
    assert verdict.outcome.n_corrected == 0
    assert abs(verdict.c[0, 0] - (a @ b)[0, 0]) == pytest.approx(9.0)


def test_wrong_gemm_fn_shape_rejected(rng):
    a = rng.standard_normal((4, 4))
    with pytest.raises(ValueError, match="shape"):
        ChecksumGemm(gemm_fn=lambda x, y: np.zeros((2, 2))).run(a, a)


def test_residuals_exposed(rng):
    a = rng.standard_normal((6, 6))
    verdict = ChecksumGemm().run(a, a)
    assert verdict.row_residual.shape == (6,)
    assert verdict.col_residual.shape == (6,)
    assert np.all(np.isfinite(verdict.row_residual))
