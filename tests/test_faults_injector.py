"""Deterministic fault injector."""

import numpy as np
import pytest

from repro.faults.injector import _REPLAY_PERIOD, FaultInjector, InjectionPlan
from repro.faults.models import Additive, FailStop, RowBurst, StuckBit
from repro.util.errors import ConfigError, SimulationError


def test_plan_validation():
    with pytest.raises(ValueError):
        InjectionPlan(schedule={"nope": (0,)})
    with pytest.raises(ConfigError):
        InjectionPlan(schedule={"microkernel": (3, 1)})  # unsorted
    with pytest.raises(ConfigError):
        InjectionPlan(schedule={"microkernel": (-1,)})
    with pytest.raises(ConfigError):
        InjectionPlan(schedule={"microkernel": (1, 1)})  # duplicate


def test_plan_single_and_empty():
    assert InjectionPlan.empty().total_planned == 0
    plan = InjectionPlan.single("pack_a", 5)
    assert plan.schedule == {"pack_a": (5,)}
    assert plan.total_planned == 1


def test_strike_at_scheduled_invocation():
    plan = InjectionPlan.single("microkernel", 2, model=Additive(magnitude=1.0))
    inj = FaultInjector(plan)
    arrays = [np.zeros(4) for _ in range(5)]
    hits = [inj.visit("microkernel", arr) for arr in arrays]
    assert hits == [False, False, True, False, False]
    assert sum(arr.sum() for arr in arrays) == 1.0
    assert inj.n_injected == 1
    assert inj.n_pending == 0


def test_sites_counted_independently():
    plan = InjectionPlan(
        schedule={"microkernel": (1,), "pack_a": (0,)},
        model=Additive(magnitude=1.0),
    )
    inj = FaultInjector(plan)
    a = np.zeros(3)
    assert inj.visit("pack_a", a)       # pack_a invocation 0 -> strike
    assert not inj.visit("microkernel", a)  # microkernel invocation 0
    assert inj.visit("microkernel", a)      # microkernel invocation 1 -> strike
    assert inj.invocations("microkernel") == 2
    assert inj.invocations("pack_a") == 1


def test_record_contents():
    plan = InjectionPlan.single("pack_b", 0, model=Additive(magnitude=2.0), seed=3)
    inj = FaultInjector(plan)
    arr = np.arange(6.0).reshape(2, 3)
    inj.visit("pack_b", arr)
    (rec,) = inj.records
    assert rec.site == "pack_b"
    assert rec.new_value == rec.old_value + 2.0
    assert arr[rec.index] == rec.new_value
    assert rec.magnitude == pytest.approx(2.0)
    assert not rec.detected


def test_victim_choice_deterministic():
    def run():
        inj = FaultInjector(InjectionPlan.single("microkernel", 0, seed=11))
        arr = np.ones((4, 4))
        inj.visit("microkernel", arr)
        return inj.records[0].index, inj.records[0].new_value

    assert run() == run()


def test_victim_choice_independent_of_visit_history():
    """The victim RNG derives from (seed, site, invocation), not from a
    shared stream — parallel interleavings cannot change the strike."""
    plan = InjectionPlan(
        schedule={"microkernel": (1,), "pack_a": (0,)},
        model=Additive(magnitude=1.0),
        seed=5,
    )
    # order 1: pack first
    inj1 = FaultInjector(plan)
    a1 = np.zeros((3, 3))
    m1 = np.zeros((3, 3))
    inj1.visit("pack_a", a1)
    inj1.visit("microkernel", m1)
    inj1.visit("microkernel", m1)
    # order 2: microkernel first
    inj2 = FaultInjector(plan)
    a2 = np.zeros((3, 3))
    m2 = np.zeros((3, 3))
    inj2.visit("microkernel", m2)
    inj2.visit("microkernel", m2)
    inj2.visit("pack_a", a2)
    np.testing.assert_array_equal(a1, a2)
    np.testing.assert_array_equal(m1, m2)


def test_empty_array_not_corrupted():
    inj = FaultInjector(InjectionPlan.single("scale", 0))
    assert not inj.visit("scale", np.zeros(0))
    assert inj.n_injected == 0


def test_mark_detected_first_n():
    plan = InjectionPlan(
        schedule={"microkernel": (0, 1, 2)}, model=Additive(magnitude=1.0)
    )
    inj = FaultInjector(plan)
    arr = np.zeros(5)
    for _ in range(3):
        inj.visit("microkernel", arr)
    inj.mark_detected(2)
    assert [r.detected for r in inj.records] == [True, True, False]
    inj.mark_detected(5)
    assert all(r.detected for r in inj.records)


def test_summary():
    plan = InjectionPlan(
        schedule={"microkernel": (0,), "pack_a": (0, 1)},
        model=Additive(magnitude=1.0),
    )
    inj = FaultInjector(plan)
    arr = np.zeros(2)
    inj.visit("microkernel", arr)
    inj.visit("pack_a", arr)
    inj.visit("pack_a", arr)
    assert inj.summary() == {"microkernel": 1, "pack_a": 2}


def test_unknown_site_rejected():
    inj = FaultInjector(InjectionPlan.empty())
    with pytest.raises(ValueError):
        inj.visit("bogus", np.zeros(1))


# --------------------------------------------------------- plan extensions


def test_plan_fail_stops_validated():
    plan = InjectionPlan(schedule={}, fail_stops=(FailStop(thread=1, barrier=2),))
    assert plan.fail_stops[0].thread == 1
    with pytest.raises(ConfigError):
        InjectionPlan(schedule={}, fail_stops=("t1@b2",))


def test_burst_strike_records_all_elements():
    plan = InjectionPlan.single("microkernel", 0, model=RowBurst(width=3), seed=1)
    inj = FaultInjector(plan)
    arr = np.ones((4, 9))
    inj.visit("microkernel", arr)
    (rec,) = inj.records
    assert rec.n_elements == 3  # seed 1 lands mid-row: the full run fits
    assert not rec.persistent
    assert np.count_nonzero(arr != 1.0) == rec.n_elements


# ------------------------------------------------------- sticky persistence


def test_persistent_strike_enters_sticky_registry():
    inj = FaultInjector(InjectionPlan.single("pack_a", 0, model=StuckBit()))
    arr = np.ones(16)
    inj.visit("pack_a", arr)
    (rec,) = inj.records
    assert rec.persistent
    assert inj.has_persistent


def test_sticky_reapplies_on_every_later_visit():
    inj = FaultInjector(InjectionPlan.single("pack_a", 0, model=StuckBit(stuck_at=0)))
    inj.visit("pack_a", np.ones(16))
    before = inj.sticky_reapplied
    fresh = np.ones(16)
    inj.visit("pack_a", fresh)  # unscheduled visit: still re-poisoned
    assert inj.sticky_reapplied == before + 1
    assert np.count_nonzero(fresh != 1.0) == 1


def test_sticky_does_not_leak_across_sites():
    inj = FaultInjector(InjectionPlan.single("pack_a", 0, model=StuckBit(stuck_at=0)))
    inj.visit("pack_a", np.ones(16))
    clean = np.ones(16)
    inj.visit("pack_b", clean)
    np.testing.assert_array_equal(clean, np.ones(16))


def test_reapply_sticky_kernel_site_poisons_once_per_panel():
    """A recomputed line flows through the stuck slot once per packed
    panel: one corruption every _REPLAY_PERIOD elements, so the plain
    verifier's recompute can never converge."""
    inj = FaultInjector(InjectionPlan.single("pack_a", 0, model=StuckBit(stuck_at=0)))
    inj.visit("pack_a", np.ones(16))
    line = np.ones(4 * _REPLAY_PERIOD)
    n = inj.reapply_sticky(line)
    assert n == 4
    assert np.count_nonzero(line != 1.0) == 4


def test_reapply_sticky_respects_site_filter():
    inj = FaultInjector(InjectionPlan.single("pack_a", 0, model=StuckBit(stuck_at=0)))
    inj.visit("pack_a", np.ones(16))
    line = np.ones(32)
    assert inj.reapply_sticky(line, sites=("pack_b",)) == 0
    np.testing.assert_array_equal(line, np.ones(32))
    assert inj.reapply_sticky(line, sites=("pack_a",)) > 0


def test_quarantine_retires_sticky_faults():
    inj = FaultInjector(InjectionPlan.single("pack_b", 0, model=StuckBit()))
    inj.visit("pack_b", np.ones(16))
    retired = inj.quarantine()
    assert len(retired) == 1 and retired[0][0] == "pack_b"
    assert not inj.has_persistent
    assert inj.reapply_sticky(np.ones(16)) == 0
    assert inj.quarantine() == ()  # idempotent


def test_mark_corrected_first_n():
    plan = InjectionPlan(
        schedule={"microkernel": (0, 1, 2)}, model=Additive(magnitude=1.0)
    )
    inj = FaultInjector(plan)
    arr = np.zeros(5)
    for _ in range(3):
        inj.visit("microkernel", arr)
    inj.mark_corrected(2)
    assert [r.corrected for r in inj.records] == [True, True, False]


def test_site_outcomes_table():
    plan = InjectionPlan(
        schedule={"microkernel": (0, 1), "pack_a": (0,)},
        model=Additive(magnitude=1.0),
    )
    inj = FaultInjector(plan)
    arr = np.zeros(4)
    inj.visit("microkernel", arr)
    inj.visit("microkernel", arr)
    inj.visit("pack_a", arr)
    inj.mark_detected(3)
    inj.mark_corrected(2)
    outcomes = inj.site_outcomes()
    assert outcomes["microkernel"] == {
        "injected": 2, "detected": 2, "corrected": 2, "uncorrected": 0
    }
    assert outcomes["pack_a"]["uncorrected"] == 1


# ------------------------------------------------------------- thread maps


def test_bound_thread_map_renumbers_visits():
    """With a map bound, a visit is numbered by its canonical lane position,
    not by global arrival order — tid 1 visiting first still gets its own
    canonical indices."""
    plan = InjectionPlan.single("microkernel", 2, model=Additive(magnitude=1.0))
    inj = FaultInjector(plan)
    inj.bind_thread_map({"microkernel": [[0, 1], [2, 3]]})
    arr = np.zeros(4)
    assert inj.visit("microkernel", arr, tid=1)  # tid 1's first visit -> canonical 2
    assert not inj.visit("microkernel", arr, tid=0)
    (rec,) = inj.records
    assert rec.invocation == 2 and rec.tid == 1


def test_thread_map_overrun_is_a_simulation_error():
    inj = FaultInjector(InjectionPlan.empty())
    inj.bind_thread_map({"microkernel": [[0]]})
    arr = np.zeros(2)
    inj.visit("microkernel", arr, tid=0)
    with pytest.raises(SimulationError, match="different call shape"):
        inj.visit("microkernel", arr, tid=0)


def test_canonical_records_sorted_by_site_and_invocation():
    plan = InjectionPlan(
        schedule={"microkernel": (0, 1), "pack_a": (0,)},
        model=Additive(magnitude=1.0),
    )
    inj = FaultInjector(plan)
    inj.bind_thread_map({"microkernel": [[1], [0]], "pack_a": [[0], []]})
    arr = np.zeros(4)
    inj.visit("microkernel", arr, tid=0)   # canonical 1
    inj.visit("pack_a", arr, tid=0)        # canonical 0
    inj.visit("microkernel", arr, tid=1)   # canonical 0
    keys = [(r.site, r.invocation) for r in inj.canonical_records]
    assert keys == [("microkernel", 0), ("microkernel", 1), ("pack_a", 0)]


def test_targets_site():
    inj = FaultInjector(InjectionPlan.single("checksum", 0))
    assert inj.targets_site("checksum")
    assert not inj.targets_site("microkernel")
    with pytest.raises(ValueError):
        inj.targets_site("bogus")
