"""Deterministic fault injector."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive
from repro.util.errors import ConfigError


def test_plan_validation():
    with pytest.raises(ValueError):
        InjectionPlan(schedule={"nope": (0,)})
    with pytest.raises(ConfigError):
        InjectionPlan(schedule={"microkernel": (3, 1)})  # unsorted
    with pytest.raises(ConfigError):
        InjectionPlan(schedule={"microkernel": (-1,)})
    with pytest.raises(ConfigError):
        InjectionPlan(schedule={"microkernel": (1, 1)})  # duplicate


def test_plan_single_and_empty():
    assert InjectionPlan.empty().total_planned == 0
    plan = InjectionPlan.single("pack_a", 5)
    assert plan.schedule == {"pack_a": (5,)}
    assert plan.total_planned == 1


def test_strike_at_scheduled_invocation():
    plan = InjectionPlan.single("microkernel", 2, model=Additive(magnitude=1.0))
    inj = FaultInjector(plan)
    arrays = [np.zeros(4) for _ in range(5)]
    hits = [inj.visit("microkernel", arr) for arr in arrays]
    assert hits == [False, False, True, False, False]
    assert sum(arr.sum() for arr in arrays) == 1.0
    assert inj.n_injected == 1
    assert inj.n_pending == 0


def test_sites_counted_independently():
    plan = InjectionPlan(
        schedule={"microkernel": (1,), "pack_a": (0,)},
        model=Additive(magnitude=1.0),
    )
    inj = FaultInjector(plan)
    a = np.zeros(3)
    assert inj.visit("pack_a", a)       # pack_a invocation 0 -> strike
    assert not inj.visit("microkernel", a)  # microkernel invocation 0
    assert inj.visit("microkernel", a)      # microkernel invocation 1 -> strike
    assert inj.invocations("microkernel") == 2
    assert inj.invocations("pack_a") == 1


def test_record_contents():
    plan = InjectionPlan.single("pack_b", 0, model=Additive(magnitude=2.0), seed=3)
    inj = FaultInjector(plan)
    arr = np.arange(6.0).reshape(2, 3)
    inj.visit("pack_b", arr)
    (rec,) = inj.records
    assert rec.site == "pack_b"
    assert rec.new_value == rec.old_value + 2.0
    assert arr[rec.index] == rec.new_value
    assert rec.magnitude == pytest.approx(2.0)
    assert not rec.detected


def test_victim_choice_deterministic():
    def run():
        inj = FaultInjector(InjectionPlan.single("microkernel", 0, seed=11))
        arr = np.ones((4, 4))
        inj.visit("microkernel", arr)
        return inj.records[0].index, inj.records[0].new_value

    assert run() == run()


def test_victim_choice_independent_of_visit_history():
    """The victim RNG derives from (seed, site, invocation), not from a
    shared stream — parallel interleavings cannot change the strike."""
    plan = InjectionPlan(
        schedule={"microkernel": (1,), "pack_a": (0,)},
        model=Additive(magnitude=1.0),
        seed=5,
    )
    # order 1: pack first
    inj1 = FaultInjector(plan)
    a1 = np.zeros((3, 3))
    m1 = np.zeros((3, 3))
    inj1.visit("pack_a", a1)
    inj1.visit("microkernel", m1)
    inj1.visit("microkernel", m1)
    # order 2: microkernel first
    inj2 = FaultInjector(plan)
    a2 = np.zeros((3, 3))
    m2 = np.zeros((3, 3))
    inj2.visit("microkernel", m2)
    inj2.visit("microkernel", m2)
    inj2.visit("pack_a", a2)
    np.testing.assert_array_equal(a1, a2)
    np.testing.assert_array_equal(m1, m2)


def test_empty_array_not_corrupted():
    inj = FaultInjector(InjectionPlan.single("scale", 0))
    assert not inj.visit("scale", np.zeros(0))
    assert inj.n_injected == 0


def test_mark_detected_first_n():
    plan = InjectionPlan(
        schedule={"microkernel": (0, 1, 2)}, model=Additive(magnitude=1.0)
    )
    inj = FaultInjector(plan)
    arr = np.zeros(5)
    for _ in range(3):
        inj.visit("microkernel", arr)
    inj.mark_detected(2)
    assert [r.detected for r in inj.records] == [True, True, False]
    inj.mark_detected(5)
    assert all(r.detected for r in inj.records)


def test_summary():
    plan = InjectionPlan(
        schedule={"microkernel": (0,), "pack_a": (0, 1)},
        model=Additive(magnitude=1.0),
    )
    inj = FaultInjector(plan)
    arr = np.zeros(2)
    inj.visit("microkernel", arr)
    inj.visit("pack_a", arr)
    inj.visit("pack_a", arr)
    assert inj.summary() == {"microkernel": 1, "pack_a": 2}


def test_unknown_site_rejected():
    inj = FaultInjector(InjectionPlan.empty())
    with pytest.raises(ValueError):
        inj.visit("bogus", np.zeros(1))
