"""The documentation link checker (scripts/check_markdown_links.py):
unit behavior on synthetic trees, and the real repository staying clean."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_markdown_links",
    REPO_ROOT / "scripts" / "check_markdown_links.py",
)
linkcheck = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("check_markdown_links", linkcheck)
_SPEC.loader.exec_module(linkcheck)


def test_repository_markdown_links_are_clean(capsys):
    assert linkcheck.main([str(REPO_ROOT)]) == 0
    assert "markdown links OK" in capsys.readouterr().out


def test_detects_broken_relative_link(tmp_path):
    (tmp_path / "a.md").write_text("see [other](missing.md) for more\n")
    problems = linkcheck.check_tree(tmp_path)
    assert len(problems) == 1
    assert "missing.md" in problems[0]


def test_resolves_existing_links_and_anchors(tmp_path):
    (tmp_path / "target.md").write_text("# Top\n\n## 2. Some Section!\n")
    (tmp_path / "a.md").write_text(
        "[ok](target.md) and [sec](target.md#2-some-section) "
        "and [ext](https://example.com/nope) and [mail](mailto:x@y.z)\n"
    )
    assert linkcheck.check_tree(tmp_path) == []


def test_detects_missing_anchor(tmp_path):
    (tmp_path / "target.md").write_text("# Only Heading\n")
    (tmp_path / "a.md").write_text("[bad](target.md#no-such-section)\n")
    (problem,) = linkcheck.check_tree(tmp_path)
    assert "missing anchor" in problem and "no-such-section" in problem


def test_same_file_anchor(tmp_path):
    (tmp_path / "a.md").write_text("# Intro\n\n[up](#intro) [down](#nope)\n")
    (problem,) = linkcheck.check_tree(tmp_path)
    assert "#nope" in problem


def test_ignores_links_inside_code(tmp_path):
    (tmp_path / "a.md").write_text(
        "```\n[fake](not_a_file.md)\n```\n"
        "and inline `[also fake](gone.md)` too\n"
    )
    assert linkcheck.check_tree(tmp_path) == []


def test_duplicate_headings_get_numbered_slugs(tmp_path):
    (tmp_path / "t.md").write_text("## Setup\n\n## Setup\n")
    assert linkcheck.anchors_of(tmp_path / "t.md") == {"setup", "setup-1"}


def test_github_slug_rules():
    assert linkcheck.github_slug("1. What the paper builds") == \
        "1-what-the-paper-builds"
    assert linkcheck.github_slug(
        "4. Experiments index (every table/figure)"
    ) == "4-experiments-index-every-tablefigure"
    assert linkcheck.github_slug("`code` and *emph*") == "code-and-emph"
