"""Workload generators."""

import numpy as np
import pytest

from repro.bench.workloads import (
    WORKLOADS,
    adjacency,
    cancelling,
    gaussian,
    ill_scaled,
    uniform,
)
from repro.util.errors import ConfigError


def test_registry_complete():
    assert {"gaussian", "uniform", "ill_scaled", "cancelling"} == set(WORKLOADS)


def test_operands_shapes():
    a, b = gaussian.operands(7, 9, 5, seed=0)
    assert a.shape == (7, 5)
    assert b.shape == (5, 9)


def test_operands_deterministic():
    a1, b1 = gaussian.operands(5, 5, 5, seed=3)
    a2, b2 = gaussian.operands(5, 5, 5, seed=3)
    np.testing.assert_array_equal(a1, a2)
    np.testing.assert_array_equal(b1, b2)


def test_square_helper():
    a, b = uniform.square(6, seed=1)
    assert a.shape == b.shape == (6, 6)
    assert np.abs(a).max() <= 1.0


def test_ill_scaled_spans_magnitudes():
    a, _ = ill_scaled.operands(50, 10, 10, seed=0)
    row_scales = np.abs(a).max(axis=1)
    assert row_scales.max() / row_scales.min() > 1e8


def test_cancelling_rows_nearly_cancel():
    a, _ = cancelling.operands(10, 10, 30, seed=0)
    # row sums are small relative to the magnitude of the entries
    assert np.abs(a.sum(axis=1)).max() < np.abs(a).sum(axis=1).min()


def test_invalid_dims():
    with pytest.raises(ConfigError):
        gaussian.operands(0, 5, 5)


def test_adjacency_binary_and_square():
    adj = adjacency(30, p=0.2, seed=4)
    assert adj.shape == (30, 30)
    assert set(np.unique(adj)) <= {0.0, 1.0}
    assert np.all(np.diag(adj) == 0.0)


def test_adjacency_density_tracks_p():
    dense = adjacency(50, p=0.5, seed=0).mean()
    sparse = adjacency(50, p=0.05, seed=0).mean()
    assert dense > 5 * sparse


def test_adjacency_validation():
    with pytest.raises(ConfigError):
        adjacency(0)
    with pytest.raises(ConfigError):
        adjacency(10, p=1.5)
