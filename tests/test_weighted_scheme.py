"""The weighted-checksum extension (checksum_scheme="weighted")."""

import numpy as np
import pytest

from repro.abft.weighted import resolve_weighted
from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive
from repro.gemm.blocking import BlockingConfig
from repro.util.errors import ConfigError, ShapeError


@pytest.fixture
def cfg():
    return FTGemmConfig(
        blocking=BlockingConfig.small(), checksum_scheme="weighted"
    )


# -------------------------------------------------------- resolver itself
def test_resolver_single_errors_per_row():
    # row 2 has delta 5 at column 7; row 4 has delta -3 at column 1
    res = resolve_weighted(
        [2, 4],
        [5.0, -3.0],
        [5.0 * 8, -3.0 * 2],  # weights are index+1
        n_cols=10,
    )
    assert res.fully_resolved
    assert sorted(res.corrections) == [(2, 7, 5.0), (4, 1, -3.0)]


def test_resolver_rejects_multi_error_rows():
    # residual pair inconsistent with any single column
    res = resolve_weighted([3], [2.0], [2.0 * 5.7], n_cols=10)
    assert res.corrections == []
    assert res.recompute_rows == [3]


def test_resolver_rejects_out_of_range_column():
    res = resolve_weighted([0], [1.0], [99.0], n_cols=10)  # column 98
    assert res.recompute_rows == [0]


def test_resolver_nonfinite_to_recompute():
    res = resolve_weighted([1], [np.nan], [1.0], n_cols=4)
    assert res.recompute_rows == [1]
    res = resolve_weighted([1], [0.0], [1.0], n_cols=4)
    assert res.recompute_rows == [1]


def test_resolver_shape_mismatch():
    with pytest.raises(ShapeError):
        resolve_weighted([1, 2], [1.0], [1.0], n_cols=4)


# ----------------------------------------------------------- scheme config
def test_scheme_validated():
    with pytest.raises(ConfigError):
        FTGemmConfig(checksum_scheme="triple")
    assert FTGemmConfig(checksum_scheme="weighted").weighted
    assert not FTGemmConfig().weighted


# --------------------------------------------------------- serial weighted
def test_clean_run_weighted(cfg, rng):
    a = rng.standard_normal((33, 26))
    b = rng.standard_normal((26, 41))
    result = FTGemm(cfg).gemm(a, b)
    assert result.verified and result.clean_first_pass
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11)


def test_weighted_costs_more_checksum_flops(cfg, rng):
    a = rng.standard_normal((30, 24))
    b = rng.standard_normal((24, 30))
    dual = FTGemm(cfg.with_(checksum_scheme="dual")).gemm(a, b)
    weighted = FTGemm(cfg).gemm(a, b)
    assert weighted.counters.checksum_flops > dual.counters.checksum_flops
    assert weighted.counters.ft_extra_bytes == 0  # still fully fused


def test_equal_delta_pair_corrected_without_recompute(cfg, rng):
    """THE case the weighted scheme exists for: two errors with identical
    deltas are ambiguous to the dual scheme (it must recompute); weighted
    localization corrects both in place."""
    a = rng.standard_normal((33, 26))
    b = rng.standard_normal((26, 41))
    plan = InjectionPlan(
        schedule={"microkernel": (0, 30)}, model=Additive(magnitude=64.0)
    )
    # dual: recompute path
    dual_inj = FaultInjector(plan)
    dual = FTGemm(cfg.with_(checksum_scheme="dual")).gemm(a, b, injector=dual_inj)
    assert dual.verified
    assert dual.recomputed_blocks > 0

    # weighted: corrected in place, zero recomputed lines
    winj = FaultInjector(plan)
    weighted = FTGemm(cfg).gemm(a, b, injector=winj)
    assert weighted.verified
    assert weighted.corrected >= 2
    assert weighted.recomputed_blocks == 0
    np.testing.assert_allclose(weighted.c, a @ b, rtol=1e-10, atol=1e-10)


def test_single_fault_weighted(cfg, rng):
    a = rng.standard_normal((25, 30))
    b = rng.standard_normal((30, 20))
    inj = FaultInjector(
        InjectionPlan.single("microkernel", 3, model=Additive(magnitude=40.0))
    )
    result = FTGemm(cfg).gemm(a, b, injector=inj)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


def test_many_faults_weighted_campaign(cfg):
    result = run_campaign(
        CampaignConfig(m=40, n=36, k=30, runs=3, errors_per_call=5, seed=17),
        FTGemm(cfg),
    )
    assert result.all_correct
    assert result.injected == 15


def test_weighted_with_alpha_beta(cfg, rng):
    a = rng.standard_normal((22, 18))
    b = rng.standard_normal((18, 27))
    c0 = rng.standard_normal((22, 27))
    inj = FaultInjector(
        InjectionPlan(schedule={"microkernel": (1, 9)}, model=Additive(magnitude=31.0))
    )
    result = FTGemm(cfg).gemm(a, b, c0.copy(), alpha=1.5, beta=-0.5, injector=inj)
    assert result.verified
    np.testing.assert_allclose(
        result.c, 1.5 * (a @ b) - 0.5 * c0, rtol=1e-10, atol=1e-10
    )


def test_weighted_checksum_fault_rederives(cfg, rng):
    a = rng.standard_normal((20, 16))
    b = rng.standard_normal((16, 24))
    inj = FaultInjector(
        InjectionPlan.single("checksum", 1, model=Additive(magnitude=50.0))
    )
    result = FTGemm(cfg).gemm(a, b, injector=inj)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


# ------------------------------------------------------- parallel weighted
def test_parallel_weighted_clean(cfg, rng):
    a = rng.standard_normal((31, 23))
    b = rng.standard_normal((23, 37))
    result = ParallelFTGemm(cfg, n_threads=3).gemm(a, b)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11)


def test_parallel_weighted_matches_serial_bitwise(cfg, rng):
    a = rng.standard_normal((28, 21))
    b = rng.standard_normal((21, 33))
    serial = FTGemm(cfg).gemm(a, b).c
    parallel = ParallelFTGemm(cfg, n_threads=4).gemm(a, b).c
    np.testing.assert_array_equal(serial, parallel)


def test_parallel_weighted_equal_delta_pair(cfg, rng):
    a = rng.standard_normal((30, 22))
    b = rng.standard_normal((22, 28))
    plan = InjectionPlan(
        schedule={"microkernel": (0, 25)}, model=Additive(magnitude=48.0)
    )
    result = ParallelFTGemm(cfg, n_threads=3).gemm(
        a, b, injector=FaultInjector(plan)
    )
    assert result.verified
    assert result.recomputed_blocks == 0
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


def test_parallel_weighted_campaign(cfg):
    result = run_campaign(
        CampaignConfig(m=32, n=30, k=26, runs=2, errors_per_call=4, seed=23),
        ParallelFTGemm(cfg, n_threads=3),
    )
    assert result.all_correct
