"""Trace exporters: JSONL round-trip, Chrome trace emission and the
structural validator (schema + per-tid span containment)."""

import json

import pytest

from repro.obs import (
    TraceEvent,
    Tracer,
    TraceSchemaError,
    load_jsonl,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)


def _traced_run() -> Tracer:
    tr = Tracer()
    with tr.span("gemm", cat="driver", args={"m": 8}):
        with tr.span("pack_b", cat="pack", tid=1, args={"bytes": 64}):
            pass
        tr.event("fault.injected", cat="fault", tid=1, args={"site": "pack_b"})
        with tr.span("macro_kernel", cat="compute"):
            pass
    tr.counter("flops", 128.0)
    tr.metrics.inc("faults.injected")
    tr.metrics.observe("barrier.wait_us.t0", 3.0)
    return tr


def test_jsonl_round_trip(tmp_path):
    tr = _traced_run()
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, tr.events, metrics=tr.metrics.snapshot())
    events, metrics = load_jsonl(path)
    assert len(events) == len(tr.events)
    for orig, loaded in zip(tr.events, events):
        assert loaded == orig
    assert metrics["counters"]["faults.injected"] == 1
    assert metrics["histograms"]["barrier.wait_us.t0"]["count"] == 1


def test_jsonl_rejects_unknown_record(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "mystery"}\n')
    with pytest.raises(TraceSchemaError, match="unknown record type"):
        load_jsonl(path)


def test_loaded_jsonl_validates_as_chrome_trace(tmp_path):
    """The full emit -> JSONL -> load -> Chrome-format pipeline."""
    tr = _traced_run()
    path = tmp_path / "trace.jsonl"
    write_jsonl(path, tr.events, metrics=tr.metrics.snapshot())
    events, metrics = load_jsonl(path)
    trace = to_chrome_trace(events, metrics=metrics)
    assert validate_chrome_trace(trace) == len(events) + 3  # +M name events


def test_chrome_trace_structure(tmp_path):
    tr = _traced_run()
    path = tmp_path / "trace.json"
    trace = write_chrome_trace(path, tr)
    assert trace["displayTimeUnit"] == "ms"
    assert trace["otherData"]["metrics"]["counters"]["faults.injected"] == 1
    names = {e["name"] for e in trace["traceEvents"]}
    assert {"process_name", "thread_name", "gemm", "pack_b"} <= names
    tids = {e["tid"] for e in trace["traceEvents"]
            if e["name"] == "thread_name"}
    assert tids == {0, 1}
    # the file on disk parses and validates standalone (path form)
    assert validate_chrome_trace(str(path)) == len(trace["traceEvents"])
    # and the JSON-string form
    assert validate_chrome_trace(path.read_text()) == len(trace["traceEvents"])


def test_validator_rejects_bad_top_level():
    with pytest.raises(TraceSchemaError, match="traceEvents"):
        validate_chrome_trace({"foo": []})
    with pytest.raises(TraceSchemaError, match="must be a list"):
        validate_chrome_trace({"traceEvents": {}})


def test_validator_rejects_unknown_phase_and_negative_dur():
    events = [
        {"name": "a", "cat": "x", "ph": "Z", "pid": 0, "tid": 0, "ts": 0},
        {"name": "b", "cat": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1,
         "dur": -5},
    ]
    with pytest.raises(TraceSchemaError) as err:
        validate_chrome_trace({"traceEvents": events})
    problems = "\n".join(err.value.problems)
    assert "unknown phase" in problems
    assert "bad dur" in problems


def test_validator_rejects_counter_without_args():
    events = [{"name": "c", "cat": "x", "ph": "C", "pid": 0, "tid": 0,
               "ts": 0}]
    with pytest.raises(TraceSchemaError, match="counter event without args"):
        validate_chrome_trace({"traceEvents": events})


def test_validator_rejects_overlapping_spans_on_one_tid():
    """Partial overlap on one logical thread = broken begin/end pairing."""
    events = [
        {"name": "a", "cat": "x", "ph": "X", "pid": 0, "tid": 1,
         "ts": 0.0, "dur": 10.0},
        {"name": "b", "cat": "x", "ph": "X", "pid": 0, "tid": 1,
         "ts": 5.0, "dur": 10.0},
    ]
    with pytest.raises(TraceSchemaError, match="overlaps"):
        validate_chrome_trace({"traceEvents": events})
    # the same two spans on different tids are fine
    events[1]["tid"] = 2
    assert validate_chrome_trace({"traceEvents": events}) == 2


def test_validator_accepts_nested_and_disjoint_spans():
    events = [
        {"name": "outer", "cat": "x", "ph": "X", "pid": 0, "tid": 0,
         "ts": 0.0, "dur": 10.0},
        {"name": "inner", "cat": "x", "ph": "X", "pid": 0, "tid": 0,
         "ts": 2.0, "dur": 3.0},
        {"name": "later", "cat": "x", "ph": "X", "pid": 0, "tid": 0,
         "ts": 20.0, "dur": 1.0},
    ]
    assert validate_chrome_trace({"traceEvents": events}) == 3


def test_event_equality_survives_json(tmp_path):
    event = TraceEvent(name="x", cat="pack", ph="X", ts_us=1.5, tid=2,
                       dur_us=0.25, args={"k": 1})
    path = tmp_path / "one.jsonl"
    write_jsonl(path, [event])
    (loaded,), _ = load_jsonl(path)
    assert loaded == event
    assert json.loads(json.dumps(loaded.to_chrome()))["dur"] == 0.25


# ----------------------------------------------------- open spans at export
def test_export_tolerates_open_spans(tmp_path):
    """A span still open at export time (a worker mid-batch while the
    service drains) is emitted as a retroactive complete tagged
    ``open_at_export`` — and the trace still validates structurally."""
    tr = Tracer()
    span = tr.span("serve.batch", cat="serve", tid=3, args={"batch": "b1"})
    span.__enter__()  # entered, never exited before the export
    tr.event("fault.injected", cat="fault", tid=3)

    trace = write_chrome_trace(tmp_path / "open.json", tr)
    assert validate_chrome_trace(trace) > 0
    completes = [
        e for e in trace["traceEvents"]
        if e.get("ph") == "X" and e.get("name") == "serve.batch"
    ]
    assert len(completes) == 1
    assert completes[0]["args"]["open_at_export"] is True
    assert completes[0]["args"]["batch"] == "b1"  # original args kept
    assert completes[0]["dur"] >= 0.0

    # the span stays open: its eventual exit records the real duration
    assert tr.open_spans() == [span]
    span.__exit__(None, None, None)
    assert tr.open_spans() == []
    closed = [e for e in tr.events if e.name == "serve.batch"]
    assert len(closed) == 1 and closed[0].args == {"batch": "b1"}


def test_events_with_open_does_not_mutate_closed_view():
    tr = Tracer()
    with tr.span("outer"):
        snapshot = tr.events_with_open()
        assert [e.name for e in snapshot] == ["outer"]
        assert snapshot[0].args["open_at_export"] is True
    # the retroactive complete never leaked into the tracer's own stream
    assert len(tr.events) == 1
    assert tr.events[0].args is None


def test_export_with_no_open_spans_is_unchanged(tmp_path):
    tr = _traced_run()
    assert tr.open_spans() == []
    assert tr.events_with_open() == tr.events
