"""Good/bad source fixtures for every project-invariant rule.

Each rule gets at least one fixture that must trip it and one that must
pass — the acceptance gate for the analyzer is precisely "nonzero on the
bad fixture, zero on the repo".
"""

from repro.analysis import analyze


def findings_for(tmp_path, text, rule=None):
    path = tmp_path / "fixture.py"
    path.write_text(text)
    result = analyze([path], root=tmp_path)
    found = result.findings
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


# ------------------------------------------------------------ hot-loop-alloc
def test_hot_loop_alloc_flags_np_alloc_in_kernel_loop(tmp_path):
    bad = """\
import numpy as np

def macro_kernel(ws, a, b, c):
    for j in range(4):
        scratch = np.empty((4, 4))
        c[:, j] += scratch[:, 0]
"""
    found = findings_for(tmp_path, bad, "hot-loop-alloc")
    assert len(found) == 1
    assert "np.empty" in found[0].message


def test_hot_loop_alloc_flags_copy_and_packless_out(tmp_path):
    bad = """\
def _pack_a_block(a, panels):
    for p in panels:
        tile = a.copy()
        pack_a(tile, 4)
"""
    rules = [f.message for f in findings_for(tmp_path, bad, "hot-loop-alloc")]
    assert any(".copy()" in m for m in rules)
    assert any("without out=" in m for m in rules)


def test_hot_loop_alloc_good_arena_reuse_passes(tmp_path):
    good = """\
import numpy as np

def macro_kernel(ws, a, b, c):
    scratch = np.empty((4, 4))  # preallocated outside the loop
    for j in range(4):
        pack_a(a, 4, out=ws.view)
        scratch[:] = 0.0
"""
    assert findings_for(tmp_path, good, "hot-loop-alloc") == []


def test_hot_loop_alloc_ignores_cold_functions(tmp_path):
    cold = """\
import numpy as np

def setup_buffers(n):
    for i in range(n):
        yield np.zeros(n)
"""
    assert findings_for(tmp_path, cold, "hot-loop-alloc") == []


def test_hot_loop_alloc_covers_cache_consult_path(tmp_path):
    """The panel-cache admission runs per batch on the serving hot path:
    acquire() and the pool's _consult_cache() are hot names, so an
    allocating loop inside either is a finding."""
    bad = """\
import numpy as np

def acquire(self, b, config):
    for key in self._entries:
        probe = np.zeros(4)

def _consult_cache(self, b):
    for entry in self._entries:
        samples = np.empty(8)
"""
    found = findings_for(tmp_path, bad, "hot-loop-alloc")
    assert len(found) == 2
    assert any("acquire" in f.message for f in found)
    assert any("_consult_cache" in f.message for f in found)


# ------------------------------------------------------------ barrier-pairing
def test_barrier_pairing_flags_unnamed_yield(tmp_path):
    bad = """\
def worker(tid):
    yield
    counters.barriers += 1
"""
    found = findings_for(tmp_path, bad, "barrier-pairing")
    assert len(found) == 1
    assert "# barrier" in found[0].message


def test_barrier_pairing_flags_uncounted_yield(tmp_path):
    bad = """\
def worker(tid):
    yield  # barrier: prologue
    do_work()
"""
    found = findings_for(tmp_path, bad, "barrier-pairing")
    assert len(found) == 1
    assert "barriers += 1" in found[0].message


def test_barrier_pairing_terminal_yield_needs_no_counter(tmp_path):
    good = """\
def recovery_worker(slot):
    do_work(slot)
    yield  # barrier: recovery epoch complete
"""
    assert findings_for(tmp_path, good, "barrier-pairing") == []


def test_barrier_pairing_checks_map_against_recovery(tmp_path):
    bad = """\
def worker(tid):
    yield  # barrier: prologue
    counters.barriers += 1
    for p in range(2):
        for j in range(2):
            yield  # barrier: pack done
            counters.barriers += 1

def _recover_from_deaths(deaths):
    for death in deaths:
        t = death.block
        if 1 + 2 * t <= death.barrier:
            continue
"""
    found = findings_for(tmp_path, bad, "barrier-pairing")
    assert len(found) == 1
    assert "barrier map mismatch" in found[0].message


def test_barrier_pairing_good_map_passes(tmp_path):
    good = """\
def worker(tid):
    yield  # barrier: prologue
    counters.barriers += 1
    for p in range(2):
        for j in range(2):
            yield  # barrier: pack done
            counters.barriers += 1
            macro()
            yield  # barrier: macro done
            counters.barriers += 1

def _recover_from_deaths(deaths):
    for death in deaths:
        t = death.block
        if 1 + 2 * t <= death.barrier:
            continue
"""
    assert findings_for(tmp_path, good, "barrier-pairing") == []


def test_barrier_pairing_flags_lost_recovery_formula(tmp_path):
    bad = """\
def worker(tid):
    yield  # barrier: prologue
    counters.barriers += 1
    for p in range(2):
        for j in range(2):
            yield  # barrier: pack
            counters.barriers += 1
            yield  # barrier: macro
            counters.barriers += 1

def _recover_from_deaths(deaths):
    return []
"""
    found = findings_for(tmp_path, bad, "barrier-pairing")
    assert len(found) == 1
    assert "1 + 2 * t" in found[0].message


# ------------------------------------------------------------ lock-discipline
def test_lock_discipline_flags_mixed_access(tmp_path):
    bad = """\
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count = self.count + 1

    def read(self):
        return self.count
"""
    found = findings_for(tmp_path, bad, "lock-discipline")
    assert len(found) == 1
    assert "self.count" in found[0].message
    assert "read" in found[0].message


def test_lock_discipline_flags_unguarded_rmw(tmp_path):
    bad = """\
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0

    def record(self):
        self.hits += 1
"""
    found = findings_for(tmp_path, bad, "lock-discipline")
    assert len(found) == 1
    assert "read-modify-write" in found[0].message


def test_lock_discipline_good_consistent_guarding_passes(tmp_path):
    good = """\
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def read(self):
        with self._cv:
            return self.count
"""
    assert findings_for(tmp_path, good, "lock-discipline") == []


def test_lock_discipline_immutable_after_init_is_exempt(tmp_path):
    good = """\
import threading

class Service:
    def __init__(self, cap):
        self._lock = threading.Lock()
        self.cap = cap
        self.items = []

    def add(self, x):
        with self._lock:
            if len(self.items) < self.cap:
                self.items.append(x)

    def describe(self):
        return self.cap
"""
    assert findings_for(tmp_path, good, "lock-discipline") == []


def test_lock_discipline_caller_holds_lock_annotation(tmp_path):
    good = """\
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def add(self, x):
        with self._lock:
            self._admit(x)

    # analysis: caller-holds-lock
    def _admit(self, x):
        self.items.append(x)
"""
    assert findings_for(tmp_path, good, "lock-discipline") == []


def test_lock_discipline_classes_without_locks_exempt(tmp_path):
    good = """\
class Plain:
    def __init__(self):
        self.n = 0

    def bump(self):
        self.n += 1
"""
    assert findings_for(tmp_path, good, "lock-discipline") == []


# -------------------------------------------------------------- lock-blocking
def test_lock_blocking_flags_queue_get_under_lock(tmp_path):
    bad = """\
import threading

class Drain:
    def __init__(self, queue):
        self._lock = threading.Lock()
        self.queue = queue

    def drain_one(self):
        with self._lock:
            return self.queue.get(timeout=1.0)
"""
    found = findings_for(tmp_path, bad, "lock-blocking")
    assert len(found) == 1
    assert "queue.get" in found[0].message


def test_lock_blocking_flags_future_result_and_sleep(tmp_path):
    bad = """\
import threading
import time

class Waiter:
    def __init__(self):
        self._lock = threading.Lock()

    def wait_for(self, future):
        with self._lock:
            time.sleep(0.1)
            return future.result(timeout=5)
"""
    messages = [f.message for f in findings_for(tmp_path, bad, "lock-blocking")]
    assert len(messages) == 2
    assert any("sleep" in m for m in messages)
    assert any("result" in m for m in messages)


def test_lock_blocking_condition_wait_on_own_lock_is_fine(tmp_path):
    good = """\
import threading

class Gate:
    def __init__(self):
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self.open = False

    def wait_open(self):
        with self._cv:
            while not self.open:
                self._cv.wait(0.1)
"""
    assert findings_for(tmp_path, good, "lock-blocking") == []


def test_lock_blocking_foreign_wait_under_lock_is_flagged(tmp_path):
    bad = """\
import threading

class Gate:
    def __init__(self, event):
        self._lock = threading.Lock()
        self.event = event

    def wait_open(self):
        with self._lock:
            self.event.wait(1.0)
"""
    found = findings_for(tmp_path, bad, "lock-blocking")
    assert len(found) == 1


def test_lock_blocking_flags_pipe_send_recv_under_lock(tmp_path):
    bad = """\
import threading

class Shard:
    def __init__(self, cmd_conn, res_conn):
        self._lock = threading.Lock()
        self.cmd_conn = cmd_conn
        self.res_conn = res_conn

    def roundtrip(self, payload):
        with self._lock:
            self.cmd_conn.send_bytes(payload)
            return self.res_conn.recv_bytes()
"""
    messages = [f.message for f in findings_for(tmp_path, bad, "lock-blocking")]
    assert len(messages) == 2
    assert any("send_bytes" in m for m in messages)
    assert any("recv_bytes" in m for m in messages)


def test_lock_blocking_flags_process_reap_under_lock(tmp_path):
    bad = """\
import threading

class Reaper:
    def __init__(self, proc):
        self._lock = threading.Lock()
        self.proc = proc

    def reap(self):
        with self._lock:
            self.proc.kill()
            self.proc.join(5.0)
"""
    messages = [f.message for f in findings_for(tmp_path, bad, "lock-blocking")]
    assert len(messages) == 2
    assert any("kill" in m for m in messages)
    assert any("join" in m for m in messages)


def test_lock_blocking_pipe_methods_on_other_receivers_pass(tmp_path):
    good = """\
import threading

class Mailer:
    def __init__(self, sink):
        self._lock = threading.Lock()
        self.sink = sink
        self.sent = 0

    def record(self, payload):
        with self._lock:
            self.sink.send(payload)  # not a pipe/conn receiver
            self.sent += 1
"""
    assert findings_for(tmp_path, good, "lock-blocking") == []


def test_lock_blocking_outside_lock_is_fine(tmp_path):
    good = """\
import threading
import time

class Waiter:
    def __init__(self):
        self._lock = threading.Lock()
        self.n = 0

    def wait_then_count(self, future):
        response = future.result(timeout=5)
        time.sleep(0.01)
        with self._lock:
            self.n += 1
        return response
"""
    assert findings_for(tmp_path, good, "lock-blocking") == []


# ------------------------------------------------------------ complete-funnel
def test_complete_funnel_flags_stray_response_construction(tmp_path):
    bad = """\
from repro.serve.request import GemmRequest, GemmResponse

def answer(request):
    return GemmResponse(request_id=request.request_id, status="failed")
"""
    found = findings_for(tmp_path, bad, "complete-funnel")
    assert len(found) == 1
    assert "funnel" in found[0].message


def test_complete_funnel_allows_funneled_construction(tmp_path):
    good = """\
from repro.serve.request import GemmRequest, GemmResponse

def answer(service, request):
    service.complete(
        request,
        GemmResponse(request_id=request.request_id, status="failed"),
    )
"""
    assert findings_for(tmp_path, good, "complete-funnel") == []


def test_complete_funnel_flags_direct_future_set(tmp_path):
    bad = """\
from repro.serve.request import ResponseFuture

def shortcut(future, response):
    future.set(response)
"""
    found = findings_for(tmp_path, bad, "complete-funnel")
    assert len(found) == 1
    assert ".set" in found[0].message


def test_complete_funnel_defining_module_is_exempt(tmp_path):
    good = """\
class GemmResponse:
    pass

def make():
    return GemmResponse()
"""
    assert findings_for(tmp_path, good, "complete-funnel") == []


# --------------------------------------------------------------- span-pairing
def test_span_pairing_flags_unentered_span(tmp_path):
    bad = """\
def run(tracer):
    tracer.span("phase", cat="core")
    do_work()
"""
    found = findings_for(tmp_path, bad, "span-pairing")
    assert len(found) == 1
    assert "never entered" in found[0].message


def test_span_pairing_flags_complete_without_t0(tmp_path):
    bad = """\
def run(tr):
    if tr is None:
        return
    tr.complete("phase", cat="core")
"""
    found = findings_for(tmp_path, bad, "span-pairing")
    assert len(found) == 1
    assert "t0_us" in found[0].message


def test_span_pairing_good_usage_passes(tmp_path):
    good = """\
def run(tr):
    if tr is None:
        return
    with tr.span("phase", cat="core"):
        do_work()
    t0 = tr.now_us()
    do_more()
    tr.complete("phase2", cat="core", t0_us=t0)
"""
    assert findings_for(tmp_path, good, "span-pairing") == []


def test_span_pairing_ignores_non_tracer_receivers(tmp_path):
    good = """\
def run(pool, request, response):
    pool.complete(request, response)
"""
    assert findings_for(tmp_path, good, "span-pairing") == []


# --------------------------------------------------------------- tracer-guard
def test_tracer_guard_flags_unguarded_none_default(tmp_path):
    bad = """\
def run(x, tracer=None):
    tracer.event("start", cat="core")
    return x
"""
    found = findings_for(tmp_path, bad, "tracer-guard")
    assert len(found) == 1
    assert "None" in found[0].message


def test_tracer_guard_accepts_is_none_guard(tmp_path):
    good = """\
def run(x, tracer=None):
    if tracer is not None:
        tracer.event("start", cat="core")
    return x
"""
    assert findings_for(tmp_path, good, "tracer-guard") == []


def test_tracer_guard_accepts_null_tracer_rebinding(tmp_path):
    good = """\
def run(x, tracer=None):
    tracer = tracer or NULL_TRACER
    tracer.event("start", cat="core")
    return x
"""
    assert findings_for(tmp_path, good, "tracer-guard") == []
