"""Figure builders and the harness."""

import pytest

from repro.bench.figures import (
    ALL_FIGURES,
    build,
    fig2a_serial,
    fig2b_parallel,
    fig2c_serial_injection,
    fig2d_parallel_injection,
    overhead_table,
    reliability_table,
)
from repro.bench.harness import ExperimentRunner
from repro.util.errors import ConfigError


def test_registry_covers_every_panel_and_claim():
    assert set(ALL_FIGURES) == {
        "fig2a", "fig2b", "fig2c", "fig2d", "overhead", "reliability",
        "scaling", "serve", "panel_cache", "kernel_mix",
    }


def test_scaling_table_monotone():
    from repro.bench.figures import scaling_table

    fig = scaling_table(thread_counts=(1, 2, 4, 8), n=4096)
    ft = fig.series["FT GFLOPS"]
    assert all(b > a for a, b in zip(ft, ft[1:]))  # more threads, more rate
    eff = fig.series["FT efficiency %"]
    assert eff[0] == pytest.approx(100.0)
    assert all(e > 60.0 for e in eff)  # decent strong scaling at 4096


def test_fig2a_structure():
    fig = fig2a_serial(sizes=(2048, 4096))
    assert fig.x == [2048, 4096]
    assert set(fig.series) == {
        "MKL", "OpenBLAS", "BLIS", "FT-GEMM Ori", "FT-GEMM w/ FT",
    }
    assert "FT overhead vs Ori" in fig.observations


def test_fig2a_orderings():
    """The qualitative shape of panel (a): Ori above every baseline, FT
    between Ori and MKL."""
    fig = fig2a_serial()
    for i, _n in enumerate(fig.x):
        ori = fig.series["FT-GEMM Ori"][i]
        ft = fig.series["FT-GEMM w/ FT"][i]
        assert ori > ft > fig.series["MKL"][i]
        assert ft > fig.series["OpenBLAS"][i]
        assert ft > fig.series["BLIS"][i]


def test_fig2b_orderings():
    """Panel (b): FT slightly under MKL, comparable to OpenBLAS, well above
    BLIS — at the large-size end."""
    fig = fig2b_parallel()
    ft = fig.series["FT-GEMM w/ FT"][-1]
    assert ft < fig.series["MKL"][-1]
    assert abs(ft / fig.series["OpenBLAS"][-1] - 1) < 0.05
    assert ft > 1.1 * fig.series["BLIS"][-1]


def test_fig2c_ft_nearly_flat_under_errors():
    fig = fig2c_serial_injection(error_counts=(0, 20))
    ft = fig.series["FT-GEMM w/ FT"]
    assert ft[1] < ft[0]  # errors cost something...
    assert ft[1] > 0.99 * ft[0]  # ...but almost nothing
    assert "FT-GEMM Ori" not in fig.series


def test_fig2d_claims_filled():
    fig = fig2d_parallel_injection(error_counts=(0, 10))
    assert "FT vs BLIS" in fig.observations
    assert fig.series["FT-GEMM w/ FT"][0] > fig.series["BLIS"][0]


def test_injection_validation_runs_real_campaigns():
    fig = fig2c_serial_injection(error_counts=(0, 3), validate=True,)
    assert "all final results correct" in fig.observations["validation"]


def test_overhead_table_claim():
    fig = overhead_table(sizes=(2048, 4096))
    assert "overhead" in fig.observations
    fused = fig.series["fused ov %"]
    classic = fig.series["classic ov %"]
    for f, c in zip(fused, classic):
        assert c > 3 * f


def test_reliability_small():
    fig = reliability_table(rates_per_minute=(0, 120), n=64, runs=2)
    assert fig.series["correct %"] == [100.0, 100.0]


def test_build_dispatch():
    fig = build("fig2a", sizes=(2048,))
    assert fig.figure_id == "fig2a"
    with pytest.raises(ConfigError):
        build("fig9z")


def test_harness_runs_and_persists(tmp_path):
    runner = ExperimentRunner(tmp_path)
    runner.run("fig2a", sizes=(2048, 4096))
    runner.run("overhead", sizes=(2048,))
    assert (tmp_path / "fig2a.txt").exists()
    report = runner.report()
    assert "fig2a" in report and "overhead" in report


def test_harness_report_requires_runs(tmp_path):
    with pytest.raises(ConfigError):
        ExperimentRunner(tmp_path).report()


def test_harness_run_all_builds_every_figure(tmp_path):
    """The full pipeline: every registered figure builds, persists, and
    carries both the paper claims and our observations."""
    runner = ExperimentRunner(tmp_path)
    built = runner.run_all()
    assert set(built) == set(ALL_FIGURES)
    for figure_id, fig in built.items():
        assert (tmp_path / f"{figure_id}.txt").exists()
        assert (tmp_path / f"{figure_id}.json").exists()
        assert fig.observations, figure_id
        assert fig.series, figure_id
