"""CLI surface of analyzer v2: SARIF export, --diff, baseline --prune.

The SARIF document is validated against an embedded subset of the SARIF
2.1.0 schema (the properties this tool emits, with the spec's required
fields) via jsonschema — no network fetch, but a real structural
validation rather than spot checks. The --diff and prune paths run
through ``cli.main`` end-to-end against throwaway git repos.
"""

import json
import subprocess

import jsonschema
import pytest

from repro.analysis import Baseline, BaselineEntry, analyze, render_sarif
from repro.analysis.cli import changed_files, main
from repro.analysis.report import SARIF_SCHEMA, SARIF_VERSION

BAD_HOT = """\
import numpy as np

def microkernel(c, a, b):
    for i in range(4):
        t = np.zeros(4)
    return c
"""

#: the subset of the SARIF 2.1.0 schema this tool's output exercises;
#: ``required`` lists mirror the spec so a missing mandatory property
#: fails validation, and additionalProperties stays open like the spec
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {
                                    "type": "integer",
                                    "minimum": 0,
                                },
                                "level": {
                                    "enum": [
                                        "none", "note", "warning", "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            },
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "invocations": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["executionSuccessful"],
                        },
                    },
                },
            },
        },
    },
}


def analyze_bad(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(BAD_HOT)
    return analyze([path], root=tmp_path)


# --------------------------------------------------------------------- sarif
def test_sarif_validates_against_schema(tmp_path):
    result = analyze_bad(tmp_path)
    document = json.loads(render_sarif(result))
    jsonschema.validate(document, SARIF_SUBSET_SCHEMA)
    assert document["version"] == SARIF_VERSION
    assert document["$schema"] == SARIF_SCHEMA


def test_sarif_results_reference_driver_rules(tmp_path):
    result = analyze_bad(tmp_path)
    document = json.loads(render_sarif(result))
    run = document["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    ids = [r["id"] for r in rules]
    assert ids == sorted(ids) and len(set(ids)) == len(ids)
    assert "ledger-coverage" in ids and "rng-draw-parity" in ids
    assert len(run["results"]) == 1
    entry = run["results"][0]
    assert entry["ruleId"] == "hot-loop-alloc"
    assert ids[entry["ruleIndex"]] == entry["ruleId"]
    region = entry["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 5
    assert "np.zeros" in region["snippet"]["text"]


def test_sarif_parse_errors_become_notifications(tmp_path):
    (tmp_path / "broken.py").write_text("def nope(:\n")
    result = analyze([tmp_path], root=tmp_path)
    document = json.loads(render_sarif(result))
    jsonschema.validate(document, SARIF_SUBSET_SCHEMA)
    invocation = document["runs"][0]["invocations"][0]
    assert invocation["executionSuccessful"] is False
    notes = invocation["toolExecutionNotifications"]
    assert len(notes) == 1 and "broken.py" in notes[0]["message"]["text"]


def test_cli_writes_sarif_file(tmp_path, monkeypatch):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    fixture = tmp_path / "mod.py"
    fixture.write_text(BAD_HOT)
    out = tmp_path / "analysis.sarif"
    monkeypatch.chdir(tmp_path)
    code = main(
        ["--paths", str(fixture), "--sarif", str(out), "--no-baseline"]
    )
    assert code == 1  # the finding fails the run; the log is still written
    document = json.loads(out.read_text())
    jsonschema.validate(document, SARIF_SUBSET_SCHEMA)
    assert len(document["runs"][0]["results"]) == 1


# ------------------------------------------------------------ baseline prune
def test_baseline_prune_drops_stale_and_shrinks_overcounted():
    live = BaselineEntry(
        rule="hot-loop-alloc", file="mod.py", snippet="t = np.zeros(4)",
        count=2, justification="perf fix pending",
    )
    gone = BaselineEntry(
        rule="lock-blocking", file="other.py", snippet="q.get()",
        count=1, justification="was fixed",
    )
    from repro.analysis import Finding

    finding = Finding(
        file="mod.py", line=5, rule="hot-loop-alloc",
        message="m", snippet="t = np.zeros(4)",
    )
    pruned, removed = Baseline([live, gone]).prune([finding])
    assert [e.rule for e in pruned.entries] == ["hot-loop-alloc"]
    assert pruned.entries[0].count == 1  # shrunk from 2 to the live count
    assert {e.rule for e in removed} == {"hot-loop-alloc", "lock-blocking"}
    excess = next(e for e in removed if e.rule == "hot-loop-alloc")
    assert excess.count == 1


def test_cli_baseline_prune_end_to_end(tmp_path, monkeypatch, capsys):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    fixture = tmp_path / "mod.py"
    fixture.write_text(BAD_HOT)
    bpath = tmp_path / "baseline.json"
    Baseline([
        BaselineEntry(
            rule="hot-loop-alloc", file="mod.py",
            snippet="t = np.zeros(4)", justification="perf fix pending",
        ),
        BaselineEntry(
            rule="lock-blocking", file="gone.py", snippet="q.get()",
            justification="was fixed",
        ),
    ]).dump(bpath)
    monkeypatch.chdir(tmp_path)
    args = [
        "baseline", "--prune",
        "--paths", str(fixture), "--baseline", str(bpath),
    ]
    assert main(args) == 0
    kept = Baseline.load(bpath)
    assert [e.rule for e in kept.entries] == ["hot-loop-alloc"]
    assert "pruned" in capsys.readouterr().out
    # second run: nothing left to prune, file untouched
    before = bpath.read_text()
    assert main(args) == 0
    assert "already minimal" in capsys.readouterr().out
    assert bpath.read_text() == before


def test_cli_baseline_subcommand_requires_prune(tmp_path, monkeypatch):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    fixture = tmp_path / "mod.py"
    fixture.write_text("x = 1\n")
    monkeypatch.chdir(tmp_path)
    assert main(["baseline", "--paths", str(fixture)]) == 2


# -------------------------------------------------------------------- --diff
def git(*args, cwd):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=cwd, check=True, capture_output=True,
    )


@pytest.fixture
def git_repo(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    (tmp_path / "clean.py").write_text("x = 1\n")
    (tmp_path / "hot.py").write_text(BAD_HOT)
    git("init", "-q", cwd=tmp_path)
    git("add", "-A", cwd=tmp_path)
    git("commit", "-q", "-m", "seed", cwd=tmp_path)
    return tmp_path


def test_changed_files_reports_modified_and_untracked(git_repo):
    (git_repo / "hot.py").write_text(BAD_HOT + "\n")
    (git_repo / "new.py").write_text("y = 2\n")
    (git_repo / "notes.txt").write_text("not python\n")
    changed = changed_files(git_repo, "HEAD")
    assert changed == [git_repo / "hot.py", git_repo / "new.py"]


def test_changed_files_none_on_bad_ref(git_repo, tmp_path):
    assert changed_files(git_repo, "no-such-ref") is None


def test_cli_diff_analyzes_only_changed(git_repo, monkeypatch, capsys):
    monkeypatch.chdir(git_repo)
    base = ["--paths", str(git_repo), "--no-baseline"]
    # nothing changed: clean exit, no analysis
    assert main(["--diff", "HEAD", *base]) == 0
    assert "no analyzed files changed" in capsys.readouterr().out
    # touch the hot file: its finding comes back
    (git_repo / "hot.py").write_text(BAD_HOT + "\n")
    assert main(["--diff", "HEAD", *base]) == 1
    out = capsys.readouterr().out
    assert "hot.py" in out and "1 file(s) analyzed" in out


def test_cli_diff_bad_ref_falls_back_to_full_run(
    git_repo, monkeypatch, capsys
):
    monkeypatch.chdir(git_repo)
    code = main(
        ["--diff", "no-such-ref", "--paths", str(git_repo), "--no-baseline"]
    )
    assert code == 1
    captured = capsys.readouterr()
    assert "falling back to a full run" in captured.err
    assert "2 file(s) analyzed" in captured.out


# -------------------------------------------------- suppression diagnostics
def test_unknown_suppression_suggests_nearest_rule(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("x = 1  # analysis: ignore[lock-dicipline]\n")
    result = analyze([path], root=tmp_path)
    assert [f.rule for f in result.findings] == ["suppression"]
    message = result.findings[0].message
    assert "lock-dicipline" in message
    assert "did you mean 'lock-discipline'?" in message
