"""Property-based tests (hypothesis) on the core invariants.

The invariants that make FT-GEMM trustworthy, checked over generated
inputs rather than fixed examples:

1. the blocked GEMM equals the oracle for *any* shape/blocking combination;
2. packing is lossless for any geometry;
3. a clean protected run never reports errors (no false positives), for
   any well-formed input including extreme scalings;
4. any single above-threshold corruption is detected and the final result
   is right (no false negatives in the single-fault model);
5. checksum algebra identities hold for any matrices;
6. partitions always tile the index space exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive
from repro.gemm.blocking import BlockingConfig, iter_blocks
from repro.gemm.driver import BlockedGemm
from repro.gemm.packing import pack_a, pack_b, unpack_a, unpack_b
from repro.parallel.partition import partition_rows

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

dims = st.integers(min_value=1, max_value=30)
tile = st.integers(min_value=1, max_value=6)


def finite_matrix(rows, cols, scale_exp=0):
    return hnp.arrays(
        np.float64,
        (rows, cols),
        elements=st.floats(
            min_value=-1e3, max_value=1e3, allow_nan=False, width=64
        ).map(lambda x: x * 10.0**scale_exp),
    )


@COMMON
@given(m=dims, n=dims, k=dims, mc=tile, kc=tile, nc=tile, data=st.data())
def test_blocked_gemm_matches_oracle_any_blocking(m, n, k, mc, kc, nc, data):
    mr = data.draw(st.sampled_from([t for t in (1, 2, 3) if t <= mc]))
    nr = data.draw(st.integers(1, nc))
    mc_aligned = (mc // mr) * mr
    assume(mc_aligned >= mr)
    cfg = BlockingConfig(mc=mc_aligned, kc=kc, nc=nc, mr=mr, nr=nr)
    a = data.draw(finite_matrix(m, k))
    b = data.draw(finite_matrix(k, n))
    out = BlockedGemm(cfg).gemm(a, b)
    np.testing.assert_allclose(out, a @ b, rtol=1e-9, atol=1e-6)


@COMMON
@given(rows=dims, cols=dims, r=st.integers(1, 8), data=st.data())
def test_packing_lossless(rows, cols, r, data):
    block = data.draw(finite_matrix(rows, cols))
    assert np.array_equal(unpack_a(pack_a(block, r)), block)
    assert np.array_equal(unpack_b(pack_b(block, r)), block)


@COMMON
@given(
    m=st.integers(2, 25),
    n=st.integers(2, 25),
    k=st.integers(2, 25),
    row_exp=st.integers(-8, 8),
    col_exp=st.integers(-8, 8),
    data=st.data(),
)
def test_no_false_positives(m, n, k, row_exp, col_exp, data):
    """Property 3: clean runs verify clean for any scaling structure."""
    a = data.draw(finite_matrix(m, k, scale_exp=row_exp))
    b = data.draw(finite_matrix(k, n, scale_exp=col_exp))
    result = FTGemm(FTGemmConfig.small()).gemm(a, b)
    assert result.verified
    assert result.detected == 0
    assert result.clean_first_pass


@COMMON
@given(
    m=st.integers(4, 24),
    n=st.integers(4, 24),
    k=st.integers(4, 24),
    invocation=st.integers(0, 200),
    magnitude=st.floats(min_value=1.0, max_value=1e6),
    data=st.data(),
)
def test_single_fault_always_recovered(m, n, k, invocation, magnitude, data):
    """Property 4: one above-threshold kernel fault anywhere -> detected,
    repaired, final result correct."""
    a = data.draw(finite_matrix(m, k))
    b = data.draw(finite_matrix(k, n))
    assume(np.abs(a).max() > 1e-3 and np.abs(b).max() > 1e-3)
    ft = FTGemm(FTGemmConfig.small())
    from repro.faults.campaign import site_invocation_counts

    counts = site_invocation_counts(m, n, k, ft.ft_config.blocking)
    inj = FaultInjector(
        InjectionPlan.single(
            "microkernel",
            invocation % counts["microkernel"],
            model=Additive(magnitude=magnitude),
        )
    )
    result = ft.gemm(a, b, injector=inj)
    assert inj.n_injected == 1
    assert result.verified
    expected = a @ b
    scale = max(1.0, float(np.abs(expected).max()))
    assert np.abs(result.c - expected).max() < 1e-7 * scale


@COMMON
@given(m=dims, n=dims, k=dims, data=st.data())
def test_checksum_identities(m, n, k, data):
    """Property 5: eᵀ(AB) == (eᵀA)B and (AB)e == A(Be) up to round-off."""
    a = data.draw(finite_matrix(m, k))
    b = data.draw(finite_matrix(k, n))
    c = a @ b
    envelope = np.abs(a).sum(axis=0) @ np.abs(b) + 1.0
    assert np.all(
        np.abs(a.sum(axis=0) @ b - c.sum(axis=0)) <= 1e-12 * envelope + 1e-9
    )
    envelope_c = np.abs(a) @ np.abs(b).sum(axis=1) + 1.0
    assert np.all(
        np.abs(a @ b.sum(axis=1) - c.sum(axis=1)) <= 1e-12 * envelope_c + 1e-9
    )


@given(total=st.integers(0, 500), parts=st.integers(1, 32))
@settings(max_examples=100, deadline=None)
def test_partition_tiles_exactly(total, parts):
    """Property 6: partitions cover [0, total) exactly once, balanced."""
    part = partition_rows(total, parts)
    assert len(part) == parts
    covered = []
    for start, length in part:
        covered.extend(range(start, start + length))
    assert covered == list(range(total))
    lengths = [length for _, length in part]
    assert max(lengths) - min(lengths) <= 1


@given(total=st.integers(0, 1000), step=st.integers(1, 99))
@settings(max_examples=100, deadline=None)
def test_iter_blocks_tiles_exactly(total, step):
    blocks = list(iter_blocks(total, step))
    assert sum(length for _, length in blocks) == total
    for start, length in blocks:
        assert 1 <= length <= step or total == 0
    if blocks:
        assert blocks[-1][0] + blocks[-1][1] == total


@COMMON
@given(
    m=st.integers(2, 20),
    k=st.integers(2, 20),
    n=st.integers(2, 20),
    alpha=st.floats(min_value=-4, max_value=4),
    beta=st.floats(min_value=-4, max_value=4),
    data=st.data(),
)
def test_ft_gemm_alpha_beta_property(m, k, n, alpha, beta, data):
    assume(abs(alpha) > 1e-6)
    a = data.draw(finite_matrix(m, k))
    b = data.draw(finite_matrix(k, n))
    c0 = data.draw(finite_matrix(m, n))
    result = FTGemm(FTGemmConfig.small()).gemm(
        a, b, c0.copy(), alpha=alpha, beta=beta
    )
    assert result.verified
    expected = alpha * (a @ b) + beta * c0
    scale = max(1.0, float(np.abs(expected).max()))
    assert np.abs(result.c - expected).max() < 1e-9 * scale
