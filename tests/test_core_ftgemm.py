"""Serial FT-GEMM: clean-path correctness and fused accounting."""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.gemm.blocking import BlockingConfig
from repro.gemm.driver import BlockedGemm
from repro.gemm.reference import gemm_reference


@pytest.fixture
def ft(small_config):
    return FTGemm(small_config)


@pytest.mark.parametrize(
    "m,n,k",
    [(8, 12, 8), (37, 29, 23), (1, 1, 1), (5, 40, 17), (40, 5, 17), (16, 24, 3)],
)
def test_matches_oracle(ft, rng, m, n, k):
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    result = ft.gemm(a, b)
    assert result.verified
    assert result.clean_first_pass
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11, atol=1e-11)


@pytest.mark.parametrize("alpha,beta", [(1.0, 0.0), (2.0, 1.0), (-0.5, 0.75), (3.0, 0.0)])
def test_alpha_beta(ft, rng, alpha, beta):
    a = rng.standard_normal((19, 13))
    b = rng.standard_normal((13, 17))
    c0 = rng.standard_normal((19, 17))
    c = c0.copy()
    result = ft.gemm(a, b, c, alpha=alpha, beta=beta)
    assert result.c is c  # in-place contract
    assert result.verified
    np.testing.assert_allclose(
        result.c, gemm_reference(a, b, c0, alpha=alpha, beta=beta),
        rtol=1e-11, atol=1e-11,
    )


def test_no_false_positives_on_hard_workloads(small_config):
    """Ill-scaled and cancellation-heavy inputs must never trip verification
    — the central property of the tolerance theory."""
    from repro.bench.workloads import WORKLOADS

    ft = FTGemm(small_config)
    for workload in WORKLOADS.values():
        a, b = workload.operands(31, 27, 22, seed=13)
        result = ft.gemm(a, b)
        assert result.verified, workload.name
        assert result.clean_first_pass, workload.name
        assert result.detected == 0, workload.name


def test_ft_disabled_same_numbers_no_reports(small_config, rng):
    a = rng.standard_normal((23, 21))
    b = rng.standard_normal((21, 19))
    ori = FTGemm(small_config.with_(enable_ft=False))
    result = ori.gemm(a, b)
    assert not result.ft_enabled
    assert result.reports == []
    assert result.counters.checksum_flops == 0
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11)


def test_matches_plain_blocked_bitwise(small_config, rng):
    """Fusing checksum ops must not change the GEMM arithmetic at all."""
    a = rng.standard_normal((25, 18))
    b = rng.standard_normal((18, 31))
    ft_out = FTGemm(small_config).gemm(a, b).c
    plain_out = BlockedGemm(small_config.blocking).gemm(a, b)
    np.testing.assert_array_equal(ft_out, plain_out)


def test_counters_fused_accounting(ft, rng):
    a = rng.standard_normal((24, 16))
    b = rng.standard_normal((16, 24))
    result = ft.gemm(a, b)
    counters = result.counters
    assert counters.fma_flops > 0
    assert counters.checksum_flops > 0
    # the fused scheme's defining property: zero extra FT memory traffic
    assert counters.ft_extra_bytes == 0
    # checksum work is O(n^2)-ish, far below the O(n^3) product
    assert counters.checksum_flops < 0.75 * counters.fma_flops
    assert counters.verifications == 1


def test_counters_reset_per_call(ft, rng):
    a = rng.standard_normal((10, 10))
    ft.gemm(a, a)
    first = ft.counters.fma_flops
    ft.gemm(a, a)
    assert ft.counters.fma_flops == first  # not accumulated across calls


def test_instance_reusable(ft, rng):
    for seed in range(3):
        r = np.random.default_rng(seed)
        a = r.standard_normal((15, 12))
        b = r.standard_normal((12, 18))
        result = ft.gemm(a, b)
        assert result.verified
        np.testing.assert_allclose(result.c, a @ b, rtol=1e-11)


def test_eager_mode_clean_run(rng):
    cfg = FTGemmConfig(blocking=BlockingConfig.small(), verify_mode="eager")
    ft = FTGemm(cfg)
    a = rng.standard_normal((20, 33))  # several K-blocks at kc=8
    b = rng.standard_normal((33, 20))
    result = ft.gemm(a, b)
    assert result.verified
    # eager probes ran (extra verifications beyond the final one)
    assert result.counters.verifications > 1
    assert result.counters.ft_extra_bytes > 0  # the probe passes cost memory


def test_eager_mode_flags_early_corruption(rng):
    cfg = FTGemmConfig(blocking=BlockingConfig.small(), verify_mode="eager")
    ft = FTGemm(cfg)
    a = rng.standard_normal((20, 33))
    b = rng.standard_normal((33, 20))

    from repro.faults.injector import FaultInjector, InjectionPlan
    from repro.faults.models import Additive

    inj = FaultInjector(
        InjectionPlan.single("microkernel", 0, model=Additive(magnitude=40.0))
    )
    result = ft.gemm(a, b, injector=inj)
    assert result.verified
    eager = [r for r in result.reports if r.round_index < 0]
    assert eager, "eager probe should have flagged the first-K-block fault"
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


def test_default_blocking_large_call(rng):
    """Paper-sized blocking on a matrix smaller than one block."""
    ft = FTGemm()  # MC=192, KC=384, NC=9216
    a = rng.standard_normal((100, 80))
    b = rng.standard_normal((80, 120))
    result = ft.gemm(a, b)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11)


def test_on_tile_observer_still_called(ft, rng):
    calls = []
    a = rng.standard_normal((8, 8))
    ft.gemm(a, a, on_tile=lambda tile, i0, j0: calls.append((i0, j0)))
    assert calls
