"""AVX-512 FMA pipeline cost model."""

import pytest

from repro.simcpu.machine import MachineSpec
from repro.simcpu.vector import VectorUnit
from repro.util.errors import ConfigError


@pytest.fixture
def vu() -> VectorUnit:
    return VectorUnit(MachineSpec.cascade_lake_w2255())


def test_accumulator_count(vu):
    # the classic 16x14 DGEMM tile: ceil(16/8) * 14 = 28 accumulators
    assert vu.accumulators(16, 14) == 28
    assert vu.accumulators(8, 6) == 6
    assert vu.accumulators(9, 6) == 12  # ragged mr rounds up


def test_register_budget(vu):
    # 16x14 exactly fills the 32 zmm registers: 28 + 2 A + 2 B
    assert vu.registers_needed(16, 14) == 32
    vu.check_tile(16, 14)


def test_spilling_tile_rejected(vu):
    with pytest.raises(ConfigError, match="spill"):
        vu.check_tile(32, 14)


def test_tile_efficiency_saturates(vu):
    # 28 accumulators >> latency(4) * ports(2): full throughput
    assert vu.tile_efficiency(16, 14) == 1.0
    # 1x1 tile: a single accumulator cannot hide 4-cycle latency on 2 ports
    assert vu.tile_efficiency(1, 1) == pytest.approx(1 / 8)


def test_microkernel_cost_scales_linearly_in_k(vu):
    c1 = vu.microkernel_cost(16, 14, 128)
    c2 = vu.microkernel_cost(16, 14, 256)
    # doubling k roughly doubles cycles (constant ramp aside)
    assert c2.cycles / c1.cycles == pytest.approx(2.0, rel=0.05)
    assert c2.fma_issues == 2 * c1.fma_issues


def test_microkernel_cost_counts_issues(vu):
    cost = vu.microkernel_cost(16, 14, 10)
    assert cost.fma_issues == 2 * 14 * 10  # 2 a-vectors x nr x k
    assert cost.registers_used == 32


def test_gemm_compute_cycles_edge_tiles(vu):
    # edge rows/cols cost extra: 17 rows need 3 panels where 16 needs 2...
    full = vu.gemm_compute_cycles(16, 14, 64, 16, 14)
    ragged = vu.gemm_compute_cycles(17, 15, 64, 16, 14)
    assert ragged > full
    # ...but not more than one extra panel strip in each dimension
    bigger = vu.gemm_compute_cycles(32, 28, 64, 16, 14)
    assert ragged < bigger


def test_gemm_compute_cycles_peak_rate(vu):
    # large GEMM approaches peak: cycles -> flops / 32
    m = n = k = 512
    cycles = vu.gemm_compute_cycles(m, n, k, 16, 14)
    flops = 2 * m * n * k
    achieved = flops / cycles
    assert achieved == pytest.approx(32.0, rel=0.12)
    assert achieved <= 32.0 + 1e-9


def test_flops_to_cycles(vu):
    assert vu.flops_to_cycles(3200) == pytest.approx(100.0)
    assert vu.flops_to_cycles(3200, efficiency=0.5) == pytest.approx(200.0)
    with pytest.raises(ConfigError):
        vu.flops_to_cycles(100, efficiency=0.0)


def test_invalid_inputs(vu):
    with pytest.raises(ConfigError):
        vu.microkernel_cost(16, 14, 0)
    with pytest.raises(ConfigError):
        vu.check_tile(0, 4)
    with pytest.raises(ConfigError):
        vu.gemm_compute_cycles(0, 4, 4, 16, 14)
