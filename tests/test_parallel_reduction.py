"""Cross-thread checksum reductions."""

import numpy as np
import pytest

from repro.parallel.reduction import reduce_partials, tree_reduce
from repro.util.errors import ShapeError


@pytest.fixture
def partials(rng):
    return [rng.standard_normal(16) for _ in range(5)]


def test_reduce_sums(partials):
    out = reduce_partials(partials)
    np.testing.assert_allclose(out, np.sum(partials, axis=0), rtol=1e-14)


def test_reduce_into_out_buffer(partials):
    out = np.full(16, 9.0)  # stale contents must be overwritten
    result = reduce_partials(partials, out=out)
    assert result is out
    np.testing.assert_allclose(out, np.sum(partials, axis=0), rtol=1e-14)


def test_reduce_single_partial(partials):
    np.testing.assert_array_equal(reduce_partials(partials[:1]), partials[0])


def test_reduce_empty_rejected():
    with pytest.raises(ShapeError):
        reduce_partials([])


def test_reduce_shape_mismatch(partials):
    with pytest.raises(ShapeError):
        reduce_partials(partials + [np.zeros(4)])


def test_reduce_out_shape_mismatch(partials):
    with pytest.raises(ShapeError):
        reduce_partials(partials, out=np.zeros(4))


def test_tree_matches_sequential_within_roundoff(partials):
    seq = reduce_partials(partials)
    tree = tree_reduce(partials)
    np.testing.assert_allclose(tree, seq, rtol=1e-12)


def test_tree_does_not_mutate_inputs(partials):
    copies = [p.copy() for p in partials]
    tree_reduce(partials)
    for p, c in zip(partials, copies):
        np.testing.assert_array_equal(p, c)


def test_tree_odd_count():
    parts = [np.full(3, float(i)) for i in range(7)]
    np.testing.assert_array_equal(tree_reduce(parts), np.full(3, 21.0))


def test_tree_empty_rejected():
    with pytest.raises(ShapeError):
        tree_reduce([])
