"""Checksum encodings and the Huang–Abraham algebra."""

import numpy as np
import pytest

from repro.abft.checksum import (
    col_checksum,
    encode_full,
    row_checksum,
    strip_full,
    weighted_col_checksum,
    weighted_row_checksum,
    weights,
)
from repro.util.errors import ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(6)


def test_row_checksum_is_column_sums(rng):
    x = rng.standard_normal((4, 7))
    np.testing.assert_allclose(row_checksum(x), x.sum(axis=0))
    assert row_checksum(x).shape == (7,)


def test_col_checksum_is_row_sums(rng):
    x = rng.standard_normal((4, 7))
    np.testing.assert_allclose(col_checksum(x), x.sum(axis=1))
    assert col_checksum(x).shape == (4,)


def test_checksum_gemm_algebra(rng):
    """The identity FT-GEMM rests on: (e^T A)B = e^T(AB), A(Be) = (AB)e."""
    a = rng.standard_normal((5, 4))
    b = rng.standard_normal((4, 6))
    c = a @ b
    np.testing.assert_allclose(row_checksum(a) @ b, row_checksum(c), rtol=1e-12)
    np.testing.assert_allclose(a @ col_checksum(b), col_checksum(c), rtol=1e-12)


def test_weights_vector():
    np.testing.assert_array_equal(weights(4), [1.0, 2.0, 3.0, 4.0])
    with pytest.raises(ShapeError):
        weights(0)


def test_weighted_checksums_localize(rng):
    """The weighted/plain residual ratio reveals the corrupted index."""
    x = rng.standard_normal((6, 5))
    plain = row_checksum(x)
    weighted = weighted_row_checksum(x)
    x_bad = x.copy()
    x_bad[3, 2] += 10.0
    d_plain = row_checksum(x_bad) - plain
    d_weighted = weighted_row_checksum(x_bad) - weighted
    # only column 2 moved; the ratio identifies row 3 (weight = index + 1)
    assert np.argmax(np.abs(d_plain)) == 2
    assert d_weighted[2] / d_plain[2] == pytest.approx(4.0, abs=1e-9)


def test_weighted_col_checksum(rng):
    x = rng.standard_normal((3, 4))
    np.testing.assert_allclose(weighted_col_checksum(x), x @ weights(4))


def test_encode_full_layout(rng):
    x = rng.standard_normal((3, 4))
    full = encode_full(x)
    assert full.shape == (4, 5)
    np.testing.assert_allclose(full[3, :4], x.sum(axis=0))
    np.testing.assert_allclose(full[:3, 4], x.sum(axis=1))
    assert full[3, 4] == pytest.approx(x.sum())


def test_full_checksum_product_closed(rng):
    """The product of encoded matrices is the full-checksum form of the
    product — Huang & Abraham's theorem, the basis of the offline scheme."""
    a = rng.standard_normal((4, 3))
    b = rng.standard_normal((3, 5))
    a_enc = np.vstack([a, row_checksum(a)])
    b_enc = np.hstack([b, col_checksum(b)[:, None]])
    full = a_enc @ b_enc
    np.testing.assert_allclose(full, encode_full(a @ b), rtol=1e-11, atol=1e-12)


def test_strip_full_roundtrip(rng):
    x = rng.standard_normal((3, 4))
    np.testing.assert_array_equal(strip_full(encode_full(x)), x)


def test_strip_full_too_small():
    with pytest.raises(ShapeError):
        strip_full(np.zeros((1, 5)))


def test_checksums_reject_non_2d():
    with pytest.raises(ShapeError):
        row_checksum(np.zeros(3))
    with pytest.raises(ShapeError):
        weighted_col_checksum(np.zeros(3))
