"""Set-associative LRU cache simulator."""

import pytest

from repro.simcpu.cache import CacheHierarchy, CacheSim
from repro.simcpu.machine import CacheSpec, MachineSpec
from repro.simcpu.trace import MemoryAccess
from repro.util.errors import SimulationError


def direct_mapped(n_lines: int = 4, line: int = 64) -> CacheSim:
    return CacheSim(CacheSpec(1, n_lines * line, line, 1, 1, 8.0))


def fully_assoc(n_lines: int = 4, line: int = 64) -> CacheSim:
    return CacheSim(CacheSpec(1, n_lines * line, line, n_lines, 1, 8.0))


def test_cold_miss_then_hit():
    c = fully_assoc()
    hit, _ = c.access_line(0, write=False)
    assert not hit
    hit, _ = c.access_line(0, write=False)
    assert hit
    assert c.counters.accesses == 2
    assert c.counters.hits == 1
    assert c.counters.misses == 1


def test_lru_eviction_order():
    c = fully_assoc(n_lines=2)
    c.access_line(0, False)
    c.access_line(1, False)
    c.access_line(0, False)  # 0 becomes MRU; 1 is now LRU
    c.access_line(2, False)  # evicts 1
    hit, _ = c.access_line(0, False)
    assert hit
    hit, _ = c.access_line(1, False)
    assert not hit


def test_dirty_eviction_counts_writeback():
    c = fully_assoc(n_lines=1)
    c.access_line(0, write=True)
    _, evicted_dirty = c.access_line(1, write=False)
    assert evicted_dirty
    assert c.counters.writebacks == 1


def test_clean_eviction_no_writeback():
    c = fully_assoc(n_lines=1)
    c.access_line(0, write=False)
    c.access_line(1, write=False)
    assert c.counters.evictions == 1
    assert c.counters.writebacks == 0


def test_direct_mapped_conflicts():
    c = direct_mapped(n_lines=4)
    # lines 0 and 4 map to the same set in a 4-set direct-mapped cache
    c.access_line(0, False)
    c.access_line(4, False)
    hit, _ = c.access_line(0, False)
    assert not hit  # conflict-evicted despite plenty of total capacity


def test_bulk_access_spans_lines():
    c = fully_assoc(n_lines=8)
    misses = c.access(MemoryAccess(addr=0, size=256))  # 4 lines of 64B
    assert misses == 4
    assert c.resident_lines() == 4


def test_bulk_access_partial_lines():
    c = fully_assoc(n_lines=8)
    # 1 byte touching the tail of line 0 and crossing into line 1
    misses = c.access(MemoryAccess(addr=63, size=2))
    assert misses == 2


def test_contains_and_reset():
    c = fully_assoc()
    c.access(MemoryAccess(addr=128, size=8))
    assert c.contains(128)
    c.reset()
    assert not c.contains(128)
    assert c.counters.accesses == 0


def test_hierarchy_miss_propagation():
    machine = MachineSpec.small_test_machine()
    h = CacheHierarchy.from_machine(machine)
    h.access(MemoryAccess(addr=0, size=64))
    # cold miss at every level, one DRAM line
    assert h.levels[0].counters.misses == 1
    assert h.levels[1].counters.misses == 1
    assert h.levels[2].counters.misses == 1
    assert h.mem_lines == 1
    # re-access: L1 hit, deeper levels untouched
    h.access(MemoryAccess(addr=0, size=64))
    assert h.levels[0].counters.hits == 1
    assert h.levels[1].counters.accesses == 1
    assert h.mem_lines == 1


def test_hierarchy_mem_bytes():
    machine = MachineSpec.small_test_machine()
    h = CacheHierarchy.from_machine(machine)
    h.access(MemoryAccess(addr=0, size=64 * 10))
    assert h.mem_bytes == 64 * 10


def test_hierarchy_working_set_larger_than_l1():
    machine = MachineSpec.small_test_machine()  # L1 = 1 KiB = 16 lines
    h = CacheHierarchy.from_machine(machine)
    lines = 32  # 2 KiB working set: fits L2, overflows L1
    for _ in range(4):
        for i in range(lines):
            h._access_line(i, write=False)
    rates = h.miss_rates()
    assert rates[1] == 1.0  # streaming through a too-small L1: all misses
    assert rates[2] < 0.3  # but L2 holds the whole set after the cold pass
    assert h.mem_lines == lines  # DRAM touched only for the cold misses


def test_hierarchy_rejects_empty():
    with pytest.raises(SimulationError):
        CacheHierarchy([])


def test_hierarchy_rejects_mixed_line_sizes():
    a = CacheSim(CacheSpec(1, 1024, 64, 2, 1, 8.0))
    b = CacheSim(CacheSpec(2, 2048, 32, 2, 1, 8.0))
    with pytest.raises(SimulationError):
        CacheHierarchy([a, b])


def test_replay_list():
    machine = MachineSpec.small_test_machine()
    h = CacheHierarchy.from_machine(machine)
    h.replay([MemoryAccess(0, 64), MemoryAccess(64, 64)])
    assert h.levels[0].counters.accesses == 2
