"""Table and unit formatting."""

import math

import pytest

from repro.util.formatting import (
    format_bytes,
    format_gflops,
    format_percent,
    format_seconds,
    format_table,
)


def test_format_gflops_width_and_nan():
    assert format_gflops(102.35).strip() == "102.3"
    assert "n/a" in format_gflops(float("nan"))


def test_format_percent():
    assert format_percent(0.0294) == "+2.94%"
    assert format_percent(-0.05) == "-5.00%"
    assert format_percent(0.1, signed=False) == "10.00%"
    assert format_percent(float("nan")) == "n/a"


def test_format_seconds_scales():
    assert format_seconds(2.5e-9).endswith("ns")
    assert format_seconds(3.2e-6).endswith("us")
    assert format_seconds(4.5e-3).endswith("ms")
    assert format_seconds(1.5).endswith("s")
    assert format_seconds(float("nan")) == "n/a"


def test_format_bytes_scales():
    assert format_bytes(512) == "512.0B"
    assert format_bytes(2048) == "2.0KiB"
    assert format_bytes(3 * 1024**2) == "3.0MiB"
    assert format_bytes(1024**3) == "1.0GiB"


def test_format_table_alignment():
    out = format_table(["name", "val"], [["a", "1"], ["long", "22"]])
    lines = out.splitlines()
    assert len(lines) == 4  # header, rule, 2 rows
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines equal width


def test_format_table_title():
    out = format_table(["x"], [["1"]], title="T")
    assert out.splitlines()[0] == "T"


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError, match="cells"):
        format_table(["a", "b"], [["only-one"]])


def test_format_table_stringifies():
    out = format_table(["n"], [[math.pi]])
    assert "3.14" in out
