"""Fault models."""

import numpy as np
import pytest

from repro.faults.models import Additive, BitFlip, Scaling, StuckValue, default_model
from repro.util.errors import ConfigError


@pytest.fixture
def rng():
    return np.random.default_rng(9)


def test_bitflip_pinned_bit_is_involution(rng):
    model = BitFlip(bit=51)
    x = 3.14159
    y = model.apply(x, rng)
    assert y != x
    assert model.apply(y, rng) == x  # flipping twice restores


def test_bitflip_sign_bit(rng):
    assert BitFlip(bit=63).apply(2.5, rng) == -2.5


def test_bitflip_mantissa_lsb_tiny(rng):
    x = 1.0
    y = BitFlip(bit=0).apply(x, rng)
    assert y != x
    assert abs(y - x) < 1e-15


def test_bitflip_random_bit_in_range(rng):
    model = BitFlip(bit_range=(52, 61))  # exponent bits below the top one
    x = 1.0  # zero mantissa: every exponent flip is a clean power of two
    seen = set()
    for _ in range(20):
        y = model.apply(x, rng)
        ratio = abs(y / x)
        assert ratio != 1.0
        assert np.log2(ratio) == pytest.approx(round(np.log2(ratio)))
        seen.add(y)
    assert len(seen) > 1  # the bit really is drawn at random


def test_bitflip_can_produce_nonfinite(rng):
    # setting the top exponent bit of 1.5 (exponent 0x3FF) lands on the
    # all-ones exponent with a nonzero mantissa: NaN — fail-continue must
    # pass it through
    y = BitFlip(bit=62).apply(1.5, rng)
    assert not np.isfinite(y)
    # with a zero mantissa the same flip yields inf
    assert BitFlip(bit=62).apply(1.0, rng) == np.inf


def test_bitflip_validation():
    with pytest.raises(ConfigError):
        BitFlip(bit=64)
    with pytest.raises(ConfigError):
        BitFlip(bit_range=(10, 99))


def test_additive(rng):
    assert Additive(magnitude=2.5).apply(1.0, rng) == 3.5
    with pytest.raises(ConfigError):
        Additive(magnitude=0.0)


def test_stuck(rng):
    assert StuckValue(value=0.0).apply(123.0, rng) == 0.0


def test_scaling(rng):
    assert Scaling(factor=2.0).apply(3.0, rng) == 6.0
    with pytest.raises(ConfigError):
        Scaling(factor=1.0)


def test_default_model_is_high_impact_bitflip():
    model = default_model()
    assert isinstance(model, BitFlip)
    assert model.bit_range[0] >= 40  # detectable region


def test_describe():
    assert BitFlip().describe() == "bitflip"
    assert Additive(magnitude=1.0).describe() == "additive"
