"""Fault models."""

import numpy as np
import pytest

from repro.faults.models import (
    Additive,
    BitFlip,
    ColBurst,
    FailStop,
    RowBurst,
    Scaling,
    StuckBit,
    StuckValue,
    default_model,
)
from repro.util.errors import ConfigError


@pytest.fixture
def rng():
    return np.random.default_rng(9)


def test_bitflip_pinned_bit_is_involution(rng):
    model = BitFlip(bit=51)
    x = 3.14159
    y = model.apply(x, rng)
    assert y != x
    assert model.apply(y, rng) == x  # flipping twice restores


def test_bitflip_sign_bit(rng):
    assert BitFlip(bit=63).apply(2.5, rng) == -2.5


def test_bitflip_mantissa_lsb_tiny(rng):
    x = 1.0
    y = BitFlip(bit=0).apply(x, rng)
    assert y != x
    assert abs(y - x) < 1e-15


def test_bitflip_random_bit_in_range(rng):
    model = BitFlip(bit_range=(52, 61))  # exponent bits below the top one
    x = 1.0  # zero mantissa: every exponent flip is a clean power of two
    seen = set()
    for _ in range(20):
        y = model.apply(x, rng)
        ratio = abs(y / x)
        assert ratio != 1.0
        assert np.log2(ratio) == pytest.approx(round(np.log2(ratio)))
        seen.add(y)
    assert len(seen) > 1  # the bit really is drawn at random


def test_bitflip_can_produce_nonfinite(rng):
    # setting the top exponent bit of 1.5 (exponent 0x3FF) lands on the
    # all-ones exponent with a nonzero mantissa: NaN — fail-continue must
    # pass it through
    y = BitFlip(bit=62).apply(1.5, rng)
    assert not np.isfinite(y)
    # with a zero mantissa the same flip yields inf
    assert BitFlip(bit=62).apply(1.0, rng) == np.inf


def test_bitflip_validation():
    with pytest.raises(ConfigError):
        BitFlip(bit=64)
    with pytest.raises(ConfigError):
        BitFlip(bit_range=(10, 99))


def test_additive(rng):
    assert Additive(magnitude=2.5).apply(1.0, rng) == 3.5
    with pytest.raises(ConfigError):
        Additive(magnitude=0.0)


def test_stuck(rng):
    assert StuckValue(value=0.0).apply(123.0, rng) == 0.0


def test_scaling(rng):
    assert Scaling(factor=2.0).apply(3.0, rng) == 6.0
    with pytest.raises(ConfigError):
        Scaling(factor=1.0)


def test_default_model_is_high_impact_bitflip():
    model = default_model()
    assert isinstance(model, BitFlip)
    assert model.bit_range[0] >= 40  # detectable region


def test_describe():
    assert BitFlip().describe() == "bitflip"
    assert Additive(magnitude=1.0).describe() == "additive"


# ------------------------------------------------------- persistent models


def test_stuckbit_is_persistent_and_idempotent(rng):
    model = StuckBit(bit=52, stuck_at=0)
    assert model.persistent
    x = 1.5  # exponent 0x3FF: bit 52 is set
    y = model.apply(x, rng)
    assert y != x
    # a stuck bit is idempotent, not an involution: re-applying changes nothing
    assert model.apply(y, rng) == y
    assert model.reapply(y) == y
    assert model.reapply(x) == y


def test_stuckbit_stuck_at_level_respected(rng):
    x = 1.5
    raw = np.float64(x).view(np.uint64)
    forced_1 = StuckBit(bit=54, stuck_at=1).apply(x, rng)
    forced_0 = StuckBit(bit=54, stuck_at=0).apply(x, rng)
    assert np.float64(forced_1).view(np.uint64) & np.uint64(1 << 54)
    assert not np.float64(forced_0).view(np.uint64) & np.uint64(1 << 54)
    # exactly one of the two levels matches the original value's bit
    assert (forced_1 == x) != (forced_0 == x)
    assert raw in (
        np.float64(forced_1).view(np.uint64),
        np.float64(forced_0).view(np.uint64),
    )


def test_stuckbit_validation():
    with pytest.raises(ConfigError):
        StuckBit(bit=64)
    with pytest.raises(ConfigError):
        StuckBit(stuck_at=2)


def test_transient_models_are_not_persistent():
    for model in (BitFlip(), Additive(magnitude=1.0), StuckValue(value=0.0)):
        assert not model.persistent


# ------------------------------------------------------------ burst models


def test_rowburst_strikes_a_run_along_the_row(rng):
    array = np.ones((6, 10))
    touched = RowBurst(width=4).strike(array, (2, 3), rng)
    assert [idx for idx, _, _ in touched] == [(2, 3), (2, 4), (2, 5), (2, 6)]
    assert all(new != old for _, old, new in touched)
    # untouched elements stay exactly 1.0
    mask = np.ones_like(array, dtype=bool)
    mask[2, 3:7] = False
    assert np.all(array[mask] == 1.0)


def test_colburst_strikes_a_run_down_the_column(rng):
    array = np.ones((8, 5))
    touched = ColBurst(width=3).strike(array, (1, 4), rng)
    assert [idx for idx, _, _ in touched] == [(1, 4), (2, 4), (3, 4)]


def test_burst_clips_at_the_array_edge(rng):
    array = np.ones((4, 6))
    touched = RowBurst(width=4).strike(array, (0, 4), rng)
    assert len(touched) == 2  # columns 4, 5 only


def test_burst_on_1d_array_follows_the_flat_axis(rng):
    array = np.ones(12)
    for model in (RowBurst(width=3), ColBurst(width=3)):
        work = array.copy()
        touched = model.strike(work, (5,), rng)
        assert [idx for idx, _, _ in touched] == [(5,), (6,), (7,)]


def test_burst_bits_are_independent(rng):
    """Each element of the run takes its own flip — a burst is not one
    pattern stamped ``width`` times."""
    array = np.full(16, 1.0)
    touched = RowBurst(width=8).strike(array, (0,), rng)
    deltas = {new - old for _, old, new in touched}
    assert len(deltas) > 1


def test_burst_validation():
    with pytest.raises(ConfigError):
        RowBurst(width=1)
    with pytest.raises(ConfigError):
        ColBurst(bit_range=(10, 99))


# -------------------------------------------------------------- fail-stop


def test_failstop_is_pure_schedule_metadata(rng):
    stop = FailStop(thread=1, barrier=3)
    assert stop.apply(7.25, rng) == 7.25  # no data corruption
    assert not stop.persistent
    assert stop.describe() == "failstop"


def test_failstop_validation():
    with pytest.raises(ConfigError):
        FailStop(thread=-1)
    with pytest.raises(ConfigError):
        FailStop(barrier=-2)
