"""TuningDB persistence: round-trips, byte stability, fingerprint and
version invalidation, shape bucketing, TunedConfig validation."""

import json

import numpy as np
import pytest

from repro.gemm.blocking import BlockingConfig
from repro.simcpu.machine import MachineSpec
from repro.tune.db import (
    SCHEMA_VERSION,
    TunedConfig,
    TuningDB,
    machine_fingerprint,
    shape_bucket,
)
from repro.util.errors import ConfigError


def _db(tmp_path, machine=None):
    machine = machine or MachineSpec.cascade_lake_w2255()
    return TuningDB.for_machine(machine, path=tmp_path / "tune_db.json")


def _tuned(**kwargs):
    kwargs.setdefault("mc", 16)
    kwargs.setdefault("kc", 16)
    kwargs.setdefault("nc", 32)
    kwargs.setdefault("mr", 4)
    kwargs.setdefault("nr", 4)
    return TunedConfig(**kwargs)


# ---------------------------------------------------------------- bucketing
def test_shape_bucket_rounds_up_to_powers_of_two():
    assert shape_bucket(96, 48, 24) == "m128n64k32"
    assert shape_bucket(128, 64, 32) == "m128n64k32"  # exact powers stay
    assert shape_bucket(1, 1, 1) == "m1n1k1"
    assert shape_bucket(129, 65, 33) == "m256n128k64"


def test_nearby_shapes_share_a_bucket():
    assert shape_bucket(100, 50, 20) == shape_bucket(96, 48, 24)


# ---------------------------------------------------------------- round-trip
def test_save_load_round_trip_is_byte_stable(tmp_path):
    db = _db(tmp_path)
    db.put(96, 48, 24, _tuned(measured_gflops=1.25))
    db.put(16, 48, 24, _tuned(mc=8, kc=8, nc=16, source="static"))
    db.save()
    loaded = TuningDB.load(db.path, machine=MachineSpec.cascade_lake_w2255())
    assert not loaded.stale
    assert len(loaded) == len(db) == 2
    assert loaded.to_json() == db.to_json()  # byte-for-byte
    # and saving the loaded copy changes nothing on disk
    before = db.path.read_bytes()
    loaded.save(db.path)
    assert db.path.read_bytes() == before


def test_resolve_after_load_returns_equal_config(tmp_path):
    db = _db(tmp_path)
    tuned = _tuned(coalesce_limit=4, measured_gflops=2.0)
    db.put(96, 48, 24, tuned)
    db.save()
    loaded = TuningDB.load(db.path, machine=MachineSpec.cascade_lake_w2255())
    resolved = loaded.resolve(100, 50, 20)  # same bucket, different shape
    assert resolved == tuned
    assert loaded.resolve(9999, 50, 20) is None  # different bucket


def test_load_missing_or_corrupt_raises_config_error(tmp_path):
    with pytest.raises(ConfigError):
        TuningDB.load(tmp_path / "absent.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ConfigError):
        TuningDB.load(bad)


# -------------------------------------------------------------- invalidation
def test_fingerprint_mismatch_marks_db_stale(tmp_path):
    db = _db(tmp_path)
    db.put(96, 48, 24, _tuned())
    db.save()
    other = MachineSpec.small_test_machine()
    loaded = TuningDB.load(db.path, machine=other)
    assert loaded.stale
    assert "fingerprint" in loaded.stale_reason
    # entries are still readable (for `tune show`) but never served
    assert len(loaded) == 1
    assert loaded.resolve(96, 48, 24) is None


def test_version_mismatch_marks_db_stale(tmp_path):
    db = _db(tmp_path)
    db.put(96, 48, 24, _tuned())
    db.save()
    payload = json.loads(db.path.read_text())
    payload["version"] = SCHEMA_VERSION + 1
    db.path.write_text(json.dumps(payload))
    loaded = TuningDB.load(db.path, machine=MachineSpec.cascade_lake_w2255())
    assert loaded.stale
    assert "version" in loaded.stale_reason
    assert loaded.resolve(96, 48, 24) is None


def test_fingerprint_is_stable_and_machine_sensitive():
    cascade = MachineSpec.cascade_lake_w2255()
    assert machine_fingerprint(cascade) == machine_fingerprint(
        MachineSpec.cascade_lake_w2255()
    )
    assert machine_fingerprint(cascade) != machine_fingerprint(
        MachineSpec.small_test_machine()
    )


# -------------------------------------------------------------- TunedConfig
def test_tuned_config_validates_at_construction():
    with pytest.raises(ConfigError, match="multiple"):
        TunedConfig(mc=10, kc=8, nc=16, mr=4, nr=4)
    with pytest.raises(ConfigError):
        _tuned(threads=0)
    with pytest.raises(ConfigError):
        _tuned(coalesce_limit=-1)


def test_tuned_config_dict_round_trip_filters_unknown_fields():
    tuned = _tuned(dispatch="tile", threads=2, coalesce_limit=4)
    data = tuned.to_dict()
    data["future_field"] = "ignored"  # forward compatibility
    assert TunedConfig.from_dict(data) == tuned


def test_tuned_config_accepts_numpy_integers():
    tuned = TunedConfig(
        mc=np.int64(16), kc=np.int64(16), nc=np.int64(32), mr=4, nr=4
    )
    blocking = tuned.blocking()
    assert isinstance(blocking.mc, int) and blocking.mc == 16


def test_from_blocking_marks_source_static():
    tuned = TunedConfig.from_blocking(BlockingConfig.small(), threads=2)
    assert tuned.source == "static"
    assert tuned.threads == 2
    assert tuned.blocking() == BlockingConfig.small()
