"""Admission queue: backpressure policies, ordering, deadlines, closing."""

import threading
import time

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import AdmissionQueue, GemmRequest
from repro.util.errors import ConfigError, ShapeError


def _request(priority=0, deadline_s=None, m=4, k=6, n=5, b=None):
    rng = np.random.default_rng(0)
    return GemmRequest(
        rng.standard_normal((m, k)),
        rng.standard_normal((k, n)) if b is None else b,
        priority=priority,
        deadline_s=deadline_s,
    )


# ----------------------------------------------------------- request basics
def test_request_validates_shapes():
    rng = np.random.default_rng(0)
    with pytest.raises(ShapeError):
        GemmRequest(rng.standard_normal((4, 3)), rng.standard_normal((5, 2)))
    with pytest.raises(ShapeError):
        GemmRequest(rng.standard_normal(4), rng.standard_normal((4, 2)))


def test_request_beta_requires_c0():
    rng = np.random.default_rng(0)
    with pytest.raises(ConfigError, match="beta"):
        GemmRequest(rng.standard_normal((2, 3)),
                    rng.standard_normal((3, 2)), beta=0.5)


def test_request_bucket_keys_on_shared_b():
    rng = np.random.default_rng(0)
    b = rng.standard_normal((6, 5))
    r1, r2 = _request(b=b), _request(b=b)
    assert r1.bucket() == r2.bucket()
    r3 = _request()  # private B
    assert r1.bucket() != r3.bucket()
    r4 = GemmRequest(rng.standard_normal((4, 6)), b, alpha=2.0)
    assert r4.bucket() != r1.bucket()  # scalars matter


def test_request_rejects_bad_scheme_and_deadline():
    with pytest.raises(ConfigError, match="scheme"):
        _request().__class__(
            np.zeros((2, 3)), np.zeros((3, 2)), scheme="parity"
        )
    with pytest.raises(ConfigError, match="deadline"):
        _request(deadline_s=0.0)


# -------------------------------------------------------------------- queue
def test_fifo_within_priority_and_priority_first():
    q = AdmissionQueue(capacity=8)
    low1, low2 = _request(priority=0), _request(priority=0)
    high = _request(priority=5)
    for r in (low1, low2, high):
        assert q.put(r).admitted
    assert q.pop(0.1) is high
    assert q.pop(0.1) is low1  # FIFO among equals
    assert q.pop(0.1) is low2


def test_reject_policy_refuses_at_capacity():
    metrics = MetricsRegistry()
    q = AdmissionQueue(capacity=1, policy="reject", metrics=metrics)
    assert q.put(_request()).admitted
    outcome = q.put(_request())
    assert not outcome.admitted and outcome.victim is None
    assert metrics.counters["serve.rejected"] == 1
    assert metrics.counters["serve.admitted"] == 1


def test_shed_lowest_evicts_only_when_outranked():
    metrics = MetricsRegistry()
    q = AdmissionQueue(capacity=2, policy="shed-lowest", metrics=metrics)
    keep = _request(priority=5)
    victim = _request(priority=1)
    q.put(keep)
    q.put(victim)
    # equal priority does NOT displace the incumbent
    refused = q.put(_request(priority=1))
    assert not refused.admitted and refused.victim is None
    # a higher-priority newcomer sheds the lowest
    newcomer = _request(priority=3)
    outcome = q.put(newcomer)
    assert outcome.admitted and outcome.victim is victim
    assert metrics.counters["serve.shed"] == 1
    assert q.pop(0.1) is keep
    assert q.pop(0.1) is newcomer


def test_shed_lowest_prefers_newest_among_equals():
    q = AdmissionQueue(capacity=2, policy="shed-lowest")
    older, newer = _request(priority=0), _request(priority=0)
    q.put(older)
    q.put(newer)
    outcome = q.put(_request(priority=9))
    assert outcome.victim is newer  # least invested work goes first


def test_block_policy_waits_for_space():
    q = AdmissionQueue(capacity=1, policy="block")
    q.put(_request())
    admitted = []

    def producer():
        admitted.append(q.put(_request(), timeout=2.0))

    thread = threading.Thread(target=producer)
    thread.start()
    time.sleep(0.05)
    assert not admitted  # still blocked
    q.pop(0.1)
    thread.join(2.0)
    assert admitted and admitted[0].admitted


def test_block_policy_timeout_rejects():
    q = AdmissionQueue(capacity=1, policy="block")
    q.put(_request())
    t0 = time.monotonic()
    outcome = q.put(_request(), timeout=0.05)
    assert not outcome.admitted
    assert "timed out" in outcome.reason
    assert time.monotonic() - t0 < 1.0


def test_deadline_reaping_returns_expired():
    metrics = MetricsRegistry()
    q = AdmissionQueue(capacity=4, metrics=metrics)
    stale = _request(deadline_s=0.01)
    fresh = _request()
    q.put(stale)
    q.put(fresh)
    time.sleep(0.03)
    dead = q.reap_expired()
    assert dead == [stale]
    assert metrics.counters["serve.expired"] == 1
    assert q.pop(0.1) is fresh


def test_take_compatible_pulls_only_bucket_mates():
    rng = np.random.default_rng(1)
    b = rng.standard_normal((6, 5))
    q = AdmissionQueue(capacity=8)
    mates = [_request(b=b) for _ in range(3)]
    other = _request()
    for r in (*mates, other):
        q.put(r)
    got = q.take_compatible(mates[0].bucket(), limit=10)
    assert got == mates
    assert len(q) == 1


def test_seal_refuses_but_keeps_backlog():
    q = AdmissionQueue(capacity=4)
    kept = _request()
    q.put(kept)
    q.seal()
    assert not q.put(_request()).admitted
    assert q.pop(0.1) is kept      # backlog drains
    assert q.pop(0.1) is None      # then the sealed queue reports done


def test_close_returns_leftovers_and_unblocks():
    q = AdmissionQueue(capacity=4)
    r1, r2 = _request(), _request()
    q.put(r1)
    q.put(r2)
    leftovers = q.close()
    assert leftovers == [r1, r2]
    assert q.pop(0.01) is None
    assert not q.put(_request()).admitted


def test_queue_depth_gauge_tracks():
    metrics = MetricsRegistry()
    q = AdmissionQueue(capacity=4, metrics=metrics)
    q.put(_request())
    q.put(_request())
    assert metrics.gauges["serve.queue_depth"] == 2.0
    q.pop(0.1)
    assert metrics.gauges["serve.queue_depth"] == 1.0


def test_queue_config_validation():
    with pytest.raises(ConfigError):
        AdmissionQueue(capacity=0)
    with pytest.raises(ConfigError, match="policy"):
        AdmissionQueue(policy="drop-everything")
