"""Serial FT-GEMM under injection: every site, every model, every path."""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive, BitFlip, Scaling, StuckValue
from repro.util.errors import UncorrectableError


@pytest.fixture
def ft(small_config):
    return FTGemm(small_config)


@pytest.fixture
def ab(rng):
    return rng.standard_normal((33, 26)), rng.standard_normal((26, 41))


def inject_one(ft, a, b, site, invocation=0, model=None, **gemm_kwargs):
    inj = FaultInjector(
        InjectionPlan.single(site, invocation, model=model or Additive(magnitude=64.0))
    )
    result = ft.gemm(a, b, injector=inj, **gemm_kwargs)
    return result, inj


def test_microkernel_fault_corrected_in_place(ft, ab):
    a, b = ab
    result, inj = inject_one(ft, a, b, "microkernel", invocation=7)
    assert inj.n_injected == 1
    assert result.verified
    assert result.corrected == 1
    assert result.recomputed_blocks == 0  # single error: no recompute needed
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)
    assert inj.records[0].detected


def test_pack_a_fault_recovered(ft, ab):
    """A corrupted Ã element poisons a row strip of one block — a multi-
    column pattern resolved by recomputation."""
    a, b = ab
    result, inj = inject_one(ft, a, b, "pack_a", invocation=3)
    assert result.verified
    assert result.detected >= 1
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


def test_pack_b_fault_recovered(ft, ab):
    a, b = ab
    result, _ = inject_one(ft, a, b, "pack_b", invocation=2)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


def test_scale_fault_repaired_by_dmr(ft, ab, rng):
    a, b = ab
    c0 = rng.standard_normal((33, 41))
    c = c0.copy()
    inj = FaultInjector(InjectionPlan.single("scale", 0, model=Additive(magnitude=9.0)))
    result = ft.gemm(a, b, c, beta=0.5, injector=inj)
    assert result.verified
    assert inj.n_injected == 1
    # DMR catches it before checksums even exist
    assert result.counters.errors_corrected >= 1
    np.testing.assert_allclose(result.c, a @ b + 0.5 * c0, rtol=1e-10, atol=1e-10)


def test_scale_fault_without_dmr_slips_through(small_config, ab, rng):
    """Negative control: with DMR disabled, a scale-pass fault corrupts C
    *and* the checksums consistently — ABFT alone is provably blind here."""
    a, b = ab
    c0 = rng.standard_normal((33, 41))
    ft = FTGemm(small_config.with_(dmr_protect_scale=False))
    inj = FaultInjector(InjectionPlan.single("scale", 0, model=Additive(magnitude=9.0)))
    result = ft.gemm(a, b, c0.copy(), beta=0.5, injector=inj)
    assert result.verified  # verification passes...
    err = np.abs(result.c - (a @ b + 0.5 * c0)).max()
    assert err > 1.0  # ...but the result is silently wrong


def test_checksum_fault_never_corrupts_c(ft, ab):
    a, b = ab
    for invocation in range(4):
        result, inj = inject_one(ft, a, b, "checksum", invocation=invocation)
        if inj.n_injected == 0:
            continue
        assert result.verified
        np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


@pytest.mark.parametrize(
    "model",
    [
        Additive(magnitude=1e-3),
        Additive(magnitude=1e6),
        BitFlip(bit=54),
        BitFlip(bit=62),  # can produce inf/NaN
        Scaling(factor=-1.0),
        StuckValue(value=0.0),
    ],
    ids=["small-add", "huge-add", "exp-flip", "top-flip", "negate", "zero"],
)
def test_fault_model_zoo_all_recovered(ft, ab, model):
    a, b = ab
    result, inj = inject_one(ft, a, b, "microkernel", invocation=11, model=model)
    assert inj.n_injected == 1
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)


def test_subthreshold_fault_is_harmless(ft, ab):
    """A fault below the round-off tolerance is undetectable *and* does not
    perturb the result beyond numerical noise — ABFT's designed blind spot."""
    a, b = ab
    result, inj = inject_one(
        ft, a, b, "microkernel", invocation=5, model=BitFlip(bit=2)
    )
    assert inj.n_injected == 1
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)


def test_many_faults_same_call(ft, ab):
    a, b = ab
    schedule = {"microkernel": (0, 5, 9, 14), "pack_b": (1,), "pack_a": (2, 6)}
    inj = FaultInjector(InjectionPlan(schedule=schedule, model=Additive(magnitude=30.0)))
    result = ft.gemm(a, b, injector=inj)
    assert inj.n_injected == 7
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


def test_fault_with_alpha_beta(ft, ab, rng):
    a, b = ab
    c0 = rng.standard_normal((33, 41))
    inj = FaultInjector(
        InjectionPlan.single("microkernel", 4, model=Additive(magnitude=25.0))
    )
    result = ft.gemm(a, b, c0.copy(), alpha=-1.5, beta=2.0, injector=inj)
    assert result.verified
    np.testing.assert_allclose(
        result.c, -1.5 * (a @ b) + 2.0 * c0, rtol=1e-10, atol=1e-10
    )


def test_unprotected_run_corrupted_silently(small_config, ab):
    a, b = ab
    ori = FTGemm(small_config.with_(enable_ft=False))
    inj = FaultInjector(
        InjectionPlan.single("microkernel", 3, model=Additive(magnitude=100.0))
    )
    result = ori.gemm(a, b, injector=inj)
    assert inj.n_injected == 1
    err = np.abs(result.c - a @ b).max()
    assert err > 50.0  # the baseline has no defence
    assert result.detected == 0


def test_beta_multi_error_without_keep_original_raises(small_config, ab, rng):
    a, b = ab
    c0 = rng.standard_normal((33, 41))
    ft = FTGemm(small_config.with_(keep_original_c=False))
    # equal-delta pair: unambiguous correction impossible -> recompute needed,
    # but recompute is impossible without the preserved C0 when beta != 0
    schedule = {"microkernel": (0, 20)}
    inj = FaultInjector(InjectionPlan(schedule=schedule, model=StuckValue(value=500.0)))
    # StuckValue gives different deltas per cell, so craft additive instead
    inj = FaultInjector(
        InjectionPlan(schedule=schedule, model=Additive(magnitude=77.0))
    )
    with pytest.raises(UncorrectableError):
        ft.gemm(a, b, c0.copy(), beta=1.0, injector=inj)


def test_beta_multi_error_nonstrict_flags_unverified(small_config, ab, rng):
    a, b = ab
    c0 = rng.standard_normal((33, 41))
    ft = FTGemm(small_config.with_(keep_original_c=False, strict=False))
    inj = FaultInjector(
        InjectionPlan(
            schedule={"microkernel": (0, 20)}, model=Additive(magnitude=77.0)
        )
    )
    result = ft.gemm(a, b, c0.copy(), beta=1.0, injector=inj)
    assert not result.verified
