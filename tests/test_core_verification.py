"""The verification engine: ledger, rounds, correction, recompute."""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.verification import ChecksumLedger, Verifier
from repro.simcpu.counters import Counters
from repro.util.errors import UncorrectableError


def make_state(rng, m=12, n=15, k=9, alpha=1.0, beta=0.0):
    """Build a consistent (a, b, c, ledger) quadruple as the driver would."""
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c0 = rng.standard_normal((m, n)) if beta else None
    c = alpha * (a @ b) + (beta * c0 if beta else 0.0)
    ledger = ChecksumLedger.zeros(m, n)
    ledger.row_pred = alpha * (a.sum(axis=0) @ b)
    ledger.col_pred = alpha * (a @ b.sum(axis=1))
    ledger.env_row = np.abs(alpha) * (np.abs(a).sum(axis=0) @ np.abs(b))
    ledger.env_col = np.abs(alpha) * (np.abs(a) @ np.abs(b).sum(axis=1))
    if beta:
        ledger.row_pred += beta * c0.sum(axis=0)
        ledger.col_pred += beta * c0.sum(axis=1)
        ledger.c0_abs_row = np.abs(c0).sum(axis=0)
        ledger.c0_abs_col = np.abs(c0).sum(axis=1)
    ledger.row_ref = c.sum(axis=0)
    ledger.col_ref = c.sum(axis=1)
    return a, b, c0, c, ledger


def make_verifier(a, b, c0, *, alpha=1.0, beta=0.0, **cfg_kwargs):
    return Verifier(
        a, b, alpha=alpha, beta=beta, c0=c0,
        config=FTGemmConfig(**cfg_kwargs), counters=Counters(),
    )


def test_clean_single_round(rng):
    a, b, c0, c, ledger = make_state(rng)
    verifier = make_verifier(a, b, c0)
    reports, verified = verifier.finalize(c, ledger)
    assert verified
    assert len(reports) == 1
    assert reports[0].clean
    assert verifier.counters.verifications == 1


def test_single_corruption_corrected(rng):
    a, b, c0, c, ledger = make_state(rng)
    c[4, 7] += 10.0
    ledger.row_ref[7] += 10.0  # refs were computed from the corrupted C
    ledger.col_ref[4] += 10.0
    verifier = make_verifier(a, b, c0)
    reports, verified = verifier.finalize(c, ledger)
    assert verified
    assert verifier.counters.errors_corrected == 1
    np.testing.assert_allclose(c, a @ b, rtol=1e-10, atol=1e-10)
    assert reports[0].pattern_kind == "single"
    assert reports[-1].clean


def test_checksum_corruption_rederives_without_touching_c(rng):
    a, b, c0, c, ledger = make_state(rng)
    c_before = c.copy()
    ledger.row_pred[3] += 50.0  # corrupt a predicted checksum, C is fine
    verifier = make_verifier(a, b, c0)
    reports, verified = verifier.finalize(c, ledger)
    assert verified
    assert any(r.checksum_rederived for r in reports)
    np.testing.assert_array_equal(c, c_before)
    assert verifier.counters.errors_corrected == 0


def test_ambiguous_pair_recomputed(rng):
    a, b, c0, c, ledger = make_state(rng)
    for (i, j) in ((2, 3), (8, 11)):
        c[i, j] += 4.0
        ledger.row_ref[j] += 4.0
        ledger.col_ref[i] += 4.0
    verifier = make_verifier(a, b, c0)
    reports, verified = verifier.finalize(c, ledger)
    assert verified
    assert verifier.counters.blocks_recomputed >= 2
    np.testing.assert_allclose(c, a @ b, rtol=1e-10, atol=1e-10)


def test_cancelling_pair_in_one_column(rng):
    """+d and -d in the same column: the column residual cancels, giving a
    rows-only pattern with C genuinely corrupt — must end in recompute."""
    a, b, c0, c, ledger = make_state(rng)
    c[1, 5] += 3.0
    c[6, 5] -= 3.0
    ledger.col_ref[1] += 3.0
    ledger.col_ref[6] -= 3.0  # row_ref[5] unchanged: +3 - 3 = 0
    verifier = make_verifier(a, b, c0)
    reports, verified = verifier.finalize(c, ledger)
    assert verified
    np.testing.assert_allclose(c, a @ b, rtol=1e-10, atol=1e-10)


def test_beta_path_with_recompute(rng):
    a, b, c0, c, ledger = make_state(rng, alpha=2.0, beta=-0.5)
    for (i, j) in ((0, 0), (5, 9)):
        c[i, j] += 7.0
        ledger.row_ref[j] += 7.0
        ledger.col_ref[i] += 7.0
    verifier = make_verifier(a, b, c0, alpha=2.0, beta=-0.5)
    reports, verified = verifier.finalize(c, ledger)
    assert verified
    np.testing.assert_allclose(c, 2.0 * (a @ b) - 0.5 * c0, rtol=1e-10, atol=1e-10)


def test_beta_recompute_without_c0_fails_strict(rng):
    a, b, c0, c, ledger = make_state(rng, beta=0.5)
    for (i, j) in ((0, 0), (5, 9)):  # ambiguous pair forces recompute
        c[i, j] += 7.0
        ledger.row_ref[j] += 7.0
        ledger.col_ref[i] += 7.0
    verifier = Verifier(
        a, b, alpha=1.0, beta=0.5, c0=None,  # original C not preserved
        config=FTGemmConfig(), counters=Counters(),
    )
    with pytest.raises(UncorrectableError):
        verifier.finalize(c, ledger)


def test_non_strict_returns_unverified(rng):
    a, b, c0, c, ledger = make_state(rng, beta=0.5)
    for (i, j) in ((0, 0), (5, 9)):
        c[i, j] += 7.0
        ledger.row_ref[j] += 7.0
        ledger.col_ref[i] += 7.0
    verifier = Verifier(
        a, b, alpha=1.0, beta=0.5, c0=None,
        config=FTGemmConfig(strict=False), counters=Counters(),
    )
    reports, verified = verifier.finalize(c, ledger)
    assert not verified


def test_recompute_disabled_fails(rng):
    a, b, c0, c, ledger = make_state(rng)
    for (i, j) in ((2, 3), (8, 11)):  # ambiguous equal-delta pair
        c[i, j] += 4.0
        ledger.row_ref[j] += 4.0
        ledger.col_ref[i] += 4.0
    verifier = make_verifier(a, b, c0, recompute_fallback=False)
    with pytest.raises(UncorrectableError) as excinfo:
        verifier.finalize(c, ledger)
    assert excinfo.value.detected > 0


def test_double_prediction_corruption_disguised_as_c_error(rng):
    """Strikes on BOTH predicted checksum vectors intersect like a single
    corrupted C element. Recomputing that (perfectly fine) row/column can
    never clear the residuals; the verifier must notice the pattern
    surviving a repair round and re-derive the predictions instead.

    Found by the site-coverage matrix (two checksum-site strikes per call).
    """
    a, b, c0, c, ledger = make_state(rng)
    c_before = c.copy()
    ledger.row_pred[7] += 40.0   # corrupted prediction, column side
    ledger.col_pred[3] += -25.0  # corrupted prediction, row side
    verifier = make_verifier(a, b, c0)
    reports, verified = verifier.finalize(c, ledger)
    assert verified
    assert any(r.checksum_rederived for r in reports)
    np.testing.assert_allclose(c, a @ b, rtol=1e-10, atol=1e-10)
    # the recompute that ran before the re-derivation rebuilt identical
    # values; C is still numerically the original product
    np.testing.assert_allclose(c, c_before, rtol=1e-12, atol=1e-12)


def test_ledger_add_reduces(rng):
    m, n = 4, 5
    l1 = ChecksumLedger.zeros(m, n)
    l2 = ChecksumLedger.zeros(m, n)
    l1.row_pred += 1.0
    l2.row_pred += 2.0
    l2.c0_abs_row = np.ones(n)
    l1.add(l2)
    assert np.all(l1.row_pred == 3.0)
    np.testing.assert_array_equal(l1.c0_abs_row, np.ones(n))
    l3 = ChecksumLedger.zeros(m, n)
    l3.c0_abs_row = np.ones(n)
    l1.add(l3)
    np.testing.assert_array_equal(l1.c0_abs_row, 2 * np.ones(n))


def test_tolerances_positive_and_scaled(rng):
    a, b, c0, c, ledger = make_state(rng)
    verifier = make_verifier(a, b, c0)
    tol_r, tol_c = verifier.tolerances(ledger)
    assert np.all(tol_r > 0) and np.all(tol_c > 0)
    # residuals of the consistent state sit far inside the tolerance
    assert np.all(np.abs(ledger.row_ref - ledger.row_pred) < tol_r)
    assert np.all(np.abs(ledger.col_ref - ledger.col_pred) < tol_c)
