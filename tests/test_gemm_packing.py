"""Packing into micro panels: round-trip, layout, padding."""

import numpy as np
import pytest

from repro.gemm.packing import PackedPanels, pack_a, pack_b, unpack_a, unpack_b
from repro.util.errors import ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_pack_a_roundtrip_exact(rng):
    block = rng.standard_normal((16, 12))
    assert np.array_equal(unpack_a(pack_a(block, 4)), block)


def test_pack_a_roundtrip_ragged(rng):
    block = rng.standard_normal((13, 7))
    packed = pack_a(block, 4)
    assert packed.n_panels == 4
    assert np.array_equal(unpack_a(packed), block)


def test_pack_a_layout_is_column_interleaved(rng):
    """Panel i holds rows [i*mr, i*mr+mr) transposed: panel[k_idx, r] is
    A[i*mr + r, k_idx] — the kernel broadcasts mr contiguous A values."""
    block = rng.standard_normal((8, 5))
    packed = pack_a(block, 4)
    for panel_idx in range(2):
        for kk in range(5):
            np.testing.assert_array_equal(
                packed.panel(panel_idx)[kk],
                block[panel_idx * 4 : panel_idx * 4 + 4, kk],
            )


def test_pack_a_zero_padding(rng):
    block = rng.standard_normal((5, 3))
    packed = pack_a(block, 4)
    # rows 5..7 of the second panel are zero
    assert np.all(packed.panel(1)[:, 1:] == 0.0)


def test_pack_b_roundtrip_exact(rng):
    block = rng.standard_normal((9, 12))
    assert np.array_equal(unpack_b(pack_b(block, 4)), block)


def test_pack_b_roundtrip_ragged(rng):
    block = rng.standard_normal((9, 10))
    packed = pack_b(block, 4)
    assert packed.n_panels == 3
    assert np.array_equal(unpack_b(packed), block)


def test_pack_b_layout_row_major_panels(rng):
    block = rng.standard_normal((6, 8))
    packed = pack_b(block, 4)
    np.testing.assert_array_equal(packed.panel(0), block[:, 0:4])
    np.testing.assert_array_equal(packed.panel(1), block[:, 4:8])


def test_pack_b_zero_padding(rng):
    block = rng.standard_normal((6, 5))
    packed = pack_b(block, 4)
    assert np.all(packed.panel(1)[:, 1:] == 0.0)


def test_panel_extent(rng):
    packed = pack_a(rng.standard_normal((10, 4)), 4)
    assert packed.panel_extent(0) == 4
    assert packed.panel_extent(1) == 4
    assert packed.panel_extent(2) == 2
    with pytest.raises(IndexError):
        packed.panel_extent(3)


def test_pack_out_buffer_reuse(rng):
    block1 = rng.standard_normal((8, 6))
    block2 = rng.standard_normal((8, 6))
    buf = np.empty((2, 6, 4))
    p1 = pack_a(block1, 4, out=buf)
    assert p1.data is buf
    pack_a(block2, 4, out=buf)
    assert np.array_equal(unpack_a(PackedPanels(buf, 8)), block2)


def test_pack_out_buffer_zeroed_between_uses(rng):
    """A stale tail from a previous (larger) packing must not leak."""
    buf = np.full((2, 4, 4), 7.0)
    packed = pack_a(rng.standard_normal((5, 4)), 4, out=buf)
    assert np.all(packed.panel(1)[:, 1:] == 0.0)


def test_pack_out_wrong_shape_rejected(rng):
    with pytest.raises(ShapeError):
        pack_a(rng.standard_normal((8, 6)), 4, out=np.empty((3, 6, 4)))


def test_pack_rejects_non_2d():
    with pytest.raises(ShapeError):
        pack_a(np.zeros(5), 4)
    with pytest.raises(ShapeError):
        pack_b(np.zeros((2, 2, 2)), 4)


def test_packed_panels_validation():
    with pytest.raises(ShapeError):
        PackedPanels(np.zeros((2, 3)), valid=2)  # not 3-D
    with pytest.raises(ShapeError):
        PackedPanels(np.zeros((2, 3, 4)), valid=9)  # exceeds capacity


def test_nbytes(rng):
    packed = pack_b(rng.standard_normal((6, 8)), 4)
    assert packed.nbytes == 2 * 6 * 4 * 8
