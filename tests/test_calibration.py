"""Calibration against the paper's published numbers.

Every quantitative claim of the poster gets an assertion with an explicit
tolerance band. EXPERIMENTS.md documents which claims are matched tightly
and which only in shape; these tests are the executable form of that table.
"""

import statistics

import pytest

from repro.baselines import BLIS, MKL, FTGemmLibrary, OpenBLAS
from repro.bench.workloads import PARALLEL_SIZES, SERIAL_SIZES
from repro.perfmodel.overhead import average_overheads, overhead_curve


def averages(threads: int, sizes) -> dict[str, float]:
    libs = {
        "MKL": MKL(),
        "OpenBLAS": OpenBLAS(),
        "BLIS": BLIS(),
        "Ori": FTGemmLibrary("ori", threads=threads),
        "FT": FTGemmLibrary("ft", threads=threads),
    }
    out = {}
    for name, lib in libs.items():
        if isinstance(lib, FTGemmLibrary):
            out[name] = statistics.mean(lib.modeled_gflops(n) for n in sizes)
        else:
            out[name] = statistics.mean(
                lib.modeled_gflops(n, threads=threads) for n in sizes
            )
    return out


@pytest.fixture(scope="module")
def serial():
    return averages(1, SERIAL_SIZES)


@pytest.fixture(scope="module")
def parallel():
    return averages(10, PARALLEL_SIZES)


# ------------------------------------------------------- Fig 2(a): serial
def test_serial_ori_beats_all_baselines_within_paper_range(serial):
    """Poster: 'better performance (3.33%-22.19%) than OpenBLAS, BLIS, MKL'."""
    gaps = [serial["Ori"] / serial[lib] - 1 for lib in ("MKL", "OpenBLAS", "BLIS")]
    assert min(gaps) == pytest.approx(0.0333, abs=0.04)
    assert max(gaps) == pytest.approx(0.2219, abs=0.04)
    assert all(g > 0 for g in gaps)


def test_serial_ft_overhead_band():
    """Poster: fused FT costs 1.17%-3.58% over Ori (about 2.94% quoted)."""
    points = overhead_curve(SERIAL_SIZES)
    for p in points:
        assert 0.0117 <= p.fused_overhead <= 0.0358, p.n
    fused, _ = average_overheads(points)
    assert fused == pytest.approx(0.0294, abs=0.015)


def test_classic_abft_overhead_about_15_percent():
    """Poster: 'decreasing from about 15% to 2.94%'."""
    points = overhead_curve(SERIAL_SIZES)
    _, classic = average_overheads(points)
    assert 0.09 <= classic <= 0.18
    assert points[0].classic_overhead == pytest.approx(0.15, abs=0.03)


# ----------------------------------------------------- Fig 2(b): parallel
def test_parallel_ft_slightly_under_mkl(parallel):
    ratio = parallel["FT"] / parallel["MKL"]
    assert 0.95 <= ratio < 1.0  # "slightly underperforming"


def test_parallel_ft_comparable_to_openblas(parallel):
    ratio = parallel["FT"] / parallel["OpenBLAS"]
    assert abs(ratio - 1.0) < 0.03  # "comparable"


def test_parallel_ft_beats_blis_by_17_percent(parallel):
    ratio = parallel["FT"] / parallel["BLIS"] - 1
    assert ratio == pytest.approx(0.1697, abs=0.03)


def test_parallel_ft_overhead_band():
    """Poster: 0.16%-3.53%, average 1.79%."""
    points = overhead_curve(PARALLEL_SIZES, threads=10)
    fused, _ = average_overheads(points)
    assert fused == pytest.approx(0.0179, abs=0.01)
    for p in points:
        assert p.fused_overhead <= 0.045, p.n  # small headroom over 3.53%


# ----------------------------------------------- Fig 2(c)/(d): injection
def test_fig2c_injected_ratios():
    """Poster: FT with 20 errors beats OpenBLAS +22.89%, BLIS +21.56%,
    MKL +4.98% (representative serial size)."""
    from repro.bench.figures import FIG2C_N

    ft = FTGemmLibrary("ft").modeled_gflops(FIG2C_N, injected_errors=20)
    assert ft / MKL().modeled_gflops(FIG2C_N) - 1 == pytest.approx(0.0498, abs=0.025)
    assert ft / OpenBLAS().modeled_gflops(FIG2C_N) - 1 == pytest.approx(
        0.2289, abs=0.05
    )
    assert ft / BLIS().modeled_gflops(FIG2C_N) - 1 == pytest.approx(0.2156, abs=0.05)


def test_fig2d_injected_ratios():
    """Poster: parallel FT under injection ~OpenBLAS, +16.83% vs BLIS."""
    from repro.bench.figures import FIG2D_N

    ft = FTGemmLibrary("ft", threads=10).modeled_gflops(FIG2D_N, injected_errors=20)
    assert abs(ft / OpenBLAS().modeled_gflops(FIG2D_N, threads=10) - 1) < 0.04
    assert ft / BLIS().modeled_gflops(FIG2D_N, threads=10) - 1 == pytest.approx(
        0.1683, abs=0.03
    )


# ------------------------------------------------------ hardware anchors
def test_machine_peaks_match_testbed():
    lib = MKL()
    assert lib.machine.peak_gflops_serial == pytest.approx(112.0)
    assert lib.machine.mem_bandwidth_gbs == pytest.approx(93.9)


def test_blocking_parameters_match_paper():
    ft = FTGemmLibrary("ft")
    blocking = ft.config.blocking
    assert (blocking.mc, blocking.kc, blocking.nc) == (192, 384, 9216)
