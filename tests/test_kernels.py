"""The ProtectedKernel registry and the non-GEMM kernel family.

Covers the registry contract (unique immutable names, ConfigError on
unknown/duplicate), each kernel's clean-path oracle agreement, fault
detection/correction through each kernel's own protection, the shared
plan clamp for slot-poor kernels, and the bucket-key regression that
motivated the kernel discriminator: two kernels whose legacy key fields
collide must never share a coalescing bucket.
"""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.models import Additive, BitFlip, StuckBit
from repro.kernels import (
    KernelResult,
    ProtectedKernel,
    get_kernel,
    kernel_names,
    register,
)
from repro.kernels.fft import ft_fft
from repro.serve.request import (
    FftRequest,
    GemmRequest,
    GemvRequest,
    TrsmRequest,
)
from repro.util.errors import ConfigError


@pytest.fixture
def rng():
    return np.random.default_rng(11)


# --------------------------------------------------------------- registry


def test_registry_serves_the_builtin_family():
    assert set(kernel_names()) >= {"gemm", "gemv", "trsm", "fft"}
    for name in ("gemm", "gemv", "trsm", "fft"):
        assert get_kernel(name).name == name


def test_registry_rejects_unknown_kernel():
    with pytest.raises(ConfigError, match="unknown kernel"):
        get_kernel("cholesky")


def test_registry_rejects_duplicate_registration():
    class Imposter(ProtectedKernel):
        name = "gemv"

    with pytest.raises(ConfigError, match="already registered"):
        register(Imposter())


def test_registry_rejects_nameless_kernel():
    with pytest.raises(ConfigError, match="non-empty name"):
        register(ProtectedKernel())


# ------------------------------------------------------------ clean paths


def _sample(name, rng):
    shapes = {
        "gemm": (12, 10, 14),
        "gemv": (20, 16),
        "trsm": (48, 3),
        "fft": (32,),
    }
    kern = get_kernel(name)
    return kern, kern.sample_request(shapes[name], rng)


@pytest.mark.parametrize("name", ["gemv", "trsm", "fft"])
def test_clean_run_matches_oracle_and_verifies(name, rng):
    kern, request = _sample(name, rng)
    result = kern.run(request)
    assert isinstance(result, KernelResult)
    assert result.verified
    assert result.detected == 0 and result.corrected == 0
    np.testing.assert_allclose(result.c, kern.oracle(request),
                               rtol=0, atol=1e-10)
    assert result.c.ndim == 2  # canonical transportable form


@pytest.mark.parametrize("name", ["gemv", "trsm", "fft"])
def test_verify_accepts_oracle_and_rejects_corruption(name, rng):
    kern, request = _sample(name, rng)
    good = kern.oracle(request)
    assert kern.verify(request, good)
    bad = good.copy()
    bad.flat[1] += 50.0
    assert not kern.verify(request, bad)


@pytest.mark.parametrize("name", ["gemv", "trsm", "fft"])
def test_escalate_is_a_trusted_recompute(name, rng):
    kern, request = _sample(name, rng)
    np.testing.assert_allclose(kern.escalate(request), kern.oracle(request),
                               rtol=0, atol=1e-10)


# ------------------------------------------------------------ fault paths


@pytest.mark.parametrize("name", ["gemv", "trsm", "fft"])
def test_injected_faults_are_detected_and_the_answer_survives(name, rng):
    kern, request = _sample(name, rng)
    plan = kern.plan(request.shape, 2, model=Additive(magnitude=40.0),
                     seed=5)
    injector = FaultInjector(plan)
    result = kern.run(request, injector=injector)
    assert injector.n_injected > 0
    assert result.verified
    assert result.detected >= 1
    np.testing.assert_allclose(result.c, kern.oracle(request),
                               rtol=0, atol=1e-8)


@pytest.mark.parametrize("name", ["gemv", "trsm", "fft"])
def test_sticky_faults_converge_without_revisiting_the_injector(name, rng):
    """A persistent stuck bit re-corrupts every injector visit; each
    kernel's recovery must end on a rung that no longer consults the
    injector, so the final answer is clean."""
    kern, request = _sample(name, rng)
    plan = kern.plan(request.shape, 2, model=StuckBit(bit=52), seed=9)
    result = kern.run(request, injector=FaultInjector(plan))
    assert result.verified
    np.testing.assert_allclose(result.c, kern.oracle(request),
                               rtol=0, atol=1e-8)


def test_plan_clamps_to_available_slots(rng):
    # a GEMV exposes exactly one compute slot; a mixed storm asking for
    # two errors per call must clamp, not refuse
    kern = get_kernel("gemv")
    plan = kern.plan((20, 16), 5, seed=1)
    assert plan.total_planned == 1
    with pytest.raises(ConfigError, match="non-negative"):
        kern.plan((20, 16), -1)


def test_site_maps_mirror_loop_structure():
    assert get_kernel("gemv").site_invocations((20, 16)) == {
        "blas_compute": 1
    }
    # one DMR hook per 32-wide diagonal block
    assert get_kernel("trsm").site_invocations((80, 4)) == {
        "blas_compute": 3
    }
    # one checksum hook per butterfly stage: log2(n)
    assert get_kernel("fft").site_invocations((64,)) == {"fft_stage": 6}


def test_plans_are_deterministic_in_their_inputs():
    kern = get_kernel("fft")
    a = kern.plan((64,), 3, seed=4)
    b = kern.plan((64,), 3, seed=4)
    assert a.schedule == b.schedule and a.seed == b.seed
    assert kern.plan((64,), 3, seed=5).schedule != a.schedule or True
    # different kernels never share a plan stream for the same shape/seed
    assert get_kernel("trsm").plan((64, 2), 2, seed=4).schedule != {}


# ----------------------------------------------------- fft specifics


def test_ft_fft_matches_numpy(rng):
    x = rng.standard_normal(128)
    np.testing.assert_allclose(ft_fft(x).value, np.fft.fft(x),
                               rtol=0, atol=1e-9)


def test_ft_fft_repairs_a_single_stage_error(rng):
    x = rng.standard_normal(64)
    kern = get_kernel("fft")
    plan = kern.plan((64,), 1, model=Additive(magnitude=25.0), seed=2)
    injector = FaultInjector(plan)
    blas = ft_fft(x, injector=injector)
    assert injector.n_injected == 1
    assert blas.detected >= 1
    np.testing.assert_allclose(blas.value, np.fft.fft(x), rtol=0, atol=1e-9)


def test_ft_fft_rejects_non_power_of_two():
    from repro.util.errors import ShapeError

    with pytest.raises(ShapeError, match="power of two"):
        ft_fft(np.ones(12))


# ------------------------------------------------- bucket-key regression


def test_bucket_keys_carry_the_kernel_discriminator(rng):
    """Regression: a GEMV over A (m×k) and a TRSM over an equal-dim
    factor used to produce colliding legacy key fields once both routed
    through the shared-operand slot. The kernel name must keep every
    cross-kernel pair of buckets distinct."""
    a = np.tril(rng.standard_normal((16, 16))) + 16.0 * np.eye(16)
    gemv = GemvRequest(a, rng.standard_normal(16))
    trsm = TrsmRequest(a, rng.standard_normal((16, 16)))
    # identical shared operand identity and matching integer dims —
    # only the kernel discriminator separates the two
    assert gemv.bucket()[0] == trsm.bucket()[0] == id(a)
    assert gemv.bucket() != trsm.bucket()
    assert "gemv" in gemv.bucket() and "trsm" in trsm.bucket()


def test_bucket_memo_is_computed_once_and_includes_kernel(rng):
    request = FftRequest(rng.standard_normal(32))
    key = request.bucket()
    assert key is request.bucket()  # memoized
    assert "fft" in key
    assert key[-1] is False  # non-GEMM buckets are never stackable


def test_gemm_bucket_contract_is_unchanged(rng):
    b = rng.standard_normal((8, 6))
    r1 = GemmRequest(rng.standard_normal((4, 8)), b)
    r2 = GemmRequest(rng.standard_normal((4, 8)), b)
    assert r1.bucket() == r2.bucket()
    assert r1.bucket()[-1] is True  # beta == 0 stays stackable


# -------------------------------------------------------------- transport


@pytest.mark.parametrize("name", ["gemv", "trsm", "fft"])
def test_wire_round_trip_rebuilds_an_equivalent_request(name, rng):
    from repro.serve.request import request_from_wire

    kern, request = _sample(name, rng)
    unit = kern.unit_operand(request)
    aux = kern.aux_operand(request)
    rebuilt = request_from_wire(
        name, unit, request.shared_operand, aux, kern.wire_params(request),
        scheme=request.scheme, request_id="w-1",
    )
    assert rebuilt.kernel == name
    assert rebuilt.request_id == "w-1"
    assert rebuilt.shape == request.shape
    np.testing.assert_array_equal(
        kern.oracle(rebuilt), kern.oracle(request)
    )
