"""Property-based tests for the extension subsystems (weighted, BLAS, DMR)."""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.abft.weighted import resolve_weighted
from repro.blas import ft_axpy, ft_dot, ft_gemv, ft_trsv
from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive

COMMON = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

dims = st.integers(min_value=2, max_value=24)


def finite_matrix(rows, cols):
    return hnp.arrays(
        np.float64,
        (rows, cols),
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False, width=64),
    )


def finite_vector(n):
    return hnp.arrays(
        np.float64,
        (n,),
        elements=st.floats(min_value=-100, max_value=100, allow_nan=False, width=64),
    )


@COMMON
@given(
    n_errors=st.integers(1, 5),
    n_cols=st.integers(5, 40),
    data=st.data(),
)
def test_weighted_resolver_exact_on_synthetic_errors(n_errors, n_cols, data):
    """For arbitrary single-error-per-row patterns the resolver recovers
    every (row, column, delta) exactly."""
    rows = sorted(
        data.draw(
            st.lists(
                st.integers(0, 60), min_size=n_errors, max_size=n_errors,
                unique=True,
            )
        )
    )
    cols = data.draw(
        st.lists(st.integers(0, n_cols - 1), min_size=n_errors, max_size=n_errors)
    )
    deltas = data.draw(
        st.lists(
            st.floats(min_value=0.5, max_value=1e6).map(
                lambda x: x * data.draw(st.sampled_from([1.0, -1.0]))
            ),
            min_size=n_errors,
            max_size=n_errors,
        )
    )
    plain = deltas
    weighted = [(c + 1) * d for c, d in zip(cols, deltas)]
    res = resolve_weighted(rows, plain, weighted, n_cols=n_cols)
    assert res.fully_resolved
    assert res.corrections == [
        (r, c, d) for r, c, d in zip(rows, cols, deltas)
    ]


@COMMON
@given(
    m=dims, n=dims, k=dims,
    inv_a=st.integers(0, 50), inv_b=st.integers(0, 50),
    mag=st.floats(min_value=1.0, max_value=1e5),
    data=st.data(),
)
def test_weighted_scheme_two_equal_faults_property(m, n, k, inv_a, inv_b, mag, data):
    """Any two equal-magnitude kernel faults are absorbed by the weighted
    scheme with a correct final result."""
    a = data.draw(finite_matrix(m, k))
    b = data.draw(finite_matrix(k, n))
    assume(np.abs(a).max() > 1e-2 and np.abs(b).max() > 1e-2)
    cfg = FTGemmConfig.small(checksum_scheme="weighted")
    ft = FTGemm(cfg)
    from repro.faults.campaign import site_invocation_counts

    total = site_invocation_counts(m, n, k, cfg.blocking)["microkernel"]
    schedule = tuple(sorted({inv_a % total, inv_b % total}))
    inj = FaultInjector(
        InjectionPlan(
            schedule={"microkernel": schedule}, model=Additive(magnitude=mag)
        )
    )
    result = ft.gemm(a, b, injector=inj)
    assert result.verified
    expected = a @ b
    scale = max(1.0, float(np.abs(expected).max()), mag * 1e-10)
    assert np.abs(result.c - expected).max() < 1e-7 * scale


@COMMON
@given(n=st.integers(1, 64), alpha=st.floats(-10, 10), data=st.data())
def test_axpy_dmr_property(n, alpha, data):
    x = data.draw(finite_vector(n))
    y = data.draw(finite_vector(n))
    expected = alpha * x + y
    result = ft_axpy(alpha, x, y)
    assert result.clean
    np.testing.assert_array_equal(y, expected)


@COMMON
@given(n=st.integers(1, 64), data=st.data())
def test_dot_dmr_never_false_positive(n, data):
    x = data.draw(finite_vector(n))
    y = data.draw(finite_vector(n))
    result = ft_dot(x, y)
    assert result.clean
    assert abs(result.value - float(x @ y)) <= 1e-9 * (
        float(np.abs(x) @ np.abs(y)) + 1.0
    )


@COMMON
@given(m=dims, k=dims, data=st.data())
def test_gemv_abft_never_false_positive(m, k, data):
    a = data.draw(finite_matrix(m, k))
    x = data.draw(finite_vector(k))
    result = ft_gemv(a, x)
    assert result.clean
    np.testing.assert_allclose(result.value, a @ x, rtol=1e-9, atol=1e-9)


@COMMON
@given(n=st.integers(2, 16), data=st.data())
def test_trsv_dmr_solves(n, data):
    body = data.draw(finite_matrix(n, n))
    a = np.tril(body, k=-1) + np.diag(5.0 + np.abs(np.diag(body)))
    b = data.draw(finite_vector(n))
    result = ft_trsv(a, b)
    assert result.clean
    np.testing.assert_allclose(a @ result.value, b, rtol=1e-8, atol=1e-8)
