"""Macro kernel: tile sweep, fused reference checksums, hooks, counters."""

import numpy as np
import pytest

from repro.gemm.macrokernel import macro_kernel
from repro.gemm.packing import pack_a, pack_b
from repro.simcpu.counters import Counters
from repro.util.errors import ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(2)


def run_macro(rng, mlen=11, nlen=13, k=9, mr=4, nr=4, **kwargs):
    a = rng.standard_normal((mlen, k))
    b = rng.standard_normal((k, nlen))
    c = rng.standard_normal((mlen, nlen))
    c0 = c.copy()
    macro_kernel(pack_a(a, mr), pack_b(b, nr), c, **kwargs)
    return a, b, c0, c


def test_macro_kernel_correct_ragged(rng):
    a, b, c0, c = run_macro(rng)
    np.testing.assert_allclose(c, c0 + a @ b, rtol=1e-12)


def test_macro_kernel_exact_tiles(rng):
    a, b, c0, c = run_macro(rng, mlen=8, nlen=8, k=4)
    np.testing.assert_allclose(c, c0 + a @ b, rtol=1e-12)


def test_macro_kernel_collects_reference_checksums(rng):
    mlen, nlen = 11, 13
    row_ref = np.zeros(nlen)
    col_ref = np.zeros(mlen)
    a, b, c0, c = run_macro(rng, row_ref=row_ref, col_ref=col_ref)
    np.testing.assert_allclose(row_ref, c.sum(axis=0), rtol=1e-12)
    np.testing.assert_allclose(col_ref, c.sum(axis=1), rtol=1e-12)


def test_refs_must_come_together(rng):
    with pytest.raises(ShapeError, match="together"):
        run_macro(rng, row_ref=np.zeros(13))


def test_refs_shape_checked(rng):
    with pytest.raises(ShapeError):
        run_macro(rng, row_ref=np.zeros(5), col_ref=np.zeros(11))


def test_block_extent_mismatch(rng):
    a = rng.standard_normal((8, 4))
    b = rng.standard_normal((4, 8))
    with pytest.raises(ShapeError, match="does not match"):
        macro_kernel(pack_a(a, 4), pack_b(b, 4), np.zeros((7, 8)))


def test_depth_mismatch(rng):
    a = rng.standard_normal((8, 4))
    b = rng.standard_normal((5, 8))
    with pytest.raises(ShapeError, match="depths"):
        macro_kernel(pack_a(a, 4), pack_b(b, 4), np.zeros((8, 8)))


def test_on_tile_hook_sees_every_tile(rng):
    seen = []
    run_macro(rng, mlen=8, nlen=8, mr=4, nr=4,
              on_tile=lambda tile, i0, j0: seen.append((i0, j0)))
    assert sorted(seen) == [(0, 0), (0, 4), (4, 0), (4, 4)]


def test_on_tile_corruption_lands_in_refs(rng):
    """Faults injected by the hook must be visible to the fused reference
    checksums (the hook runs before collection) — the property detection
    relies on."""
    row_ref = np.zeros(8)
    col_ref = np.zeros(8)

    def corrupt_first(tile, i0, j0):
        if i0 == 0 and j0 == 0:
            tile[0, 0] += 100.0

    a, b, c0, c = run_macro(
        rng, mlen=8, nlen=8, row_ref=row_ref, col_ref=col_ref,
        on_tile=corrupt_first,
    )
    # refs match the *corrupted* C exactly
    np.testing.assert_allclose(row_ref, c.sum(axis=0), rtol=1e-12)
    assert abs(c[0, 0] - (c0 + a @ b)[0, 0] - 100.0) < 1e-9


def test_counters(rng):
    counters = Counters()
    run_macro(rng, mlen=8, nlen=8, k=5, counters=counters)
    assert counters.microkernel_calls == 4
    assert counters.fma_flops == 4 * 2 * 4 * 4 * 5


def test_counters_checksum_flops_only_when_collecting(rng):
    counters = Counters()
    run_macro(rng, mlen=8, nlen=8, counters=counters)
    assert counters.checksum_flops == 0
    counters2 = Counters()
    run_macro(rng, mlen=8, nlen=8, counters=counters2,
              row_ref=np.zeros(8), col_ref=np.zeros(8))
    assert counters2.checksum_flops == 2 * 8 * 8


def test_nan_propagates_silently(rng):
    """Fail-continue: non-finite values flow through without warnings."""
    import warnings

    a = rng.standard_normal((8, 4))
    a[0, 0] = np.nan
    b = rng.standard_normal((4, 8))
    c = np.zeros((8, 8))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        macro_kernel(pack_a(a, 4), pack_b(b, 4), c)
    assert np.isnan(c[0]).all()
    assert np.isfinite(c[4:]).all()
