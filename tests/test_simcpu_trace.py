"""Memory access records and traces."""

import pytest

from repro.simcpu.trace import AccessTrace, MemoryAccess


def test_lines_single():
    acc = MemoryAccess(addr=0, size=8)
    assert list(acc.lines(64)) == [0]


def test_lines_straddle():
    acc = MemoryAccess(addr=60, size=8)  # crosses the 64B boundary
    assert list(acc.lines(64)) == [0, 1]


def test_lines_exact_multiple():
    acc = MemoryAccess(addr=128, size=128)
    assert list(acc.lines(64)) == [2, 3]


def test_invalid_access_rejected():
    with pytest.raises(ValueError):
        MemoryAccess(addr=-1, size=8)
    with pytest.raises(ValueError):
        MemoryAccess(addr=0, size=0)


def test_trace_records_and_filters():
    t = AccessTrace()
    t.record(MemoryAccess(0, 64, write=False, label="A"))
    t.record(MemoryAccess(64, 32, write=True, label="C"))
    t.record(MemoryAccess(96, 16, write=False, label="A"))
    assert len(t) == 3
    assert t.total_bytes() == 112
    assert t.total_bytes(writes=True) == 32
    assert t.total_bytes(label="A") == 80
    assert t.total_bytes(writes=False, label="A") == 80
    assert t.labels() == {"A", "C"}


def test_trace_capacity_drops():
    t = AccessTrace(capacity=2)
    for i in range(5):
        t.record(MemoryAccess(i * 64, 8))
    assert len(t) == 2
    assert t.dropped == 3


def test_trace_rejects_bad_capacity():
    with pytest.raises(ValueError):
        AccessTrace(capacity=0)


def test_trace_iterates_in_order():
    t = AccessTrace()
    t.record(MemoryAccess(0, 8))
    t.record(MemoryAccess(64, 8))
    assert [a.addr for a in t] == [0, 64]
