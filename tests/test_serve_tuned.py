"""Tuning-DB consultation in the serving tier: admission resolution,
tuned-driver execution, coalesce caps, and the untuned A/B guarantee."""

import numpy as np

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.serve import GemmRequest, GemmService, ServiceConfig
from repro.serve.pool import tuned_parts
from repro.simcpu.machine import MachineSpec
from repro.tune.db import TunedConfig, TuningDB

CASCADE = MachineSpec.cascade_lake_w2255()


def _config(**kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("ft", FTGemmConfig(blocking=BlockingConfig.small()))
    return ServiceConfig(**kwargs)


def _operands(m=24, k=16, n=12, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


def _db_for(m, n, k, tmp_path, **tuned_kwargs):
    tuned_kwargs.setdefault("mc", 16)
    tuned_kwargs.setdefault("kc", 16)
    tuned_kwargs.setdefault("nc", 32)
    tuned_kwargs.setdefault("mr", 4)
    tuned_kwargs.setdefault("nr", 4)
    db = TuningDB.for_machine(CASCADE, path=tmp_path / "db.json")
    db.put(m, n, k, TunedConfig(**tuned_kwargs))
    return db


# ------------------------------------------------------------- A/B identity
def test_untuned_service_emits_no_tune_metrics():
    a, b = _operands()
    with GemmService(_config()) as service:
        response = service.submit(GemmRequest(a, b)).result(10.0)
        counters = service.metrics.snapshot()["counters"]
    assert response.ok and response.verified
    assert not any(name.startswith("tune.") for name in counters)
    np.testing.assert_allclose(response.result.c, a @ b, rtol=1e-9, atol=1e-9)


def test_untuned_stats_omit_tune_db_block():
    with GemmService(_config()) as service:
        assert "tune_db" not in service.stats()


# ------------------------------------------------------------ resolution
def test_tuned_service_resolves_and_applies(tmp_path):
    a, b = _operands()
    db = _db_for(a.shape[0], b.shape[1], a.shape[1], tmp_path)
    with GemmService(_config(), tune_db=db) as service:
        response = service.submit(GemmRequest(a, b)).result(10.0)
        counters = service.metrics.snapshot()["counters"]
        stats = service.stats()
    assert response.ok and response.verified
    np.testing.assert_allclose(response.result.c, a @ b, rtol=1e-9, atol=1e-9)
    assert counters["tune.resolve_hits"] == 1
    assert counters["tune.applied"] >= 1
    assert stats["tune_db"]["entries"] == 1
    assert stats["tune_db"]["stale"] is False


def test_miss_and_stale_db_fall_back_to_static(tmp_path):
    a, b = _operands()
    # an entry for a different bucket: resolve misses, static config runs
    db = _db_for(4096, 4096, 4096, tmp_path)
    with GemmService(_config(), tune_db=db) as service:
        response = service.submit(GemmRequest(a, b)).result(10.0)
        counters = service.metrics.snapshot()["counters"]
    assert response.ok
    assert counters["tune.resolve_misses"] == 1
    assert "tune.applied" not in counters

    # a stale DB (foreign fingerprint) behaves exactly like a miss
    db = _db_for(a.shape[0], b.shape[1], a.shape[1], tmp_path)
    db.save()
    stale = TuningDB.load(db.path, machine=MachineSpec.small_test_machine())
    assert stale.stale
    with GemmService(_config(), tune_db=stale) as service:
        response = service.submit(GemmRequest(a, b)).result(10.0)
        counters = service.metrics.snapshot()["counters"]
    assert response.ok
    assert counters["tune.resolve_misses"] == 1


# ---------------------------------------------------------- coalesce cap
def test_tuned_coalesce_limit_caps_batches(tmp_path):
    rng = np.random.default_rng(3)
    b = rng.standard_normal((16, 12))
    operands = [rng.standard_normal((24, 16)) for _ in range(8)]
    db = _db_for(24, 12, 16, tmp_path, coalesce_limit=2)
    with GemmService(
        _config(max_batch=8, window_s=0.05), tune_db=db
    ) as service:
        tickets = [service.submit(GemmRequest(a, b)) for a in operands]
        service.drain()
        responses = [t.result(10.0) for t in tickets]
    assert all(r.ok for r in responses)
    sizes = [r.batch_size for r in responses]
    assert max(sizes) <= 2  # the tuned cap binds below max_batch
    assert 2 in sizes  # and coalescing still happens up to the cap
    for a, r in zip(operands, responses):
        np.testing.assert_allclose(r.result.c, a @ b, rtol=1e-9, atol=1e-9)


# ------------------------------------------------------------- tuned_parts
def test_tuned_parts_accepts_config_objects_and_dicts():
    tuned = TunedConfig(mc=16, kc=16, nc=32, mr=4, nr=4, threads=2)
    blocking, threads = tuned_parts(tuned)
    assert blocking == tuned.blocking()
    assert threads == 2
    # the proc tier ships plain dicts across the pipe
    blocking, threads = tuned_parts(tuned.to_dict())
    assert blocking == tuned.blocking()
    assert threads == 2
    minimal = {"mc": 32, "kc": 8, "nc": 16}  # mr/nr default to the paper tile
    blocking, threads = tuned_parts(minimal)
    assert (blocking.mc, blocking.mr, blocking.nr) == (32, 16, 14)
    assert threads == 1


# -------------------------------------------------------------- proc tier
def test_proc_tier_ships_tuned_configs(tmp_path):
    """Tuned entries cross the process boundary as plain dicts and the
    child executes on the tuned driver with correct numerics."""
    a, b = _operands()
    db = _db_for(a.shape[0], b.shape[1], a.shape[1], tmp_path)
    config = ServiceConfig(
        processes=1,
        workers=1,
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )
    with GemmService(config, tune_db=db) as service:
        response = service.submit(GemmRequest(a, b)).result(60.0)
        counters = service.metrics.snapshot()["counters"]
    assert response.ok and response.verified
    np.testing.assert_allclose(response.result.c, a @ b, rtol=1e-9, atol=1e-9)
    assert counters["tune.resolve_hits"] == 1
