"""Parallel counter validation: :func:`expected_counters_parallel` mirrors
the Figure-1 parallel worker's accounting exactly, field by field — the
regression net for drift between the drivers and the analytic model."""

import pytest

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.perfmodel.validate import (
    expected_counters,
    expected_counters_parallel,
    validate_parallel_run,
    validate_run,
)
from repro.util.errors import ConfigError


@pytest.fixture
def cfg():
    return FTGemmConfig(blocking=BlockingConfig.small(mr=4, nr=4))


@pytest.mark.parametrize(
    "m,n,k,threads",
    [
        (48, 40, 36, 4),
        (37, 29, 23, 3),
        (64, 64, 64, 2),
        (16, 16, 16, 5),  # ragged: more threads than even row chunks
    ],
)
def test_parallel_ft_counters_match_exactly(cfg, m, n, k, threads):
    report = validate_parallel_run(m, n, k, cfg, n_threads=threads)
    assert report.ok, f"mismatched fields: {report.mismatches()}\n{report}"


@pytest.mark.parametrize("m,n,k,threads", [(48, 40, 36, 4), (33, 27, 21, 3)])
def test_parallel_ft_counters_with_beta(cfg, m, n, k, threads):
    report = validate_parallel_run(m, n, k, cfg, n_threads=threads, beta=0.5)
    assert report.ok, f"{report}"


def test_parallel_weighted_counters_match(cfg):
    report = validate_parallel_run(
        40, 36, 28, cfg.with_(checksum_scheme="weighted"), n_threads=3
    )
    assert report.ok, f"{report}"


def test_parallel_weighted_counters_with_beta(cfg):
    report = validate_parallel_run(
        33, 29, 25, cfg.with_(checksum_scheme="weighted"),
        n_threads=4, beta=-1.5,
    )
    assert report.ok, f"{report}"


def test_parallel_unprotected_counters_match(cfg):
    report = validate_parallel_run(
        48, 40, 36, cfg.with_(enable_ft=False), n_threads=4
    )
    assert report.ok, f"{report}"


def test_parallel_dmr_off_counters_match(cfg):
    for beta in (0.0, 0.5):
        report = validate_parallel_run(
            40, 32, 24, cfg.with_(dmr_protect_scale=False),
            n_threads=3, beta=beta,
        )
        assert report.ok, f"beta={beta}\n{report}"


def test_parallel_threads_backend_counters_match(cfg):
    report = validate_parallel_run(
        40, 32, 24, cfg, n_threads=2, backend="threads", beta=0.5
    )
    assert report.ok, f"{report}"


def test_parallel_counters_pin_barriers(cfg):
    report = validate_parallel_run(48, 40, 36, cfg, n_threads=4)
    assert "barriers" in report.matches
    assert report.observed["barriers"] == report.expected["barriers"] > 0


def test_parallel_expected_differs_from_serial_by_reuse(cfg):
    """The parallel worker repacks Ã every j-block while the serial driver
    reuses it — the models must disagree on pack-A traffic whenever there
    is more than one j-block."""
    m = n = k = 48  # nc small() is below 48, so several j-blocks
    serial = expected_counters(m, n, k, cfg)
    parallel = expected_counters_parallel(m, n, k, cfg, n_threads=1)
    assert parallel.pack_a_bytes > serial.pack_a_bytes
    assert parallel.fma_flops == serial.fma_flops


def test_parallel_single_thread_matches_run(cfg):
    report = validate_parallel_run(24, 24, 24, cfg, n_threads=1)
    assert report.ok, f"{report}"


def test_parallel_expected_counters_invalid_args(cfg):
    with pytest.raises(ConfigError):
        expected_counters_parallel(0, 8, 8, cfg)
    with pytest.raises(ConfigError):
        expected_counters_parallel(8, 8, 8, cfg, n_threads=0)


def test_serial_and_parallel_validation_agree_on_verified_work(cfg):
    """When the row partition aligns with the blocking (no padded edge
    panels), both models and both drivers agree on the schedule-independent
    work: FMA flops and micro-kernel call counts. (With ragged partitions
    the parallel schedule legitimately pads extra panels.)"""
    m, n, k = 32, 32, 24  # m / threads = 8 = mc: clean per-thread blocks
    serial = validate_run(m, n, k, cfg)
    parallel = validate_parallel_run(m, n, k, cfg, n_threads=4)
    assert serial.ok and parallel.ok
    assert serial.observed["fma_flops"] == parallel.observed["fma_flops"]
    assert (serial.observed["microkernel_calls"]
            == parallel.observed["microkernel_calls"])
