"""The non-fused (classic) ABFT baseline."""

import numpy as np
import pytest

from repro.baselines.traditional_abft import TraditionalABFT
from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive
from repro.gemm.blocking import BlockingConfig
from repro.util.errors import ConfigError


@pytest.fixture
def trad(small_config):
    return TraditionalABFT(small_config)


def test_correct_clean(trad, rng):
    a = rng.standard_normal((27, 22))
    b = rng.standard_normal((22, 31))
    result = trad.gemm(a, b)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11)


def test_alpha_beta(trad, rng):
    a = rng.standard_normal((15, 11))
    b = rng.standard_normal((11, 18))
    c0 = rng.standard_normal((15, 18))
    result = trad.gemm(a, b, c0.copy(), alpha=2.0, beta=0.5)
    assert result.verified
    np.testing.assert_allclose(result.c, 2 * (a @ b) + 0.5 * c0, rtol=1e-11)


def test_detects_and_corrects_kernel_fault(trad, rng):
    a = rng.standard_normal((25, 20))
    b = rng.standard_normal((20, 25))
    inj = FaultInjector(
        InjectionPlan.single("microkernel", 6, model=Additive(magnitude=55.0))
    )
    result = trad.gemm(a, b, injector=inj)
    assert result.verified
    assert result.detected >= 1
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


def test_pack_fault_recovered(trad, rng):
    a = rng.standard_normal((25, 20))
    b = rng.standard_normal((20, 25))
    inj = FaultInjector(
        InjectionPlan.single("pack_b", 0, model=Additive(magnitude=21.0))
    )
    result = trad.gemm(a, b, injector=inj)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


def test_pays_extra_memory_where_fused_pays_none(small_config, rng):
    """The structural difference the whole paper is about, measured."""
    a = rng.standard_normal((30, 25))
    b = rng.standard_normal((25, 35))
    fused = FTGemm(small_config).gemm(a, b)
    classic = TraditionalABFT(small_config).gemm(a, b)
    assert fused.counters.ft_extra_bytes == 0
    # classic pays at least the dedicated A/B encode re-reads plus the
    # online verification sweeps over C
    assert classic.counters.ft_extra_bytes >= (
        a.nbytes + b.nbytes + fused.c.nbytes
    )
    # both produce the same numbers
    np.testing.assert_allclose(classic.c, fused.c, rtol=1e-12)


def test_offline_mode_fewer_verifications(small_config, rng):
    a = rng.standard_normal((20, 33))  # several K-blocks
    b = rng.standard_normal((33, 20))
    online = TraditionalABFT(small_config, online=True).gemm(a, b)
    offline = TraditionalABFT(small_config, online=False).gemm(a, b)
    assert online.counters.verifications > offline.counters.verifications
    assert online.counters.ft_extra_bytes > offline.counters.ft_extra_bytes


def test_rejects_unprotected_config():
    with pytest.raises(ConfigError):
        TraditionalABFT(FTGemmConfig.unprotected())


def test_counters_reset_per_call(trad, rng):
    a = rng.standard_normal((12, 12))
    trad.gemm(a, a)
    first = trad.counters.checksum_flops
    trad.gemm(a, a)
    assert trad.counters.checksum_flops == first
