"""End-to-end observability: span trees of real traced runs (serial,
parallel, fail-stop recovery), the disabled-path guarantees, and the CLI
``trace`` surface."""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.faults.campaign import plan_for_gemm, site_invocation_counts_parallel
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import FailStop
from repro.gemm.blocking import BlockingConfig
from repro.obs import Tracer, phase_totals, to_chrome_trace, validate_chrome_trace


def _operands(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


def _config(**kwargs):
    return FTGemmConfig(blocking=BlockingConfig.small(mr=4, nr=4), **kwargs)


# ------------------------------------------------------------------- serial
def test_serial_traced_run_span_tree():
    a, b = _operands(48)
    tracer = Tracer()
    result = FTGemm(_config(), tracer=tracer).gemm(a, b)
    assert result.verified
    assert result.trace is tracer

    roots = tracer.spans("gemm", cat="driver")
    assert len(roots) == 1  # FTGemm owns the root; BlockedGemm defers
    root = roots[0]
    names = {e.name for e in tracer.events}
    assert {"prologue", "pack_a", "pack_b", "checksum_update",
            "verify_round"} <= names
    # every span nests inside the root
    for e in tracer.spans():
        assert e.ts_us >= root.ts_us - 1e-3
        assert e.ts_us + e.dur_us <= root.ts_us + root.dur_us + 1e-3
    (verdict,) = tracer.instants("verdict")
    assert verdict.args["verified"] is True
    assert validate_chrome_trace(to_chrome_trace(tracer.events)) > 0


def test_config_trace_flag_auto_creates_tracer():
    a, b = _operands(32)
    result = FTGemm(_config(trace=True)).gemm(a, b)
    assert result.trace is not None
    assert result.trace.spans("gemm")


def test_untraced_run_records_nothing():
    a, b = _operands(32)
    driver = FTGemm(_config())
    result = driver.gemm(a, b)
    assert result.trace is None
    assert not driver.tracer.enabled


def test_injection_event_lands_in_trace():
    n = 48
    a, b = _operands(n)
    config = _config()
    plan = plan_for_gemm(n, n, n, config.blocking, 2, seed=1)
    tracer = Tracer()
    result = FTGemm(config, tracer=tracer).gemm(
        a, b, injector=FaultInjector(plan)
    )
    assert result.verified
    injected = tracer.instants("fault.injected")
    assert len(injected) == 2
    assert all(e.args["site"] for e in injected)
    assert tracer.metrics.snapshot()["counters"]["faults.injected"] == 2


# ----------------------------------------------------------------- parallel
def test_parallel_failstop_recovery_span_tree():
    """A 2-thread run with one fail-stop: the dead thread's spans are all
    closed, recovery-epoch spans are present, and the trace validates."""
    n = 40
    a, b = _operands(n, seed=2)
    tracer = Tracer()
    driver = ParallelFTGemm(_config(), n_threads=2, tracer=tracer)
    plan = InjectionPlan(
        schedule={}, fail_stops=(FailStop(thread=1, barrier=3),)
    )
    result = driver.gemm(a, b, injector=FaultInjector(plan))
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)

    names = {e.name for e in tracer.events}
    assert "recover.thread_recovery" in names
    assert "recover.ledger_rebuild" in names
    (death,) = tracer.instants("fault.failstop")
    assert death.tid == 1

    # every span the dead thread opened was closed (they are X events at
    # all) and the per-tid containment check passes for the whole trace
    dead_spans = [e for e in tracer.spans() if e.tid == 1]
    assert dead_spans
    assert all(e.dur_us is not None for e in dead_spans)
    assert validate_chrome_trace(to_chrome_trace(tracer.events)) > 0

    # recovery happens after the dead thread's last span closes
    recovery = tracer.spans("recover.thread_recovery")[0]
    last_dead = max(e.ts_us + e.dur_us for e in dead_spans)
    assert recovery.ts_us >= last_dead - 1e-3

    # barrier-wait histograms exist for both threads; the dead thread
    # recorded fewer waits
    hists = tracer.metrics.snapshot()["histograms"]
    assert hists["barrier.wait_us.t1"]["count"] < \
        hists["barrier.wait_us.t0"]["count"]


def test_parallel_trace_phase_partition():
    n = 48
    a, b = _operands(n, seed=3)
    tracer = Tracer()
    driver = ParallelFTGemm(_config(), n_threads=2, tracer=tracer)
    result = driver.gemm(a, b)
    assert result.verified
    totals = phase_totals(tracer.events)
    for cat in ("pack", "compute", "checksum", "sync", "verify"):
        assert totals[cat] > 0.0, f"no {cat} time measured"
    assert totals["recover"] == 0.0  # clean run
    assert totals["total"] > 0.0


def test_threads_backend_traced_run_validates():
    a, b = _operands(36, seed=4)
    tracer = Tracer()
    driver = ParallelFTGemm(
        _config(), n_threads=2, backend="threads", tracer=tracer
    )
    result = driver.gemm(a, b)
    assert result.verified
    assert validate_chrome_trace(to_chrome_trace(tracer.events)) > 0


def test_parallel_failstop_4threads_full_story():
    """The acceptance-criteria trace: 4 threads, one fail-stop + one
    transient, per-thread pack/compute spans, injection event, recovery."""
    n = 64
    a, b = _operands(n, seed=5)
    config = _config()
    counts = site_invocation_counts_parallel(n, n, n, config.blocking, 4)
    plan = plan_for_gemm(n, n, n, config.blocking, 1, sites=("checksum",),
                         seed=2, counts=counts)
    plan = replace(plan, fail_stops=(FailStop(thread=2, barrier=4),))
    tracer = Tracer()
    driver = ParallelFTGemm(config, n_threads=4, tracer=tracer)
    result = driver.gemm(a, b, injector=FaultInjector(plan))
    assert result.verified
    pack_tids = {e.tid for e in tracer.spans("pack_b")}
    assert len(pack_tids) >= 2 and pack_tids <= {0, 1, 2, 3}
    assert {e.tid for e in tracer.spans("macro_kernel_batched")
            } | {e.tid for e in tracer.spans("macro_kernel")} >= {0, 1, 3}
    assert tracer.instants("fault.injected")
    assert tracer.instants("fault.failstop")
    assert tracer.spans("recover.thread_recovery")
    assert tracer.spans("verify_round")
    assert validate_chrome_trace(to_chrome_trace(tracer.events)) > 0


# ------------------------------------------------------------ disabled path
def test_noop_tracer_overhead_guard():
    """The untraced hot path must not pay for the instrumentation: compare
    the driver against itself with tracing on — the traced run records
    hundreds of spans, the untraced one must be at least as fast within a
    generous noise margin."""
    n = 96
    a, b = _operands(n, seed=6)
    config = FTGemmConfig(
        blocking=BlockingConfig(mr=8, nr=6, mc=48, kc=48, nc=48)
    )

    def best_of(driver, reps=5):
        driver.gemm(a, b)  # warm-up
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            driver.gemm(a, b)
            best = min(best, time.perf_counter() - t0)
        return best

    untraced = best_of(FTGemm(config))
    traced = best_of(FTGemm(config, tracer=Tracer()))
    # wide margin: this guards against accidental always-on tracing, not
    # scheduler noise
    assert untraced < traced * 1.5


# --------------------------------------------------------------------- CLI
def test_cli_trace_subcommand(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "trace.json"
    code = main(["trace", "--size", "48", "--out", str(out)])
    assert code == 0
    assert validate_chrome_trace(str(out)) > 0
    text = capsys.readouterr().out
    assert "checksum overhead" in text
    assert "verified : True" in text


def test_cli_trace_subcommand_parallel_failstop(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "trace.json"
    code = main([
        "trace", "--size", "48", "--threads", "2",
        "--fail-stop", "1:3", "--out", str(out),
    ])
    assert code == 0
    assert validate_chrome_trace(str(out)) > 0
    assert "recovery" in capsys.readouterr().out


def test_cli_inject_trace_flag(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "inject.json"
    code = main([
        "inject", "--size", "48", "--errors", "1", "--trace", str(out),
    ])
    assert code == 0
    assert validate_chrome_trace(str(out)) > 0


def test_cli_validate_trace_and_threads(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "validate.json"
    code = main([
        "validate", "--size", "32", "--threads", "2", "--trace", str(out),
    ])
    assert code == 0
    assert validate_chrome_trace(str(out)) > 0
    assert "counters MATCH" in capsys.readouterr().out
