"""Correction policy: unambiguous repairs only."""

import numpy as np
import pytest

from repro.abft.checksum import col_checksum, row_checksum
from repro.abft.correct import correct_from_residuals
from repro.abft.locate import locate


def residual_pattern(c, c_true, tol=1e-6):
    row_res = row_checksum(c) - row_checksum(c_true)
    col_res = col_checksum(c) - col_checksum(c_true)
    return locate(row_res, col_res, tol, tol)


@pytest.fixture
def base(rng):
    return rng.standard_normal((8, 10))


def test_single_error_corrected(base):
    c = base.copy()
    c[3, 7] += 5.0
    pattern = residual_pattern(c, base)
    outcome = correct_from_residuals(c, pattern, 1e-6, 1e-6)
    assert outcome.n_corrected == 1
    assert outcome.fully_resolved
    assert outcome.corrected[0][:2] == (3, 7)
    np.testing.assert_allclose(c, base, atol=1e-9)


def test_two_errors_distinct_deltas_corrected(base):
    c = base.copy()
    c[1, 2] += 3.0
    c[5, 8] -= 11.0
    pattern = residual_pattern(c, base)
    outcome = correct_from_residuals(c, pattern, 1e-6, 1e-6)
    assert outcome.n_corrected == 2
    assert outcome.fully_resolved
    np.testing.assert_allclose(c, base, atol=1e-9)


def test_ambiguous_equal_deltas_not_guessed(base):
    """Two errors with the same delta admit a transposed assignment; the
    corrector must refuse to guess and hand both lines to recompute."""
    c = base.copy()
    c[1, 2] += 4.0
    c[5, 8] += 4.0
    pattern = residual_pattern(c, base)
    outcome = correct_from_residuals(c, pattern, 1e-6, 1e-6)
    assert outcome.n_corrected == 0
    assert sorted(outcome.recompute_rows) == [1, 5]
    assert sorted(outcome.recompute_cols) == [2, 8]
    # C untouched by the refusal
    assert c[1, 2] == base[1, 2] + 4.0


def test_two_errors_same_row_recompute(base):
    c = base.copy()
    c[2, 1] += 3.0
    c[2, 6] += 9.0
    pattern = residual_pattern(c, base)
    # row 2's residual is 12, matching neither column delta
    outcome = correct_from_residuals(c, pattern, 1e-6, 1e-6)
    assert not outcome.fully_resolved
    assert 2 in outcome.recompute_rows


def test_mixed_unique_and_ambiguous(base):
    c = base.copy()
    c[0, 0] += 2.0   # unique delta: correctable
    c[3, 4] += 7.0   # equal pair: ambiguous
    c[6, 9] += 7.0
    pattern = residual_pattern(c, base)
    outcome = correct_from_residuals(c, pattern, 1e-6, 1e-6)
    assert [t[:2] for t in outcome.corrected] == [(0, 0)]
    assert sorted(outcome.recompute_rows) == [3, 6]
    assert c[0, 0] == pytest.approx(base[0, 0], abs=1e-9)


def test_single_inconsistent_deltas_recompute(base):
    """A flagged (row, col) whose deltas disagree is not one error at that
    cell — e.g. two faults in the same row where one column residual hides
    below tolerance. Correction must not subtract a wrong delta."""
    c = base.copy()
    # craft: row 2 residual 9, col 1 residual 3 -> inconsistent intersection
    c[2, 1] += 3.0
    c[2, 5] += 6.0
    row_res = row_checksum(c) - row_checksum(base)
    col_res = col_checksum(c) - col_checksum(base)
    # mask column 5 with a large tolerance so only (2, 1) is flagged
    tol_rows = np.full(10, 1e-6)
    tol_rows[5] = 100.0
    pattern = locate(row_res, col_res, tol_rows, 1e-6)
    assert pattern.kind == "single"
    outcome = correct_from_residuals(c, pattern, tol_rows, 1e-6)
    assert outcome.n_corrected == 0
    assert outcome.recompute_rows == [2]


def test_checksum_suspect_patterns(base):
    pattern = locate(np.zeros(10), np.array([5.0] + [0.0] * 7), 1e-6, 1e-6)
    c = base.copy()
    outcome = correct_from_residuals(c, pattern, 1e-6, 1e-6)
    assert outcome.checksum_suspect
    assert outcome.n_corrected == 0
    np.testing.assert_array_equal(c, base)


def test_clean_pattern_noop(base):
    pattern = locate(np.zeros(10), np.zeros(8), 1e-6, 1e-6)
    outcome = correct_from_residuals(base.copy(), pattern, 1e-6, 1e-6)
    assert outcome.pattern_kind == "clean"
    assert outcome.fully_resolved


def test_nonfinite_delta_never_subtracted(base):
    c = base.copy()
    c[4, 4] = np.nan
    pattern = residual_pattern(c, base)
    outcome = correct_from_residuals(c, pattern, 1e-6, 1e-6)
    # NaN deltas fail every consistency check -> recompute, not arithmetic
    assert outcome.n_corrected == 0
    assert 4 in outcome.recompute_rows


def test_corrected_deltas_are_recorded(base):
    c = base.copy()
    c[0, 3] += 2.5
    pattern = residual_pattern(c, base)
    outcome = correct_from_residuals(c, pattern, 1e-6, 1e-6)
    (i, j, delta) = outcome.corrected[0]
    assert (i, j) == (0, 3)
    assert delta == pytest.approx(2.5, abs=1e-9)
