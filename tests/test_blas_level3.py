"""Protected Level-3 routines."""

import numpy as np
import pytest

from repro.blas import ft_syrk
from repro.core.config import FTGemmConfig
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive
from repro.gemm.blocking import BlockingConfig
from repro.util.errors import ShapeError


@pytest.fixture
def cfg():
    return FTGemmConfig(blocking=BlockingConfig.small())


def test_syrk_clean(cfg, rng):
    a = rng.standard_normal((18, 12))
    result = ft_syrk(a, config=cfg)
    np.testing.assert_allclose(result.value, a @ a.T, rtol=1e-11, atol=1e-11)
    np.testing.assert_array_equal(result.value, result.value.T)  # exact symmetry


def test_syrk_alpha_beta(cfg, rng):
    a = rng.standard_normal((14, 10))
    c0 = rng.standard_normal((14, 14))
    c0 = 0.5 * (c0 + c0.T)
    result = ft_syrk(a, c0.copy(), alpha=2.0, beta=0.5, config=cfg)
    np.testing.assert_allclose(
        result.value, 2.0 * (a @ a.T) + 0.5 * c0, rtol=1e-10, atol=1e-10
    )


def test_syrk_fault_recovered(cfg, rng):
    a = rng.standard_normal((18, 12))
    inj = FaultInjector(
        InjectionPlan.single("microkernel", 2, model=Additive(magnitude=33.0))
    )
    result = ft_syrk(a, config=cfg, injector=inj)
    assert result.detected >= 1
    np.testing.assert_allclose(result.value, a @ a.T, rtol=1e-10, atol=1e-10)


def test_syrk_rejects_asymmetric_c(cfg, rng):
    a = rng.standard_normal((6, 4))
    with pytest.raises(ShapeError, match="symmetric"):
        ft_syrk(a, rng.standard_normal((6, 6)), beta=1.0, config=cfg)


def test_syrk_rejects_wrong_c_shape(cfg, rng):
    a = rng.standard_normal((6, 4))
    with pytest.raises(ShapeError):
        ft_syrk(a, np.zeros((5, 5)), config=cfg)


def test_syrk_accounts_protection_flops(cfg, rng):
    a = rng.standard_normal((12, 8))
    result = ft_syrk(a, config=cfg)
    assert result.protection_flops > 0
    assert result.scheme == "abft"
