"""Analytical blocking-parameter tuning."""

import pytest

from repro.gemm.tuning import (
    blocking_footprints,
    fits_report,
    tune_blocking,
    tune_micro_tile,
)
from repro.simcpu.machine import MachineSpec
from repro.simcpu.vector import VectorUnit


def test_micro_tile_reproduces_16x14():
    """On the Cascade Lake register file the model lands on the classic
    16x14 double-precision tile (28 accumulators = all 32 zmm used)."""
    tile = tune_micro_tile(MachineSpec.cascade_lake_w2255())
    assert (tile.mr, tile.nr) == (16, 14)
    assert tile.efficiency == 1.0
    assert tile.accumulators == 28


def test_micro_tile_fits_registers_everywhere():
    for machine in (MachineSpec.cascade_lake_w2255(), MachineSpec.small_test_machine()):
        tile = tune_micro_tile(machine)
        VectorUnit(machine).check_tile(tile.mr, tile.nr)  # must not raise


def test_tune_blocking_reproduces_paper_parameters():
    """The headline check: the analytic model derives the paper's published
    M_C=192, K_C=384, N_C=9216 from the W-2255 cache sheet."""
    cfg = tune_blocking(MachineSpec.cascade_lake_w2255())
    assert (cfg.mc, cfg.kc, cfg.nc) == (192, 384, 9216)
    assert (cfg.mr, cfg.nr) == (16, 14)


def test_tune_blocking_respects_explicit_tile():
    cfg = tune_blocking(MachineSpec.cascade_lake_w2255(), mr=8, nr=8)
    assert cfg.mr == 8 and cfg.nr == 8
    assert cfg.mc % 8 == 0


def test_tune_blocking_small_machine_valid():
    machine = MachineSpec.small_test_machine()
    cfg = tune_blocking(machine)
    assert cfg.mc % cfg.mr == 0
    fp = blocking_footprints(cfg)
    assert fp["a_block"] <= machine.cache(2).size_bytes


def test_tune_scales_with_cache_size():
    base = MachineSpec.cascade_lake_w2255()
    cfg_small = tune_blocking(base)
    bigger_l2 = tuple(
        c if c.level != 2 else type(c)(2, 4 * c.size_bytes, c.line_bytes,
                                       c.associativity, c.latency_cycles,
                                       c.bandwidth_bytes_per_cycle, c.shared)
        for c in base.caches
    )
    cfg_big = tune_blocking(base.with_(caches=bigger_l2))
    assert cfg_big.kc > cfg_small.kc
    assert cfg_big.mc > cfg_small.mc


def test_footprints_keys_and_values():
    cfg = tune_blocking(MachineSpec.cascade_lake_w2255())
    fp = blocking_footprints(cfg)
    assert fp["a_block"] == 192 * 384 * 8
    assert fp["b_micro"] == 384 * 14 * 8
    assert fp["c_tile"] == 16 * 14 * 8


def test_fits_report_paper_config():
    machine = MachineSpec.cascade_lake_w2255()
    report = fits_report(tune_blocking(machine), machine)
    assert report["a_block_in_l2"]  # 576 KiB in 1 MiB
    assert report["c_tile_in_registers"]
    assert report["b_panel_within_l3_budget"]
