"""Asyncio gateway: awaiting service responses on an event loop without
a waiter thread per request, against both serving tiers.
"""

import asyncio

import numpy as np

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.serve import GemmService, GemmRequest, ServiceConfig
from repro.serve.proc import AsyncGateway


def _thread_service() -> GemmService:
    return GemmService(
        ServiceConfig(
            workers=2, ft=FTGemmConfig(blocking=BlockingConfig.small())
        )
    ).start()


def test_gateway_call_roundtrip(rng):
    service = _thread_service()
    gateway = AsyncGateway(service)
    a = rng.standard_normal((12, 16))
    b = rng.standard_normal((16, 10))

    async def go():
        return await gateway.call(GemmRequest(a, b), timeout=30.0)

    response = asyncio.run(go())
    assert response.status == "ok"
    np.testing.assert_allclose(response.result.c, a @ b, atol=1e-9)
    service.shutdown()


def test_gateway_holds_many_open_loop_futures(rng):
    """Open-loop: submit everything first, then await the lot; every
    request resolves exactly once with a correct answer."""
    service = _thread_service()
    gateway = AsyncGateway(service)
    operands = [
        (rng.standard_normal((8, 12)), rng.standard_normal((12, 6)))
        for _ in range(12)
    ]

    async def go():
        pending = []
        for a, b in operands:
            request_id, future = await gateway.submit(GemmRequest(a, b))
            assert request_id
            pending.append(future)
        return await asyncio.gather(*pending)

    responses = asyncio.run(go())
    assert len(responses) == len(operands)
    for (a, b), response in zip(operands, responses):
        assert response.status == "ok"
        np.testing.assert_allclose(response.result.c, a @ b, atol=1e-9)
    assert service.duplicates == 0
    service.shutdown()


def test_gateway_resolves_already_completed_future(rng):
    """A response that lands before the callback is attached must still
    resolve the asyncio future (the one-shot guard's immediate path)."""
    service = _thread_service()
    a = rng.standard_normal((6, 8))
    b = rng.standard_normal((8, 4))
    ticket = service.submit(GemmRequest(a, b))
    ticket.result(30.0)  # response already delivered
    gateway = AsyncGateway(service)

    async def go():
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        ticket.future.add_done_callback(
            lambda response: loop.call_soon_threadsafe(
                future.set_result, response
            )
            if not future.done() else None
        )
        return await asyncio.wait_for(future, 5.0)

    response = asyncio.run(go())
    assert response.status == "ok"
    assert gateway.service is service
    service.shutdown()


def test_gateway_over_process_tier(rng):
    service = GemmService(
        ServiceConfig(
            processes=2,
            workers=2,
            ft=FTGemmConfig(blocking=BlockingConfig.small()),
        )
    ).start()
    gateway = AsyncGateway(service)
    operands = [
        (rng.standard_normal((10, 16)), rng.standard_normal((16, 12)))
        for _ in range(6)
    ]

    async def go():
        futures = [
            (await gateway.submit(GemmRequest(a, b)))[1]
            for a, b in operands
        ]
        return await asyncio.gather(*futures)

    responses = asyncio.run(go())
    for (a, b), response in zip(operands, responses):
        assert response.status == "ok"
        np.testing.assert_allclose(response.result.c, a @ b, atol=1e-9)
    service.shutdown()
