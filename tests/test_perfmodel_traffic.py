"""DRAM traffic model."""

import pytest

from repro.gemm.blocking import BlockingConfig
from repro.perfmodel.traffic import (
    TrafficReport,
    _spill_fraction,
    ft_extra_traffic,
    gemm_dram_traffic,
)
from repro.simcpu.machine import MachineSpec
from repro.util.errors import ConfigError


@pytest.fixture
def machine():
    return MachineSpec.cascade_lake_w2255()


@pytest.fixture
def blocking():
    return BlockingConfig()


def test_spill_fraction():
    assert _spill_fraction(100, 200) == 0.0
    assert _spill_fraction(200, 200) == 0.0
    assert _spill_fraction(400, 200) == 0.5
    assert _spill_fraction(2000, 200) == 0.9


def test_b_read_exactly_once(machine, blocking):
    t = gemm_dram_traffic(4096, 4096, 4096, blocking, machine)
    assert t.b_bytes == 4096 * 4096 * 8


def test_c_update_stream_exact(machine, blocking):
    """C is read+written once per K-block plus the scaling store."""
    from repro.gemm.blocking import n_blocks

    for k in (2048, 4096):
        t = gemm_dram_traffic(2048, 2048, k, blocking, machine)
        n_p = n_blocks(k, blocking.kc)
        assert t.c_bytes == pytest.approx(2048 * 2048 * 8 * (2 * n_p + 1))


def test_beta_adds_one_c_read(machine, blocking):
    t0 = gemm_dram_traffic(1024, 1024, 1024, blocking, machine)
    t1 = gemm_dram_traffic(1024, 1024, 1024, blocking, machine, beta_nonzero=True)
    assert t1.c_bytes - t0.c_bytes == 1024 * 1024 * 8


def test_btilde_spills_only_past_l3(machine, blocking):
    # at n=4096 the actual B̃ panel is 384*4096*8 = 12.6 MB < L3: no spill
    small = gemm_dram_traffic(4096, 4096, 4096, blocking, machine)
    assert small.btilde_spill_bytes == 0.0
    # at n=10240 the first j block is the full 9216 -> 28 MB > L3: spills
    big = gemm_dram_traffic(10240, 10240, 10240, blocking, machine)
    assert big.btilde_spill_bytes > 0.0


def test_a_reread_only_when_multiple_j_blocks(machine, blocking):
    # n <= NC: one j block, A read exactly once
    t = gemm_dram_traffic(4096, 4096, 4096, blocking, machine)
    assert t.a_bytes == 4096 * 4096 * 8
    # n > NC: the second j block re-reads A (it exceeds L3) — two sweeps,
    # but never more (a (p, j) pass touches only its column slice of A)
    t2 = gemm_dram_traffic(10240, 10240, 4096, blocking, machine)
    raw = 10240 * 4096 * 8
    assert raw < t2.a_bytes <= 2 * raw


def test_total_is_sum(machine, blocking):
    t = gemm_dram_traffic(1000, 1000, 1000, blocking, machine)
    assert t.total == pytest.approx(
        t.a_bytes + t.b_bytes + t.btilde_spill_bytes + t.c_bytes
    )


def test_invalid_dims_rejected(machine, blocking):
    with pytest.raises(ConfigError):
        gemm_dram_traffic(0, 10, 10, blocking, machine)


def test_ft_fused_adds_nothing(blocking):
    assert ft_extra_traffic(4096, 4096, 4096, blocking, mode="ft") == 0.0


def test_ft_classic_adds_encode_and_verify_sweeps(blocking):
    extra = ft_extra_traffic(4096, 4096, 4096, blocking, mode="classic")
    n_p = -(-4096 // 384)
    expected = 8 * (2 * 4096**2 + 2 * 4096**2 + 4096**2 * (n_p + 1))
    assert extra == pytest.approx(expected)


def test_ft_mode_validated(blocking):
    with pytest.raises(ConfigError):
        ft_extra_traffic(10, 10, 10, blocking, mode="bogus")
