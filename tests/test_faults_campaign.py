"""Campaign planning and execution."""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.faults.campaign import (
    CampaignConfig,
    errors_per_call_from_rate,
    plan_for_gemm,
    run_campaign,
    site_invocation_counts,
    site_invocation_counts_parallel,
)
from repro.faults.injector import FaultInjector
from repro.gemm.blocking import BlockingConfig
from repro.util.errors import ConfigError
from repro.util.rng import make_rng


@pytest.fixture
def cfg():
    return BlockingConfig.small()


def test_site_counts_match_actual_serial_visits(cfg, rng):
    """The planner's invocation counts must mirror the driver exactly —
    otherwise scheduled strikes never fire."""
    m, n, k = 21, 26, 17
    counts = site_invocation_counts(m, n, k, cfg)
    # schedule one strike at the LAST invocation of every site
    plan_schedule = {site: (cnt - 1,) for site, cnt in counts.items()}
    from repro.faults.injector import InjectionPlan

    inj = FaultInjector(InjectionPlan(schedule=plan_schedule))
    FTGemm(FTGemmConfig(blocking=cfg)).gemm(
        rng.standard_normal((m, k)), rng.standard_normal((k, n)), injector=inj
    )
    assert inj.n_pending == 0, "some scheduled strikes never fired"
    for site, cnt in counts.items():
        assert inj.invocations(site) == cnt, site


def test_site_counts_match_actual_parallel_visits(cfg, rng):
    m, n, k = 25, 30, 17
    threads = 3
    counts = site_invocation_counts_parallel(m, n, k, cfg, threads)
    plan_schedule = {site: (cnt - 1,) for site, cnt in counts.items() if cnt > 0}
    from repro.faults.injector import InjectionPlan

    inj = FaultInjector(InjectionPlan(schedule=plan_schedule))
    ParallelFTGemm(FTGemmConfig(blocking=cfg), n_threads=threads).gemm(
        rng.standard_normal((m, k)), rng.standard_normal((k, n)), injector=inj
    )
    assert inj.n_pending == 0
    for site, cnt in counts.items():
        assert inj.invocations(site) == cnt, site


def test_plan_distributes_requested_errors(cfg):
    plan = plan_for_gemm(40, 40, 40, cfg, 7, seed=1)
    assert plan.total_planned == 7
    for site in plan.schedule:
        assert site in ("microkernel", "pack_a", "pack_b")


def test_plan_deterministic(cfg):
    p1 = plan_for_gemm(30, 30, 30, cfg, 5, seed=2)
    p2 = plan_for_gemm(30, 30, 30, cfg, 5, seed=2)
    assert p1.schedule == p2.schedule


def test_plan_rejects_overflow(cfg):
    with pytest.raises(ConfigError, match="slots"):
        plan_for_gemm(8, 8, 8, cfg, 10_000)


def test_plan_rejects_negative(cfg):
    with pytest.raises(ConfigError):
        plan_for_gemm(8, 8, 8, cfg, -1)


def test_rate_conversion_poisson_mean():
    rng = make_rng(0)
    draws = [errors_per_call_from_rate(600, 2.0, rng) for _ in range(500)]
    assert np.mean(draws) == pytest.approx(600 * 2.0 / 60.0, rel=0.1)


def test_rate_conversion_zero():
    rng = make_rng(0)
    assert errors_per_call_from_rate(0.0, 5.0, rng) == 0


def test_rate_conversion_validation():
    rng = make_rng(0)
    with pytest.raises(ConfigError):
        errors_per_call_from_rate(-1.0, 1.0, rng)
    with pytest.raises(ConfigError):
        errors_per_call_from_rate(1.0, 0.0, rng)


def test_campaign_config_validation():
    with pytest.raises(ConfigError):
        CampaignConfig(m=8, n=8, k=8, errors_per_call=None)
    with pytest.raises(ConfigError):
        CampaignConfig(m=8, n=8, k=8, errors_per_call=1, rate_per_minute=5.0)
    with pytest.raises(ConfigError):
        CampaignConfig(m=8, n=8, k=8, errors_per_call=None, rate_per_minute=5.0)
    with pytest.raises(ConfigError):
        CampaignConfig(m=8, n=8, k=8, runs=0)


def test_campaign_serial_all_correct(cfg):
    result = run_campaign(
        CampaignConfig(m=33, n=29, k=21, runs=3, errors_per_call=2, seed=4),
        FTGemm(FTGemmConfig(blocking=cfg)),
    )
    assert result.runs == 3
    assert result.injected == 6
    assert result.all_correct
    assert result.detection_rate >= 0.0
    assert result.max_final_error < 1e-8


def test_campaign_with_beta(cfg):
    result = run_campaign(
        CampaignConfig(
            m=20, n=20, k=20, runs=2, errors_per_call=1, seed=5,
            alpha=1.5, beta=-0.5,
        ),
        FTGemm(FTGemmConfig(blocking=cfg)),
    )
    assert result.all_correct


def test_campaign_parallel_driver(cfg):
    result = run_campaign(
        CampaignConfig(m=24, n=24, k=16, runs=2, errors_per_call=2, seed=6),
        ParallelFTGemm(FTGemmConfig(blocking=cfg), n_threads=3),
    )
    assert result.all_correct
    assert result.injected == 4


def test_campaign_zero_errors_clean(cfg):
    result = run_campaign(
        CampaignConfig(m=16, n=16, k=16, runs=2, errors_per_call=0),
        FTGemm(FTGemmConfig(blocking=cfg)),
    )
    assert result.injected == 0
    assert result.detected == 0
    assert result.all_correct
