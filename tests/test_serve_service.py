"""GemmService end to end: exactly-once completion, shutdown modes,
retries, quarantine, degraded mode, the sync client, and observability."""

import threading
import time

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.gemm.blocking import BlockingConfig
from repro.serve import (
    GemmClient,
    GemmRequest,
    GemmService,
    ResponseFuture,
    GemmResponse,
    ServiceConfig,
)
from repro.util.errors import ConfigError, ServeError


def _config(**kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault(
        "ft", FTGemmConfig(blocking=BlockingConfig.small())
    )
    return ServiceConfig(**kwargs)


def _operands(m=6, k=8, n=5, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


# -------------------------------------------------------------- happy paths
def test_submit_executes_and_verifies():
    a, b = _operands()
    with GemmService(_config()) as service:
        ticket = service.submit(GemmRequest(a, b))
        response = ticket.result(10.0)
    assert response.ok and response.verified
    assert response.result.request_id == response.request_id
    np.testing.assert_allclose(response.result.c, a @ b, rtol=1e-9,
                               atol=1e-9)


def test_coalesced_burst_splits_results_correctly():
    rng = np.random.default_rng(1)
    b = rng.standard_normal((8, 5))
    operands = [rng.standard_normal((3, 8)) for _ in range(12)]
    with GemmService(_config(workers=1, max_batch=16)) as service:
        tickets = [service.submit(GemmRequest(a, b)) for a in operands]
        service.drain()
        responses = [t.result(10.0) for t in tickets]
    assert all(r.ok for r in responses)
    assert max(r.batch_size for r in responses) > 1  # some coalescing
    for a, r in zip(operands, responses):
        np.testing.assert_allclose(r.result.c, a @ b, rtol=1e-9, atol=1e-9)


def test_drain_answers_in_flight_requests():
    """Close admission with work still queued: every queued request must
    execute (not cancel) and the drain must not hang."""
    rng = np.random.default_rng(2)
    b = rng.standard_normal((8, 5))
    service = GemmService(_config(workers=1)).start()
    tickets = [
        service.submit(GemmRequest(rng.standard_normal((4, 8)), b))
        for _ in range(24)
    ]
    service.drain()  # returns only after the backlog is executed
    responses = [t.result(1.0) for t in tickets]  # short: already resolved
    assert all(r.ok for r in responses)
    assert service.duplicates == 0


def test_shutdown_without_drain_cancels_backlog():
    rng = np.random.default_rng(3)
    b = rng.standard_normal((8, 5))
    # zero workers would reject config; use a scheduler-stalling deadline
    # instead: fill the queue faster than one worker can drain it, then
    # shut down hard.
    service = GemmService(_config(workers=1)).start()
    tickets = [
        service.submit(GemmRequest(rng.standard_normal((4, 8)), b))
        for _ in range(32)
    ]
    service.shutdown(drain=False)
    statuses = {t.result(5.0).status for t in tickets}
    assert statuses <= {"ok", "cancelled"}
    assert service.duplicates == 0
    # every ticket got exactly one answer
    assert sum(service.completed.values()) == len(tickets)


def test_submit_after_shutdown_is_refused():
    service = GemmService(_config()).start()
    service.drain()
    a, b = _operands()
    with pytest.raises(ConfigError, match="not running"):
        service.submit(GemmRequest(a, b))


def test_expire_while_queued_gets_expired_response():
    rng = np.random.default_rng(4)
    b = rng.standard_normal((8, 5))
    # one slow-ish worker and a deadline shorter than the queue wait
    service = GemmService(_config(workers=1)).start()
    blocker = service.submit(
        GemmRequest(rng.standard_normal((32, 8)), b, priority=10)
    )
    doomed = service.submit(
        GemmRequest(rng.standard_normal((4, 8)), b.copy(),
                    deadline_s=0.001)
    )
    time.sleep(0.05)
    service.drain()
    assert blocker.result(5.0).ok
    response = doomed.result(5.0)
    assert response.status == "expired"
    assert service.completed.get("expired", 0) == 1


def test_reject_policy_resolves_future_with_rejection():
    a, b = _operands()
    service = GemmService(
        _config(workers=1, capacity=1, policy="reject")
    ).start()
    tickets = [service.submit(GemmRequest(a.copy(), b.copy()))
               for _ in range(12)]
    service.drain()
    statuses = [t.result(5.0).status for t in tickets]
    assert statuses.count("rejected") >= 1
    assert all(s in ("ok", "rejected") for s in statuses)


def test_shed_policy_answers_the_victim():
    rng = np.random.default_rng(5)
    b = rng.standard_normal((8, 5))
    service = GemmService(
        _config(workers=1, capacity=2, policy="shed-lowest")
    ).start()
    low = [
        service.submit(
            GemmRequest(rng.standard_normal((16, 8)), b, priority=0)
        )
        for _ in range(3)
    ]
    high = [
        service.submit(
            GemmRequest(rng.standard_normal((16, 8)), b, priority=9)
        )
        for _ in range(3)
    ]
    service.drain()
    low_statuses = [t.result(5.0).status for t in low]
    high_statuses = [t.result(5.0).status for t in high]
    assert all(s in ("ok", "shed", "rejected") for s in low_statuses)
    # shedding happened and was answered through the victim's own future
    assert sum(service.completed.values()) == 6


# ------------------------------------------------------------- exactly once
def test_future_is_one_shot():
    future = ResponseFuture()
    first = GemmResponse(request_id="r1", status="ok")
    second = GemmResponse(request_id="r1", status="failed")
    assert future.set(first)
    assert not future.set(second)
    assert future.result(0.1) is first


def test_future_done_callback_fires_once():
    future = ResponseFuture()
    seen = []
    future.add_done_callback(seen.append)
    response = GemmResponse(request_id="r1", status="ok")
    future.set(response)
    future.set(GemmResponse(request_id="r1", status="failed"))
    future.add_done_callback(seen.append)  # late subscriber: fires now
    assert seen == [response, response]


def test_duplicate_completion_is_counted_not_delivered():
    a, b = _operands()
    service = GemmService(_config()).start()
    ticket = service.submit(GemmRequest(a, b))
    response = ticket.result(10.0)
    # simulate a buggy double-completion: the future refuses, the metric
    # records it
    request = GemmRequest(a, b)
    request.request_id = response.request_id
    service._complete(
        request, GemmResponse(request_id=response.request_id, status="failed")
    )
    assert service.duplicates == 1
    assert ticket.result(0.1) is response  # the original answer stands
    service.drain()


# ----------------------------------------------------- retries / quarantine
class _SubstrateCrash(FaultInjector):
    """A substrate death mid-call: the first instrumented site the driver
    touches raises instead of corrupting — nothing the in-call escalation
    ladder can repair, so the attempt fails and the pool must retry."""

    def __init__(self):
        super().__init__(InjectionPlan.empty())

    def visit(self, site, array, tid=None):
        raise RuntimeError("substrate crashed mid-call")


class _FlakyInjector:
    """Injector factory driving a deterministic failure script keyed on
    (request_id, attempt): sabotaged attempts die mid-call (the in-call
    ABFT ladder repairs mere data corruption, so forcing a *service-level*
    retry needs an unrecoverable substrate failure)."""

    def __init__(self, fail_attempts):
        self.fail_attempts = fail_attempts  # dict request_id -> set(attempts)
        self.calls = []

    def __call__(self, shape, attempt, request_id, service_config):
        self.calls.append((request_id, attempt))
        if attempt in self.fail_attempts.get(request_id, ()):
            return _SubstrateCrash()
        return None


def test_retry_recovers_from_poisoned_attempt():
    a, b = _operands(m=6, k=8, n=5)
    service = GemmService(
        _config(workers=1, retry_budget=2, backoff_base_s=0.0),
        injector_factory=_FlakyInjector({"r000000": {0}}),
    ).start()
    ticket = service.submit(GemmRequest(a, b))
    service.drain()
    response = ticket.result(10.0)
    assert response.ok
    assert response.attempts == 2  # first attempt poisoned, retry clean
    np.testing.assert_allclose(response.result.c, a @ b, rtol=1e-9,
                               atol=1e-9)
    assert service.metrics.snapshot()["counters"]["serve.retries"] == 1.0


def test_exhausted_retry_budget_fails_cleanly():
    a, b = _operands()
    service = GemmService(
        _config(workers=1, retry_budget=1, backoff_base_s=0.0,
                quarantine_after=100),
        injector_factory=_FlakyInjector({"r000000": {0, 1}}),
    ).start()
    ticket = service.submit(GemmRequest(a, b))
    service.drain()
    response = ticket.result(10.0)
    assert response.status == "failed"
    assert response.attempts == 2
    assert response.error
    assert service.duplicates == 0


def test_repeated_failures_quarantine_and_replace_worker():
    rng = np.random.default_rng(7)
    fail_all = {f"r{i:06d}": {0, 1} for i in range(3)}
    service = GemmService(
        _config(workers=1, retry_budget=1, backoff_base_s=0.0,
                quarantine_after=2),
        injector_factory=_FlakyInjector(fail_all),
    ).start()
    tickets = [
        service.submit(
            GemmRequest(rng.standard_normal((4, 8)),
                        rng.standard_normal((8, 5)))
        )
        for i in range(3)
    ]
    # wait the failures out while the service is live, so the quarantine
    # (and its replacement spawn) happens before shutdown
    assert [t.result(10.0).status for t in tickets] == ["failed"] * 3
    # a fourth, clean request: must be served by the replacement worker
    a, b = _operands(seed=8)
    clean = service.submit(GemmRequest(a, b))
    service.drain()
    response = clean.result(10.0)
    assert response.ok
    assert service.pool.quarantined  # at least one worker retired
    counters = service.metrics.snapshot()["counters"]
    assert counters["serve.worker_quarantined"] >= 1.0
    # the replacement has a fresh index
    assert response.worker not in service.pool.quarantined


def test_failed_request_in_multi_item_batch_does_not_strand_others():
    """Two same-bucket ``beta != 0`` requests travel as one *non-coalesced*
    multi-item batch (stacking cannot express the C0 leg, so they execute
    request-by-request). The first exhausting its retry budget must not
    short-circuit the loop: the second still executes and gets its answer
    (regression: ``all()`` over a generator stranded it forever)."""
    rng = np.random.default_rng(11)
    b = rng.standard_normal((8, 5))
    service = GemmService(
        _config(workers=1, retry_budget=0, backoff_base_s=0.0,
                window_s=0.25, quarantine_after=100),
        injector_factory=_FlakyInjector({"r000000": {0}}),
    ).start()
    a1, a2 = rng.standard_normal((4, 8)), rng.standard_normal((4, 8))
    c0 = np.ones((4, 5))
    doomed = service.submit(GemmRequest(a1, b, c0=c0.copy(), beta=2.0))
    survivor = service.submit(GemmRequest(a2, b, c0=c0.copy(), beta=2.0))
    service.drain()
    failed = doomed.result(10.0)
    okay = survivor.result(10.0)
    assert failed.status == "failed"
    assert okay.ok
    assert okay.batch_size == 2  # they really shared one batch
    np.testing.assert_allclose(okay.result.c, a2 @ b + 2.0 * c0,
                               rtol=1e-9, atol=1e-9)
    assert service.duplicates == 0
    assert sum(service.completed.values()) == 2


def test_per_request_bookkeeping_is_pruned_after_completion():
    """A long-running service must not grow with total traffic served:
    _complete prunes the in-flight maps, late result() lookups are served
    from the bounded recently-completed map, and span lanes stay unique
    across the pruning."""
    rng = np.random.default_rng(12)
    b = rng.standard_normal((8, 5))
    service = GemmService(_config(workers=1, trace=True)).start()
    tickets = [
        service.submit(GemmRequest(rng.standard_normal((4, 8)), b))
        for _ in range(8)
    ]
    service.drain()
    assert all(t.result(10.0).ok for t in tickets)
    assert not service._futures and not service._lanes
    assert not service._started_at and not service._span_t0
    # late result() by id still answers from the bounded recent map
    response = service.result(tickets[0].request_id, timeout=0.1)
    assert response.ok
    # a late double-completion still hits the one-shot guard
    dup = GemmRequest(rng.standard_normal((4, 8)), b)
    dup.request_id = tickets[0].request_id
    service._complete(
        dup, GemmResponse(request_id=dup.request_id, status="failed")
    )
    assert service.duplicates == 1
    assert service.result(tickets[0].request_id, timeout=0.1) is response
    # lanes never get reused even though the lane map was pruned
    spans = service.tracer.spans("serve.request")
    assert len({s.tid for s in spans}) == len(spans) == 8


# ------------------------------------------------------------ degraded mode
def test_degraded_mode_kicks_in_under_queue_pressure():
    rng = np.random.default_rng(9)
    b = rng.standard_normal((8, 5))
    service = GemmService(
        _config(workers=1, degraded_depth=4, max_batch=1)
    ).start()
    tickets = [
        service.submit(GemmRequest(rng.standard_normal((4, 8)), b))
        for _ in range(16)
    ]
    service.drain()
    responses = [t.result(10.0) for t in tickets]
    assert all(r.ok for r in responses)
    assert any(r.degraded for r in responses)  # pressure hit the valve
    counters = service.metrics.snapshot()["counters"]
    assert counters["serve.degraded_batches"] >= 1.0
    # correctness is never traded away
    for r in responses:
        assert r.verified


# ------------------------------------------------------------------- client
def test_client_round_trip_and_unwrap():
    a, b = _operands()
    with GemmService(_config()) as service:
        client = GemmClient(service)
        c = client.gemm(a, b)
        np.testing.assert_allclose(c, a @ b, rtol=1e-9, atol=1e-9)


def test_client_raises_serve_error_with_response_attached():
    a, b = _operands()
    service = GemmService(
        _config(workers=1, retry_budget=0, backoff_base_s=0.0),
        injector_factory=_FlakyInjector({"r000000": {0}}),
    ).start()
    client = GemmClient(service)
    with pytest.raises(ServeError) as excinfo:
        client.gemm(a, b)
    assert excinfo.value.response is not None
    assert excinfo.value.response.status == "failed"
    service.drain()


# ------------------------------------------------------------ observability
def test_service_metrics_and_trace_account_for_requests(tmp_path):
    from repro.obs.export import validate_chrome_trace, write_chrome_trace

    rng = np.random.default_rng(10)
    b = rng.standard_normal((8, 5))
    service = GemmService(_config(workers=1, trace=True)).start()
    tickets = [
        service.submit(GemmRequest(rng.standard_normal((4, 8)), b))
        for _ in range(6)
    ]
    service.drain()
    assert all(t.result(10.0).ok for t in tickets)
    counters = service.metrics.snapshot()["counters"]
    assert counters["serve.admitted"] == 6.0
    assert counters["serve.responses.ok"] == 6.0
    hists = service.metrics.snapshot()["histograms"]
    assert hists["serve.latency_ms"]["count"] == 6
    assert hists["serve.batch_size"]["count"] >= 1
    # one serve.request span per request, on its own lane; batch spans on
    # worker lanes — and the whole trace passes the structural validator
    spans = service.tracer.spans("serve.request")
    assert len(spans) == 6
    assert len({s.tid for s in spans}) == 6
    assert all(s.tid >= 10000 for s in spans)
    batch_spans = service.tracer.spans("serve.batch")
    assert batch_spans and all(1000 <= s.tid < 10000 for s in batch_spans)
    trace = write_chrome_trace(tmp_path / "serve.json", service.tracer)
    assert validate_chrome_trace(trace) > 0


def test_service_config_validation():
    with pytest.raises(ConfigError, match="workers"):
        ServiceConfig(workers=0).validate()
    with pytest.raises(ConfigError, match="retry_budget"):
        ServiceConfig(retry_budget=-1).validate()
    with pytest.raises(ConfigError, match="quarantine_after"):
        ServiceConfig(quarantine_after=0).validate()
    with pytest.raises(ConfigError, match="degraded_depth"):
        ServiceConfig(degraded_depth=0).validate()
    # driver-side inconsistency surfaces through the same gate
    with pytest.raises(ConfigError, match="eager"):
        ServiceConfig(
            ft=FTGemmConfig(verify_mode="eager"), gemm_threads=2
        ).validate()
