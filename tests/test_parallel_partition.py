"""Work partitioning."""

import pytest

from repro.parallel.partition import owner_of_row, partition_panels, partition_rows
from repro.util.errors import ConfigError


def test_rows_cover_exactly():
    part = partition_rows(100, 7)
    assert len(part) == 7
    assert sum(length for _, length in part) == 100
    pos = 0
    for start, length in part:
        assert start == pos
        pos += length


def test_rows_balanced_within_one():
    lengths = [length for _, length in partition_rows(100, 7)]
    assert max(lengths) - min(lengths) <= 1


def test_rows_more_threads_than_rows():
    part = partition_rows(3, 5)
    lengths = [length for _, length in part]
    assert lengths == [1, 1, 1, 0, 0]


def test_rows_single_thread():
    assert partition_rows(42, 1) == [(0, 42)]


def test_rows_validation():
    with pytest.raises(ConfigError):
        partition_rows(10, 0)
    with pytest.raises(ConfigError):
        partition_rows(-1, 2)


def test_panels_cover():
    part = partition_panels(10, 3)
    assert sum(cnt for _, cnt in part) == 10
    assert [f for f, _ in part] == [0, 4, 7]


def test_owner_of_row():
    part = partition_rows(10, 3)  # (0,4) (4,3) (7,3)
    assert owner_of_row(0, part) == 0
    assert owner_of_row(3, part) == 0
    assert owner_of_row(4, part) == 1
    assert owner_of_row(9, part) == 2
    with pytest.raises(ConfigError):
        owner_of_row(10, part)


def test_every_row_has_exactly_one_owner():
    part = partition_rows(23, 4)
    owners = [owner_of_row(r, part) for r in range(23)]
    assert owners == sorted(owners)  # contiguous ownership
    for tid, (start, length) in enumerate(part):
        assert owners[start : start + length] == [tid] * length
