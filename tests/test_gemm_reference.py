"""Reference GEMM oracles."""

import numpy as np
import pytest

from repro.gemm.reference import gemm_naive, gemm_reference
from repro.util.errors import ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(4)


def test_reference_plain(rng):
    a = rng.standard_normal((5, 4))
    b = rng.standard_normal((4, 6))
    np.testing.assert_allclose(gemm_reference(a, b), a @ b)


def test_reference_alpha_beta(rng):
    a = rng.standard_normal((5, 4))
    b = rng.standard_normal((4, 6))
    c = rng.standard_normal((5, 6))
    out = gemm_reference(a, b, c, alpha=2.5, beta=-0.5)
    np.testing.assert_allclose(out, 2.5 * (a @ b) - 0.5 * c)


def test_reference_does_not_mutate_c(rng):
    a = rng.standard_normal((3, 3))
    b = rng.standard_normal((3, 3))
    c = rng.standard_normal((3, 3))
    c_copy = c.copy()
    gemm_reference(a, b, c, beta=2.0)
    np.testing.assert_array_equal(c, c_copy)


def test_reference_beta_zero_ignores_c_values(rng):
    a = rng.standard_normal((3, 3))
    b = rng.standard_normal((3, 3))
    c = np.full((3, 3), np.nan)  # beta=0 must not read C (BLAS convention)
    out = gemm_reference(a, b, c, beta=0.0)
    assert np.isfinite(out).all()


def test_reference_shape_errors(rng):
    with pytest.raises(ShapeError):
        gemm_reference(rng.standard_normal((3, 4)), rng.standard_normal((5, 6)))


def test_naive_matches_reference(rng):
    a = rng.standard_normal((4, 5))
    b = rng.standard_normal((5, 3))
    c = rng.standard_normal((4, 3))
    np.testing.assert_allclose(
        gemm_naive(a, b, c, alpha=1.5, beta=0.25),
        gemm_reference(a, b, c, alpha=1.5, beta=0.25),
        rtol=1e-12,
    )


def test_naive_plain(rng):
    a = rng.standard_normal((3, 2))
    b = rng.standard_normal((2, 4))
    np.testing.assert_allclose(gemm_naive(a, b), a @ b, rtol=1e-13)
