"""Schedule-independence of parallel fault injection.

The canonical thread map numbers every instrumented visit by the position
it would have in the deterministic simulated schedule, so *which* visits
are struck — and which element of the visited array is corrupted — must be
identical across team backends and within-round step orders. These are the
property tests the module docstring of ``repro.parallel.team`` promises.
"""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.parallel import ParallelFTGemm
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive, FailStop
from repro.gemm.blocking import BlockingConfig


@pytest.fixture
def operands(rng):
    a = rng.standard_normal((22, 16))
    b = rng.standard_normal((16, 24))
    return a, b


PLAN = InjectionPlan(
    schedule={
        "microkernel": (3, 11, 20),
        "pack_a": (1,),
        "pack_b": (0, 2),
        "checksum": (2, 5),
        "scale": (1,),
    },
    model=Additive(magnitude=33.0),
    seed=7,
)


def _fingerprint(injector):
    return [
        (r.site, r.invocation, r.index, r.old_value, r.new_value, r.n_elements)
        for r in injector.canonical_records
    ]


def _run(operands, *, backend, order=None, n_threads=3, plan=PLAN):
    a, b = operands
    cfg = FTGemmConfig(blocking=BlockingConfig.small())
    injector = FaultInjector(plan)
    result = ParallelFTGemm(
        cfg, n_threads=n_threads, backend=backend, order=order
    ).gemm(a, b, injector=injector)
    return result, injector


def test_rotated_simulated_orders_strike_identically(operands):
    baseline, base_inj = _run(operands, backend="simulated")
    for rotation in (1, 2):
        order = [(t + rotation) % 3 for t in range(3)]
        result, injector = _run(operands, backend="simulated", order=order)
        assert _fingerprint(injector) == _fingerprint(base_inj)
        np.testing.assert_array_equal(result.c, baseline.c)


def test_thread_team_strikes_identically_to_simulated(operands):
    _, sim_inj = _run(operands, backend="simulated")
    _, thr_inj = _run(operands, backend="threads")
    assert _fingerprint(sim_inj) == _fingerprint(thr_inj)
    assert sim_inj.n_injected == PLAN.total_planned


def test_record_tids_follow_canonical_ownership(operands):
    """Each strike is attributed to the thread whose lane contains the
    canonical invocation — the same tid on every backend."""
    _, sim_inj = _run(operands, backend="simulated")
    _, thr_inj = _run(operands, backend="threads")
    sim_tids = {(r.site, r.invocation): r.tid for r in sim_inj.records}
    thr_tids = {(r.site, r.invocation): r.tid for r in thr_inj.records}
    assert sim_tids == thr_tids
    assert all(tid is not None for tid in sim_tids.values())


@pytest.mark.parametrize("backend", ["simulated", "threads"])
def test_fail_stop_does_not_shift_survivor_strikes(operands, backend):
    """A dead thread stops consuming its lane; survivors' strikes must land
    exactly where they would in the fault-free schedule (per-tid lanes,
    not a shared global counter)."""
    clean_plan = InjectionPlan(
        schedule={"microkernel": (3, 11, 20)}, model=Additive(magnitude=33.0),
        seed=7,
    )
    dead_plan = InjectionPlan(
        schedule={"microkernel": (3, 11, 20)}, model=Additive(magnitude=33.0),
        seed=7, fail_stops=(FailStop(thread=2, barrier=2),),
    )
    _, clean_inj = _run(operands, backend="simulated", plan=clean_plan)
    result, dead_inj = _run(operands, backend=backend, plan=dead_plan)
    clean = {(r.site, r.invocation): r.index for r in clean_inj.records}
    dead = {(r.site, r.invocation): r.index for r in dead_inj.records}
    # every strike that still happened hit the same visit and same element
    # (values may differ: stale shared-B̃ contaminates survivor tiles until
    # the recovery epoch repairs them — placement must not)
    for key, index in dead.items():
        assert clean[key] == index
    assert result.verified
