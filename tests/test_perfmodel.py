"""End-to-end performance model: constants, timing, per-mode breakdowns."""

import pytest

from repro.gemm.blocking import BlockingConfig
from repro.perfmodel.constants import ModelConstants
from repro.perfmodel.gemm_model import MODES, GemmPerfModel
from repro.perfmodel.overhead import average_overheads, overhead_curve
from repro.perfmodel.roofline import arithmetic_intensity, attainable_gflops, ridge_point
from repro.perfmodel.timing import TimingModel
from repro.simcpu.machine import MachineSpec
from repro.util.errors import ConfigError


@pytest.fixture
def machine():
    return MachineSpec.cascade_lake_w2255()


# ------------------------------------------------------------- constants
def test_constants_validated():
    with pytest.raises(ConfigError):
        ModelConstants(kernel_sustained_eff=0.0)
    with pytest.raises(ConfigError):
        ModelConstants(parallel_dram_eff=1.5)
    with pytest.raises(ConfigError):
        ModelConstants(barrier_seconds=-1.0)


def test_constants_with(machine):
    c = ModelConstants().with_(single_core_dram_gbs=20.0)
    assert c.single_core_dram_gbs == 20.0


# ---------------------------------------------------------------- timing
def test_timing_cycles(machine):
    t = TimingModel(machine)
    assert t.cycles_to_seconds(3.5e9) == pytest.approx(1.0)


def test_timing_bandwidth_serial_vs_parallel(machine):
    serial = TimingModel(machine, threads=1)
    parallel = TimingModel(machine, threads=10)
    assert serial.dram_bandwidth_gbs == ModelConstants().single_core_dram_gbs
    assert parallel.dram_bandwidth_gbs > serial.dram_bandwidth_gbs
    # socket-capped, not 10x a single core
    assert parallel.dram_bandwidth_gbs < 10 * serial.dram_bandwidth_gbs


def test_timing_combine_overlap(machine):
    t = TimingModel(machine)
    # overlap=0.95: the shorter leg contributes 5% residue
    assert t.combine(1.0, 0.4) == pytest.approx(1.0 + 0.05 * 0.4)
    assert t.combine(0.4, 1.0) == pytest.approx(1.0 + 0.05 * 0.4)


def test_timing_sync(machine):
    serial = TimingModel(machine, threads=1)
    assert serial.sync_seconds(100) == 0.0
    parallel = TimingModel(machine, threads=10)
    assert parallel.sync_seconds(10) > parallel.sync_seconds(1)


def test_timing_thread_validation(machine):
    with pytest.raises(ConfigError):
        TimingModel(machine, threads=11)
    with pytest.raises(ConfigError):
        TimingModel(machine, threads=0)


# ------------------------------------------------------------- the model
def test_all_modes_produce_breakdowns(machine):
    for mode in MODES:
        bd = GemmPerfModel(machine, mode=mode).breakdown(2048)
        assert bd.seconds > 0
        assert 0 < bd.gflops <= machine.peak_gflops_serial


def test_ori_near_but_below_peak(machine):
    bd = GemmPerfModel(machine, mode="ori").breakdown(8192)
    assert 0.85 * machine.peak_gflops_serial < bd.gflops < machine.peak_gflops_serial


def test_mode_ordering_ori_ft_classic(machine):
    """At any paper size: Ori > fused FT > classic FT."""
    for n in (2048, 6144, 10240):
        ori = GemmPerfModel(machine, mode="ori").gflops(n)
        ft = GemmPerfModel(machine, mode="ft").gflops(n)
        classic = GemmPerfModel(machine, mode="classic").gflops(n)
        assert ori > ft > classic


def test_ft_overhead_in_paper_band(machine):
    """Serial fused overhead inside the poster's 1.17%-3.58% band."""
    ori = GemmPerfModel(machine, mode="ori")
    ft = GemmPerfModel(machine, mode="ft")
    for n in (2048, 4096, 6144, 8192, 10240):
        overhead = ft.breakdown(n).overhead_vs(ori.breakdown(n))
        assert 0.0117 <= overhead <= 0.0358, (n, overhead)


def test_classic_overhead_an_order_larger(machine):
    points = overhead_curve((2048, 4096, 8192), machine=machine)
    fused, classic = average_overheads(points)
    assert classic > 3 * fused
    assert 0.08 <= classic <= 0.20  # "about 15%"
    assert all(p.improvement > 3 for p in points)


def test_parallel_faster_than_serial(machine):
    serial = GemmPerfModel(machine, mode="ft", threads=1).gflops(4096)
    parallel = GemmPerfModel(machine, mode="ft", threads=10).gflops(4096)
    assert parallel > 7 * serial  # decent scaling at this size


def test_parallel_small_sizes_lose_efficiency(machine):
    model = GemmPerfModel(machine, mode="ori", threads=10)
    eff_small = model.gflops(512) / machine.peak_gflops_parallel
    eff_big = model.gflops(8192) / machine.peak_gflops_parallel
    assert eff_small < eff_big


def test_injected_errors_cost_recovery_time(machine):
    ft = GemmPerfModel(machine, mode="ft")
    clean = ft.breakdown(2048)
    noisy = ft.breakdown(2048, injected_errors=20)
    assert noisy.seconds > clean.seconds
    assert noisy.recovery_seconds == pytest.approx(
        20 * ModelConstants().error_recovery_seconds
    )
    # but the cost is tiny — the paper's figures stay nearly flat
    assert noisy.seconds / clean.seconds < 1.01


def test_injected_errors_free_for_ori(machine):
    ori = GemmPerfModel(machine, mode="ori")
    assert ori.breakdown(2048, injected_errors=20).recovery_seconds == 0.0


def test_rectangular_shapes(machine):
    bd = GemmPerfModel(machine).breakdown(1024, 2048, 512)
    assert bd.m == 1024 and bd.n == 2048 and bd.k == 512
    assert bd.flops == 2.0 * 1024 * 2048 * 512


def test_checksum_flops_zero_for_ori(machine):
    assert GemmPerfModel(machine, mode="ori").breakdown(1024).checksum_flops == 0


def test_more_threads_than_rows_still_prices(machine):
    """5 rows over 10 threads: idle threads, worst thread owns one row."""
    bd = GemmPerfModel(machine, threads=10).breakdown(5)
    assert bd.seconds > 0


def test_invalid_mode_rejected(machine):
    with pytest.raises(ConfigError):
        GemmPerfModel(machine, mode="turbo")


def test_negative_errors_rejected(machine):
    with pytest.raises(ConfigError):
        GemmPerfModel(machine, mode="ft").breakdown(512, injected_errors=-1)


# --------------------------------------------------------------- roofline
def test_roofline_basics(machine):
    assert arithmetic_intensity(100.0, 50.0) == 2.0
    with pytest.raises(ConfigError):
        arithmetic_intensity(100.0, 0.0)


def test_roofline_regimes(machine):
    ridge = ridge_point(machine)
    # a checksum sweep (1/8 flop/byte) is deep in the bandwidth regime
    assert 0.125 < ridge / 10
    low = attainable_gflops(0.125, machine)
    assert low == pytest.approx(0.125 * ModelConstants().single_core_dram_gbs)
    # GEMM intensity is far right: compute-bound at peak
    high = attainable_gflops(1000.0, machine)
    assert high == machine.peak_gflops_serial


def test_roofline_parallel_bandwidth(machine):
    serial_ridge = ridge_point(machine, threads=1)
    parallel_ridge = ridge_point(machine, threads=10)
    # 10x the compute but <10x the bandwidth: the ridge moves right
    assert parallel_ridge > serial_ridge
