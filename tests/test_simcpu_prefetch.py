"""Stride prefetcher model."""

import numpy as np
import pytest

from repro.simcpu.cache import CacheHierarchy
from repro.simcpu.machine import MachineSpec
from repro.simcpu.prefetch import PrefetchingHierarchy
from repro.simcpu.trace import MemoryAccess
from repro.util.errors import ConfigError


def make(**kwargs) -> PrefetchingHierarchy:
    hierarchy = CacheHierarchy.from_machine(MachineSpec.small_test_machine())
    return PrefetchingHierarchy(hierarchy, **kwargs)


def stream(pf: PrefetchingHierarchy, lines, write=False):
    for line in lines:
        pf.access(MemoryAccess(line * 64, 8, write=write))


def test_geometry_validated():
    with pytest.raises(ConfigError):
        make(degree=0)
    with pytest.raises(ConfigError):
        make(trigger=0)


def test_sequential_stream_is_covered():
    pf = make(degree=4, trigger=2)
    stream(pf, range(40))
    # after the training prefix, nearly every demand access was prefetched
    assert pf.stats.coverage > 0.7
    assert pf.stats.issued > 0
    assert pf.stats.accuracy > 0.7


def test_strided_stream_is_covered():
    pf = make(degree=2, trigger=2)
    stream(pf, range(0, 120, 3))  # stride-3 line stream
    assert pf.stats.coverage > 0.6


def test_random_stream_gets_no_benefit(rng):
    pf = make(degree=4, trigger=2)
    lines = rng.integers(0, 10_000, size=60)
    stream(pf, lines)
    assert pf.stats.coverage < 0.2


def test_region_boundary_separates_streams():
    """Two interleaved streams in different regions both train."""
    pf = make(degree=2, trigger=2, region_bits=12)
    a = list(range(0, 30))            # region 0 lines
    b = list(range(1000, 1030))       # far region
    interleaved = [x for pair in zip(a, b) for x in pair]
    stream(pf, interleaved)
    assert pf.stats.coverage > 0.5


def test_table_eviction_bounds_state():
    pf = make(table_size=2)
    # touch many distinct regions; the table must not grow past its size
    for region in range(20):
        stream(pf, [region * 1000])
    assert len(pf._table) <= 2


def test_demand_misses_reduced_vs_no_prefetch():
    machine = MachineSpec.small_test_machine()
    plain = CacheHierarchy.from_machine(machine)
    # a long unit-stride stream bigger than every cache level
    accesses = [MemoryAccess(i * 64, 64) for i in range(3000)]
    plain.replay(accesses)
    plain_l1_misses = plain.levels[0].counters.misses

    pf = make(degree=8, trigger=2)
    pf.replay(accesses)
    pf_l1_misses = pf.hierarchy.levels[0].counters.misses - pf.stats.issued
    # demand misses (total minus the prefetch-issued fetches) drop sharply
    assert pf.stats.coverage > 0.8
    assert pf.stats.useful > 0.8 * pf.stats.issued


def test_reset():
    pf = make()
    stream(pf, range(20))
    pf.reset()
    assert pf.stats.demand_accesses == 0
    assert pf.mem_lines == 0


def test_packed_vs_unpacked_gemm_streams(rng):
    """The design-level point: packing turns kernel operands into streams
    the prefetcher covers; the unpacked column walk defeats it."""
    from repro.gemm.blocking import BlockingConfig
    from repro.gemm.driver import BlockedGemm

    n = 48
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    pf = make(degree=4, trigger=2)
    driver = BlockedGemm(BlockingConfig(mc=8, kc=8, nc=16, mr=4, nr=4), sink=pf)
    driver.gemm(a, b)
    packed_coverage = pf.stats.coverage
    # small blocks make short streams, but the packed layout still trains
    assert packed_coverage > 0.15

    # a raw column walk of a large row-major matrix: 8 KiB stride, so every
    # access lands in a fresh page — the page-bounded streamer never trains
    pf2 = make(degree=4, trigger=2, table_size=4)
    big_n = 1024
    for j in range(4):
        for i in range(200):
            pf2.access(MemoryAccess((i * big_n + j) * 8, 8))
    assert pf2.stats.coverage < 0.05
    assert pf2.stats.coverage < packed_coverage
