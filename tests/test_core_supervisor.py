"""Escalation supervisor: diagnosis, quarantine, and the recovery ladder.

The headline regression: a persistent ``StuckBit`` in a packing buffer
defeats the plain verifier (every recompute flows through the stuck slot,
so the budget is exhausted without converging), while the supervisor
quarantines the sticky fault, repacks the suspect lines from the original
operands, and verifies — with the winning strategy named in the report.
"""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.core.supervisor import (
    STRATEGIES,
    RecoveryReport,
    RecoveryRound,
    _merge_counters,
)
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import StuckBit
from repro.simcpu.counters import Counters
from repro.util.errors import UncorrectableError


def _stuckbit_case(site, seed):
    """Operands + plan where the StuckBit strike is non-silent (the struck
    bit was low) and the plain verifier provably cannot converge."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((24, 16))
    b = rng.standard_normal((16, 18))
    plan = InjectionPlan(schedule={site: (1,)}, model=StuckBit(), seed=seed)
    return a, b, plan


CASES = [("pack_a", 1), ("pack_b", 4)]


# --------------------------------------------------------- the regression
@pytest.mark.parametrize("site,seed", CASES)
def test_stuckbit_defeats_plain_verifier_nonstrict(site, seed):
    """Without the supervisor the sticky fault exhausts the recompute
    budget: the run ends unverified and no recovery report exists."""
    a, b, plan = _stuckbit_case(site, seed)
    cfg = FTGemmConfig.small(strict=False, enable_supervisor=False)
    result = FTGemm(cfg).gemm(a, b, injector=FaultInjector(plan))
    assert not result.verified
    assert result.recovery is None
    # the budget was really spent: max_recompute_attempts rounds + final
    assert len(result.reports) == cfg.max_recompute_attempts + 1
    assert any(r.recomputed_rows or r.recomputed_cols for r in result.reports)


@pytest.mark.parametrize("site,seed", CASES)
def test_stuckbit_defeats_plain_verifier_strict(site, seed):
    a, b, plan = _stuckbit_case(site, seed)
    cfg = FTGemmConfig.small(strict=True, enable_supervisor=False)
    with pytest.raises(UncorrectableError):
        FTGemm(cfg).gemm(a, b, injector=FaultInjector(plan))


@pytest.mark.parametrize("site,seed", CASES)
def test_supervisor_quarantines_and_repacks(site, seed):
    """Same fault, supervisor on: quarantine + repack-recompute wins, even
    under strict config, and the report names the strategy."""
    a, b, plan = _stuckbit_case(site, seed)
    injector = FaultInjector(plan)
    result = FTGemm(FTGemmConfig.small(strict=True)).gemm(
        a, b, injector=injector
    )
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)
    recovery = result.recovery
    assert recovery is not None
    assert recovery.succeeded
    assert recovery.succeeded_strategy == "repack_recompute"
    assert recovery.escalated
    assert recovery.quarantined and recovery.quarantined[0][0] == site
    assert "persistent-fault" in recovery.diagnosis
    assert not injector.has_persistent  # the sticky registry was drained


def test_supervisor_summary_is_in_result_summary():
    a, b, plan = _stuckbit_case("pack_a", 1)
    result = FTGemm(FTGemmConfig.small()).gemm(a, b, injector=FaultInjector(plan))
    assert "repack_recompute" in result.recovery.summary()
    assert "repack_recompute" in result.summary()


def test_supervisor_marks_injector_records():
    """The per-site outcome accounting sees the escalated correction."""
    a, b, plan = _stuckbit_case("pack_a", 1)
    injector = FaultInjector(plan)
    result = FTGemm(FTGemmConfig.small()).gemm(a, b, injector=injector)
    assert result.verified
    outcomes = injector.site_outcomes()
    assert outcomes["pack_a"]["detected"] == 1
    assert outcomes["pack_a"]["corrected"] == 1
    assert outcomes["pack_a"]["uncorrected"] == 0


# ------------------------------------------------------------- clean path
def test_fault_free_run_has_no_recovery_report(small_config, rng):
    a = rng.standard_normal((21, 14))
    b = rng.standard_normal((14, 19))
    result = FTGemm(small_config).gemm(a, b)
    assert result.verified
    assert result.recovery is None


def test_fault_free_parallel_run_has_no_recovery_report(small_config, rng):
    a = rng.standard_normal((21, 14))
    b = rng.standard_normal((14, 19))
    result = ParallelFTGemm(small_config, n_threads=3).gemm(a, b)
    assert result.verified
    assert result.recovery is None


def test_supervisor_does_not_change_clean_results(small_config, rng):
    """Bit-identical C with the supervisor on or off — it only watches."""
    a = rng.standard_normal((25, 17))
    b = rng.standard_normal((17, 23))
    on = FTGemm(small_config).gemm(a, b)
    off = FTGemm(small_config.with_(enable_supervisor=False)).gemm(a, b)
    np.testing.assert_array_equal(on.c, off.c)
    assert on.counters.fma_flops == off.counters.fma_flops
    assert on.counters.checksum_flops == off.counters.checksum_flops


def test_transient_fault_does_not_escalate(small_config, rng):
    """A plain transient strike is absorbed by the verifier's own ladder —
    the report exists but never goes past the cheap strategies."""
    a = rng.standard_normal((24, 16))
    b = rng.standard_normal((16, 18))
    injector = FaultInjector(InjectionPlan.single("microkernel", 3))
    result = FTGemm(small_config).gemm(a, b, injector=injector)
    assert result.verified
    assert result.recovery is not None
    assert not result.recovery.escalated
    assert result.recovery.succeeded_strategy in (
        "abft_correct", "checksum_rederive", "targeted_recompute"
    )


# ------------------------------------------------- report/merge machinery
def test_recovery_report_properties():
    report = RecoveryReport(
        rounds=[
            RecoveryRound(0, "targeted_recompute", "multi", False),
            RecoveryRound(1, "repack_recompute", "multi", True),
        ],
        quarantined=(("pack_a", 7),),
        diagnosis="persistent-fault: test",
        thread_deaths=((1, 3),),
    )
    assert report.attempts == 2
    assert report.succeeded
    assert report.succeeded_strategy == "repack_recompute"
    assert report.escalated
    text = report.summary()
    assert "targeted_recompute -> repack_recompute" in text
    assert "winner: repack_recompute" in text
    assert "t1@b3" in text


def test_recovery_report_failed_summary():
    report = RecoveryReport(rounds=[RecoveryRound(0, "dmr_recompute", "multi", False)])
    assert not report.succeeded
    assert report.succeeded_strategy is None
    assert "FAILED" in report.summary()
    assert RecoveryReport().summary().startswith("recovery: none")


def test_strategies_ladder_is_ordered_cheapest_first():
    assert STRATEGIES.index("abft_correct") < STRATEGIES.index("repack_recompute")
    assert STRATEGIES[-1] == "dmr_recompute"
    assert "thread_recovery" in STRATEGIES


def test_merge_counters_accumulates_ints_only():
    dst, src = Counters(), Counters()
    src.fma_flops = 100
    src.checksum_flops = 7
    dst.fma_flops = 11
    _merge_counters(dst, src)
    assert dst.fma_flops == 111
    assert dst.checksum_flops == 7
    # idempotent on the non-int fields (e.g. cache dicts) — no type blowup
    _merge_counters(dst, Counters())
    assert dst.fma_flops == 111


# ------------------------------------------------------------- sticky audit
def _audit_case(seed):
    """Operands + plan known (pre-fix) to end 'verified' with a silently
    corrupted C: two sticky StuckBit faults whose replay onto recomputed
    lines forms a sign-alternating rectangle that cancels in every row and
    column checksum."""
    from repro.faults.campaign import plan_for_gemm
    from repro.gemm.blocking import BlockingConfig

    blocking = BlockingConfig.small()
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((8, 24))
    b = rng.standard_normal((24, 16))
    plan = plan_for_gemm(8, 16, 24, blocking, 2, model=StuckBit(bit=51),
                         seed=seed)
    return a, b, blocking, plan


#: seeds where, without the audit, the ladder returned verified=True with
#: max error >= 1.0 (checksum-null replay rectangles)
_AUDIT_SEEDS = (121, 125, 169, 184, 189)


@pytest.mark.parametrize("seed", _AUDIT_SEEDS)
def test_sticky_audit_heals_checksum_null_replay_poisoning(seed):
    a, b, blocking, plan = _audit_case(seed)
    config = FTGemmConfig(blocking=blocking, strict=True)
    result = FTGemm(config).gemm(a, b, injector=FaultInjector(plan))
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)
    strategies = [r.strategy for r in result.recovery.rounds]
    assert "sticky_audit" in strategies
    # the audit quarantined the live sticky faults it distrusted
    assert result.recovery.quarantined


def test_sticky_audit_round_reports_the_recomputed_lines():
    a, b, blocking, plan = _audit_case(121)
    config = FTGemmConfig(blocking=blocking, strict=True)
    result = FTGemm(config).gemm(a, b, injector=FaultInjector(plan))
    audit = next(
        r for r in result.recovery.rounds if r.strategy == "sticky_audit"
    )
    assert "distrusted" in audit.detail
    assert "recomputed clean" in audit.detail


def test_sticky_audit_not_triggered_without_persistent_faults():
    """Transient faults never pay the audit: the clean verdict of a
    BitFlip run is trusted as before."""
    from repro.faults.campaign import plan_for_gemm
    from repro.faults.models import BitFlip
    from repro.gemm.blocking import BlockingConfig

    blocking = BlockingConfig.small()
    rng = np.random.default_rng(3)
    a = rng.standard_normal((8, 24))
    b = rng.standard_normal((24, 16))
    plan = plan_for_gemm(8, 16, 24, blocking, 2, model=BitFlip(bit=51),
                         seed=3)
    config = FTGemmConfig(blocking=blocking, strict=True)
    result = FTGemm(config).gemm(a, b, injector=FaultInjector(plan))
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)
    assert all(
        r.strategy != "sticky_audit" for r in result.recovery.rounds
    )


def test_sticky_stuckbit_sweep_verified_implies_correct():
    """The property the audit restores, over a seed sweep: whenever the
    ladder says verified, the result matches the oracle."""
    config = None
    for seed in range(40):
        a, b, blocking, plan = _audit_case(seed)
        if config is None:
            config = FTGemmConfig(blocking=blocking, strict=False)
        result = FTGemm(config).gemm(a, b, injector=FaultInjector(plan))
        if result.verified:
            np.testing.assert_allclose(
                result.c, a @ b, rtol=1e-9, atol=1e-9,
                err_msg=f"silent corruption at seed {seed}",
            )
