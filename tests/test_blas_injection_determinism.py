"""Schedule-independence of non-GEMM kernel fault injection.

The GEMV/TRSM/FFT kernels derive their injection plans from a shape
alone (no thread map — they run single-threaded), so the determinism
contract is: identical (kernel, shape, errors, seed) inputs must strike
identical (site, invocation, element) victims with identical values, no
matter when the run happens, what ran before it, or which serving tier
built the injector. These grids mirror ``test_injection_determinism``'s
fingerprint idiom for the parallel GEMM thread map.
"""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.models import Additive, BitFlip, StuckBit
from repro.kernels import get_kernel
from repro.serve.request import GemvRequest, TrsmRequest

SHAPES = {
    "gemv": (24, 18),
    "trsm": (72, 3),
    "fft": (64,),
}


def _fingerprint(injector):
    return [
        (r.site, r.invocation, r.index, r.old_value, r.new_value,
         r.n_elements)
        for r in injector.canonical_records
    ]


def _run_with_plan(name, seed, errors, *, model=None):
    kern = get_kernel(name)
    request = kern.sample_request(SHAPES[name], np.random.default_rng(3))
    plan = kern.plan(SHAPES[name], errors, model=model, seed=seed)
    injector = FaultInjector(plan)
    result = kern.run(request, injector=injector)
    return result, injector


@pytest.mark.parametrize("name", ["gemv", "trsm", "fft"])
@pytest.mark.parametrize("seed", [0, 3, 8])
@pytest.mark.parametrize("errors", [1, 2])
def test_outcome_grid_is_reproducible(name, seed, errors):
    """Same plan inputs → identical strikes, identical per-site outcome
    table, identical (correct) answer — across independent runs."""
    model = Additive(magnitude=30.0)
    first, inj_a = _run_with_plan(name, seed, errors, model=model)
    second, inj_b = _run_with_plan(name, seed, errors, model=model)
    assert _fingerprint(inj_a) == _fingerprint(inj_b)
    assert inj_a.site_outcomes() == inj_b.site_outcomes()
    np.testing.assert_array_equal(first.c, second.c)
    assert first.verified and second.verified


@pytest.mark.parametrize("name", ["gemv", "trsm", "fft"])
def test_strikes_are_independent_of_cohabiting_runs(name):
    """Interleaving other kernels' faulted runs between two identical
    runs must not shift where the strikes land (per-run injectors, no
    shared global counters)."""
    model = StuckBit(bit=50)
    _, baseline = _run_with_plan(name, 5, 2, model=model)
    for other in ("gemv", "trsm", "fft"):
        _run_with_plan(other, 1, 2, model=Additive(magnitude=12.0))
    _, after = _run_with_plan(name, 5, 2, model=model)
    assert _fingerprint(baseline) == _fingerprint(after)


@pytest.mark.parametrize("name", ["gemv", "trsm", "fft"])
def test_thread_and_process_tiers_build_the_same_plan(name):
    """The thread tier's live injector factory and the process tier's
    spec-rebuilt injector (the ``injector_from_spec`` idiom) must derive
    byte-identical schedules for the same request — the cross-tier
    replay guarantee the mixed fault storm leans on."""
    from repro.serve.workload import (
        WorkloadConfig,
        make_fault_spec_factory,
        make_injector_factory,
    )
    from repro.serve.service import ServiceConfig

    workload = WorkloadConfig(fault_rate=1.0, errors_per_call=2, seed=13)
    service_config = ServiceConfig()
    live_factory = make_injector_factory(workload)
    spec_factory = make_fault_spec_factory(workload)
    shape = SHAPES[name]
    for request_id in ("r-1", "r-2", "r-9"):
        live = live_factory(shape, 0, request_id, service_config, name)
        spec = spec_factory(request_id, service_config, name)
        assert (live is None) == (spec is None)
        if live is None:
            continue
        assert spec["kernel"] == name
        model = (
            StuckBit(bit=spec["bit"]) if spec["model"] == "stuck"
            else BitFlip(bit=spec["bit"])
        )
        rebuilt = get_kernel(name).plan(
            tuple(shape),
            spec["errors_per_call"],
            model=model,
            seed=spec["plan_seed"],
        )
        assert rebuilt.schedule == live.plan.schedule
        assert rebuilt.seed == live.plan.seed
        assert type(rebuilt.model) is type(live.plan.model)


@pytest.mark.parametrize("name", ["gemv", "trsm", "fft"])
def test_retries_are_never_faulted(name):
    """Attempt > 0 models re-execution on healthy substrate on both
    tiers; only the first attempt may carry an injector."""
    from repro.serve.workload import WorkloadConfig, make_injector_factory
    from repro.serve.service import ServiceConfig

    factory = make_injector_factory(
        WorkloadConfig(fault_rate=1.0, errors_per_call=1, seed=2)
    )
    assert factory(SHAPES[name], 1, "r-1", ServiceConfig(), name) is None


def test_gemv_outcome_table_localizes_every_strike():
    """GEMV's single fused compute site: every planned strike lands on
    invocation 0 and the ABFT sweep detects and repairs it in place."""
    kern = get_kernel("gemv")
    request = GemvRequest(
        np.random.default_rng(0).standard_normal((20, 16)),
        np.random.default_rng(1).standard_normal(16),
    )
    plan = kern.plan((20, 16), 1, model=Additive(magnitude=40.0), seed=6)
    injector = FaultInjector(plan)
    result = kern.run(request, injector=injector)
    table = injector.site_outcomes()
    assert table == {
        "blas_compute": {
            "injected": 1, "detected": 1, "corrected": 1, "uncorrected": 0,
        }
    }
    assert result.verified


def test_trsm_plan_covers_distinct_diagonal_blocks():
    """TRSM plans sample per-diagonal-block invocations without
    replacement — three errors over a 3-block factor strike three
    distinct solves, and the run repairs all of them."""
    kern = get_kernel("trsm")
    shape = (96, 2)
    plan = kern.plan(shape, 3, model=Additive(magnitude=20.0), seed=4)
    invocations = plan.schedule["blas_compute"]
    assert len(invocations) == len(set(invocations)) == 3
    rng = np.random.default_rng(7)
    a = np.tril(rng.standard_normal((96, 96))) + 96.0 * np.eye(96)
    request = TrsmRequest(a, rng.standard_normal((96, 2)))
    injector = FaultInjector(plan)
    result = kern.run(request, injector=injector)
    assert result.verified
    assert injector.site_outcomes()["blas_compute"]["uncorrected"] == 0
