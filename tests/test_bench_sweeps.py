"""Sweep tooling and the shape study."""

import pytest

from repro.bench.sweeps import blocking_sweep, overhead_vs_k
from repro.util.errors import ConfigError


def test_blocking_sweep_grid_shape():
    fig = blocking_sweep(mc_values=(96, 192), kc_values=(192, 384), n=2048)
    assert fig.x == [96, 192]
    assert set(fig.series) == {"KC=192", "KC=384"}
    assert "best" in fig.observations


def test_blocking_sweep_paper_choice_on_plateau():
    """The paper's (192, 384) must sit within a few percent of the grid's
    best point — it was tuned, not arbitrary."""
    fig = blocking_sweep(n=4096)
    paper = fig.series["KC=384"][fig.x.index(192)]
    best = max(max(v) for v in fig.series.values())
    assert paper >= 0.97 * best


def test_blocking_sweep_rejects_unaligned_mc():
    with pytest.raises(ConfigError):
        blocking_sweep(mc_values=(100,), kc_values=(384,))


def test_overhead_ridge_at_roofline_crossover():
    """The fused overhead peaks where the GEMM crosses from memory- to
    compute-bound: hidden under DRAM on the left, amortized on the right."""
    fig = overhead_vs_k(k_values=(32, 128, 512, 1536), mn=4096)
    ov = fig.series["overhead %"]
    peak = max(ov)
    assert ov.index(peak) not in (0, len(ov) - 1)  # interior maximum
    assert ov[0] < 1.0   # memory-bound: checksum compute hides
    assert ov[-1] < 3.0  # compute-bound: amortized (the paper's regime)
    assert peak > 3.0    # the crossover is where fusion is stressed
    assert "peaks" in fig.observations["regime"]


def test_rates_increase_with_k():
    fig = overhead_vs_k(k_values=(32, 384), mn=2048)
    rates = fig.series["FT GFLOPS"]
    assert rates[1] > rates[0]  # small-k updates are memory-bound
