"""Command-line interfaces (python -m repro, python -m repro.bench)."""

import pytest

from repro.__main__ import main as repro_main
from repro.bench.__main__ import main as run_bench_cli


def test_inject_clean_exit(capsys):
    assert repro_main(["inject", "--size", "64", "--errors", "3"]) == 0
    out = capsys.readouterr().out
    assert "injected : 3" in out
    assert "verified : True" in out


def test_inject_weighted_parallel(capsys):
    code = repro_main(
        ["inject", "--size", "64", "--errors", "2",
         "--threads", "2", "--scheme", "weighted"]
    )
    assert code == 0
    assert "scheme=weighted" in capsys.readouterr().out


def test_tune_default_prints_paper_params(capsys):
    assert repro_main(["tune"]) == 0
    out = capsys.readouterr().out
    assert "MC=192 KC=384 NC=9216" in out


def test_tune_scaled_caches(capsys):
    assert repro_main(["tune", "--l2-kib", "4096"]) == 0
    out = capsys.readouterr().out
    assert "KC=" in out and "KC=384" not in out  # 4 MiB L2 moves KC


def test_validate_subcommand(capsys):
    assert repro_main(["validate", "--size", "20"]) == 0
    assert "MATCH" in capsys.readouterr().out


def test_validate_weighted_beta(capsys):
    code = repro_main(
        ["validate", "--size", "18", "--beta", "0.5", "--scheme", "weighted"]
    )
    assert code == 0


def test_validate_explicit_modes(capsys):
    for mode in ("tile", "batched"):
        assert repro_main(["validate", "--size", "20", "--mode", mode]) == 0
        assert "MATCH" in capsys.readouterr().out


def test_inject_batched_mode_falls_back_to_tile(capsys):
    code = repro_main(
        ["inject", "--size", "48", "--errors", "2", "--mode", "batched"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "dispatch=batched -> ran tile" in out


def test_dispatch_subcommand(capsys):
    assert repro_main(["dispatch", "--size", "96", "--repeats", "1"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out
    assert "allclose" in out and "MATCH" in out


def test_storm_subcommand(capsys):
    assert repro_main(["storm", "--rate", "120", "--size", "64", "--runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "correct %" in out


def test_bench_single_figure(tmp_path, capsys):
    assert run_bench_cli(["--figure", "fig2a", "--out", str(tmp_path)]) == 0
    assert (tmp_path / "fig2a.txt").exists()
    assert "fig2a" in capsys.readouterr().out


def test_bench_forwarding_through_top_level(tmp_path, capsys):
    code = repro_main(
        ["bench", "--figure", "overhead", "--out", str(tmp_path)]
    )
    assert code == 0
    assert (tmp_path / "overhead.txt").exists()


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        repro_main(["frobnicate"])


def test_tune_search_show_apply_round_trip(tmp_path, capsys):
    db = str(tmp_path / "db.json")
    code = repro_main(
        ["tune", "search", "--space", "small", "--shape", "64x32x16",
         "--db", db, "--repeats", "1", "--json", str(tmp_path / "r.json")]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "winner" in out and "rank rho" in out
    assert (tmp_path / "r.json").exists()

    assert repro_main(["tune", "show", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "entries   : 1" in out and "m64n32k16" in out

    code = repro_main(
        ["tune", "apply", "--shape", "64x32x16", "--space", "small",
         "--db", db, "--repeats", "1"]
    )
    assert code == 0
    assert "speedup" in capsys.readouterr().out


def test_tune_smoke_writes_db_artifact(tmp_path, capsys):
    db = str(tmp_path / "smoke.json")
    assert repro_main(["tune", "--smoke", "--db", db]) == 0
    out = capsys.readouterr().out
    assert "db       : 2 entries" in out
    assert (tmp_path / "smoke.json").exists()


def test_tune_apply_without_entry_reports_fallback(tmp_path, capsys):
    db = str(tmp_path / "db.json")
    assert repro_main(
        ["tune", "search", "--space", "small", "--shape", "64x32x16",
         "--db", db, "--no-measure"]
    ) == 0
    capsys.readouterr()
    code = repro_main(
        ["tune", "apply", "--shape", "4000x4000x4000", "--db", db]
    )
    assert code == 1
    assert "static config" in capsys.readouterr().out


def test_serve_with_tune_db(tmp_path, capsys):
    db = str(tmp_path / "db.json")
    assert repro_main(
        ["tune", "search", "--space", "small", "--shape", "24x32x32",
         "--shape", "16x48x24", "--db", db, "--repeats", "1"]
    ) == 0
    capsys.readouterr()
    code = repro_main(
        ["serve", "--duration", "0.5", "--arrival-rate", "30",
         "--tune-db", db, "--seed", "1"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "tune-db  : 2 entries" in out
    assert "workload OK" in out


@pytest.mark.parametrize("kernel", ["gemv", "trsm", "fft"])
def test_inject_kernel_flag(kernel, capsys):
    code = repro_main(
        ["inject", "--kernel", kernel, "--size", "48", "--errors", "2",
         "--model", "additive", "--seed", "3"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert f"kernel {kernel}" in out
    assert "verified : True" in out
    assert "per-site" in out


def test_inject_kernel_rejects_fail_stop(capsys):
    code = repro_main(
        ["inject", "--kernel", "gemv", "--size", "32",
         "--fail-stop", "1:2"]
    )
    assert code == 2
    assert "GEMM thread-team feature" in capsys.readouterr().out


def test_trace_kernel_flag(tmp_path, capsys):
    out_path = str(tmp_path / "fft.json")
    code = repro_main(
        ["trace", "--kernel", "fft", "--size", "32", "--errors", "1",
         "--out", out_path]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "kernel fft" in out and "verified : True" in out
    assert (tmp_path / "fft.json").exists()


def test_serve_kernel_mix_flag(capsys):
    code = repro_main(
        ["serve", "--kernel-mix", "--duration", "0.6",
         "--arrival-rate", "60", "--fault-rate", "0.3", "--seed", "5"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "workload OK" in out
    assert "kernels  :" in out
    for name in ("gemm", "gemv", "trsm", "fft"):
        assert name in out


def test_serve_single_kernel_flag(capsys):
    code = repro_main(
        ["serve", "--kernel", "trsm", "--duration", "0.5",
         "--arrival-rate", "40", "--seed", "2"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "kernels  : trsm" in out


def test_serve_rejects_kernel_with_kernel_mix():
    from repro.util.errors import ConfigError

    with pytest.raises(ConfigError, match="kernel-mix"):
        repro_main(
            ["serve", "--kernel-mix", "--kernel", "gemv",
             "--duration", "0.1"]
        )
