"""Shared-memory transport lifecycle: every segment the parent creates
is unlinked again — on graceful shutdown *and* on the worker-death path —
and the fallbacks (oversized operands, pure-pickle mode) keep the
transport total without touching ``/dev/shm`` at all.
"""

import glob

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.serve import GemmService, GemmRequest, ServiceConfig
from repro.serve.proc.shm import (
    ShmRegistry,
    ShmTransport,
    attach,
    write_result,
)
from repro.util.errors import ConfigError


def _shm_residue() -> list[str]:
    return glob.glob("/dev/shm/ftg*")


def _proc_config(**kw) -> ServiceConfig:
    kw.setdefault("processes", 2)
    kw.setdefault("workers", 2)
    kw.setdefault("ft", FTGemmConfig(blocking=BlockingConfig.small()))
    return ServiceConfig(**kw)


# ------------------------------------------------------------------ registry
def test_registry_accounts_for_every_segment():
    reg = ShmRegistry()
    segs = [reg.create(64) for _ in range(3)]
    names = [s.name for s in segs]
    for s in segs:
        s.close()
    assert reg.created == 3
    assert sorted(reg.live()) == sorted(names)
    assert reg.unlink(names[0]) is True
    assert reg.unlink(names[0]) is False  # idempotent
    assert reg.unlink_all() == 2
    assert reg.live() == []
    assert reg.unlinked == 3
    reg.assert_clean()


def test_registry_assert_clean_raises_on_leak():
    reg = ShmRegistry()
    seg = reg.create(32)
    seg.close()
    with pytest.raises(AssertionError, match="leaked"):
        reg.assert_clean()
    reg.unlink_all()
    reg.assert_clean()


def test_registry_sweep_tolerates_already_unlinked_names():
    reg = ShmRegistry()
    seg = reg.create(32)
    name = seg.name
    seg.close()
    assert reg.sweep([name, "ftgnonexistent"]) == 1
    assert reg.live() == []


# ----------------------------------------------------------------- transport
def test_transport_roundtrip_through_segment(rng):
    reg = ShmRegistry()
    tx = ShmTransport(reg)
    a = rng.standard_normal((13, 7))
    ref = tx.stage(a)
    assert ref["kind"] == "shm"
    view, segment = attach(ref)
    np.testing.assert_array_equal(view, a)
    segment.close()
    out = tx.fetch(ref)
    np.testing.assert_array_equal(out, a)
    tx.release(ref)
    reg.assert_clean()


def test_transport_result_slot_roundtrip(rng):
    reg = ShmRegistry()
    tx = ShmTransport(reg)
    ref = tx.alloc_result((5, 4))
    c = rng.standard_normal((5, 4))
    assert write_result(ref, c) is None  # bytes went through the segment
    np.testing.assert_array_equal(tx.fetch(ref), c)
    tx.release(ref)
    reg.assert_clean()


def test_oversized_operand_falls_back_inline(rng):
    reg = ShmRegistry()
    tx = ShmTransport(reg, max_segment_bytes=128)
    big = rng.standard_normal((16, 16))  # 2 KiB > 128 B cap
    ref = tx.stage(big)
    assert ref["kind"] == "bytes"
    view, segment = attach(ref)
    assert segment is None
    np.testing.assert_array_equal(view, big)
    result_ref = tx.alloc_result((16, 16))
    assert result_ref["kind"] == "inline"
    payload = write_result(result_ref, big)
    assert isinstance(payload, bytes)
    np.testing.assert_array_equal(tx.fetch(result_ref, payload), big)
    tx.release(ref)
    tx.release(result_ref)
    assert reg.created == 0  # nothing ever touched /dev/shm
    reg.assert_clean()


def test_pickle_mode_never_creates_segments(rng):
    reg = ShmRegistry()
    tx = ShmTransport(reg, mode="pickle")
    ref = tx.stage(rng.standard_normal((8, 8)))
    assert ref["kind"] == "bytes"
    assert tx.alloc_result((8, 8))["kind"] == "inline"
    assert reg.created == 0


def test_inline_result_without_payload_is_an_error():
    tx = ShmTransport(ShmRegistry(), mode="pickle")
    ref = tx.alloc_result((2, 2))
    with pytest.raises(ConfigError, match="without payload"):
        tx.fetch(ref, None)


def test_transport_rejects_unknown_mode():
    with pytest.raises(ConfigError, match="transport mode"):
        ShmTransport(ShmRegistry(), mode="carrier-pigeon")


def test_stage_preserves_noncontiguous_input(rng):
    reg = ShmRegistry()
    tx = ShmTransport(reg)
    a = rng.standard_normal((12, 12))[::2, ::3]  # strided view
    ref = tx.stage(a)
    np.testing.assert_array_equal(tx.fetch(ref), a)
    tx.release(ref)
    reg.assert_clean()


# ------------------------------------------------------- service-level leaks
def test_graceful_shutdown_unlinks_every_segment(rng):
    before = set(_shm_residue())
    service = GemmService(_proc_config()).start()
    tickets = [
        service.submit(
            GemmRequest(
                rng.standard_normal((10, 16)), rng.standard_normal((16, 12))
            )
        )
        for _ in range(6)
    ]
    service.drain()
    for t in tickets:
        assert t.result(30.0).status == "ok"
    segs = service.stats()["proc"]["segments"]
    assert segs["created"] >= 1
    assert segs["live"] == 0
    assert segs["created"] == segs["unlinked"]
    service.pool.registry.assert_clean()
    service.shutdown()
    assert set(_shm_residue()) <= before


def test_worker_death_path_unlinks_every_segment(rng):
    """SIGKILL mid-compute: the dead worker's in-flight segments are
    released on replay and nothing survives in /dev/shm."""
    before = set(_shm_residue())
    armed = []

    def chaos(batch_id, deaths):
        if deaths == 0 and not armed:
            armed.append(batch_id)
            return "compute"
        return None

    service = GemmService(_proc_config(proc_seed=9), chaos=chaos).start()
    tickets = [
        service.submit(
            GemmRequest(
                rng.standard_normal((10, 16)), rng.standard_normal((16, 12))
            )
        )
        for _ in range(6)
    ]
    service.drain()
    for t in tickets:
        assert t.result(60.0).status == "ok"
    counters = service.stats()["metrics"]["counters"]
    assert counters.get("serve.proc.deaths", 0) >= 1
    segs = service.stats()["proc"]["segments"]
    assert segs["live"] == 0
    assert segs["created"] == segs["unlinked"]
    service.pool.registry.assert_clean()
    service.shutdown()
    assert set(_shm_residue()) <= before
