"""Fixtures for the dataflow-aware rule families (analyzer v2).

Same contract as test_analysis_rules.py — every rule gets at least one
fixture that must trip it and one that must pass — but these rules are
path-sensitive: the bad fixtures seed defects on *exception* and
*conditional* paths that the per-line syntactic rules could never see,
and the good fixtures exercise the path reasoning (finally routing,
ft-branch pruning, entry-set inference) that keeps the rules quiet on
the real code.
"""

from repro.analysis import analyze
from repro.analysis.engine import SUPPRESSION_RULE


def findings_for(tmp_path, text, rule=None):
    path = tmp_path / "fixture.py"
    path.write_text(text)
    result = analyze([path], root=tmp_path)
    found = result.findings
    if rule is not None:
        found = [f for f in found if f.rule == rule]
    return found


# ------------------------------------------------------- funnel-completeness
def test_funnel_flags_swallowed_exception_path(tmp_path):
    """The seeded regression: the happy path completes every request but
    the except arm logs and returns — a permanently hung client future
    that only the exception edge in the CFG can see."""
    bad = """\
class Pool:
    def __init__(self, service):
        self.complete = service.complete

    def _execute_batch(self, batch):
        try:
            out = kernel(batch)
        except Exception:
            log_error()
            return
        for request in batch:
            self.complete(request, out)
"""
    found = findings_for(tmp_path, bad, "funnel-completeness")
    assert len(found) >= 1
    assert "_execute_batch" in found[0].message
    assert "complete" in found[0].message


def test_funnel_exception_path_that_completes_passes(tmp_path):
    good = """\
class Pool:
    def __init__(self, service):
        self.complete = service.complete

    def _execute_batch(self, batch):
        try:
            out = kernel(batch)
        except Exception as exc:
            for request in batch:
                self.complete(request, error_of(exc))
            return
        for request in batch:
            self.complete(request, out)
"""
    assert findings_for(tmp_path, good, "funnel-completeness") == []


def test_funnel_reraise_is_the_sanctioned_alternative(tmp_path):
    good = """\
class Pool:
    def __init__(self, service):
        self.complete = service.complete

    def _execute_batch(self, batch):
        try:
            out = kernel(batch)
        except Exception:
            cleanup()
            raise
        for request in batch:
            self.complete(request, out)
"""
    assert findings_for(tmp_path, good, "funnel-completeness") == []


def test_funnel_handoff_transfers_ownership(tmp_path):
    """_requeue_or_fail moves the flight to the replay queue, which then
    owns completing it — the hand-off counts as the completion event."""
    good = """\
class Pool:
    def __init__(self, service):
        self.complete = service.complete

    def _lost_flight(self, flight):
        self._requeue_or_fail(flight)
"""
    assert findings_for(tmp_path, good, "funnel-completeness") == []


def test_funnel_one_level_sibling_summary(tmp_path):
    """Delegating to a sibling executor that provably completes on every
    path is as good as completing in place."""
    good = """\
class Pool:
    def __init__(self, service):
        self.complete = service.complete

    def _execute_batch(self, batch):
        for request in batch:
            self._run_single(request)

    def _run_single(self, request):
        self.complete(request, kernel(request))
"""
    assert findings_for(tmp_path, good, "funnel-completeness") == []


# ---------------------------------------------------------- rng-draw-parity
_RNG_PREAMBLE = """\
from repro.util.rng import make_rng


def make_injector_factory(models, seed):
    def factory(request, kernel, shape, attempt):
{injector_body}
    return factory


def make_fault_spec_factory(models, seed):
    def spec_factory(request, kernel):
{spec_body}
    return spec_factory
"""


def rng_module(injector_body, spec_body):
    indent = lambda body: "".join(
        f"        {line}\n" for line in body.splitlines()
    )
    return _RNG_PREAMBLE.format(
        injector_body=indent(injector_body), spec_body=indent(spec_body)
    )


def test_rng_flags_tier_conditional_draw(tmp_path):
    """The seeded regression: a draw gated on ``shape`` — a parameter the
    fault-spec twin never receives — silently desynchronises every draw
    after it on one tier only."""
    bad = rng_module(
        "rng = make_rng(seed, request)\n"
        "gate = rng.random()\n"
        "if shape > 64:\n"
        "    extra = rng.random()\n"
        "idx = rng.integers(0, 4)\n"
        "return gate, idx",
        "rng = make_rng(seed, request)\n"
        "gate = rng.random()\n"
        "idx = rng.integers(0, 4)\n"
        "return gate, idx",
    )
    found = findings_for(tmp_path, bad, "rng-draw-parity")
    conditional = [f for f in found if "tier-only" in f.message]
    assert len(conditional) == 1
    assert "shape" in conditional[0].message


def test_rng_pre_seed_gate_is_parity_safe(tmp_path):
    """``if attempt > 0: return None`` before the generator exists cannot
    skew a stream that has consumed nothing — the sanctioned idiom."""
    good = rng_module(
        "if attempt > 0:\n"
        "    return None\n"
        "rng = make_rng(seed, request)\n"
        "gate = rng.random()\n"
        "idx = rng.integers(0, 4)\n"
        "return gate, idx",
        "rng = make_rng(seed, request)\n"
        "gate = rng.random()\n"
        "idx = rng.integers(0, 4)\n"
        "return gate, idx",
    )
    assert findings_for(tmp_path, good, "rng-draw-parity") == []


def test_rng_shared_state_conditional_is_fine(tmp_path):
    """Both factories receive ``kernel`` — a branch on it evaluates the
    same way on both tiers, so a draw under it keeps parity."""
    good = rng_module(
        "rng = make_rng(seed, request)\n"
        "gate = rng.random()\n"
        "if kernel == 'fft':\n"
        "    stage = rng.integers(0, 8)\n"
        "idx = rng.integers(0, 4)\n"
        "return gate, idx",
        "rng = make_rng(seed, request)\n"
        "gate = rng.random()\n"
        "if kernel == 'fft':\n"
        "    stage = rng.integers(0, 8)\n"
        "idx = rng.integers(0, 4)\n"
        "return gate, idx",
    )
    assert findings_for(tmp_path, good, "rng-draw-parity") == []


def test_rng_flags_sequence_divergence(tmp_path):
    bad = rng_module(
        "rng = make_rng(seed, request)\n"
        "gate = rng.random()\n"
        "model = rng.choice(models)\n"
        "idx = rng.integers(0, 4)\n"
        "return gate, model, idx",
        "rng = make_rng(seed, request)\n"
        "gate = rng.random()\n"
        "idx = rng.integers(0, 4)\n"
        "return gate, idx",
    )
    found = findings_for(tmp_path, bad, "rng-draw-parity")
    divergence = [f for f in found if "diverge" in f.message]
    assert len(divergence) == 1
    assert "random, choice, integers" in divergence[0].message
    assert "random, integers" in divergence[0].message


# ---------------------------------------------------------- ledger-coverage
_LEDGER_BAD = """\
class FtDriver:
    def __init__(self, ledger):
        self._ledger = ledger

    def _pack_b_block(self, b, p):
        panel = super()._pack_b_block(b, p)
        return panel
"""


def test_ledger_flags_unmirrored_driver_write(tmp_path):
    found = findings_for(tmp_path, _LEDGER_BAD, "ledger-coverage")
    assert len(found) == 1
    assert "_pack_b_block" in found[0].message
    assert "checksum-ledger" in found[0].message


def test_ledger_write_then_mirror_passes(tmp_path):
    good = """\
class FtDriver:
    def __init__(self, ledger):
        self._ledger = ledger

    def _pack_b_block(self, b, p):
        panel = super()._pack_b_block(b, p)
        self._ledger.row_pred[p] = checksum(panel)
        return panel
"""
    assert findings_for(tmp_path, good, "ledger-coverage") == []


def test_ledger_ft_off_branch_is_pruned(tmp_path):
    """The unprotected fast path makes no checksum promises: a write
    reachable only through ``if not self.ft:`` is out of scope."""
    good = """\
class FtDriver:
    def __init__(self, ledger):
        self._ledger = ledger

    def _pack_b_block(self, b, p):
        if not self.ft:
            return super()._pack_b_block(b, p)
        panel = super()._pack_b_block(b, p)
        self._ledger.row_pred[p] = checksum(panel)
        return panel
"""
    assert findings_for(tmp_path, good, "ledger-coverage") == []


def test_ledger_blas_entry_output_alias_tracked(tmp_path):
    """In ``ft_gemv`` the protected buffer is whatever name feeds
    ``BlasResult(value=...)`` — a bare subscript store into it with no
    residual check anywhere on the path is the finding."""
    bad = """\
def ft_gemv(a, x, y):
    out = prepare(y)
    out[:] = a @ x
    return BlasResult(value=out)
"""
    found = findings_for(tmp_path, bad, "ledger-coverage")
    assert len(found) == 1

    good = """\
def ft_gemv(a, x, y):
    out = prepare(y)
    out[:] = a @ x
    residual = checksum_row(a) @ x - out.sum()
    return BlasResult(value=out)
"""
    assert findings_for(tmp_path, good, "ledger-coverage") == []


def test_ledger_suppression_requires_justification(tmp_path):
    bare = _LEDGER_BAD.replace(
        "panel = super()._pack_b_block(b, p)",
        "panel = super()._pack_b_block(b, p)"
        "  # analysis: ignore[ledger-coverage]",
    )
    found = findings_for(tmp_path, bare)
    assert [f.rule for f in found] == [SUPPRESSION_RULE]
    assert "justification" in found[0].message

    justified = _LEDGER_BAD.replace(
        "panel = super()._pack_b_block(b, p)",
        "panel = super()._pack_b_block(b, p)"
        "  # analysis: ignore[ledger-coverage] -- mirrored at pack time",
    )
    assert findings_for(tmp_path, justified) == []


# -------------------------------------------------------- resource-lifecycle
def test_resource_flags_exception_path_leak(tmp_path):
    """The close is there — but an injector raise inside fill() unwinds
    past it. Only the exception edges expose this."""
    bad = """\
from multiprocessing.shared_memory import SharedMemory


def stage(payload):
    seg = SharedMemory(create=True, size=4096)
    fill(seg.buf, payload)
    seg.close()
"""
    found = findings_for(tmp_path, bad, "resource-lifecycle")
    assert len(found) == 1
    assert "exception" in found[0].message


def test_resource_flags_missing_close_on_normal_path(tmp_path):
    bad = """\
from multiprocessing.shared_memory import SharedMemory


def stage(payload):
    seg = SharedMemory(create=True, size=4096)
    fill(seg.buf, payload)
"""
    found = findings_for(tmp_path, bad, "resource-lifecycle")
    assert len(found) == 1
    assert "normal return" in found[0].message


def test_resource_try_finally_close_passes(tmp_path):
    good = """\
from multiprocessing.shared_memory import SharedMemory


def stage(payload):
    seg = SharedMemory(create=True, size=4096)
    try:
        fill(seg.buf, payload)
    finally:
        seg.close()
"""
    assert findings_for(tmp_path, good, "resource-lifecycle") == []


def test_resource_child_unlink_is_banned(tmp_path):
    bad = """\
from repro.serve.proc.shm import attach


def consume(descriptor):
    view, seg = attach(descriptor)
    try:
        return view.copy()
    finally:
        seg.close()
        seg.unlink()
"""
    found = findings_for(tmp_path, bad, "resource-lifecycle")
    assert len(found) == 1
    assert "unlink" in found[0].message


def test_resource_arena_view_escape(tmp_path):
    bad = """\
def run_block(ws, state):
    view = ws.a_view()
    state.saved = view
"""
    found = findings_for(tmp_path, bad, "resource-lifecycle")
    assert len(found) == 1
    assert "aliases Workspace scratch" in found[0].message


# -------------------------------------------- lock entry-set inference (v2)
def test_lock_entry_set_inferred_without_annotation(tmp_path):
    """The fixpoint proves _admit is only ever called under the lock —
    no ``# analysis: caller-holds-lock`` annotation needed anymore."""
    good = """\
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def add(self, x):
        with self._lock:
            self.items.append(x)
            self._admit(x)

    def _admit(self, x):
        self.items.append(x)
"""
    assert findings_for(tmp_path, good, "lock-discipline") == []


def test_lock_entry_set_broken_by_unlocked_call_site(tmp_path):
    """One unlocked call site and the inference (correctly) refuses to
    bless the helper: the intersection over call sites is empty."""
    bad = """\
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = []

    def add(self, x):
        with self._lock:
            self.items.append(x)
            self._admit(x)

    def unsafe_add(self, x):
        self._admit(x)

    def _admit(self, x):
        self.items.append(x)
"""
    found = findings_for(tmp_path, bad, "lock-discipline")
    assert found  # the append reads and writes self.items unguarded
    assert all("_admit" in f.message for f in found)


def test_lock_blocking_entry_held_helper_reports_in_body(tmp_path):
    """A private helper whose every call site holds the lock blocks *as
    if* it held the lock itself — the report lands in its body."""
    bad = """\
import threading

class Drain:
    def __init__(self, queue):
        self._lock = threading.Lock()
        self.queue = queue

    def drain(self):
        with self._lock:
            return self._pull()

    def _pull(self):
        return self.queue.get(timeout=1.0)
"""
    found = findings_for(tmp_path, bad, "lock-blocking")
    assert len(found) == 1
    assert "_pull" in found[0].message
    assert "queue.get" in found[0].message


def test_lock_blocking_one_level_call_summary(tmp_path):
    """A helper that blocks with no lock of its own is flagged at the
    call site that does hold one — the blocking moved a frame down, not
    away."""
    bad = """\
import threading

class Drain:
    def __init__(self, queue):
        self._lock = threading.Lock()
        self.queue = queue

    def poll(self):
        return self._pull()

    def drain(self):
        with self._lock:
            return self._pull()

    def _pull(self):
        return self.queue.get(timeout=1.0)
"""
    found = findings_for(tmp_path, bad, "lock-blocking")
    assert len(found) == 1
    assert "called here while holding self._lock" in found[0].message
