"""The DSE funnel: space enumeration, analytic pruning, model scoring,
measurement, seeded determinism, and the rank-correlation helper."""

import pytest

from repro.gemm.blocking import BlockingConfig
from repro.obs.metrics import MetricsRegistry
from repro.simcpu.machine import MachineSpec
from repro.tune.db import TunedConfig, TuningDB
from repro.tune.measure import measure_candidate, spearman
from repro.tune.prune import prune
from repro.tune.search import ShapeClass, choose_coalesce_limit, run_search
from repro.tune.space import SearchSpace
from repro.util.errors import ConfigError, ReproError

CASCADE = MachineSpec.cascade_lake_w2255()
SMALL_MACHINE = MachineSpec.small_test_machine()


# -------------------------------------------------------------------- space
def test_small_space_enumerates_only_legal_configs():
    candidates = SearchSpace.small().candidates()
    assert candidates
    for cand in candidates:
        cand.blocking()  # would raise ConfigError on an illegal combo
        assert cand.mc % cand.mr == 0


def test_named_space_lookup():
    assert SearchSpace.named("small").name == "small"
    assert SearchSpace.named("default").name == "default"
    with pytest.raises(ReproError):
        SearchSpace.named("nope")


def test_default_space_contains_the_paper_config():
    keys = {
        (c.mc, c.kc, c.nc, c.mr, c.nr) for c in SearchSpace.default().candidates()
    }
    assert (192, 384, 9216, 16, 14) in keys


# -------------------------------------------------------------------- prune
def test_prune_keeps_the_paper_default_feasible():
    paper = TunedConfig.from_blocking(BlockingConfig())
    report = prune([paper], CASCADE, 1024, 1024, 1024)
    assert len(report.survivors) == 1


def test_prune_rejects_register_spill_and_oversized_blocks():
    spill = TunedConfig(mc=32, kc=32, nc=32, mr=32, nr=32)
    huge = TunedConfig(mc=65536, kc=65536, nc=64, mr=4, nr=4)
    report = prune([spill, huge], CASCADE, 1024, 1024, 1024)
    assert not report.survivors
    assert report.rejected.get("register_spill") == 1
    assert report.rejected.get("a_block_exceeds_l2") == 1


def test_prune_rejects_oversubscribed_threads():
    cand = TunedConfig(mc=8, kc=8, nc=16, mr=4, nr=4, threads=64)
    report = prune([cand], CASCADE, 64, 64, 64)
    assert report.rejected.get("threads_exceed_cores") == 1


# ------------------------------------------------------------------- search
def test_seeded_search_is_deterministic(tmp_path):
    def one_run(name):
        db = TuningDB.for_machine(CASCADE, path=tmp_path / name)
        results = run_search(
            [ShapeClass.parse("96x48x24")],
            machine=CASCADE,
            space=SearchSpace.small(),
            db=db,
            static=BlockingConfig.small(),
            measure=False,  # model-ranked only: fully deterministic
            seed=7,
        )
        return results[0], db

    r1, db1 = one_run("a.json")
    r2, db2 = one_run("b.json")
    assert r1.winner == r2.winner
    assert [s.config for s in r1.top] == [s.config for s in r2.top]
    assert db1.to_json() == db2.to_json()


def test_measured_search_never_regresses_below_static(tmp_path):
    db = TuningDB.for_machine(CASCADE, path=tmp_path / "db.json")
    metrics = MetricsRegistry()
    results = run_search(
        [ShapeClass.parse("64x32x16")],
        machine=CASCADE,
        space=SearchSpace.small(),
        db=db,
        static=BlockingConfig.small(),
        measure=True,
        repeats=1,
        seed=0,
        metrics=metrics,
    )
    result = results[0]
    assert result.speedup_vs_static >= 1.0
    assert db.resolve(64, 32, 16) == result.winner
    counters = metrics.snapshot()["counters"]
    assert counters["tune.shapes"] == 1
    assert counters["tune.scored"] == result.n_scored
    assert counters["tune.db_entries"] == 1


def test_search_with_no_feasible_candidate_raises(tmp_path):
    spill_only = SearchSpace(
        name="spill", mc=(32,), kc=(32,), nc=(32,), tiles=((32, 32),)
    )
    with pytest.raises(ConfigError, match="feasible"):
        run_search(
            [ShapeClass.parse("64x64x64")],
            machine=CASCADE,
            space=spill_only,
            measure=False,
        )


# -------------------------------------------------------------- shape class
def test_shape_class_parses_both_separators():
    assert ShapeClass.parse("96x48x24") == ShapeClass(96, 48, 24)
    assert ShapeClass.parse("96,48,24") == ShapeClass(96, 48, 24)
    with pytest.raises(ReproError):
        ShapeClass.parse("96x48")
    with pytest.raises(ReproError):
        ShapeClass.parse("0x48x24")


# ----------------------------------------------------------- coalesce limit
def test_choose_coalesce_limit_caps_large_stacked_footprints():
    shape = ShapeClass(4096, 64, 4096)  # one A is 128 MiB: must cap
    capped = choose_coalesce_limit(shape, CASCADE, (0, 4, 16))
    assert capped != 0
    tiny = ShapeClass(8, 8, 8)
    assert choose_coalesce_limit(tiny, CASCADE, (0, 4, 16)) == 0


# -------------------------------------------------------------- measurement
def test_measure_candidate_verifies_numerics():
    tuned = TunedConfig(mc=8, kc=8, nc=16, mr=4, nr=4)
    measurement = measure_candidate(tuned, 24, 16, 12, repeats=1)
    assert measurement.verified
    assert measurement.seconds > 0
    assert measurement.gflops > 0


def test_spearman_rank_correlation():
    assert spearman([1.0, 2.0, 3.0], [10.0, 20.0, 30.0]) == pytest.approx(1.0)
    assert spearman([1.0, 2.0, 3.0], [30.0, 20.0, 10.0]) == pytest.approx(-1.0)
    assert spearman([1.0], [2.0]) == 0.0
    assert spearman([1.0, 1.0], [2.0, 3.0]) == 0.0  # zero variance
