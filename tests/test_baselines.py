"""Baseline libraries and the FT-GEMM adapter."""

import numpy as np
import pytest

from repro.baselines import (
    BLIS,
    MKL,
    FTGemmLibrary,
    OpenBLAS,
    all_libraries,
)
from repro.baselines.profiles import PROFILES, EfficiencyProfile
from repro.core.config import FTGemmConfig
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive
from repro.gemm.blocking import BlockingConfig
from repro.util.errors import ConfigError


def test_all_libraries_set():
    names = {lib.name for lib in all_libraries()}
    assert names == {"MKL", "OpenBLAS", "BLIS"}


def test_profiles_validated():
    with pytest.raises(ConfigError):
        EfficiencyProfile("x", 1.5, 0.8, 0.8, 0.8)
    with pytest.raises(ConfigError):
        EfficiencyProfile("x", 0.8, 0.8, 0.8, 0.8, serial_shape=0.0)


def test_profile_efficiency_interpolates():
    p = EfficiencyProfile("x", serial_eff_ref=0.9, serial_eff_inf=0.8,
                          parallel_eff_ref=0.5, parallel_eff_inf=0.9)
    assert p.efficiency(2048) == pytest.approx(0.9)
    assert p.efficiency(10**9) == pytest.approx(0.8, abs=1e-3)
    assert p.efficiency(512, threads=10) == pytest.approx(0.5)
    assert p.efficiency(10**9, threads=10) == pytest.approx(0.9, abs=1e-3)


def test_baseline_gemm_is_trusted_product(rng):
    a = rng.standard_normal((10, 8))
    b = rng.standard_normal((8, 12))
    c0 = rng.standard_normal((10, 12))
    for lib in all_libraries():
        out = lib.gemm(a, b, c0, alpha=2.0, beta=-1.0)
        np.testing.assert_allclose(out, 2.0 * (a @ b) - c0, rtol=1e-12)


def test_baseline_has_no_fault_tolerance(rng):
    a = rng.standard_normal((10, 10))
    inj = FaultInjector(
        InjectionPlan.single("microkernel", 0, model=Additive(magnitude=99.0))
    )
    out = MKL().gemm(a, a, injector=inj)
    assert np.abs(out - a @ a).max() == pytest.approx(99.0)


def test_modeled_gflops_below_peak():
    for lib in all_libraries():
        for threads in (1, 10):
            for n in (512, 2048, 10240):
                gf = lib.modeled_gflops(n, threads=threads)
                assert 0 < gf < lib.machine.peak_gflops(threads)


def test_modeled_seconds_consistent():
    lib = OpenBLAS()
    sec = lib.modeled_seconds(2048)
    gf = lib.modeled_gflops(2048)
    assert sec == pytest.approx(2 * 2048**3 / (gf * 1e9), rel=1e-9)


def test_modeled_threads_validated():
    with pytest.raises(ConfigError):
        BLIS().modeled_gflops(1024, threads=99)


def test_perf_sample():
    s = MKL().perf_sample(4096, threads=10)
    assert s.library == "MKL" and s.n == 4096
    assert s.seconds > 0


def test_ftgemm_library_variants(rng):
    a = rng.standard_normal((20, 15))
    b = rng.standard_normal((15, 25))
    cfg = FTGemmConfig(blocking=BlockingConfig.small())
    for variant in ("ori", "ft"):
        config = cfg if variant == "ft" else cfg.with_(enable_ft=False)
        lib = FTGemmLibrary(variant, config=config)
        out = lib.gemm(a, b)
        np.testing.assert_allclose(out, a @ b, rtol=1e-11)


def test_ftgemm_library_parallel_driver(rng):
    cfg = FTGemmConfig(blocking=BlockingConfig.small())
    lib = FTGemmLibrary("ft", threads=3, config=cfg)
    a = rng.standard_normal((18, 12))
    b = rng.standard_normal((12, 20))
    result = lib.gemm_result(a, b)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11)


def test_ftgemm_library_names():
    assert FTGemmLibrary("ori").name == "FT-GEMM: Ori"
    assert "10t" in FTGemmLibrary("ft", threads=10).name


def test_ftgemm_library_modeled_perf_derived():
    ft = FTGemmLibrary("ft")
    ori = FTGemmLibrary("ori")
    assert ori.modeled_gflops(4096) > ft.modeled_gflops(4096)
    # injected errors cost a little
    assert ft.modeled_gflops(4096, injected_errors=20) < ft.modeled_gflops(4096)


def test_ftgemm_library_config_conflict():
    with pytest.raises(ConfigError):
        FTGemmLibrary("ori", config=FTGemmConfig())  # enable_ft=True conflicts
    with pytest.raises(ConfigError):
        FTGemmLibrary("turbo")


def test_profiles_registry_complete():
    assert set(PROFILES) == {"MKL", "OpenBLAS", "BLIS"}
