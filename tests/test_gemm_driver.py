"""The blocked GEMM driver: correctness, layout, instrumentation."""

import numpy as np
import pytest

from repro.gemm.blocking import BlockingConfig
from repro.gemm.driver import AddressLayout, BlockedGemm
from repro.gemm.reference import gemm_reference
from repro.simcpu.cache import CacheHierarchy
from repro.simcpu.machine import MachineSpec
from repro.simcpu.trace import AccessTrace
from repro.util.errors import ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(5)


@pytest.fixture
def cfg():
    return BlockingConfig.small()


@pytest.mark.parametrize(
    "m,n,k",
    [
        (8, 12, 8),     # exact multiples of every block size
        (37, 29, 23),   # ragged everywhere
        (1, 1, 1),      # degenerate
        (5, 40, 17),    # n spans multiple NC blocks
        (40, 5, 17),    # m spans multiple MC blocks
        (16, 24, 3),    # k smaller than KC
    ],
)
def test_blocked_gemm_matches_oracle(rng, cfg, m, n, k):
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    out = BlockedGemm(cfg).gemm(a, b)
    np.testing.assert_allclose(out, a @ b, rtol=1e-11, atol=1e-11)


def test_alpha_beta_paths(rng, cfg):
    a = rng.standard_normal((19, 11))
    b = rng.standard_normal((11, 21))
    c0 = rng.standard_normal((19, 21))
    for alpha, beta in [(1.0, 0.0), (2.0, 1.0), (-0.5, 0.75), (1.0, 1.0), (3.0, 0.0)]:
        c = c0.copy()
        out = BlockedGemm(cfg).gemm(a, b, c, alpha=alpha, beta=beta)
        assert out is c  # in-place contract
        np.testing.assert_allclose(
            out, gemm_reference(a, b, c0, alpha=alpha, beta=beta),
            rtol=1e-11, atol=1e-11,
        )


def test_beta_zero_overwrites_garbage(rng, cfg):
    a = rng.standard_normal((9, 9))
    b = rng.standard_normal((9, 9))
    c = np.full((9, 9), np.inf)
    out = BlockedGemm(cfg).gemm(a, b, c, beta=0.0)
    np.testing.assert_allclose(out, a @ b, rtol=1e-11)


def test_allocates_c_when_missing(rng, cfg):
    a = rng.standard_normal((6, 4))
    b = rng.standard_normal((4, 7))
    out = BlockedGemm(cfg).gemm(a, b)
    assert out.shape == (6, 7)


def test_inputs_not_mutated(rng, cfg):
    a = rng.standard_normal((10, 10))
    b = rng.standard_normal((10, 10))
    a0, b0 = a.copy(), b.copy()
    BlockedGemm(cfg).gemm(a, b, alpha=3.0)
    np.testing.assert_array_equal(a, a0)
    np.testing.assert_array_equal(b, b0)


def test_counters_flops_exact(rng, cfg):
    """FMA flop count equals the padded-tile count of the loop nest."""
    m, n, k = 10, 9, 8  # one p-block (kc=8), one j-block
    driver = BlockedGemm(cfg)
    driver.gemm(rng.standard_normal((m, k)), rng.standard_normal((k, n)))
    c = driver.counters
    # mc=8: i blocks of 8 and 2 rows -> panels: 2 (8 rows) + 1 (2 rows)
    # per i-block: panels_m * panels_n tiles; nc=12 > 9 -> 3 nr=4 panels
    # tiles: i-block0: 2*3, i-block1: 1*3 => 9 micro calls
    assert c.microkernel_calls == 9
    assert c.fma_flops == 9 * 2 * 4 * 4 * 8  # padded mr*nr*k per tile


def test_on_tile_receives_writable_views(rng, cfg):
    a = rng.standard_normal((8, 8))
    b = rng.standard_normal((8, 8))

    def zap(tile, i0, j0):
        tile[0, 0] = 1234.5

    out = BlockedGemm(cfg).gemm(a, b, on_tile=zap)
    assert (out == 1234.5).any()


def test_address_layout_non_overlapping():
    layout = AddressLayout()
    base_a = layout.add("A", 1000)
    base_b = layout.add("B", 5000)
    assert base_b >= base_a + 1000
    assert base_a % layout.page_bytes == 0
    assert base_b % layout.page_bytes == 0
    assert "A" in layout and "C" not in layout


def test_address_layout_rejects_duplicates_and_bad_sizes():
    layout = AddressLayout()
    layout.add("A", 10)
    with pytest.raises(ShapeError):
        layout.add("A", 10)
    with pytest.raises(ShapeError):
        layout.add("B", 0)
    with pytest.raises(ShapeError):
        AddressLayout(page_bytes=1000)  # not a power of two


def test_instrumented_run_emits_labeled_traffic(rng, cfg):
    trace = AccessTrace()
    driver = BlockedGemm(cfg, sink=trace)
    a = rng.standard_normal((10, 9))
    b = rng.standard_normal((9, 11))
    out = driver.gemm(a, b)
    np.testing.assert_allclose(out, a @ b, rtol=1e-11)
    labels = trace.labels()
    assert {"A", "B", "C", "Atilde", "Btilde"} <= labels
    # every element of B is read exactly once for packing
    assert trace.total_bytes(label="B", writes=False) == b.nbytes


def test_instrumented_against_cache_hierarchy(rng):
    machine = MachineSpec.small_test_machine()
    hierarchy = CacheHierarchy.from_machine(machine)
    cfg = BlockingConfig(mc=8, kc=8, nc=16, mr=4, nr=4)
    driver = BlockedGemm(cfg, sink=hierarchy)
    n = 24
    out = driver.gemm(rng.standard_normal((n, n)), rng.standard_normal((n, n)))
    assert np.isfinite(out).all()
    assert hierarchy.mem_lines > 0
    l1 = hierarchy.levels[0].counters
    assert l1.accesses > 0 and l1.hits > 0


def test_uninstrumented_run_has_no_layout(rng, cfg):
    driver = BlockedGemm(cfg)
    driver.gemm(rng.standard_normal((4, 4)), rng.standard_normal((4, 4)))
    assert driver.layout is None
