"""Protected Level-2 BLAS: ABFT GEMV and DMR TRSV."""

import numpy as np
import pytest

from repro.blas import ft_gemv, ft_trsv
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive
from repro.util.errors import ShapeError


def strike(magnitude=40.0):
    return FaultInjector(
        InjectionPlan.single("blas_compute", 0, model=Additive(magnitude=magnitude))
    )


@pytest.fixture
def system(rng):
    a = rng.standard_normal((30, 24))
    x = rng.standard_normal(24)
    y = rng.standard_normal(30)
    return a, x, y


# ------------------------------------------------------------------- gemv
def test_gemv_clean(system):
    a, x, _ = system
    result = ft_gemv(a, x)
    assert result.clean
    np.testing.assert_allclose(result.value, a @ x, rtol=1e-12)


def test_gemv_alpha_beta(system):
    a, x, y = system
    y0 = y.copy()
    result = ft_gemv(a, x, y, alpha=2.0, beta=-0.5)
    assert result.clean
    np.testing.assert_allclose(result.value, 2.0 * (a @ x) - 0.5 * y0, rtol=1e-11)
    assert result.value is y  # in place


def test_gemv_single_fault_localized_and_corrected(system):
    a, x, _ = system
    result = ft_gemv(a, x, injector=strike())
    assert result.detected == 1
    assert result.corrected == 1
    assert result.recomputed == 0  # localized, not recomputed
    np.testing.assert_allclose(result.value, a @ x, rtol=1e-10, atol=1e-10)


def test_gemv_fault_with_beta(system):
    a, x, y = system
    y0 = y.copy()
    result = ft_gemv(a, x, y, alpha=1.5, beta=2.0, injector=strike(magnitude=25.0))
    assert result.detected == 1
    np.testing.assert_allclose(
        result.value, 1.5 * (a @ x) + 2.0 * y0, rtol=1e-10, atol=1e-10
    )


def test_gemv_multi_fault_recomputes(system):
    a, x, _ = system
    inj = FaultInjector(
        InjectionPlan.single("blas_compute", 0, model=Additive(magnitude=10.0))
    )

    class Double:
        """Corrupt two elements in one visit: un-localizable by ratio."""

        def visit(self, site, array):
            array[3] += 11.0
            array[17] -= 23.0
            return True

        def mark_detected(self, n):
            pass

    result = ft_gemv(a, x, injector=Double())
    assert result.detected == 1
    assert result.recomputed == 1
    np.testing.assert_allclose(result.value, a @ x, rtol=1e-10, atol=1e-10)


def test_gemv_no_false_positives_ill_scaled(rng):
    a = rng.standard_normal((40, 40)) * np.logspace(-5, 5, 40)[:, None]
    x = rng.standard_normal(40) * 1e3
    result = ft_gemv(a, x)
    assert result.clean


def test_gemv_shape_errors(system, rng):
    a, x, _ = system
    with pytest.raises(ShapeError):
        ft_gemv(a, rng.standard_normal(7))
    with pytest.raises(ShapeError):
        ft_gemv(a, x, rng.standard_normal(9))


# ------------------------------------------------------------------- trsv
@pytest.fixture
def tri(rng):
    a = rng.standard_normal((20, 20))
    a = np.tril(a) + 5.0 * np.eye(20)  # well conditioned
    b = rng.standard_normal(20)
    return a, b


def test_trsv_clean_lower(tri):
    a, b = tri
    result = ft_trsv(a, b, lower=True)
    assert result.clean
    np.testing.assert_allclose(a @ result.value, b, rtol=1e-9, atol=1e-9)


def test_trsv_clean_upper(tri):
    a, b = tri
    u = a.T.copy()
    result = ft_trsv(u, b, lower=False)
    assert result.clean
    np.testing.assert_allclose(u @ result.value, b, rtol=1e-9, atol=1e-9)


def test_trsv_fault_detected_and_recomputed(tri):
    a, b = tri
    result = ft_trsv(a, b, injector=strike(magnitude=3.0))
    assert result.detected >= 1
    assert result.recomputed == 1
    np.testing.assert_allclose(a @ result.value, b, rtol=1e-9, atol=1e-9)


def test_trsv_early_fault_poisons_tail_still_recovered(tri):
    """An error in x[0] propagates through the whole recurrence — the DMR
    compare flags many elements, the duplicate wins wholesale."""
    a, b = tri

    class First:
        def visit(self, site, array):
            array[0] += 2.0
            return True

        def mark_detected(self, n):
            pass

    result = ft_trsv(a, b, injector=First())
    assert result.detected >= 1
    np.testing.assert_allclose(a @ result.value, b, rtol=1e-9, atol=1e-9)


def test_trsv_rejects_bad_inputs(rng):
    with pytest.raises(ShapeError):
        ft_trsv(rng.standard_normal((3, 4)), rng.standard_normal(3))
    singular = np.tril(rng.standard_normal((4, 4)))
    singular[2, 2] = 0.0
    with pytest.raises(ShapeError, match="singular"):
        ft_trsv(singular, rng.standard_normal(4))


def test_trsv_matches_scipy(tri):
    import scipy.linalg

    a, b = tri
    ours = ft_trsv(a, b).value
    theirs = scipy.linalg.solve_triangular(a, b, lower=True)
    np.testing.assert_allclose(ours, theirs, rtol=1e-10)
