"""Figure series rendering and persistence."""

import json

import pytest

from repro.bench.reporting import FigureSeries


@pytest.fixture
def fig():
    f = FigureSeries(
        figure_id="figX",
        title="demo",
        x_label="n",
        x=[1, 2, 4],
    )
    f.add("lib_a", [10.0, 20.0, 40.0])
    f.add("lib_b", [10.0, 10.0, 10.0])
    return f


def test_add_length_checked(fig):
    with pytest.raises(ValueError):
        fig.add("bad", [1.0])


def test_ratio(fig):
    # mean of (1, 2, 4) - 1 = 4/3
    assert fig.ratio("lib_a", "lib_b") == pytest.approx(7.0 / 3.0 - 1.0)
    assert fig.ratio("lib_b", "lib_b") == pytest.approx(0.0)


def test_table_contains_everything(fig):
    fig.paper_claims = {"claim": "+10%"}
    fig.observations = {"claim": "+11%"}
    out = fig.to_table()
    assert "figX" in out and "lib_a" in out
    assert "paper +10%" in out and "measured +11%" in out


def test_json_roundtrip(fig):
    data = json.loads(fig.to_json())
    assert data["figure_id"] == "figX"
    assert data["series"]["lib_a"] == [10.0, 20.0, 40.0]


def test_save(tmp_path, fig):
    path = fig.save(tmp_path)
    assert path.exists()
    assert (tmp_path / "figX.json").exists()
    assert "lib_b" in path.read_text()
