"""The measured-vs-predicted phase report: category totals, share math,
and the checksum-overhead row joined against the perfmodel."""

import pytest

from repro.obs import TraceEvent, PhaseReport, phase_report, phase_totals
from repro.perfmodel import GemmPerfModel


def _span(name, cat, ts, dur, tid=0):
    return TraceEvent(name=name, cat=cat, ph="X", ts_us=ts, tid=tid,
                      dur_us=dur)


def test_phase_totals_sums_categories_and_other():
    events = [
        _span("gemm", "driver", 0.0, 100.0),
        _span("pack_b", "pack", 1.0, 10.0),
        _span("pack_a", "pack", 12.0, 5.0),
        _span("macro_kernel", "compute", 20.0, 40.0),
        _span("checksum_update", "checksum", 61.0, 8.0),
        TraceEvent(name="fault.injected", cat="fault", ph="i", ts_us=5.0),
    ]
    totals = phase_totals(events)
    assert totals["pack"] == pytest.approx(15e-6)
    assert totals["compute"] == pytest.approx(40e-6)
    assert totals["checksum"] == pytest.approx(8e-6)
    assert totals["total"] == pytest.approx(100e-6)  # root span wins
    assert totals["other"] == pytest.approx(37e-6)   # untraced remainder


def test_phase_totals_without_root_uses_phase_sum():
    events = [_span("pack_b", "pack", 0.0, 10.0),
              _span("macro_kernel", "compute", 10.0, 30.0)]
    totals = phase_totals(events)
    assert totals["total"] == pytest.approx(40e-6)
    assert totals["other"] == 0.0


def test_phase_totals_takes_longest_root():
    """Nested re-entrant drivers would emit shorter gemm roots; the
    longest one is the run."""
    events = [
        _span("gemm", "driver", 0.0, 100.0),
        _span("gemm", "driver", 10.0, 20.0),
        _span("pack_b", "pack", 1.0, 10.0),
    ]
    assert phase_totals(events)["total"] == pytest.approx(100e-6)


def test_phase_report_shares_and_overhead():
    events = [
        _span("gemm", "driver", 0.0, 100.0),
        _span("macro_kernel", "compute", 0.0, 50.0),
        _span("checksum_update", "checksum", 50.0, 20.0),
        _span("verify_round", "verify", 70.0, 10.0),
        _span("recover.repack_recompute", "recover", 80.0, 10.0),
    ]
    report = phase_report(events)
    assert isinstance(report, PhaseReport)
    by_phase = {row.phase: row for row in report.rows}
    assert by_phase["compute"].measured_share == pytest.approx(0.5)
    assert by_phase["checksum"].predicted_s is None  # no breakdown given
    # overhead = (checksum + verify) / (total - ft work - recover)
    assert report.checksum_overhead_measured == pytest.approx(
        (20.0 + 10.0) / (100.0 - 30.0 - 10.0)
    )
    assert report.checksum_overhead_predicted is None
    table = report.to_table()
    assert "checksum overhead" in table
    assert "compute" in table


def test_phase_report_joins_perfmodel_breakdown():
    events = [
        _span("gemm", "driver", 0.0, 1000.0),
        _span("macro_kernel", "compute", 0.0, 600.0),
        _span("checksum_update", "checksum", 600.0, 100.0),
    ]
    breakdown = GemmPerfModel(mode="ft").breakdown(256, beta_nonzero=False)
    report = phase_report(events, breakdown=breakdown)
    by_phase = {row.phase: row for row in report.rows}
    assert by_phase["compute"].predicted_s == pytest.approx(
        breakdown.compute_seconds
    )
    assert by_phase["compute"].predicted_share == pytest.approx(
        breakdown.compute_seconds / breakdown.seconds
    )
    # scale/verify/recover have no modeled counterpart
    assert by_phase["scale"].predicted_s is None
    assert report.predicted_total_s == pytest.approx(breakdown.seconds)
    assert report.checksum_overhead_predicted == pytest.approx(
        breakdown.checksum_seconds
        / (breakdown.seconds - breakdown.checksum_seconds)
    )
    assert report.mode == "ft"
    assert "model:" in report.to_table()


def test_phase_report_ori_mode_has_no_predicted_overhead():
    events = [_span("gemm", "driver", 0.0, 10.0),
              _span("macro_kernel", "compute", 0.0, 10.0)]
    breakdown = GemmPerfModel(mode="ori").breakdown(128)
    report = phase_report(events, breakdown=breakdown)
    assert report.checksum_overhead_predicted is None
