"""Detection-coverage analysis."""

import pytest

from repro.faults.stats import magnitude_sweep, site_coverage
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def mag_fig():
    return magnitude_sweep(
        relative_magnitudes=(1e-16, 1e-7, 1e-1), n=40, runs=4
    )


def test_magnitude_boundary_holds(mag_fig):
    """Undetected errors must be harmless; harmful errors must be detected."""
    assert "below round-off relevance" in mag_fig.observations["boundary"]


def test_tiny_magnitudes_undetected_and_harmless(mag_fig):
    detected = mag_fig.series["detected %"]
    damage = mag_fig.series["worst rel err"]
    assert detected[0] == 0.0  # 1e-16 relative: invisible to checksums
    assert damage[0] < 1e-12   # and to the result


def test_large_magnitudes_fully_detected(mag_fig):
    detected = mag_fig.series["detected %"]
    damage = mag_fig.series["worst rel err"]
    assert detected[-1] == 100.0
    assert damage[-1] < 1e-10  # detected AND repaired


def test_magnitude_sweep_validation():
    with pytest.raises(ConfigError):
        magnitude_sweep(runs=0)


def test_site_coverage_matrix_complete():
    fig = site_coverage(n=40, runs=2, errors_per_run=1)
    assert fig.observations["matrix"] == "all sites fully covered by both schemes"
    assert fig.x == ["microkernel", "pack_a", "pack_b", "scale", "checksum"]
    for scheme in ("dual", "weighted"):
        assert all(v == 100.0 for v in fig.series[f"{scheme}: correct %"])


def test_site_coverage_repairs_recorded():
    fig = site_coverage(n=40, runs=2, errors_per_run=2)
    # kernel faults always leave repair evidence in at least one scheme
    assert fig.series["dual: repairs"][0] > 0
