"""Thread teams: barrier semantics on both backends."""

import threading
import time

import pytest

from repro.faults.models import FailStop
from repro.parallel.team import SimulatedTeam, Team, ThreadTeam, make_team
from repro.util.errors import ConfigError, SimulationError


def test_make_team_factory():
    assert isinstance(make_team(2, "simulated"), SimulatedTeam)
    assert isinstance(make_team(2, "threads"), ThreadTeam)
    with pytest.raises(ConfigError):
        make_team(2, "gpu")
    with pytest.raises(ConfigError):
        make_team(0)


def test_simulated_phases_are_synchronized():
    """No thread may enter phase k+1 before all finished phase k."""
    log = []

    def worker(tid):
        log.append(("phase0", tid))
        yield
        log.append(("phase1", tid))
        yield
        log.append(("phase2", tid))

    SimulatedTeam(3).run(worker)
    phases = [p for p, _ in log]
    assert phases == ["phase0"] * 3 + ["phase1"] * 3 + ["phase2"] * 3


def test_simulated_order_within_round():
    log = []

    def worker(tid):
        log.append(tid)
        yield

    SimulatedTeam(3, order=[2, 0, 1]).run(worker)
    assert log == [2, 0, 1]


def test_simulated_order_validated():
    with pytest.raises(ConfigError):
        SimulatedTeam(3, order=[0, 0, 1])


def test_simulated_barrier_count():
    team = SimulatedTeam(2)

    def worker(tid):
        yield
        yield
        yield

    team.run(worker)
    assert team.barriers_executed == 3


def test_simulated_mismatched_barriers_detected():
    def worker(tid):
        yield
        if tid == 0:
            yield  # thread 0 hits one more barrier than thread 1

    with pytest.raises(SimulationError, match="barrier mismatch"):
        SimulatedTeam(2).run(worker)


def test_thread_team_runs_concurrently():
    """All threads must be inside the region simultaneously (a real
    barrier deadlocks otherwise)."""
    arrived = threading.Barrier(3, timeout=10)

    def worker(tid):
        arrived.wait()  # only passes if all three run at once
        yield
        arrived.wait()

    ThreadTeam(3, timeout=10).run(worker)


def test_thread_team_propagates_worker_errors():
    def worker(tid):
        yield
        if tid == 1:
            raise RuntimeError("worker exploded")
        yield

    with pytest.raises(RuntimeError, match="exploded"):
        ThreadTeam(2, timeout=5).run(worker)


def test_thread_team_phase_ordering():
    log = []
    lock = threading.Lock()

    def worker(tid):
        with lock:
            log.append(("a", tid))
        yield
        with lock:
            log.append(("b", tid))

    ThreadTeam(4, timeout=10).run(worker)
    # all "a" entries strictly precede all "b" entries
    labels = [p for p, _ in log]
    assert labels.index("b") == 4
    assert labels == ["a"] * 4 + ["b"] * 4


def test_base_class_validates_thread_count():
    with pytest.raises(ConfigError):
        Team(0)


def test_single_thread_team_works():
    hits = []

    def worker(tid):
        hits.append(tid)
        yield
        hits.append(tid)

    SimulatedTeam(1).run(worker)
    assert hits == [0, 0]


# --------------------------------------------------------------- fail-stop


def _three_phase_worker(log, lock=None):
    def worker(tid):
        for phase in range(3):
            if lock is not None:
                with lock:
                    log.append((phase, tid))
            else:
                log.append((phase, tid))
            yield

    return worker


def test_make_team_forwards_fail_stops_and_order():
    team = make_team(
        3, "simulated", fail_stops=(FailStop(thread=1, barrier=0),), order=[2, 1, 0]
    )
    assert team.order == [2, 1, 0]
    team = make_team(2, "threads", fail_stops=(FailStop(thread=0, barrier=1),))
    assert isinstance(team, ThreadTeam)


def test_fail_stop_targeting_missing_thread_rejected():
    with pytest.raises(ConfigError, match="targets thread"):
        SimulatedTeam(2, fail_stops=(FailStop(thread=5, barrier=0),))


def test_simulated_fail_stop_kills_on_arrival():
    """The victim's work *before* the kill barrier completes; it executes
    nothing afterwards, and survivors run the whole program."""
    log = []
    team = SimulatedTeam(3, fail_stops=(FailStop(thread=1, barrier=1),))
    team.run(_three_phase_worker(log))
    assert (0, 1) in log and (1, 1) in log  # phases up to the barrier ran
    assert (2, 1) not in log                # nothing after the death
    assert [d for d in log if d[1] != 1] == [
        (p, t) for p in range(3) for t in (0, 2)
    ]
    (death,) = team.deaths
    assert (death.tid, death.barrier) == (1, 1)
    assert team.dead_tids == {1}


def test_thread_team_fail_stop_detected_by_survivors():
    log = []
    lock = threading.Lock()
    team = ThreadTeam(3, timeout=10, fail_stops=(FailStop(thread=2, barrier=0),))
    team.run(_three_phase_worker(log, lock))
    assert (0, 2) in log and (1, 2) not in log
    (death,) = team.deaths
    assert (death.tid, death.barrier) == (2, 0)
    # survivors completed all three phases despite the shrunken barrier
    assert sum(1 for p, t in log if p == 2) == 2


def test_earliest_kill_barrier_wins():
    log = []
    team = SimulatedTeam(
        2,
        fail_stops=(FailStop(thread=0, barrier=2), FailStop(thread=0, barrier=1)),
    )
    team.run(_three_phase_worker(log))
    (death,) = team.deaths
    assert death.barrier == 1


@pytest.mark.parametrize("backend", ["simulated", "threads"])
def test_all_threads_dead_is_recorded_not_deadlocked(backend):
    """Every thread dying in the same round leaves nobody to detect the
    deaths mid-run — the post-join sweep must still account for them."""
    log = []
    lock = threading.Lock() if backend == "threads" else None
    team = make_team(
        2,
        backend,
        fail_stops=(FailStop(thread=0, barrier=1), FailStop(thread=1, barrier=1)),
    )
    team.run(_three_phase_worker(log, lock))
    assert team.dead_tids == {0, 1}
    assert all(d.barrier == 1 for d in team.deaths)


def test_deaths_reset_between_runs():
    team = SimulatedTeam(2, fail_stops=(FailStop(thread=0, barrier=0),))

    def worker(tid):
        yield

    team.run(worker)
    assert len(team.deaths) == 1
    team.run(worker)
    assert len(team.deaths) == 1  # not accumulated across runs
