"""Thread teams: barrier semantics on both backends."""

import threading
import time

import pytest

from repro.parallel.team import SimulatedTeam, Team, ThreadTeam, make_team
from repro.util.errors import ConfigError, SimulationError


def test_make_team_factory():
    assert isinstance(make_team(2, "simulated"), SimulatedTeam)
    assert isinstance(make_team(2, "threads"), ThreadTeam)
    with pytest.raises(ConfigError):
        make_team(2, "gpu")
    with pytest.raises(ConfigError):
        make_team(0)


def test_simulated_phases_are_synchronized():
    """No thread may enter phase k+1 before all finished phase k."""
    log = []

    def worker(tid):
        log.append(("phase0", tid))
        yield
        log.append(("phase1", tid))
        yield
        log.append(("phase2", tid))

    SimulatedTeam(3).run(worker)
    phases = [p for p, _ in log]
    assert phases == ["phase0"] * 3 + ["phase1"] * 3 + ["phase2"] * 3


def test_simulated_order_within_round():
    log = []

    def worker(tid):
        log.append(tid)
        yield

    SimulatedTeam(3, order=[2, 0, 1]).run(worker)
    assert log == [2, 0, 1]


def test_simulated_order_validated():
    with pytest.raises(ConfigError):
        SimulatedTeam(3, order=[0, 0, 1])


def test_simulated_barrier_count():
    team = SimulatedTeam(2)

    def worker(tid):
        yield
        yield
        yield

    team.run(worker)
    assert team.barriers_executed == 3


def test_simulated_mismatched_barriers_detected():
    def worker(tid):
        yield
        if tid == 0:
            yield  # thread 0 hits one more barrier than thread 1

    with pytest.raises(SimulationError, match="barrier mismatch"):
        SimulatedTeam(2).run(worker)


def test_thread_team_runs_concurrently():
    """All threads must be inside the region simultaneously (a real
    barrier deadlocks otherwise)."""
    arrived = threading.Barrier(3, timeout=10)

    def worker(tid):
        arrived.wait()  # only passes if all three run at once
        yield
        arrived.wait()

    ThreadTeam(3, timeout=10).run(worker)


def test_thread_team_propagates_worker_errors():
    def worker(tid):
        yield
        if tid == 1:
            raise RuntimeError("worker exploded")
        yield

    with pytest.raises(RuntimeError, match="exploded"):
        ThreadTeam(2, timeout=5).run(worker)


def test_thread_team_phase_ordering():
    log = []
    lock = threading.Lock()

    def worker(tid):
        with lock:
            log.append(("a", tid))
        yield
        with lock:
            log.append(("b", tid))

    ThreadTeam(4, timeout=10).run(worker)
    # all "a" entries strictly precede all "b" entries
    labels = [p for p, _ in log]
    assert labels.index("b") == 4
    assert labels == ["a"] * 4 + ["b"] * 4


def test_base_class_validates_thread_count():
    with pytest.raises(ConfigError):
        Team(0)


def test_single_thread_team_works():
    hits = []

    def worker(tid):
        hits.append(tid)
        yield
        hits.append(tid)

    SimulatedTeam(1).run(worker)
    assert hits == [0, 0]
