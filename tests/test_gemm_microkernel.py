"""Micro kernels: plain and fused."""

import numpy as np
import pytest

from repro.gemm.microkernel import microkernel, microkernel_ft, tile_flops
from repro.gemm.packing import pack_a, pack_b
from repro.util.errors import ShapeError


@pytest.fixture
def rng():
    return np.random.default_rng(1)


def test_microkernel_equals_blas_tile(rng):
    a = rng.standard_normal((20, 8))  # (k, mr)
    b = rng.standard_normal((20, 6))  # (k, nr)
    np.testing.assert_allclose(microkernel(a, b), a.T @ b)


def test_microkernel_through_packed_panels(rng):
    """A full small GEMM assembled only from packed panels + micro kernels."""
    a = rng.standard_normal((8, 10))
    b = rng.standard_normal((10, 12))
    pa = pack_a(a, 4)
    pb = pack_b(b, 4)
    c = np.zeros((8, 12))
    for ia in range(pa.n_panels):
        for jb in range(pb.n_panels):
            c[ia * 4 : ia * 4 + 4, jb * 4 : jb * 4 + 4] += microkernel(
                pa.panel(ia), pb.panel(jb)
            )
    np.testing.assert_allclose(c, a @ b, rtol=1e-13)


def test_microkernel_depth_mismatch(rng):
    with pytest.raises(ShapeError, match="depth"):
        microkernel(rng.standard_normal((5, 4)), rng.standard_normal((6, 4)))


def test_microkernel_rejects_1d():
    with pytest.raises(ShapeError):
        microkernel(np.zeros(4), np.zeros((4, 4)))


def test_microkernel_ft_updates_in_place_and_returns_sums(rng):
    a = rng.standard_normal((10, 4))
    b = rng.standard_normal((10, 6))
    c = rng.standard_normal((4, 6))
    expected = c + a.T @ b
    rows, cols = microkernel_ft(a, b, c)
    np.testing.assert_allclose(c, expected, rtol=1e-13)
    np.testing.assert_allclose(rows, expected.sum(axis=0), rtol=1e-12)
    np.testing.assert_allclose(cols, expected.sum(axis=1), rtol=1e-12)


def test_microkernel_ft_shape_mismatch(rng):
    with pytest.raises(ShapeError, match="tile"):
        microkernel_ft(
            rng.standard_normal((10, 4)),
            rng.standard_normal((10, 6)),
            np.zeros((4, 5)),
        )


def test_tile_flops():
    assert tile_flops(16, 14, 384) == 2 * 16 * 14 * 384
