"""Rule-engine mechanics: suppressions, baseline round-trip, reporters.

The rules themselves are covered in test_analysis_rules.py; here the
machinery around them is pinned — because CI gates on the analyzer, a
bug in suppression handling or baseline matching silently turns the gate
off (or strands it red).
"""

import json

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    Finding,
    analyze,
    registered_rules,
    render_json,
    render_text,
)
from repro.analysis.baseline import BASELINE_VERSION
from repro.analysis.engine import SUPPRESSION_RULE
from repro.analysis.report import JSON_SCHEMA_VERSION

# a minimal file that trips hot-loop-alloc exactly once
BAD_HOT = """\
import numpy as np

def microkernel(c, a, b):
    for i in range(4):
        t = np.zeros(4)
    return c
"""


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


def analyze_source(tmp_path, text, name="mod.py", **kw):
    return analyze([_write(tmp_path, name, text)], root=tmp_path, **kw)


# ------------------------------------------------------------------ registry
def test_registry_has_every_documented_rule():
    rules = registered_rules()
    assert {
        "hot-loop-alloc",
        "barrier-pairing",
        "lock-discipline",
        "lock-blocking",
        "complete-funnel",
        "span-pairing",
        "tracer-guard",
    } <= set(rules)
    for spec in rules.values():
        assert spec.description


def test_unknown_rule_selection_raises(tmp_path):
    with pytest.raises(ValueError, match="no-such-rule"):
        analyze_source(tmp_path, "x = 1\n", rules=["no-such-rule"])


# -------------------------------------------------------------- suppressions
def test_finding_reported_without_suppression(tmp_path):
    result = analyze_source(tmp_path, BAD_HOT)
    assert [f.rule for f in result.findings] == ["hot-loop-alloc"]
    assert result.suppressions_used == 0


def test_inline_suppression_silences_named_rule(tmp_path):
    text = BAD_HOT.replace(
        "t = np.zeros(4)",
        "t = np.zeros(4)  # analysis: ignore[hot-loop-alloc]",
    )
    result = analyze_source(tmp_path, text)
    assert result.findings == []
    assert result.suppressions_used == 1


def test_bare_suppression_silences_all_rules(tmp_path):
    text = BAD_HOT.replace(
        "t = np.zeros(4)", "t = np.zeros(4)  # analysis: ignore"
    )
    result = analyze_source(tmp_path, text)
    assert result.findings == []


def test_suppression_for_other_rule_does_not_silence(tmp_path):
    text = BAD_HOT.replace(
        "t = np.zeros(4)",
        "t = np.zeros(4)  # analysis: ignore[span-pairing]",
    )
    result = analyze_source(tmp_path, text)
    assert [f.rule for f in result.findings] == ["hot-loop-alloc"]


def test_suppression_naming_unknown_rule_is_itself_a_finding(tmp_path):
    text = "x = 1  # analysis: ignore[definitely-not-a-rule]\n"
    result = analyze_source(tmp_path, text)
    assert [f.rule for f in result.findings] == [SUPPRESSION_RULE]
    assert "definitely-not-a-rule" in result.findings[0].message


def test_suppression_inside_docstring_is_inert(tmp_path):
    text = (
        '"""Docs showing `# analysis: ignore[nope]` as an example."""\n'
        "x = 1\n"
    )
    result = analyze_source(tmp_path, text)
    assert result.findings == []


# -------------------------------------------------------------- determinism
def test_findings_sorted_by_file_line_rule(tmp_path):
    _write(tmp_path, "b.py", BAD_HOT)
    _write(tmp_path, "a.py", BAD_HOT)
    result = analyze([tmp_path], root=tmp_path)
    assert [f.file for f in result.findings] == ["a.py", "b.py"]
    again = analyze([tmp_path], root=tmp_path)
    assert result.findings == again.findings


def test_parse_error_is_reported_not_fatal(tmp_path):
    _write(tmp_path, "broken.py", "def nope(:\n")
    _write(tmp_path, "fine.py", BAD_HOT)
    result = analyze([tmp_path], root=tmp_path)
    assert len(result.errors) == 1
    assert "broken.py" in result.errors[0][0]
    assert [f.file for f in result.findings] == ["fine.py"]


# ------------------------------------------------------------------ baseline
def test_baseline_round_trip(tmp_path):
    entries = [
        BaselineEntry(
            rule="lock-discipline",
            file="src/x.py",
            snippet="self.n += 1",
            count=2,
            justification="helper only called under the lock",
        )
    ]
    path = tmp_path / "baseline.json"
    Baseline(entries).dump(path)
    loaded = Baseline.load(path)
    assert loaded.entries == sorted(entries)
    data = json.loads(path.read_text())
    assert data["version"] == BASELINE_VERSION


def test_baseline_requires_justification():
    with pytest.raises(ValueError, match="justification"):
        Baseline(
            [BaselineEntry(rule="r", file="f", snippet="s", justification="")]
        )


def test_baseline_compare_matches_by_snippet_not_line():
    finding = Finding(
        file="f.py", line=99, rule="hot-loop-alloc",
        message="m", snippet="t = np.zeros(4)",
    )
    baseline = Baseline([
        BaselineEntry(
            rule="hot-loop-alloc", file="f.py",
            snippet="t = np.zeros(4)", justification="perf fix pending",
        )
    ])
    comparison = baseline.compare([finding])
    assert comparison.new == []
    assert comparison.matched == [finding]
    assert comparison.stale == []
    assert comparison.clean and comparison.strict_clean


def test_baseline_compare_counts_and_stale():
    make = lambda line: Finding(
        file="f.py", line=line, rule="r", message="m", snippet="s"
    )
    baseline = Baseline([
        BaselineEntry(rule="r", file="f.py", snippet="s", count=1,
                      justification="one is tolerated"),
        BaselineEntry(rule="q", file="g.py", snippet="gone", count=1,
                      justification="was fixed"),
    ])
    comparison = baseline.compare([make(1), make(2)])
    assert len(comparison.matched) == 1
    assert len(comparison.new) == 1  # second occurrence exceeds count
    assert [e.rule for e in comparison.stale] == ["q"]
    assert not comparison.clean
    assert not comparison.strict_clean


def test_baseline_from_findings_covers_run(tmp_path):
    result = analyze_source(tmp_path, BAD_HOT)
    baseline = Baseline.from_findings(result.findings, justification="wip")
    assert baseline.compare(result.findings).clean


# ----------------------------------------------------------------- reporters
def test_json_report_schema_and_stability(tmp_path):
    result = analyze_source(tmp_path, BAD_HOT)
    rendered = render_json(result)
    payload = json.loads(rendered)
    assert payload["schema_version"] == JSON_SCHEMA_VERSION
    assert payload["files_analyzed"] == 1
    assert set(payload["findings"][0]) == {
        "file", "line", "rule", "message", "snippet",
    }
    assert payload["findings"][0]["rule"] == "hot-loop-alloc"
    assert "hot-loop-alloc" in payload["rules"]
    # byte-stable across runs
    assert rendered == render_json(analyze_source(tmp_path, BAD_HOT, name="mod2.py")).replace("mod2.py", "mod.py")


def test_text_report_mentions_location_and_rule(tmp_path):
    result = analyze_source(tmp_path, BAD_HOT)
    text = render_text(result)
    assert "mod.py:5" in text
    assert "[hot-loop-alloc]" in text
    assert "1 finding(s)" in text
