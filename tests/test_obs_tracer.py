"""Tracer and metrics primitives: spans, instants, retroactive completes,
the no-op singletons, and registry thread-safety."""

import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    Tracer,
)


def test_span_records_complete_event():
    tr = Tracer()
    with tr.span("pack_b", cat="pack", tid=3, args={"p0": 0}):
        pass
    (event,) = tr.events
    assert event.name == "pack_b"
    assert event.cat == "pack"
    assert event.ph == "X"
    assert event.tid == 3
    assert event.dur_us is not None and event.dur_us >= 0.0
    assert event.args == {"p0": 0}


def test_spans_nest_and_filter():
    tr = Tracer()
    with tr.span("gemm", cat="driver"):
        with tr.span("pack_a", cat="pack"):
            pass
        with tr.span("pack_b", cat="pack"):
            pass
    # inner spans close first, so they appear before the root
    assert [e.name for e in tr.events] == ["pack_a", "pack_b", "gemm"]
    assert len(tr.spans(cat="pack")) == 2
    assert len(tr.spans("gemm")) == 1
    root = tr.spans("gemm")[0]
    inner = tr.spans("pack_a")[0]
    assert root.ts_us <= inner.ts_us
    assert root.ts_us + root.dur_us >= inner.ts_us + inner.dur_us


def test_instant_and_counter_events():
    tr = Tracer()
    tr.event("fault.injected", cat="fault", tid=1, args={"site": "pack_a"})
    tr.counter("bytes_packed", 4096.0)
    instant, counter = tr.events
    assert instant.ph == "i" and instant.args["site"] == "pack_a"
    assert counter.ph == "C" and counter.args == {"value": 4096.0}
    assert len(tr.instants("fault.injected")) == 1


def test_complete_records_retroactive_span():
    tr = Tracer()
    t0 = tr.now_us()
    tr.complete("verify_round", cat="verify", t0_us=t0, args={"round": 0})
    (event,) = tr.events
    assert event.ph == "X"
    assert event.ts_us == t0
    assert event.dur_us >= 0.0


def test_clock_is_monotonic_and_relative():
    tr = Tracer()
    a = tr.now_us()
    b = tr.now_us()
    assert 0.0 <= a <= b


def test_null_tracer_is_inert():
    assert not NULL_TRACER.enabled
    assert NULL_TRACER.span("x") is NULL_SPAN
    with NULL_TRACER.span("x", cat="pack", tid=2, args={"a": 1}):
        pass
    NULL_TRACER.event("e")
    NULL_TRACER.counter("c", 1.0)
    NULL_TRACER.complete("p", t0_us=0.0)
    assert NULL_TRACER.now_us() == 0.0
    # the null metrics registry swallows everything too
    NULL_TRACER.metrics.inc("n")
    NULL_TRACER.metrics.observe("h", 1.0)
    assert not NULL_TRACER.metrics.enabled


def test_null_span_is_reentrant():
    with NULL_SPAN:
        with NULL_SPAN:
            pass


def test_tracer_appends_are_thread_safe():
    tr = Tracer()

    def spam():
        for i in range(200):
            tr.event("tick", args={"i": i})

    threads = [threading.Thread(target=spam) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(tr.events) == 800


def test_metrics_registry_counters_gauges_histograms():
    m = MetricsRegistry()
    m.inc("faults.injected")
    m.inc("faults.injected", 2)
    m.set_gauge("threads", 4)
    m.observe("barrier.wait_us.t0", 10.0)
    m.observe("barrier.wait_us.t0", 30.0)
    snap = m.snapshot()
    assert snap["counters"]["faults.injected"] == 3
    assert snap["gauges"]["threads"] == 4
    hist = snap["histograms"]["barrier.wait_us.t0"]
    assert hist["count"] == 2
    assert hist["sum"] == pytest.approx(40.0)
    assert hist["mean"] == pytest.approx(20.0)
    assert hist["min"] == 10.0 and hist["max"] == 30.0
    assert sum(hist["buckets"]) == 2


def test_histogram_bucket_boundaries():
    h = Histogram()
    h.observe(0.5)     # below the first bound
    h.observe(1e9)     # beyond the last bound -> overflow bucket
    snap = h.snapshot()
    assert snap["buckets"][0] == 1
    assert snap["buckets"][-1] == 1
    assert snap["count"] == 2
