"""Round-off tolerance theory: no false positives, no blind spots."""

import numpy as np
import pytest

from repro.abft.checksum import col_checksum, row_checksum
from repro.abft.tolerance import (
    EPS,
    ToleranceConfig,
    gamma,
    norm_tolerance,
    residual_tolerances,
)
from repro.util.errors import ConfigError


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def residuals(a, b):
    """Actual round-off residuals of the two checksum identities."""
    c = a @ b
    row = row_checksum(a) @ b - row_checksum(c)
    col = a @ col_checksum(b) - col_checksum(c)
    return row, col


def test_gamma_basic():
    assert gamma(0) == 0.0
    assert gamma(100) == pytest.approx(100 * EPS)
    with pytest.raises(ConfigError):
        gamma(-1)


def test_config_validation():
    with pytest.raises(ConfigError):
        ToleranceConfig(mode="bogus")
    with pytest.raises(ConfigError):
        ToleranceConfig(safety=0.0)
    with pytest.raises(ConfigError):
        ToleranceConfig(floor=-1.0)


def test_envelope_bounds_roundoff_gaussian(rng):
    a = rng.standard_normal((60, 50))
    b = rng.standard_normal((50, 40))
    tol_r, tol_c = residual_tolerances(a, b)
    row, col = residuals(a, b)
    assert np.all(np.abs(row) < tol_r)
    assert np.all(np.abs(col) < tol_c)


def test_envelope_bounds_roundoff_ill_scaled(rng):
    """Rows spanning 12 orders of magnitude: a scalar norm bound would be
    hopeless; the per-entry envelope must still hold."""
    a = rng.standard_normal((40, 30)) * np.logspace(-6, 6, 40)[:, None]
    b = rng.standard_normal((30, 20)) * np.logspace(-3, 3, 20)[None, :]
    tol_r, tol_c = residual_tolerances(a, b)
    row, col = residuals(a, b)
    assert np.all(np.abs(row) < tol_r)
    assert np.all(np.abs(col) < tol_c)


def test_envelope_with_cancellation(rng):
    """Huge alternating-sign entries make sums cancel: the envelope is built
    from |A|,|B|, so it scales with the magnitudes, not the tiny sums."""
    mags = rng.uniform(1e5, 1e6, size=(30, 30))
    signs = np.where(np.arange(30) % 2 == 0, 1.0, -1.0)
    a = mags * signs[None, :]
    b = rng.uniform(1e5, 1e6, size=(30, 30)) * signs[:, None]
    tol_r, tol_c = residual_tolerances(a, b)
    row, col = residuals(a, b)
    assert np.all(np.abs(row) < tol_r)
    assert np.all(np.abs(col) < tol_c)


def test_envelope_beta_term(rng):
    a = rng.standard_normal((20, 15))
    b = rng.standard_normal((15, 25))
    c0 = 1e6 * rng.standard_normal((20, 25))
    beta = -2.5
    tol_r, tol_c = residual_tolerances(
        a, b, beta=beta,
        c0_abs_rowsum=np.abs(c0).sum(axis=0),
        c0_abs_colsum=np.abs(c0).sum(axis=1),
    )
    c = a @ b + beta * c0
    row = (row_checksum(a) @ b + beta * c0.sum(axis=0)) - row_checksum(c)
    col = (a @ col_checksum(b) + beta * c0.sum(axis=1)) - col_checksum(c)
    assert np.all(np.abs(row) < tol_r)
    assert np.all(np.abs(col) < tol_c)


def test_envelope_beta_requires_c0_sums(rng):
    a = rng.standard_normal((4, 4))
    with pytest.raises(ConfigError, match="beta"):
        residual_tolerances(a, a, beta=1.0)


def test_floor_covers_all_zero_inputs():
    a = np.zeros((5, 5))
    tol_r, tol_c = residual_tolerances(a, a)
    assert np.all(tol_r > 0) and np.all(tol_c > 0)


def test_tolerance_far_below_real_errors(rng):
    """The threshold must leave room for meaningful injected errors: a
    relative perturbation of 1e-6 on one element must exceed it."""
    a = rng.standard_normal((50, 50))
    b = rng.standard_normal((50, 50))
    tol_r, _ = residual_tolerances(a, b)
    c = a @ b
    typical = np.abs(c).mean()
    assert typical * 1e-6 > tol_r.max()


def test_norm_mode_scalar(rng):
    a = rng.standard_normal((30, 30))
    b = rng.standard_normal((30, 30))
    cfg = ToleranceConfig(mode="norm")
    tol_r, tol_c = residual_tolerances(a, b, config=cfg)
    assert np.all(tol_r == tol_r[0])  # scalar broadcast
    row, col = residuals(a, b)
    assert np.all(np.abs(row) < tol_r)
    assert np.all(np.abs(col) < tol_c)


def test_norm_tolerance_monotone_in_k(rng):
    a_small = rng.standard_normal((10, 10))
    a_big = rng.standard_normal((10, 100))
    cfg = ToleranceConfig()
    t_small = norm_tolerance(a_small, a_small.T, cfg)
    t_big = norm_tolerance(a_big, a_big.T, cfg)
    assert t_big > t_small
