"""Event counters."""

from repro.simcpu.counters import CacheCounters, Counters


def test_cache_counters_rates():
    c = CacheCounters(accesses=10, hits=7, misses=3)
    assert c.hit_rate == 0.7
    assert c.miss_rate == 0.3


def test_cache_counters_rates_empty():
    c = CacheCounters()
    assert c.hit_rate == 0.0
    assert c.miss_rate == 0.0


def test_cache_counters_add():
    a = CacheCounters(accesses=5, hits=3, misses=2, evictions=1, writebacks=1)
    b = CacheCounters(accesses=1, hits=0, misses=1)
    s = a + b
    assert s.accesses == 6 and s.hits == 3 and s.misses == 3
    assert s.evictions == 1 and s.writebacks == 1


def test_counters_totals():
    c = Counters(fma_flops=100, checksum_flops=10, loads_bytes=64,
                 stores_bytes=32, ft_extra_bytes=8)
    assert c.total_flops == 110
    assert c.total_bytes == 104


def test_counters_add_merges_cache_levels():
    a = Counters(fma_flops=1)
    a.cache_level(1).accesses = 5
    b = Counters(fma_flops=2)
    b.cache_level(1).accesses = 3
    b.cache_level(2).misses = 7
    s = a + b
    assert s.fma_flops == 3
    assert s.cache[1].accesses == 8
    assert s.cache[2].misses == 7
    # originals untouched
    assert a.cache[1].accesses == 5


def test_counters_add_all_fields():
    a = Counters(errors_detected=1, errors_corrected=2, blocks_recomputed=3,
                 barriers=4, verifications=5, microkernel_calls=6,
                 pack_a_bytes=7, pack_b_bytes=8)
    s = a + Counters(errors_detected=10)
    assert s.errors_detected == 11
    assert s.errors_corrected == 2
    assert s.barriers == 4
    assert s.pack_b_bytes == 8


def test_counters_reset():
    c = Counters(fma_flops=5, errors_detected=2)
    c.cache_level(1).hits = 9
    c.reset()
    assert c.fma_flops == 0
    assert c.errors_detected == 0
    assert c.cache[1].hits == 0


def test_cache_level_created_on_demand():
    c = Counters()
    assert 3 not in c.cache
    c.cache_level(3).misses += 1
    assert c.cache[3].misses == 1
