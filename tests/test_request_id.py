"""Request-correlation ids: threaded through both drivers and onto the
recovery evidence, defaulting to None for anonymous library calls."""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.faults.campaign import plan_for_gemm
from repro.faults.injector import FaultInjector
from repro.gemm.blocking import BlockingConfig


@pytest.fixture
def operands():
    rng = np.random.default_rng(5)
    return rng.standard_normal((24, 24)), rng.standard_normal((24, 24))


def _config():
    return FTGemmConfig(blocking=BlockingConfig.small())


def test_default_is_anonymous(operands):
    a, b = operands
    result = FTGemm(_config()).gemm(a, b)
    assert result.request_id is None
    assert "r-00042" not in result.summary()


def test_serial_driver_stamps_request_id(operands):
    a, b = operands
    result = FTGemm(_config()).gemm(a, b, request_id="r-00042")
    assert result.request_id == "r-00042"
    assert result.summary().startswith("FTGemmResult(r-00042: ")


def test_parallel_driver_stamps_request_id(operands):
    a, b = operands
    driver = ParallelFTGemm(_config(), n_threads=2)
    result = driver.gemm(a, b, request_id="batch-7")
    assert result.request_id == "batch-7"


def test_recovery_report_carries_request_id(operands):
    a, b = operands
    config = _config()
    plan = plan_for_gemm(24, 24, 24, config.blocking, 1, seed=1)
    result = FTGemm(config).gemm(
        a, b, injector=FaultInjector(plan), request_id="faulty-1"
    )
    assert result.verified
    assert result.request_id == "faulty-1"
    if result.recovery is not None:
        assert result.recovery.request_id == "faulty-1"


def test_recovery_report_default_none(operands):
    a, b = operands
    config = _config()
    plan = plan_for_gemm(24, 24, 24, config.blocking, 1, seed=1)
    result = FTGemm(config).gemm(a, b, injector=FaultInjector(plan))
    if result.recovery is not None:
        assert result.recovery.request_id is None
