"""Fail-stop thread recovery: the recovery epoch of the parallel scheme.

A ``FailStop`` fault kills one simulated/OS thread on arrival at a chosen
barrier. The acceptance grid: for *every* barrier of the schedule and every
victim thread, with 2 and 4 threads, on both team backends, the survivors
must re-execute the dead thread's row slice, recompute the shared-B̃ columns
the dead thread left stale, rebuild the checksum ledger, and end verified
allclose to the oracle.
"""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.parallel import ParallelFTGemm
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import FailStop
from repro.gemm.blocking import BlockingConfig, iter_blocks
from repro.util.errors import UncorrectableError

M, N, K = 20, 24, 16


@pytest.fixture
def abc(rng):
    a = rng.standard_normal((M, K))
    b = rng.standard_normal((K, N))
    return a, b


def _config(**kwargs):
    return FTGemmConfig(blocking=BlockingConfig.small()).with_(**kwargs)


def _n_barriers(cfg):
    """Prologue barrier + (pack, macro) barrier pair per (p, j) block."""
    n_p = len(list(iter_blocks(K, cfg.blocking.kc)))
    n_j = len(list(iter_blocks(N, cfg.blocking.nc)))
    return 1 + 2 * n_p * n_j


def _kill(tid, barrier, seed=0):
    return FaultInjector(
        InjectionPlan(
            schedule={}, seed=seed, fail_stops=(FailStop(thread=tid, barrier=barrier),)
        )
    )


# ----------------------------------------------------- the acceptance grid
@pytest.mark.parametrize("backend", ["simulated", "threads"])
@pytest.mark.parametrize("n_threads", [2, 4])
def test_every_barrier_every_victim_recovers(abc, backend, n_threads):
    a, b = abc
    cfg = _config()
    expected = a @ b
    barriers = _n_barriers(cfg)
    assert barriers == 9  # 2 K-blocks x 2 j-blocks under small blocking
    for barrier in range(barriers):
        for tid in range(n_threads):
            driver = ParallelFTGemm(cfg, n_threads=n_threads, backend=backend)
            result = driver.gemm(a, b, injector=_kill(tid, barrier))
            context = f"backend={backend} T={n_threads} tid={tid} b={barrier}"
            assert result.verified, context
            np.testing.assert_allclose(
                result.c, expected, rtol=1e-9, atol=1e-9, err_msg=context
            )
            recovery = result.recovery
            assert recovery is not None, context
            assert recovery.thread_deaths == ((tid, barrier),), context
            assert any(
                r.strategy == "thread_recovery" for r in recovery.rounds
            ), context
            assert recovery.succeeded, context


def test_death_before_prologue_recovers_everything(abc):
    """Barrier 0 death: nothing of the victim's slice survives, and every
    shared-B̃ chunk it owed is stale — all of it must be reconstructed."""
    a, b = abc
    result = ParallelFTGemm(_config(), n_threads=2).gemm(a, b, injector=_kill(1, 0))
    assert result.verified
    recovery = result.recovery
    (row_start, row_len), = recovery.recovered_rows
    assert row_len == M // 2  # the whole dead slice was re-executed
    assert recovery.recovered_cols  # stale shared-B̃ columns were recomputed
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)


def test_death_at_last_barrier_leaves_no_stale_columns(abc):
    """Dying on arrival at the final barrier means every shared-B̃ chunk was
    already packed — only the victim's own rows need re-execution (they are
    re-run conservatively: partial K-accumulation is not attributable)."""
    a, b = abc
    cfg = _config()
    last = _n_barriers(cfg) - 1
    result = ParallelFTGemm(cfg, n_threads=2).gemm(a, b, injector=_kill(0, last))
    assert result.verified
    assert result.recovery.recovered_rows  # conservative slice re-execution
    assert result.recovery.recovered_cols == ()
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("backend", ["simulated", "threads"])
def test_two_simultaneous_deaths(abc, backend):
    a, b = abc
    injector = FaultInjector(
        InjectionPlan(
            schedule={},
            fail_stops=(FailStop(thread=1, barrier=2), FailStop(thread=3, barrier=5)),
        )
    )
    result = ParallelFTGemm(_config(), n_threads=4, backend=backend).gemm(
        a, b, injector=injector
    )
    assert result.verified
    assert {t for t, _ in result.recovery.thread_deaths} == {1, 3}
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("backend", ["simulated", "threads"])
def test_all_threads_dead_is_uncorrectable(abc, backend):
    a, b = abc
    injector = FaultInjector(
        InjectionPlan(
            schedule={},
            fail_stops=(FailStop(thread=0, barrier=1), FailStop(thread=1, barrier=1)),
        )
    )
    with pytest.raises(UncorrectableError, match="fail-stop"):
        ParallelFTGemm(_config(), n_threads=2, backend=backend).gemm(
            a, b, injector=injector
        )


def test_beta_recovery_uses_preserved_c(abc, rng):
    a, b = abc
    c0 = rng.standard_normal((M, N))
    result = ParallelFTGemm(_config(), n_threads=2).gemm(
        a, b, c0.copy(), alpha=1.5, beta=0.5, injector=_kill(0, 3)
    )
    assert result.verified
    np.testing.assert_allclose(
        result.c, 1.5 * (a @ b) + 0.5 * c0, rtol=1e-9, atol=1e-9
    )


def test_beta_recovery_without_preserved_c_is_uncorrectable(abc, rng):
    a, b = abc
    c0 = rng.standard_normal((M, N))
    cfg = _config(keep_original_c=False)
    with pytest.raises(UncorrectableError, match="preserved"):
        ParallelFTGemm(cfg, n_threads=2).gemm(
            a, b, c0, beta=1.0, injector=_kill(0, 3)
        )


def test_unprotected_run_still_recovers_rows(abc):
    """Fail-stop recovery is a scheduler property, not a checksum property:
    it must work with FT disabled too (no ledger to rebuild)."""
    a, b = abc
    cfg = _config(enable_ft=False)
    result = ParallelFTGemm(cfg, n_threads=2).gemm(a, b, injector=_kill(1, 1))
    assert result.recovery is not None
    assert result.recovery.thread_deaths == ((1, 1),)
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)


def test_failstop_plus_transient_fault_both_recovered(abc):
    """A thread dies *and* a transient strike lands in a survivor's work —
    the recovery epoch and the verifier must compose."""
    a, b = abc
    injector = FaultInjector(
        InjectionPlan(
            schedule={"microkernel": (0,)},
            fail_stops=(FailStop(thread=1, barrier=4),),
        )
    )
    result = ParallelFTGemm(_config(), n_threads=2).gemm(a, b, injector=injector)
    assert result.verified
    assert result.recovery.thread_deaths == ((1, 4),)
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)


def test_failstop_counters_account_recovery_work(abc):
    """Recovered rows re-run through the packed driver — the flop count of
    a run with a death must exceed the fault-free run's."""
    a, b = abc
    clean = ParallelFTGemm(_config(), n_threads=2).gemm(a, b)
    dead = ParallelFTGemm(_config(), n_threads=2).gemm(a, b, injector=_kill(1, 0))
    assert dead.counters.fma_flops > clean.counters.fma_flops
    assert dead.counters.blocks_recomputed > 0
