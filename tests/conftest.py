"""Shared fixtures for the FT-GEMM reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_blocking() -> BlockingConfig:
    """Tiny blocks: every loop runs multiple iterations and every ragged
    edge path executes even for matrices of a few dozen rows."""
    return BlockingConfig.small()


@pytest.fixture
def small_config(small_blocking) -> FTGemmConfig:
    return FTGemmConfig(blocking=small_blocking)


@pytest.fixture
def lock_sanitizer():
    """Opt-in runtime lock sanitizer (see repro.analysis.sanitize).

    The test body runs inside a monitor() scope, so every lock the code
    under test *creates* is instrumented — construct the system under
    test inside the test, not in another fixture. Teardown fails the
    test on any lock-order cycle or leaked thread the run produced.
    """
    from repro.analysis.sanitize import monitor

    with monitor() as sanitizer:
        yield sanitizer
    sanitizer.check()


@pytest.fixture
def operands(rng):
    """Factory for (A, B, C0) triples with awkward (non-multiple) shapes."""

    def make(m: int = 37, n: int = 29, k: int = 23):
        return (
            rng.standard_normal((m, k)),
            rng.standard_normal((k, n)),
            rng.standard_normal((m, n)),
        )

    return make
