"""Blocking configuration and loop partitioning."""

import pytest

from repro.gemm.blocking import BlockingConfig, block_starts, iter_blocks, n_blocks
from repro.util.errors import ConfigError


def test_default_matches_paper():
    cfg = BlockingConfig()
    assert (cfg.mc, cfg.kc, cfg.nc) == (192, 384, 9216)
    assert (cfg.mr, cfg.nr) == (16, 14)


def test_mc_must_be_multiple_of_mr():
    with pytest.raises(ConfigError, match="multiple"):
        BlockingConfig(mc=100, mr=16)


def test_tile_cannot_exceed_block():
    with pytest.raises(ConfigError):
        BlockingConfig(mc=8, mr=16)
    with pytest.raises(ConfigError):
        BlockingConfig(nc=4, nr=8)


def test_rejects_nonpositive():
    with pytest.raises(ConfigError):
        BlockingConfig(kc=0)
    with pytest.raises(ConfigError):
        BlockingConfig(mc=-192)


def test_footprints():
    cfg = BlockingConfig()
    assert cfg.a_block_doubles == 192 * 384
    assert cfg.b_panel_doubles == 384 * 9216
    assert cfg.c_tile_doubles == 16 * 14


def test_micro_panel_counts():
    cfg = BlockingConfig()
    assert cfg.micro_panels_m(192) == 12
    assert cfg.micro_panels_m(193) == 13
    assert cfg.micro_panels_n(14) == 1
    assert cfg.micro_panels_n(15) == 2


def test_with_modifies_copy():
    cfg = BlockingConfig()
    cfg2 = cfg.with_(kc=128)
    assert cfg2.kc == 128 and cfg.kc == 384


def test_iter_blocks_exact_and_ragged():
    assert list(iter_blocks(10, 4)) == [(0, 4), (4, 4), (8, 2)]
    assert list(iter_blocks(8, 4)) == [(0, 4), (4, 4)]
    assert list(iter_blocks(3, 4)) == [(0, 3)]
    assert list(iter_blocks(0, 4)) == []


def test_iter_blocks_covers_range():
    blocks = list(iter_blocks(97, 12))
    assert sum(length for _, length in blocks) == 97
    ends = [start + length for start, length in blocks]
    starts = [start for start, _ in blocks]
    assert starts == [0] + ends[:-1]  # contiguous, no gaps


def test_iter_blocks_validation():
    with pytest.raises(ConfigError):
        list(iter_blocks(10, 0))
    with pytest.raises(ConfigError):
        list(iter_blocks(-1, 4))


def test_block_starts():
    assert block_starts(10, 4) == [0, 4, 8]


def test_n_blocks():
    assert n_blocks(10, 4) == 3
    assert n_blocks(8, 4) == 2
    assert n_blocks(0, 4) == 0


def test_small_config_is_valid_and_small():
    cfg = BlockingConfig.small()
    assert cfg.mc <= 16 and cfg.kc <= 16
    assert cfg.mc % cfg.mr == 0


def test_accepts_numpy_integers_as_plain_ints():
    np_ = pytest.importorskip("numpy")
    cfg = BlockingConfig(
        mc=np_.int64(32), kc=np_.int32(16), nc=np_.int64(28),
        mr=np_.int64(16), nr=np_.int64(14),
    )
    # coerced at construction: the frozen config holds plain ints and
    # hashes/serialises identically however the values were produced
    assert all(
        type(v) is int for v in (cfg.mc, cfg.kc, cfg.nc, cfg.mr, cfg.nr)
    )
    assert cfg == BlockingConfig(mc=32, kc=16, nc=28, mr=16, nr=14)


def test_rejects_bool_block_sizes():
    with pytest.raises(ConfigError):
        BlockingConfig(kc=True)


def test_rejects_non_integral_block_sizes():
    with pytest.raises(ConfigError):
        BlockingConfig(kc=384.0)


def test_misaligned_workspace_view_fails_loud():
    """The a_view guard behind the mc % mr constructor check: a block
    start off the panel grid must raise, not alias the previous block."""
    from repro.gemm.workspace import Workspace
    from repro.util.errors import ShapeError

    ws = Workspace(BlockingConfig.small(), 32, 16, 16)
    ws.a_view(ws.config.mr, 1, 4)  # aligned: fine
    with pytest.raises(ShapeError, match="aligned"):
        ws.a_view(ws.config.mr - 1, 1, 4)
