"""Process-tier pool behavior: heartbeat machinery, deterministic worker
seeding, death → exactly-once replay → probation re-admission, degraded
buckets after repeated shard deaths, and bounded replays.

Chaos here is deterministic (a closure arming specific kills), so every
death scenario replays bit-identically; the randomized storm lives in
``test_serve_proc_soak.py``.
"""

import multiprocessing
import threading
import time

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.serve import GemmService, GemmRequest, ServiceConfig
from repro.serve.proc import HeartbeatBoard, HeartbeatMonitor
from repro.serve.proc.heartbeat import Beater
from repro.serve.proc.spawnctx import spawn_context, worker_seed
from repro.util.errors import ConfigError


def _proc_config(**kw) -> ServiceConfig:
    kw.setdefault("processes", 2)
    kw.setdefault("workers", 2)
    kw.setdefault("ft", FTGemmConfig(blocking=BlockingConfig.small()))
    return ServiceConfig(**kw)


def _submit_batch(service, rng, n, shape=(10, 16, 12), b=None):
    m, k, nn = shape
    tickets = []
    for _ in range(n):
        a = rng.standard_normal((m, k))
        bb = b if b is not None else rng.standard_normal((k, nn))
        tickets.append((a, bb, service.submit(GemmRequest(a, bb))))
    return tickets


def _audit(tickets, timeout=60.0):
    for a, b, t in tickets:
        r = t.result(timeout)
        assert r.status == "ok", (r.status, r.error)
        np.testing.assert_allclose(r.result.c, a @ b, atol=1e-9)


# ------------------------------------------------------------- determinism
def test_spawn_context_is_pinned_to_spawn():
    ctx = spawn_context()
    assert ctx.get_start_method() == "spawn"
    assert ctx is spawn_context()  # one singleton, one place
    # pinning never touched the global default
    assert multiprocessing.get_start_method(allow_none=True) in (
        None, "fork", "spawn", "forkserver",
    )


def test_worker_seed_distinct_per_slot_and_incarnation():
    seeds = {
        worker_seed(0, slot, inc)
        for slot in range(4) for inc in range(4)
    }
    assert len(seeds) == 16
    assert worker_seed(1, 0, 0) != worker_seed(0, 0, 0)
    assert worker_seed(0, 2, 1) == worker_seed(0, 2, 1)


# --------------------------------------------------------------- heartbeat
def test_board_tracks_progress_not_beat_count():
    board = HeartbeatBoard()
    value = board.register("w")
    # first beat anchors the progress window at our (fake) clock
    with value.get_lock():
        value.value += 1
    assert board.stalled("w", window_s=10.0, now=100.0) is False
    # no movement for a full window -> stalled
    assert board.stalled("w", window_s=10.0, now=111.0) is True
    # any movement restamps the window
    with value.get_lock():
        value.value += 1
    assert board.stalled("w", window_s=10.0, now=112.0) is False
    assert board.stalled("w", window_s=10.0, now=121.0) is False
    assert board.stalled("w", window_s=10.0, now=122.5) is True
    board.deregister("w")
    assert board.stalled("w", window_s=10.0, now=999.0) is False


def test_beater_moves_the_counter():
    board = HeartbeatBoard()
    value = board.register("w")
    beater = Beater(value, interval_s=0.005)
    beater.start()
    deadline = time.monotonic() + 2.0
    while board.beats("w") < 3 and time.monotonic() < deadline:
        time.sleep(0.005)
    beater.stop()
    assert board.beats("w") >= 3


def test_monitor_escalates_dead_and_stalled_keys():
    board = HeartbeatBoard()
    board.register("dead-one")
    frozen = board.register("frozen-one")
    # one beat ends the boot grace; after it the worker goes silent
    with frozen.get_lock():
        frozen.value += 1
    seen = {"dead": [], "stall": []}
    monitor = HeartbeatMonitor(
        board,
        interval_s=0.01,
        miss_limit=1,
        liveness=lambda key: key != "dead-one",
        on_dead=seen["dead"].append,
        on_stall=seen["stall"].append,
    )
    monitor.tick()  # first sweep stamps baselines; nothing stalled yet
    assert seen["dead"] == ["dead-one"]
    time.sleep(0.03)  # > window_s = 0.01 with no beats
    monitor.tick()
    assert seen["stall"] == ["frozen-one"]


# ------------------------------------------------------------ basic serving
def test_process_tier_serves_and_coalesces(rng):
    service = GemmService(_proc_config()).start()
    shared_b = rng.standard_normal((16, 12))
    tickets = _submit_batch(service, rng, 8, b=shared_b)
    service.drain()
    _audit(tickets)
    stats = service.stats()
    assert stats["proc"]["workers"] == 2
    assert stats["metrics"]["counters"].get("serve.proc.batches", 0) >= 1
    service.shutdown()


def test_process_tier_rejects_live_injector_factory():
    with pytest.raises(ConfigError, match="process boundary"):
        GemmService(
            _proc_config(), injector_factory=lambda *a: None
        )
    with pytest.raises(ConfigError, match="process tier"):
        GemmService(
            ServiceConfig(processes=0), chaos=lambda *a: None
        )


def test_fault_specs_exercise_child_side_abft(rng):
    """A spec-driven injected fault is detected and corrected inside the
    worker process — the response is still correct and verified."""
    def spec_factory(request_id, config):
        return {
            "model": "flip", "bit": 50, "errors_per_call": 2,
            "plan_seed": 1234, "fail_stop": None,
        }

    service = GemmService(
        _proc_config(processes=1), fault_spec_factory=spec_factory
    ).start()
    tickets = _submit_batch(service, rng, 3)
    service.drain()
    _audit(tickets)
    service.shutdown()


# ---------------------------------------------------------- death and replay
def test_sigkill_mid_compute_replays_exactly_once(rng):
    armed = []

    def chaos(batch_id, deaths):
        if deaths == 0 and not armed:
            armed.append(batch_id)
            return "compute"
        return None

    service = GemmService(_proc_config(proc_seed=5), chaos=chaos).start()
    tickets = _submit_batch(service, rng, 8)
    service.drain()
    _audit(tickets)
    counters = service.stats()["metrics"]["counters"]
    assert counters.get("serve.proc.deaths", 0) >= 1
    assert counters.get("serve.proc.replays", 0) >= 1
    assert service.duplicates == 0
    service.shutdown()


@pytest.mark.parametrize("phase", ["pack", "reduce", "reply"])
def test_sigkill_at_every_phase_is_survivable(rng, phase):
    armed = []

    def chaos(batch_id, deaths):
        if deaths == 0 and not armed:
            armed.append(batch_id)
            return phase
        return None

    service = GemmService(_proc_config(proc_seed=6), chaos=chaos).start()
    tickets = _submit_batch(service, rng, 5)
    service.drain()
    _audit(tickets)
    assert service.stats()["metrics"]["counters"].get(
        "serve.proc.deaths", 0
    ) >= 1
    service.shutdown()


def test_stall_is_caught_by_heartbeat_monitor(rng):
    """A worker that freezes without dying (beater stopped, PID alive)
    must be rescued by miss detection, not pipe EOF."""
    armed = []

    def chaos(batch_id, deaths):
        if deaths == 0 and not armed:
            armed.append(batch_id)
            return "stall"
        return None

    service = GemmService(
        _proc_config(
            proc_seed=7,
            proc_heartbeat_s=0.05,
            proc_miss_limit=6,  # ~0.3 s stall window
        ),
        chaos=chaos,
    ).start()
    tickets = _submit_batch(service, rng, 5)
    service.drain()
    _audit(tickets, timeout=120.0)
    counters = service.stats()["metrics"]["counters"]
    assert counters.get("serve.proc.deaths", 0) >= 1
    service.shutdown()


def test_probation_batch_readmits_replacements(rng):
    armed = []

    def chaos(batch_id, deaths):
        if deaths == 0 and not armed:
            armed.append(batch_id)
            return "compute"
        return None

    service = GemmService(
        _proc_config(proc_seed=8, proc_probation=True), chaos=chaos
    ).start()
    tickets = _submit_batch(service, rng, 8)
    service.drain()
    _audit(tickets)
    counters = service.stats()["metrics"]["counters"]
    assert counters.get("serve.proc.probes_ok", 0) >= 1
    assert counters.get("serve.proc.probes_failed", 0) == 0
    service.shutdown()


def test_replays_are_bounded_and_fail_terminally(rng):
    """A batch whose worker dies on every dispatch exhausts its replay
    budget and fails — terminally, exactly once, without hanging."""
    def chaos(batch_id, deaths):
        return "compute"  # kill every dispatch of every batch

    service = GemmService(
        _proc_config(
            processes=1,
            proc_seed=10,
            proc_max_replays=1,
            proc_probation=False,
        ),
        chaos=chaos,
    ).start()
    a = np.ones((6, 8))
    b = np.ones((8, 4))
    ticket = service.submit(GemmRequest(a, b))
    service.drain()
    response = ticket.result(120.0)
    assert response.status == "failed"
    assert "worker process lost" in response.error
    counters = service.stats()["metrics"]["counters"]
    assert counters.get("serve.proc.replays_exhausted", 0) >= 1
    assert service.duplicates == 0
    service.shutdown()


def test_repeated_shard_deaths_degrade_the_bucket(rng):
    """Two deaths on one shape bucket flip it to checksum-only degraded
    mode; later batches of that bucket complete degraded but correct."""
    kills = {"n": 0}

    def chaos(batch_id, deaths):
        if kills["n"] < 2 and deaths < 2:
            kills["n"] += 1
            return "compute"
        return None

    service = GemmService(
        _proc_config(proc_seed=11, proc_bucket_degraded_after=2),
        chaos=chaos,
    ).start()
    shared_b = rng.standard_normal((16, 12))
    tickets = _submit_batch(service, rng, 10, b=shared_b)
    service.drain()
    _audit(tickets, timeout=120.0)
    stats = service.stats()
    assert stats["proc"]["degraded_buckets"] >= 1
    assert stats["metrics"]["counters"].get(
        "serve.proc.degraded_buckets", 0
    ) >= 1
    service.shutdown()


def test_hot_b_cache_ships_cached_refs(rng):
    """Repeat traffic against one B is served from the child-resident
    cache: later dispatches ship a tiny ref instead of the operand."""
    service = GemmService(
        _proc_config(processes=1, proc_b_cache_entries=4, max_batch=1)
    ).start()
    shared_b = rng.standard_normal((16, 12))
    tickets = _submit_batch(service, rng, 6, b=shared_b)
    service.drain()
    _audit(tickets)
    counters = service.stats()["metrics"]["counters"]
    assert counters.get("serve.proc.b_cache_hits", 0) >= 1
    service.shutdown()


def test_process_tier_is_deterministic_across_runs(rng):
    """Same seed, same traffic -> byte-identical results, both runs."""
    def run_once():
        service = GemmService(
            _proc_config(processes=1, proc_seed=42)
        ).start()
        rng_local = np.random.default_rng(99)
        tickets = _submit_batch(service, rng_local, 4)
        service.drain()
        out = [t.result(60.0).result.c.copy() for _, _, t in tickets]
        service.shutdown()
        return out

    first, second = run_once(), run_once()
    for c1, c2 in zip(first, second):
        np.testing.assert_array_equal(c1, c2)
