"""Runtime lock-order/race sanitizer: unit behavior and system sweeps.

Three layers of coverage:

- **detector units** — the acquisition-graph cycle detector on synthetic
  lock patterns (2-cycle, 3-cycle, consistent order, reentrancy,
  condition waits) and the leaked-thread detector;
- **seeded regression** — `serve.pool.SEED_LOCK_INVERSION` flips on a
  deliberate pool<->scheduler lock inversion; the sanitizer must catch
  it through a full service start/serve/shutdown, proving the detector
  sees real inversions through the real stack (and that the clean run
  right next to it is genuinely clean, not blind);
- **sanitized system runs** — the serve fault-storm soak (scaled down)
  and the fail-stop recovery grid (sampled) execute entirely under the
  monitor: no cycles, no leaked threads, results still correct.
"""

import threading
import time

import numpy as np
import pytest

import repro.serve.pool as pool_mod
from repro.analysis.sanitize import SanitizerError, monitor
from repro.core.config import FTGemmConfig
from repro.core.parallel import ParallelFTGemm
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import FailStop
from repro.gemm.blocking import BlockingConfig
from repro.serve import (
    GemmService,
    ServiceConfig,
    ShapeSpec,
    WorkloadConfig,
    make_injector_factory,
    run_workload,
)


def _ordered(lock_a, lock_b):
    with lock_a:
        with lock_b:
            pass


def _in_thread(fn, *args):
    thread = threading.Thread(target=fn, args=args)
    thread.start()
    thread.join()


# ------------------------------------------------------------ detector units
def test_two_lock_inversion_detected():
    with monitor() as san:
        a = threading.Lock()
        b = threading.Lock()
        _in_thread(_ordered, a, b)
        _in_thread(_ordered, b, a)
    assert len(san.cycles) == 1
    assert not san.clean
    with pytest.raises(SanitizerError, match="lock-order cycle"):
        san.check()


def test_three_lock_cycle_detected():
    with monitor() as san:
        a = threading.Lock()
        b = threading.Lock()
        c = threading.Lock()
        _in_thread(_ordered, a, b)
        _in_thread(_ordered, b, c)
        _in_thread(_ordered, c, a)
    assert len(san.cycles) == 1
    assert len(san.cycles[0].path) == 4  # a -> b -> c -> a


def test_consistent_order_is_clean():
    with monitor() as san:
        a = threading.Lock()
        b = threading.Lock()
        for _ in range(3):
            _in_thread(_ordered, a, b)
    san.check()
    assert san.edges and san.clean


def test_rlock_reentrancy_is_not_a_cycle():
    with monitor() as san:
        r = threading.RLock()
        b = threading.Lock()

        def nest():
            with r:
                with b:
                    with r:  # re-entry under b must not create b -> r
                        pass

        _in_thread(nest)
    san.check()


def test_condition_wait_releases_held_lock():
    """A thread blocked in cond.wait holds nothing: another thread taking
    (other_lock -> cond's lock) during the wait must not build an edge
    from the waiter's lock."""
    with monitor() as san:
        cv = threading.Condition()  # bare: instrumented RLock inside
        other = threading.Lock()
        ready = []

        def waiter():
            with cv:
                while not ready:
                    cv.wait(1.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)

        def wake():
            with other:
                with cv:
                    ready.append(1)
                    cv.notify_all()

        _in_thread(wake)
        thread.join()
    san.check()


def test_leaked_thread_reported():
    release = threading.Event()
    with monitor(join_grace_s=0.2) as san:
        thread = threading.Thread(target=release.wait, daemon=True)
        thread.start()
    try:
        assert san.leaked_threads
        with pytest.raises(SanitizerError, match="leaked thread"):
            san.check()
    finally:
        release.set()


def test_joined_threads_are_not_leaks():
    with monitor() as san:
        thread = threading.Thread(target=lambda: None)
        thread.start()
        thread.join()
    san.check()
    assert san.leaked_threads == []


# --------------------------------------------------------- seeded regression
def _small_service_config():
    return ServiceConfig(
        workers=2,
        capacity=64,
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )


def _serve_a_few(service, rng):
    from repro.serve.request import GemmRequest

    b = rng.standard_normal((24, 16))
    tickets = [
        service.submit(GemmRequest(a=rng.standard_normal((8, 24)), b=b))
        for _ in range(8)
    ]
    for ticket in tickets:
        response = ticket.result(timeout=60)
        assert response.status == "ok", response.summary()


def test_seeded_lock_inversion_is_caught(rng):
    assert pool_mod.SEED_LOCK_INVERSION is False  # product default
    pool_mod.SEED_LOCK_INVERSION = True
    try:
        with monitor() as san:
            service = GemmService(_small_service_config()).start()
            _serve_a_few(service, rng)
            service.shutdown()
    finally:
        pool_mod.SEED_LOCK_INVERSION = False
    assert san.cycles, "seeded pool<->scheduler inversion not detected"
    description = san.cycles[0].describe()
    assert "pool.py" in description and "scheduler.py" in description


def test_unseeded_service_lifecycle_is_clean(rng):
    """The control for the regression above: identical run, flag off —
    the detector that just fired now reports nothing."""
    with monitor() as san:
        service = GemmService(_small_service_config()).start()
        _serve_a_few(service, rng)
        service.shutdown()
    san.check()
    assert san.locks_created > 0 and san.leaked_threads == []


# ------------------------------------------------------ sanitized system runs
def test_fault_storm_soak_under_sanitizer(lock_sanitizer):
    """The serve soak, scaled to smoke size, entirely under the monitor:
    exactly-once still holds, and the real locking of queue, scheduler,
    pool, service and futures is cycle- and leak-free in practice."""
    shapes = (
        ShapeSpec(8, 32, 32, weight=0.5),
        ShapeSpec(6, 48, 24, weight=0.3),
        ShapeSpec(8, 24, 16, weight=0.2, private_b=True),
    )
    workload = WorkloadConfig(
        duration_s=60.0,
        arrival_rate=2000.0,
        max_requests=120,
        fault_rate=0.1,
        fail_stop_fraction=0.3,
        errors_per_call=2,
        seed=77,
        shapes=shapes,
    )
    config = ServiceConfig(
        workers=2,
        capacity=200,
        max_batch=8,
        retry_budget=2,
        backoff_base_s=0.0005,
        quarantine_after=3,
        gemm_threads=2,
        team_backend="simulated",
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )
    service = GemmService(
        config, injector_factory=make_injector_factory(workload)
    ).start()
    report = run_workload(service, workload, timeout_s=180.0)
    assert report.lost == 0
    assert report.duplicates == 0
    assert report.wrong == 0
    assert report.responses.get("ok", 0) == report.submitted
    # lock_sanitizer's teardown runs san.check(): cycles or leaked
    # threads in the run above fail the test there


def test_sigkill_chaos_proc_pool_under_sanitizer(rng):
    """SIGKILL chaos on the process tier with the *parent* under the
    monitor: a shard dies mid-compute, death recovery replays the flight
    exactly once, and the parent's heartbeat/replay/registry locking
    builds no lock-order cycle and leaves no unjoined thread behind."""
    from repro.serve.request import GemmRequest

    armed = []

    def chaos(batch_id, deaths):
        if deaths == 0 and not armed:
            armed.append(batch_id)
            return "compute"
        return None

    config = ServiceConfig(
        processes=2,
        workers=2,
        proc_seed=11,
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )
    with monitor() as san:
        service = GemmService(config, chaos=chaos).start()
        pairs = []
        for _ in range(6):
            a = rng.standard_normal((10, 16))
            b = rng.standard_normal((16, 12))
            pairs.append((a, b, service.submit(GemmRequest(a, b))))
        service.drain()
        for a, b, ticket in pairs:
            response = ticket.result(timeout=120)
            assert response.status == "ok", (response.status, response.error)
            np.testing.assert_allclose(response.result.c, a @ b, atol=1e-9)
        counters = service.stats()["metrics"]["counters"]
        assert counters.get("serve.proc.deaths", 0) >= 1
        assert service.duplicates == 0
        service.shutdown()
    san.check()
    assert san.cycles == [] and san.leaked_threads == []


@pytest.mark.parametrize("barrier", [0, 3, 8])
def test_failstop_recovery_under_sanitizer(lock_sanitizer, rng, barrier):
    """Fail-stop recovery on the OS-thread backend under the monitor: the
    team's monitored barrier (bare Condition -> instrumented RLock), the
    locked injector and the recovery epoch hold no conflicting lock
    orders and leak no threads, while the kill/recover grid still
    verifies."""
    a = rng.standard_normal((20, 16))
    b = rng.standard_normal((16, 24))
    cfg = FTGemmConfig(blocking=BlockingConfig.small())
    injector = FaultInjector(
        InjectionPlan(
            schedule={},
            seed=0,
            fail_stops=(FailStop(thread=1, barrier=barrier),),
        )
    )
    driver = ParallelFTGemm(cfg, n_threads=2, backend="threads")
    result = driver.gemm(a, b, injector=injector)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)
    assert result.recovery is not None
    assert result.recovery.thread_deaths == ((1, barrier),)
