"""Batch scheduler: coalescing, singleton fallback, windows, expiry."""

import time

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import AdmissionQueue, BatchScheduler, GemmRequest
from repro.util.errors import ConfigError


def _requests(count, b=None, *, k=6, n=5, m=4, **kwargs):
    rng = np.random.default_rng(0)
    if b is None:
        b = rng.standard_normal((k, n))
    return [
        GemmRequest(rng.standard_normal((m, k)), b, **kwargs)
        for _ in range(count)
    ]


def _drain_batches(scheduler, expect):
    batches = []
    deadline = time.monotonic() + 5.0
    while (
        sum(len(batch) for batch in batches) < expect
        and time.monotonic() < deadline
    ):
        batch = scheduler.next_batch(timeout=0.2)
        if batch is not None:
            batches.append(batch)
    return batches


def test_shared_b_requests_coalesce_into_one_batch():
    q = AdmissionQueue(capacity=32)
    scheduler = BatchScheduler(q, max_batch=8, window_s=0.0)
    for r in _requests(5):
        q.put(r)
    scheduler.start()
    batches = _drain_batches(scheduler, 5)
    q.seal()
    scheduler.stop()
    assert len(batches) == 1
    assert len(batches[0]) == 5
    assert batches[0].coalesced


def test_max_batch_splits_large_groups():
    q = AdmissionQueue(capacity=32)
    scheduler = BatchScheduler(q, max_batch=4, window_s=0.0)
    for r in _requests(10):
        q.put(r)
    scheduler.start()
    batches = _drain_batches(scheduler, 10)
    q.seal()
    scheduler.stop()
    assert sorted(len(b) for b in batches) == [2, 4, 4]


def test_private_b_requests_stay_singletons():
    rng = np.random.default_rng(2)
    q = AdmissionQueue(capacity=32)
    scheduler = BatchScheduler(q, max_batch=8, window_s=0.0)
    for _ in range(3):  # each with its own B
        q.put(_requests(1, b=rng.standard_normal((6, 5)))[0])
    scheduler.start()
    batches = _drain_batches(scheduler, 3)
    q.seal()
    scheduler.stop()
    assert len(batches) == 3
    assert all(len(b) == 1 and not b.coalesced for b in batches)


def test_beta_nonzero_requests_never_coalesce():
    rng = np.random.default_rng(3)
    b = rng.standard_normal((6, 5))
    q = AdmissionQueue(capacity=32)
    scheduler = BatchScheduler(q, max_batch=8, window_s=0.0)
    for _ in range(2):
        q.put(
            GemmRequest(
                rng.standard_normal((4, 6)), b,
                c0=rng.standard_normal((4, 5)), beta=0.5,
            )
        )
    scheduler.start()
    batches = _drain_batches(scheduler, 2)
    q.seal()
    scheduler.stop()
    # they share a bucket key shape-wise but the beta flag forbids stacking
    assert all(not batch.coalesced for batch in batches)


def test_batching_window_absorbs_late_compatible_arrival():
    rng = np.random.default_rng(4)
    b = rng.standard_normal((6, 5))
    q = AdmissionQueue(capacity=32)
    scheduler = BatchScheduler(q, max_batch=8, window_s=0.25)
    first, late = _requests(2, b=b)
    q.put(first)
    scheduler.start()
    time.sleep(0.05)  # scheduler now holds the window open
    q.put(late)
    batches = _drain_batches(scheduler, 2)
    q.seal()
    scheduler.stop()
    assert len(batches) == 1 and len(batches[0]) == 2


def test_incompatible_arrival_ships_the_open_batch():
    rng = np.random.default_rng(5)
    b = rng.standard_normal((6, 5))
    q = AdmissionQueue(capacity=32)
    # a long window that an incompatible arrival must cut short
    scheduler = BatchScheduler(q, max_batch=8, window_s=5.0)
    q.put(_requests(1, b=b)[0])
    scheduler.start()
    time.sleep(0.05)
    q.put(_requests(1, b=rng.standard_normal((6, 5)))[0])  # different lane
    t0 = time.monotonic()
    first = scheduler.next_batch(timeout=4.0)
    elapsed = time.monotonic() - t0
    # the open batch shipped as soon as the incompatible request arrived,
    # not after its 5 s window ran out
    assert first is not None and len(first) == 1
    assert elapsed < 4.0
    q.seal()  # releases the second singleton from its own window
    batches = _drain_batches(scheduler, 1)
    scheduler.stop()
    assert len(batches) == 1 and len(batches[0]) == 1


def test_expired_head_is_reaped_not_executed():
    metrics = MetricsRegistry()
    q = AdmissionQueue(capacity=8, metrics=metrics)
    expired_seen = []
    scheduler = BatchScheduler(
        q, max_batch=4, window_s=0.0,
        on_expired=expired_seen.append, metrics=metrics,
    )
    stale = _requests(1, deadline_s=0.01)[0]
    q.put(stale)
    time.sleep(0.05)  # expires while queued, before the scheduler runs
    scheduler.start()
    fresh = _requests(1)[0]
    q.put(fresh)
    batches = _drain_batches(scheduler, 1)
    q.seal()
    scheduler.stop()
    assert expired_seen == [stale]
    assert scheduler.stats.expired == 1
    assert metrics.counters["serve.expired"] == 1  # counted exactly once
    assert [r for batch in batches for r in batch.items] == [fresh]


def test_drain_signals_finished_to_workers():
    q = AdmissionQueue(capacity=8)
    scheduler = BatchScheduler(q, max_batch=4, window_s=0.0)
    for r in _requests(3):
        q.put(r)
    scheduler.start()
    q.seal()
    scheduler.stop(join=True)
    # everything queued before the seal is still delivered...
    batches = _drain_batches(scheduler, 3)
    assert sum(len(b) for b in batches) == 3
    # ...and only then does the scheduler report finished
    assert scheduler.next_batch(timeout=0.05) is None
    assert scheduler.finished


def test_scheduler_validates_config():
    q = AdmissionQueue()
    with pytest.raises(ConfigError):
        BatchScheduler(q, max_batch=0)
    with pytest.raises(ConfigError):
        BatchScheduler(q, window_s=-1.0)
