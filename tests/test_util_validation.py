"""Operand validation."""

import numpy as np
import pytest

from repro.util.errors import ConfigError, ShapeError
from repro.util.validation import (
    as_2d_float64,
    check_gemm_operands,
    check_in,
    check_multiple,
    check_positive,
)


def test_as_2d_float64_view_when_possible():
    x = np.zeros((3, 4), dtype=np.float64)
    assert as_2d_float64(x, "X") is x


def test_as_2d_float64_converts_lists_and_ints():
    out = as_2d_float64([[1, 2], [3, 4]], "X")
    assert out.dtype == np.float64
    assert out.shape == (2, 2)


def test_as_2d_float64_makes_contiguous():
    x = np.zeros((6, 6))[::2]  # non-contiguous view
    out = as_2d_float64(x.T, "X")
    assert out.flags.c_contiguous


def test_as_2d_float64_rejects_3d():
    with pytest.raises(ShapeError):
        as_2d_float64(np.zeros((2, 2, 2)), "X")


def test_as_2d_float64_copy_flag():
    x = np.ones((2, 2))
    out = as_2d_float64(x, "X", copy=True)
    assert out is not x
    out[0, 0] = 5.0
    assert x[0, 0] == 1.0


def test_check_gemm_operands_shapes():
    a = np.zeros((3, 4))
    b = np.zeros((4, 5))
    assert check_gemm_operands(a, b) == (3, 5, 4)


def test_check_gemm_operands_inner_mismatch():
    with pytest.raises(ShapeError, match="inner dimensions"):
        check_gemm_operands(np.zeros((3, 4)), np.zeros((5, 6)))


def test_check_gemm_operands_c_mismatch():
    a, b = np.zeros((3, 4)), np.zeros((4, 5))
    with pytest.raises(ShapeError, match="C must be"):
        check_gemm_operands(a, b, np.zeros((3, 6)))


def test_check_gemm_operands_empty_rejected():
    with pytest.raises(ShapeError, match="empty"):
        check_gemm_operands(np.zeros((0, 4)), np.zeros((4, 5)))


def test_check_gemm_operands_vector_rejected():
    with pytest.raises(ShapeError):
        check_gemm_operands(np.zeros(4), np.zeros((4, 5)))


def test_check_positive():
    check_positive(1.0, "x")
    check_positive(0.0, "x", strict=False)
    with pytest.raises(ConfigError):
        check_positive(0.0, "x")
    with pytest.raises(ConfigError):
        check_positive(-1.0, "x", strict=False)


def test_check_in():
    check_in("a", "mode", ("a", "b"))
    with pytest.raises(ConfigError, match="mode"):
        check_in("c", "mode", ("a", "b"))


def test_check_multiple():
    check_multiple(12, 4, "mc")
    with pytest.raises(ConfigError):
        check_multiple(10, 4, "mc")
    with pytest.raises(ConfigError):
        check_multiple(0, 4, "mc")
