"""FTGemmConfig contract."""

import pytest

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.util.errors import ConfigError


def test_defaults_are_paper_settings():
    cfg = FTGemmConfig()
    assert cfg.enable_ft
    assert cfg.verify_mode == "final"
    assert cfg.blocking.mc == 192
    assert cfg.recompute_fallback
    assert cfg.strict


def test_unprotected_factory():
    cfg = FTGemmConfig.unprotected()
    assert not cfg.enable_ft


def test_small_factory():
    cfg = FTGemmConfig.small()
    assert cfg.blocking == BlockingConfig.small()


def test_verify_mode_validated():
    with pytest.raises(ConfigError):
        FTGemmConfig(verify_mode="sometimes")
    FTGemmConfig(verify_mode="eager")


def test_recompute_attempts_validated():
    with pytest.raises(ConfigError):
        FTGemmConfig(max_recompute_attempts=0)


def test_with_modifies_copy():
    cfg = FTGemmConfig()
    cfg2 = cfg.with_(strict=False)
    assert cfg.strict and not cfg2.strict
    assert cfg2.blocking is cfg.blocking


def test_frozen():
    with pytest.raises(AttributeError):
        FTGemmConfig().strict = False


# ---------------------------------------------------------------- validate()
def test_validate_returns_self_on_consistent_config():
    cfg = FTGemmConfig()
    assert cfg.validate() is cfg
    assert cfg.validate(n_threads=4) is cfg


def test_validate_rejects_supervisor_without_ft():
    cfg = FTGemmConfig(enable_ft=False)  # default enable_supervisor=True
    with pytest.raises(ConfigError, match="enable_supervisor"):
        cfg.validate()


def test_validate_rejects_eager_without_ft():
    cfg = FTGemmConfig(enable_ft=False, verify_mode="eager",
                       enable_supervisor=False)
    with pytest.raises(ConfigError, match="eager"):
        cfg.validate()


def test_validate_rejects_nonpositive_threads():
    for bad in (0, -2):
        with pytest.raises(ConfigError, match="n_threads"):
            FTGemmConfig().validate(n_threads=bad)


def test_validate_rejects_eager_on_parallel_driver():
    with pytest.raises(ConfigError, match="eager"):
        FTGemmConfig(verify_mode="eager").validate(n_threads=2)


def test_validate_collects_every_problem():
    cfg = FTGemmConfig(enable_ft=False, verify_mode="eager")
    with pytest.raises(ConfigError) as excinfo:
        cfg.validate(n_threads=0)
    message = str(excinfo.value)
    assert "enable_supervisor" in message
    assert "eager" in message
    assert "n_threads" in message


def test_with_disable_ft_also_disables_supervisor():
    cfg = FTGemmConfig().with_(enable_ft=False)
    assert not cfg.enable_supervisor
    cfg.validate()  # consistent


def test_with_disable_ft_respects_explicit_supervisor_choice():
    cfg = FTGemmConfig().with_(enable_ft=False, enable_supervisor=True)
    assert cfg.enable_supervisor  # explicit wins; validate() rejects it
    with pytest.raises(ConfigError):
        cfg.validate()


def test_unprotected_factory_is_validate_clean():
    FTGemmConfig.unprotected().validate()


def test_drivers_validate_on_construction():
    from repro.core.ftgemm import FTGemm
    from repro.core.parallel import ParallelFTGemm

    bad = FTGemmConfig(enable_ft=False)
    with pytest.raises(ConfigError):
        FTGemm(bad)
    with pytest.raises(ConfigError):
        ParallelFTGemm(FTGemmConfig(), n_threads=0)
    with pytest.raises(ConfigError, match="eager"):
        ParallelFTGemm(FTGemmConfig(verify_mode="eager"), n_threads=2)
