"""FTGemmConfig contract."""

import pytest

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.util.errors import ConfigError


def test_defaults_are_paper_settings():
    cfg = FTGemmConfig()
    assert cfg.enable_ft
    assert cfg.verify_mode == "final"
    assert cfg.blocking.mc == 192
    assert cfg.recompute_fallback
    assert cfg.strict


def test_unprotected_factory():
    cfg = FTGemmConfig.unprotected()
    assert not cfg.enable_ft


def test_small_factory():
    cfg = FTGemmConfig.small()
    assert cfg.blocking == BlockingConfig.small()


def test_verify_mode_validated():
    with pytest.raises(ConfigError):
        FTGemmConfig(verify_mode="sometimes")
    FTGemmConfig(verify_mode="eager")


def test_recompute_attempts_validated():
    with pytest.raises(ConfigError):
        FTGemmConfig(max_recompute_attempts=0)


def test_with_modifies_copy():
    cfg = FTGemmConfig()
    cfg2 = cfg.with_(strict=False)
    assert cfg.strict and not cfg2.strict
    assert cfg2.blocking is cfg.blocking


def test_frozen():
    with pytest.raises(AttributeError):
        FTGemmConfig().strict = False
