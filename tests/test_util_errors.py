"""Exception hierarchy contract."""

import pytest

from repro.util.errors import (
    ConfigError,
    FaultToleranceError,
    ReproError,
    ShapeError,
    SimulationError,
    UncorrectableError,
)


def test_all_derive_from_repro_error():
    for exc in (ShapeError, ConfigError, FaultToleranceError,
                UncorrectableError, SimulationError):
        assert issubclass(exc, ReproError)


def test_value_errors_catchable_as_valueerror():
    # API users who don't know the library hierarchy still catch bad input
    assert issubclass(ShapeError, ValueError)
    assert issubclass(ConfigError, ValueError)


def test_ft_errors_catchable_as_runtimeerror():
    assert issubclass(FaultToleranceError, RuntimeError)
    assert issubclass(UncorrectableError, FaultToleranceError)


def test_uncorrectable_carries_evidence():
    exc = UncorrectableError("boom", detected=7, corrected=3)
    assert exc.detected == 7
    assert exc.corrected == 3
    assert "boom" in str(exc)


def test_uncorrectable_defaults():
    exc = UncorrectableError("x")
    assert exc.detected == 0 and exc.corrected == 0


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise UncorrectableError("nested")
