"""Deterministic RNG helpers."""

import numpy as np
import pytest

from repro.util.rng import (
    choice_without_replacement,
    derive_seed,
    make_rng,
    spawn_rngs,
)


def test_make_rng_reproducible():
    assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)


def test_make_rng_passthrough():
    gen = np.random.default_rng(0)
    assert make_rng(gen) is gen


def test_make_rng_none_gives_entropy():
    # two entropy-seeded generators should (overwhelmingly) differ
    a = make_rng(None).integers(1 << 62)
    b = make_rng(None).integers(1 << 62)
    assert isinstance(a, np.int64) or isinstance(a, int)
    assert a != b


def test_spawn_rngs_independent_streams():
    children = spawn_rngs(3, 4)
    draws = [g.integers(1 << 30) for g in children]
    assert len(set(draws)) == 4


def test_spawn_rngs_deterministic():
    a = [g.integers(1 << 30) for g in spawn_rngs(9, 3)]
    b = [g.integers(1 << 30) for g in spawn_rngs(9, 3)]
    assert a == b


def test_spawn_rngs_rejects_negative():
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_derive_seed_stable_and_distinct():
    s1 = derive_seed(42, "site", 3)
    assert s1 == derive_seed(42, "site", 3)
    assert s1 != derive_seed(42, "site", 4)
    assert s1 != derive_seed(42, "other", 3)
    assert s1 != derive_seed(43, "site", 3)


def test_derive_seed_handles_none():
    assert derive_seed(None, "x") == derive_seed(None, "x")


def test_choice_without_replacement_distinct():
    rng = make_rng(0)
    picked = choice_without_replacement(rng, list(range(100)), 10)
    assert len(picked) == 10
    assert len(set(picked)) == 10


def test_choice_without_replacement_clamps():
    rng = make_rng(0)
    picked = choice_without_replacement(rng, [1, 2, 3], 10)
    assert sorted(picked) == [1, 2, 3]
    assert choice_without_replacement(rng, [], 5) == []
