"""Protected Level-1 BLAS (DMR)."""

import numpy as np
import pytest

from repro.blas import ft_asum, ft_axpy, ft_copy, ft_dot, ft_nrm2, ft_scal
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive, BitFlip
from repro.util.errors import ShapeError


def strike(magnitude=5.0, invocation=0):
    return FaultInjector(
        InjectionPlan.single(
            "blas_compute", invocation, model=Additive(magnitude=magnitude)
        )
    )


@pytest.fixture
def vecs(rng):
    return rng.standard_normal(64), rng.standard_normal(64)


# ------------------------------------------------------------------- axpy
def test_axpy_clean(vecs):
    x, y = vecs
    expected = 2.5 * x + y
    result = ft_axpy(2.5, x, y)
    assert result.clean
    np.testing.assert_array_equal(y, expected)
    assert result.value is y


def test_axpy_fault_repaired(vecs):
    x, y = vecs
    expected = 2.5 * x + y
    result = ft_axpy(2.5, x, y, injector=strike())
    assert result.detected == 1 and result.corrected == 1
    np.testing.assert_array_equal(y, expected)


def test_axpy_shape_mismatch(rng):
    with pytest.raises(ShapeError):
        ft_axpy(1.0, rng.standard_normal(4), rng.standard_normal(5))


def test_axpy_nan_input_not_flagged():
    x = np.array([1.0, np.nan])
    y = np.array([0.0, 0.0])
    result = ft_axpy(1.0, x, y)
    assert result.clean  # a NaN from the *input* is legitimate data
    assert np.isnan(y[1])


# ------------------------------------------------------------------- scal
def test_scal_clean(vecs):
    x, _ = vecs
    expected = -0.5 * x
    result = ft_scal(-0.5, x)
    assert result.clean
    np.testing.assert_array_equal(x, expected)


def test_scal_fault_repaired(vecs):
    x, _ = vecs
    expected = 3.0 * x
    result = ft_scal(3.0, x, injector=strike(magnitude=123.0))
    assert result.corrected == 1
    np.testing.assert_array_equal(x, expected)


# -------------------------------------------------------------------- dot
def test_dot_clean(vecs):
    x, y = vecs
    result = ft_dot(x, y)
    assert result.clean
    assert result.value == pytest.approx(float(x @ y), rel=1e-12)


def test_dot_fault_caught(vecs):
    x, y = vecs
    result = ft_dot(x, y, injector=strike(magnitude=50.0))
    assert result.detected == 1
    assert result.value == pytest.approx(float(x @ y), rel=1e-10)


def test_dot_bitflip_caught(vecs):
    x, y = vecs
    inj = FaultInjector(
        InjectionPlan.single("blas_compute", 0, model=BitFlip(bit=60))
    )
    result = ft_dot(x, y, injector=inj)
    assert result.value == pytest.approx(float(x @ y), rel=1e-10)


# ------------------------------------------------------------------- nrm2
def test_nrm2_clean(vecs):
    x, _ = vecs
    result = ft_nrm2(x)
    assert result.value == pytest.approx(float(np.linalg.norm(x)), rel=1e-12)


def test_nrm2_fault(vecs):
    x, _ = vecs
    result = ft_nrm2(x, injector=strike(magnitude=1e4))
    assert result.detected >= 1
    assert result.value == pytest.approx(float(np.linalg.norm(x)), rel=1e-10)


# ------------------------------------------------------------------- asum
def test_asum_clean(vecs):
    x, _ = vecs
    result = ft_asum(x)
    assert result.value == pytest.approx(float(np.abs(x).sum()), rel=1e-12)


def test_asum_fault(vecs):
    x, _ = vecs
    result = ft_asum(x, injector=strike(magnitude=77.0))
    assert result.detected == 1
    assert result.value == pytest.approx(float(np.abs(x).sum()), rel=1e-10)


# ------------------------------------------------------------------- copy
def test_copy_clean(vecs):
    x, y = vecs
    result = ft_copy(x, y)
    assert result.clean
    np.testing.assert_array_equal(x, y)


def test_copy_corruption_repaired(vecs):
    x, y = vecs
    result = ft_copy(x, y, injector=strike(magnitude=9.0))
    assert result.corrected == 1
    np.testing.assert_array_equal(x, y)


def test_copy_shape_mismatch(rng):
    with pytest.raises(ShapeError):
        ft_copy(rng.standard_normal(3), rng.standard_normal(4))


def test_vector_routines_reject_matrices(rng):
    with pytest.raises(ShapeError):
        ft_dot(rng.standard_normal((2, 2)), rng.standard_normal(4))


def test_protection_flops_accounted(vecs):
    x, y = vecs
    assert ft_axpy(1.0, x, y).protection_flops >= x.size
    assert ft_dot(x, y).protection_flops >= 2 * x.size
