"""DMR-protected scaling."""

import numpy as np
import pytest

from repro.core.dmr import dmr_scale
from repro.simcpu.counters import Counters


@pytest.fixture
def c(rng):
    return rng.standard_normal((6, 7))


def test_scales_in_place(c):
    expected = 2.5 * c
    repaired = dmr_scale(c, 2.5, counters=Counters())
    assert repaired == 0
    np.testing.assert_array_equal(c, expected)


def test_beta_zero_zeroes(c):
    dmr_scale(c, 0.0, counters=Counters())
    assert np.all(c == 0.0)


def test_beta_one_noop(c):
    before = c.copy()
    counters = Counters()
    assert dmr_scale(c, 1.0, counters=counters) == 0
    np.testing.assert_array_equal(c, before)
    assert counters.checksum_flops == 0  # nothing computed, nothing dup'd


def test_catches_injected_scale_fault(c):
    expected = -0.5 * c

    def visit(site, array):
        assert site == "scale"
        array[2, 3] += 99.0
        return True

    counters = Counters()
    repaired = dmr_scale(c, -0.5, counters=counters, visit=visit)
    assert repaired == 1
    np.testing.assert_array_equal(c, expected)
    assert counters.errors_detected == 1
    assert counters.errors_corrected == 1


def test_catches_fault_under_beta_zero(c):
    def visit(site, array):
        array[0, 0] = 7.0
        return True

    repaired = dmr_scale(c, 0.0, counters=Counters(), visit=visit)
    assert repaired == 1
    assert np.all(c == 0.0)


def test_counts_duplicate_flops(c):
    counters = Counters()
    dmr_scale(c, 3.0, counters=counters)
    assert counters.checksum_flops == c.size


def test_multiple_corruptions_all_repaired(c):
    expected = 2.0 * c

    def visit(site, array):
        array[0, 0] += 1.0
        array[1, 1] += 2.0
        array[5, 6] -= 3.0
        return True

    assert dmr_scale(c, 2.0, counters=Counters(), visit=visit) == 3
    np.testing.assert_array_equal(c, expected)
