"""End-to-end integration scenarios across subsystems."""

import numpy as np
import pytest

from repro import (
    FTGemm,
    FTGemmConfig,
    ParallelFTGemm,
)
from repro.baselines import FTGemmLibrary, TraditionalABFT, all_libraries
from repro.bench.workloads import WORKLOADS, adjacency
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import BitFlip
from repro.gemm.blocking import BlockingConfig
from repro.gemm.driver import BlockedGemm
from repro.simcpu.cache import CacheHierarchy
from repro.simcpu.machine import MachineSpec
from repro.simcpu.tlb import TLBSim


@pytest.fixture
def cfg():
    return FTGemmConfig(blocking=BlockingConfig.small())


def test_public_api_roundtrip(rng):
    """The README quickstart, verbatim."""
    a, b = rng.standard_normal((50, 30)), rng.standard_normal((30, 40))
    result = FTGemm().gemm(a, b)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10)


def test_every_driver_agrees_on_every_workload(cfg):
    """Serial FT, parallel FT, classic ABFT, plain blocked, oracle — five
    independent code paths, one answer."""
    for workload in WORKLOADS.values():
        a, b = workload.operands(26, 22, 19, seed=21)
        oracle = a @ b
        serial = FTGemm(cfg).gemm(a, b).c
        parallel = ParallelFTGemm(cfg, n_threads=3).gemm(a, b).c
        classic = TraditionalABFT(cfg).gemm(a, b).c
        plain = BlockedGemm(cfg.blocking).gemm(a, b)
        scale = max(1.0, np.abs(oracle).max())
        for name, out in [
            ("serial", serial), ("parallel", parallel),
            ("classic", classic), ("plain", plain),
        ]:
            assert np.abs(out - oracle).max() < 1e-9 * scale, (
                workload.name, name,
            )


def test_serial_and_parallel_same_campaign_outcomes(cfg):
    """Identical campaigns through both drivers: all results correct."""
    campaign = CampaignConfig(m=30, n=26, k=22, runs=2, errors_per_call=3, seed=9)
    serial = run_campaign(campaign, FTGemm(cfg))
    parallel = run_campaign(
        campaign, ParallelFTGemm(cfg, n_threads=3)
    )
    assert serial.all_correct and parallel.all_correct
    assert serial.injected == parallel.injected == 6


def test_storm_survival_bitflips(cfg, rng):
    """A heavy storm of exponent bit flips across all kernel sites."""
    a = rng.standard_normal((40, 32))
    b = rng.standard_normal((32, 36))
    from repro.faults.campaign import plan_for_gemm

    plan = plan_for_gemm(
        40, 36, 32, cfg.blocking, 12, model=BitFlip(bit_range=(45, 62)), seed=3
    )
    result = FTGemm(cfg).gemm(a, b, injector=FaultInjector(plan))
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)


def test_instrumented_ft_gemm_through_cache_and_tlb(cfg, rng):
    """FT driver + cache hierarchy + TLB, all active at once."""
    machine = MachineSpec.small_test_machine()
    hierarchy = CacheHierarchy.from_machine(machine)
    ft = FTGemm(cfg, sink=hierarchy)
    a = rng.standard_normal((24, 20))
    b = rng.standard_normal((20, 28))
    result = ft.gemm(a, b)
    assert result.verified
    assert hierarchy.mem_lines > 0

    tlb = TLBSim.from_machine(machine)
    ft_tlb = FTGemm(cfg, sink=tlb)
    result = ft_tlb.gemm(a, b)
    assert result.verified
    assert tlb.counters.accesses > 0


def test_baselines_wrong_ft_right_under_same_fault(cfg, rng):
    """The paper's Fig 2(c) narrative as a test: same fault model, the
    baselines silently corrupt, FT-GEMM stays correct."""
    a = rng.standard_normal((20, 20))
    b = rng.standard_normal((20, 20))
    expected = a @ b
    for lib in all_libraries():
        inj = FaultInjector(InjectionPlan.single("microkernel", 0, seed=2))
        out = lib.gemm(a, b, injector=inj)
        assert np.abs(out - expected).max() > 1e-6  # silently wrong
    inj = FaultInjector(InjectionPlan.single("microkernel", 0, seed=2))
    result = FTGemm(cfg).gemm(a, b, injector=inj)
    assert result.verified
    np.testing.assert_allclose(result.c, expected, rtol=1e-9, atol=1e-9)


def test_graph_walk_counts_integral_under_faults(cfg):
    """Integer workload: protected A@A keeps exact integer walk counts.

    The fault is an off-by-one — the worst kind for a counting workload,
    and guaranteed above the detection threshold (a random bit flip can hit
    a zero entry and produce a harmless sub-threshold subnormal instead)."""
    from repro.faults.models import Additive

    adj = adjacency(40, p=0.15, seed=1)
    inj = FaultInjector(
        InjectionPlan.single("microkernel", 4, model=Additive(magnitude=1.0), seed=8)
    )
    result = FTGemm(cfg).gemm(adj, adj, injector=inj)
    assert result.verified
    assert result.detected >= 1
    np.testing.assert_array_equal(result.c, adj @ adj)


def test_figure_pipeline_end_to_end(tmp_path):
    """Harness -> builders -> model -> files, with real validation on."""
    from repro.bench.harness import ExperimentRunner

    runner = ExperimentRunner(tmp_path, validate=True)
    fig = runner.run("fig2c", error_counts=(0, 2))
    assert "all final results correct" in fig.observations["validation"]
    assert (tmp_path / "fig2c.json").exists()


def test_ftgemm_library_matches_driver_numbers(cfg, rng):
    a = rng.standard_normal((18, 14))
    b = rng.standard_normal((14, 22))
    lib = FTGemmLibrary("ft", config=cfg)
    direct = FTGemm(cfg).gemm(a, b).c
    np.testing.assert_array_equal(lib.gemm(a, b), direct)
