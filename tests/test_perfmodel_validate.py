"""Counter validation: the model's accounting mirrors the implementation."""

import pytest

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.perfmodel.validate import expected_counters, validate_run
from repro.util.errors import ConfigError


@pytest.fixture
def cfg():
    return FTGemmConfig(blocking=BlockingConfig.small())


@pytest.mark.parametrize(
    "m,n,k",
    [(16, 24, 16), (37, 29, 23), (8, 12, 8), (5, 40, 17), (1, 1, 1)],
)
def test_ft_counters_match_exactly(cfg, m, n, k):
    report = validate_run(m, n, k, cfg)
    assert report.ok, f"mismatched fields: {report.mismatches()}\n{report}"


@pytest.mark.parametrize("m,n,k", [(20, 18, 14), (33, 27, 21)])
def test_ft_counters_with_beta(cfg, m, n, k):
    report = validate_run(m, n, k, cfg, beta=0.5)
    assert report.ok, f"{report}"


def test_weighted_counters_match(cfg):
    report = validate_run(
        26, 22, 18, cfg.with_(checksum_scheme="weighted")
    )
    assert report.ok, f"{report}"


def test_weighted_counters_with_beta(cfg):
    report = validate_run(
        21, 25, 19, cfg.with_(checksum_scheme="weighted"), beta=-1.5
    )
    assert report.ok, f"{report}"


def test_unprotected_counters_match(cfg):
    report = validate_run(24, 20, 16, cfg.with_(enable_ft=False))
    assert report.ok, f"{report}"


def test_ft_extra_bytes_always_zero_clean(cfg):
    report = validate_run(30, 26, 22, cfg)
    assert report.expected["ft_extra_bytes"] == 0
    assert report.observed["ft_extra_bytes"] == 0


def test_expected_counters_invalid_dims(cfg):
    with pytest.raises(ConfigError):
        expected_counters(0, 4, 4, cfg)


def test_report_rendering(cfg):
    report = validate_run(12, 12, 12, cfg)
    text = str(report)
    assert "fma_flops" in text and "ok" in text
