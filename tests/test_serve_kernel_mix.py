"""Mixed-kernel serving: the four-kernel blend through both tiers under
a fault storm, plus the registry A/B guarantee.

The acceptance bar for the kernel family as serving citizens:

- **exactly-once** — zero lost, zero duplicated responses across a
  heterogeneous storm on the thread tier and on the process tier with
  SIGKILL chaos;
- **correctness** — every ``ok`` response of every kernel matches *its
  own kernel's* NumPy oracle (the driver's per-kernel audit);
- **isolation** — a GEMM-only service never touches the registry: with
  the registry poisoned to raise on any lookup, pure-GEMM traffic is
  served bit-identically to an unpoisoned service.
"""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.serve import (
    GemmService,
    ServiceConfig,
    ShapeSpec,
    WorkloadConfig,
    make_injector_factory,
    run_serve_workload,
    run_workload,
)
from repro.serve.request import GemmRequest

#: the mixed blend at soak-friendly sizes: a coalescible GEMM class,
#: GEMV and TRSM classes sharing their factors, private FFT signals
MIX_SHAPES = (
    ShapeSpec(8, 32, 32, weight=0.35),
    ShapeSpec(24, 16, 1, weight=0.25, kernel="gemv"),
    ShapeSpec(1, 32, 3, weight=0.2, kernel="trsm"),
    ShapeSpec(1, 1, 32, weight=0.2, private_b=True, kernel="fft"),
)


def _assert_exactly_once_and_correct(report):
    assert report.lost == 0
    assert report.duplicates == 0
    assert report.wrong == 0
    assert report.ok, report.summary()
    assert sum(report.responses.values()) == report.submitted
    # every kernel class actually showed up and audited clean
    assert set(report.kernels) == {"gemm", "gemv", "trsm", "fft"}
    for name, tally in report.kernels.items():
        assert tally["submitted"] >= 1, name
        assert tally["wrong"] == 0, name
        assert tally["ok"] == tally["submitted"], (name, tally)


def test_mixed_kernel_fault_storm_thread_tier():
    workload = WorkloadConfig(
        duration_s=120.0,
        arrival_rate=2000.0,
        max_requests=240,
        fault_rate=0.3,
        fail_stop_fraction=0.3,  # GEMM-only rung; other kernels skip it
        errors_per_call=2,
        seed=2028,
        shapes=MIX_SHAPES,
    )
    config = ServiceConfig(
        workers=2,
        capacity=400,
        max_batch=16,
        retry_budget=2,
        backoff_base_s=0.0005,
        gemm_threads=2,
        team_backend="simulated",
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )
    report = run_serve_workload(config, workload, timeout_s=300.0)
    assert report.submitted >= 220
    _assert_exactly_once_and_correct(report)
    # GEMM kept coalescing in the mix; the others ride as singletons
    assert report.scheduler["coalesced_batches"] >= 1


def test_mixed_kernel_fault_storm_process_tier():
    workload = WorkloadConfig(
        duration_s=300.0,
        arrival_rate=2000.0,
        max_requests=120,
        fault_rate=0.3,
        fail_stop_fraction=0.3,
        errors_per_call=2,
        proc_kill_rate=0.1,
        seed=2029,
        shapes=MIX_SHAPES,
    )
    config = ServiceConfig(
        processes=2,
        workers=2,
        capacity=300,
        max_batch=16,
        retry_budget=2,
        backoff_base_s=0.0005,
        gemm_threads=2,
        team_backend="simulated",
        proc_seed=2029,
        proc_max_replays=4,
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )
    report = run_serve_workload(config, workload, timeout_s=600.0)
    assert report.submitted >= 110
    _assert_exactly_once_and_correct(report)
    # the kill chaos actually fired and was survived through replay
    assert report.recovery["proc_deaths"] >= 1
    assert report.recovery["proc_replays"] >= 1


# ------------------------------------------------------ registry A/B


def _poison_registry(monkeypatch):
    import repro.kernels
    import repro.kernels.registry as registry

    def bomb(name):
        raise AssertionError(
            f"registry consulted for {name!r} on a GEMM-only service"
        )

    monkeypatch.setattr(registry, "get_kernel", bomb)
    monkeypatch.setattr(repro.kernels, "get_kernel", bomb)
    monkeypatch.setattr(registry, "_REGISTRY", {})


def _serve_gemm_traffic(n_requests=6):
    """Serve deterministic GEMM-only traffic; returns the result
    matrices in submission order."""
    config = ServiceConfig(
        workers=2,
        max_batch=8,
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )
    service = GemmService(config).start()
    rng = np.random.default_rng(99)
    shared_b = rng.standard_normal((16, 12))
    futures = []
    try:
        for _ in range(n_requests):
            request = GemmRequest(rng.standard_normal((6, 16)), shared_b)
            futures.append(service.submit(request))
        return [f.result(timeout=30.0).result.c.copy() for f in futures]
    finally:
        service.shutdown()


def test_gemm_only_service_never_touches_a_poisoned_registry(monkeypatch):
    """The zero-overhead contract: GEMM batches route straight to the
    cached drivers on a string compare, so a GEMM-only service works —
    and answers identically — even when every registry lookup raises."""
    clean = _serve_gemm_traffic()
    _poison_registry(monkeypatch)
    poisoned = _serve_gemm_traffic()
    assert len(clean) == len(poisoned)
    for before, after in zip(clean, poisoned):
        np.testing.assert_array_equal(before, after)


def test_non_gemm_traffic_does_consult_the_registry(monkeypatch):
    """Sanity check that the A/B poison is load-bearing: the same pool
    path *does* resolve non-GEMM kernels through the registry, so a
    poisoned lookup would have tripped had GEMM routed through it."""
    import repro.kernels
    from repro.kernels import get_kernel as real_get_kernel

    lookups = []

    def counting(name):
        lookups.append(name)
        return real_get_kernel(name)

    monkeypatch.setattr(repro.kernels, "get_kernel", counting)
    kern = real_get_kernel("gemv")
    request = kern.sample_request((8, 6), np.random.default_rng(1))
    config = ServiceConfig(
        workers=1,
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )
    service = GemmService(config).start()
    try:
        response = service.submit(request).result(timeout=30.0)
        assert response.status == "ok"
    finally:
        service.shutdown()
    assert "gemv" in lookups
