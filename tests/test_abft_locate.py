"""Residual analysis and pattern classification."""

import numpy as np
import pytest

from repro.abft.locate import (
    CLEAN,
    COLS_ONLY,
    MULTI,
    ROWS_ONLY,
    SINGLE,
    locate,
)
from repro.util.errors import ShapeError


def make(row_res, col_res, tol=1e-9):
    return locate(np.asarray(row_res, float), np.asarray(col_res, float), tol, tol)


def test_clean():
    p = make([1e-12, -1e-12], [0.0, 1e-13, 0.0])
    assert p.kind == CLEAN
    assert p.n_rows == 0 and p.n_cols == 0


def test_single():
    p = make([0.0, 5.0, 0.0], [0.0, 0.0, 5.0, 0.0])
    assert p.kind == SINGLE
    assert list(p.rows) == [2]
    assert list(p.cols) == [1]
    assert p.delta_for_row(2) == 5.0
    assert p.delta_for_col(1) == 5.0


def test_multi():
    p = make([3.0, 0.0, -4.0], [3.0, -4.0])
    assert p.kind == MULTI
    assert p.n_rows == 2 and p.n_cols == 2


def test_rows_only_pattern():
    p = make([0.0, 0.0], [7.0, 0.0])
    assert p.kind == ROWS_ONLY


def test_cols_only_pattern():
    p = make([0.0, 7.0], [0.0, 0.0])
    assert p.kind == COLS_ONLY


def test_nan_residual_is_flagged():
    """A NaN in C produces NaN residuals; NaN > tol is False, so without the
    explicit finite check the corruption would read as clean."""
    p = make([0.0, np.nan], [np.inf, 0.0])
    assert p.kind == SINGLE
    assert list(p.cols) == [1]
    assert list(p.rows) == [0]


def test_vector_tolerances():
    row_res = np.array([2.0, 2.0])
    col_res = np.array([2.0])
    p = locate(row_res, col_res, np.array([3.0, 1.0]), np.array([1.0]))
    assert list(p.cols) == [1]  # only the second exceeds its own tolerance
    assert list(p.rows) == [0]


def test_deltas_align_with_indices():
    p = make([0.0, 1.5, 0.0, -2.5], [9.0, 0.0, 3.0])
    assert p.kind == MULTI
    assert dict(zip(p.cols, p.row_flag_deltas)) == {1: 1.5, 3: -2.5}
    assert dict(zip(p.rows, p.col_flag_deltas)) == {0: 9.0, 2: 3.0}


def test_delta_lookup_missing_raises():
    p = make([5.0], [5.0])
    with pytest.raises(KeyError):
        p.delta_for_row(3)
    with pytest.raises(KeyError):
        p.delta_for_col(3)


def test_rejects_2d_residuals():
    with pytest.raises(ShapeError):
        locate(np.zeros((2, 2)), np.zeros(2), 1.0, 1.0)
