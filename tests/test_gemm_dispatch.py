"""Dispatch modes, the batched macro kernel, and the workspace arena.

The contract under test: tile and batched modes are observationally
identical — same C (allclose), same checksum references, same counter
totals — and the dispatch layer silently degrades to tile mode whenever
per-tile granularity is needed (an ``on_tile`` hook, a memory sink, a fault
injector). The arena tests pin the zero-allocation property: once the
workspace exists, the loop nest packs into it without a single fresh
``np.zeros``.
"""

import numpy as np
import pytest

import repro.gemm.packing as packing
from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.faults.campaign import plan_for_gemm
from repro.faults.injector import FaultInjector
from repro.gemm.blocking import DISPATCH_MODES, BlockingConfig
from repro.gemm.driver import BlockedGemm
from repro.gemm.macrokernel import macro_kernel, macro_kernel_batched
from repro.gemm.packing import pack_a, pack_b
from repro.gemm.reference import gemm_reference
from repro.simcpu.counters import Counters
from repro.util.errors import ConfigError

COUNTER_FIELDS = (
    "fma_flops",
    "checksum_flops",
    "loads_bytes",
    "stores_bytes",
    "pack_a_bytes",
    "pack_b_bytes",
    "microkernel_calls",
)

SHAPES = [
    (8, 12, 8),     # exact multiples of every block size
    (37, 29, 23),   # ragged everywhere
    (5, 40, 17),    # n spans multiple NC blocks (exercises Ã reuse)
    (40, 5, 17),    # m spans multiple MC blocks
    (1, 1, 1),      # degenerate
]


def _counters_dict(counters: Counters) -> dict[str, int]:
    return {name: getattr(counters, name) for name in COUNTER_FIELDS}


# ------------------------------------------------------------- config layer


def test_dispatch_modes_constant():
    assert DISPATCH_MODES == ("auto", "tile", "batched")


def test_invalid_dispatch_rejected():
    with pytest.raises(ConfigError):
        BlockingConfig(dispatch="vectorized")


# --------------------------------------------------- kernel-level equivalence


def test_macro_kernels_agree_on_one_block(rng):
    packed_a = pack_a(rng.standard_normal((13, 9)), 4)
    packed_b = pack_b(rng.standard_normal((9, 11)), 4)
    weights_m = np.arange(1.0, 14.0)
    weights_n = np.arange(1.0, 12.0)
    refs = {}
    for kernel in (macro_kernel, macro_kernel_batched):
        c = np.zeros((13, 11))
        row = np.zeros(11)
        col = np.zeros(13)
        row_w = np.zeros(11)
        col_w = np.zeros(13)
        counters = Counters()
        kernel(
            packed_a, packed_b, c,
            row_ref=row, col_ref=col,
            row_ref_w=row_w, col_ref_w=col_w,
            row_weights=weights_m, col_weights=weights_n,
            counters=counters,
        )
        refs[kernel.__name__] = (c, row, col, row_w, col_w, counters)
    tile, batched = refs["macro_kernel"], refs["macro_kernel_batched"]
    for got, want in zip(batched[:5], tile[:5]):
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)
    assert _counters_dict(batched[5]) == _counters_dict(tile[5])


def test_batched_macro_kernel_has_no_tile_hook():
    # per-tile hooks force tile mode; the batched kernel must not accept one
    import inspect

    assert "on_tile" not in inspect.signature(macro_kernel_batched).parameters


# --------------------------------------------------- driver-level equivalence


@pytest.mark.parametrize("m,n,k", SHAPES)
def test_blocked_gemm_modes_equivalent(rng, m, n, k):
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c0 = rng.standard_normal((m, n))
    runs = {}
    for mode in ("tile", "batched"):
        driver = BlockedGemm(BlockingConfig.small(dispatch=mode))
        out = driver.gemm(a, b, c0.copy(), alpha=1.25, beta=0.5)
        assert driver.last_mode == mode
        runs[mode] = (out, _counters_dict(driver.counters))
    np.testing.assert_allclose(
        runs["batched"][0], runs["tile"][0], rtol=1e-11, atol=1e-11
    )
    np.testing.assert_allclose(
        runs["tile"][0], gemm_reference(a, b, c0, alpha=1.25, beta=0.5),
        rtol=1e-11, atol=1e-11,
    )
    assert runs["batched"][1] == runs["tile"][1]


@pytest.mark.parametrize("m,n,k", SHAPES)
@pytest.mark.parametrize("scheme", ["dual", "weighted"])
def test_ftgemm_modes_equivalent(rng, m, n, k, scheme):
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c0 = rng.standard_normal((m, n))
    runs = {}
    for mode in ("tile", "batched"):
        config = FTGemmConfig(
            blocking=BlockingConfig.small(dispatch=mode),
            checksum_scheme=scheme,
        )
        driver = FTGemm(config)
        result = driver.gemm(a, b, c0.copy(), alpha=2.0, beta=0.25)
        assert driver.last_mode == mode
        assert result.verified
        assert result.detected == 0
        runs[mode] = (result.c, _counters_dict(result.counters))
    np.testing.assert_allclose(
        runs["batched"][0], runs["tile"][0], rtol=1e-11, atol=1e-11
    )
    assert runs["batched"][1] == runs["tile"][1]


@pytest.mark.parametrize("scheme", ["dual", "weighted"])
def test_parallel_modes_equivalent(rng, scheme):
    m, n, k = 50, 41, 37
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    runs = {}
    for mode in ("tile", "batched"):
        config = FTGemmConfig(
            blocking=BlockingConfig.small(dispatch=mode),
            checksum_scheme=scheme,
        )
        driver = ParallelFTGemm(config, n_threads=3)
        result = driver.gemm(a, b)
        assert driver.last_mode == mode
        assert result.verified
        runs[mode] = (result.c, result.counters)
    np.testing.assert_allclose(
        runs["batched"][0], runs["tile"][0], rtol=1e-11, atol=1e-11
    )
    np.testing.assert_allclose(runs["tile"][0], a @ b, rtol=1e-11, atol=1e-11)
    for field in ("fma_flops", "checksum_flops", "microkernel_calls"):
        assert getattr(runs["batched"][1], field) == getattr(runs["tile"][1], field)


# ------------------------------------------------------------ dispatch rules


def test_auto_picks_batched_on_clean_path(rng):
    driver = BlockedGemm(BlockingConfig.small())  # dispatch="auto"
    driver.gemm(rng.standard_normal((10, 10)), rng.standard_normal((10, 10)))
    assert driver.last_mode == "batched"


def test_on_tile_hook_forces_tile_mode(rng):
    seen = []
    driver = BlockedGemm(BlockingConfig.small(dispatch="batched"))
    driver.gemm(
        rng.standard_normal((10, 10)),
        rng.standard_normal((10, 10)),
        on_tile=lambda *args: seen.append(args),
    )
    assert driver.last_mode == "tile"
    assert seen  # the hook really fired per tile


def test_memory_sink_forces_tile_mode(rng):
    from repro.simcpu.trace import AccessTrace

    driver = BlockedGemm(BlockingConfig.small(dispatch="batched"), sink=AccessTrace())
    driver.gemm(rng.standard_normal((10, 10)), rng.standard_normal((10, 10)))
    assert driver.last_mode == "tile"


@pytest.mark.parametrize("dispatch", ["auto", "batched"])
def test_injector_forces_tile_and_detection_is_unchanged(rng, dispatch):
    """Fault injection under dispatch="batched" behaves exactly like tile
    mode: the run degrades to per-tile execution and every fault is still
    detected, located and corrected."""
    m = n = k = 24
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    results = {}
    for mode in ("tile", dispatch):
        config = FTGemmConfig(blocking=BlockingConfig.small(dispatch=mode))
        plan = plan_for_gemm(m, n, k, config.blocking, 3, seed=99)
        injector = FaultInjector(plan)
        driver = FTGemm(config)
        result = driver.gemm(a, b, injector=injector)
        assert driver.last_mode == "tile"  # injected runs never batch
        assert injector.n_injected == 3
        assert result.verified
        results[mode] = result
    np.testing.assert_allclose(results[dispatch].c, a @ b, rtol=1e-9, atol=1e-9)
    assert results[dispatch].detected == results["tile"].detected
    assert results[dispatch].corrected == results["tile"].corrected


@pytest.mark.parametrize("dispatch", ["auto", "batched"])
def test_checksum_site_injection_keeps_batching(rng, dispatch):
    """A strike on the checksum buffer never touches kernel state, so the
    fast path stays batched: the checksum is re-derived and C is bit-for-bit
    the clean result."""
    m = n = k = 24
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    config = FTGemmConfig(blocking=BlockingConfig.small(dispatch=dispatch))
    clean_driver = FTGemm(config)
    clean = clean_driver.gemm(a, b)
    assert clean_driver.last_mode == "batched"
    plan = plan_for_gemm(
        m, n, k, config.blocking, 2, seed=5, sites=("checksum",)
    )
    injector = FaultInjector(plan)
    driver = FTGemm(config)
    result = driver.gemm(a, b, injector=injector)
    assert driver.last_mode == "batched"  # checksum-only plans keep the fast path
    assert injector.n_injected == 2
    assert result.verified
    np.testing.assert_array_equal(result.c, clean.c)  # C was never modified


def test_checksum_site_injection_keeps_batching_parallel(rng):
    m, n, k = 22, 24, 16
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    config = FTGemmConfig(blocking=BlockingConfig.small())
    driver = ParallelFTGemm(config, n_threads=2)
    clean = driver.gemm(a, b)
    assert driver.last_mode == "batched"
    plan = plan_for_gemm(
        m, n, k, config.blocking, 2, seed=5, sites=("checksum",)
    )
    result = driver.gemm(a, b, injector=FaultInjector(plan))
    assert driver.last_mode == "batched"
    assert result.verified
    np.testing.assert_array_equal(result.c, clean.c)


def test_kernel_site_injection_still_degrades_parallel(rng):
    """The counterpart guard: any kernel-site strike must still force the
    parallel scheme down to per-tile execution."""
    m, n, k = 22, 24, 16
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    config = FTGemmConfig(blocking=BlockingConfig.small())
    driver = ParallelFTGemm(config, n_threads=2)
    plan = plan_for_gemm(m, n, k, config.blocking, 1, seed=5, sites=("pack_b",))
    result = driver.gemm(a, b, injector=FaultInjector(plan))
    assert driver.last_mode == "tile"
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)


def test_clean_call_after_injected_call_batches_again(rng):
    config = FTGemmConfig(blocking=BlockingConfig.small())
    driver = FTGemm(config)
    a = rng.standard_normal((16, 16))
    b = rng.standard_normal((16, 16))
    plan = plan_for_gemm(16, 16, 16, config.blocking, 1, seed=3)
    driver.gemm(a, b, injector=FaultInjector(plan))
    assert driver.last_mode == "tile"
    result = driver.gemm(a, b)
    assert driver.last_mode == "batched"
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11, atol=1e-11)


def test_ft_gemm_batched_dispatch_override(rng):
    from repro.core.batched import ft_gemm_batched

    a = rng.standard_normal((3, 10, 8))
    b = rng.standard_normal((3, 8, 9))
    config = FTGemmConfig(blocking=BlockingConfig.small())
    runs = {
        mode: ft_gemm_batched(a, b, config=config, dispatch=mode)
        for mode in ("tile", "batched")
    }
    for result in runs.values():
        assert result.verified
    np.testing.assert_allclose(
        runs["batched"].stacked(), runs["tile"].stacked(), rtol=1e-11, atol=1e-11
    )
    for field in ("fma_flops", "checksum_flops", "microkernel_calls"):
        assert getattr(runs["batched"].counters, field) == getattr(
            runs["tile"].counters, field
        )


# --------------------------------------------------------- workspace arena


@pytest.mark.parametrize("mode", ["tile", "batched"])
def test_loop_nest_never_allocates_packing_buffers(rng, monkeypatch, mode):
    """The loop nest always hands pack_a/pack_b an ``out=`` arena view, and
    once the workspace exists not a single fresh panel buffer (3-D
    ``np.zeros``) is allocated during a call."""
    import repro.gemm.driver as driver_mod

    driver = BlockedGemm(BlockingConfig.small(dispatch=mode))
    a = rng.standard_normal((37, 23))
    b = rng.standard_normal((23, 29))
    driver.gemm(a, b)  # builds the workspace

    def checking(real):
        def wrapper(block, r, *, out=None):
            assert out is not None, f"{real.__name__} called without arena view"
            return real(block, r, out=out)

        return wrapper

    monkeypatch.setattr(driver_mod, "pack_a", checking(packing.pack_a))
    monkeypatch.setattr(driver_mod, "pack_b", checking(packing.pack_b))

    panel_allocs = []
    real_zeros = np.zeros

    def counting_zeros(shape, *args, **kwargs):
        if isinstance(shape, tuple) and len(shape) == 3:
            panel_allocs.append(shape)
        return real_zeros(shape, *args, **kwargs)

    monkeypatch.setattr(packing.np, "zeros", counting_zeros)
    out = driver.gemm(a, b)
    assert panel_allocs == []
    np.testing.assert_allclose(out, a @ b, rtol=1e-11, atol=1e-11)


def test_workspace_buffers_reused_across_calls(rng):
    driver = BlockedGemm(BlockingConfig.small())
    a = rng.standard_normal((20, 16))
    b = rng.standard_normal((16, 24))
    driver.gemm(a, b)
    ws = driver.workspace
    assert ws is not None
    a_buf, b_buf = ws.a_buf, ws.b_buf
    driver.gemm(a, b)
    assert driver.workspace is ws
    assert driver.workspace.a_buf is a_buf
    assert driver.workspace.b_buf is b_buf


def test_workspace_grows_for_bigger_problem(rng):
    driver = BlockedGemm(BlockingConfig.small())
    driver.gemm(rng.standard_normal((8, 8)), rng.standard_normal((8, 8)))
    small_ws = driver.workspace
    driver.gemm(rng.standard_normal((40, 24)), rng.standard_normal((24, 40)))
    assert driver.workspace is not small_ws
    # and a subsequent smaller problem fits in the grown arena
    big_ws = driver.workspace
    driver.gemm(rng.standard_normal((8, 8)), rng.standard_normal((8, 8)))
    assert driver.workspace is big_ws


def test_packed_blocks_live_inside_the_arena(rng):
    captured = []

    class Spy(BlockedGemm):
        def _pack_a_block(self, *args, **kwargs):
            packed = super()._pack_a_block(*args, **kwargs)
            captured.append(packed.data)
            return packed

    driver = Spy(BlockingConfig.small())
    driver.gemm(rng.standard_normal((20, 20)), rng.standard_normal((20, 20)))
    assert captured
    for data in captured:
        assert np.shares_memory(data, driver.workspace.a_buf)


# ------------------------------------------------------- Ã reuse across j


def _pack_a_counting_driver(base_cls, *args, **kwargs):
    class Counting(base_cls):
        pack_a_calls = 0

        def _pack_a_block(self, *a, **kw):
            type(self).pack_a_calls += 1
            return super()._pack_a_block(*a, **kw)

    return Counting(*args, **kwargs)


@pytest.mark.parametrize("cls", [BlockedGemm, None])
def test_packed_a_reused_across_j_blocks(rng, cls):
    """nc=12 with n=40 gives 4 j-blocks; Ã must be packed once per (p, i),
    not once per (p, j, i)."""
    m, n, k = 20, 40, 17  # 3 i-blocks, 4 j-blocks, 3 p-blocks
    blocking = BlockingConfig.small()
    if cls is None:
        driver = _pack_a_counting_driver(
            FTGemm, FTGemmConfig(blocking=blocking, checksum_scheme="weighted")
        )
        result = driver.gemm(rng.standard_normal((m, k)), rng.standard_normal((k, n)))
        assert result.verified
    else:
        driver = _pack_a_counting_driver(cls, blocking)
        driver.gemm(rng.standard_normal((m, k)), rng.standard_normal((k, n)))
    n_p = len(list(range(0, k, blocking.kc)))
    n_i = len(list(range(0, m, blocking.mc)))
    n_j = len(list(range(0, n, blocking.nc)))
    assert n_j > 1  # the test is vacuous otherwise
    assert type(driver).pack_a_calls == n_p * n_i


def test_injected_run_packs_a_per_j_block(rng):
    """With an injector attached the legacy schedule is restored: Ã is
    repacked for every (p, j, i), which is what the campaign's site
    invocation counts assume."""
    m, n, k = 20, 40, 17
    config = FTGemmConfig(blocking=BlockingConfig.small())
    driver = _pack_a_counting_driver(FTGemm, config)
    plan = plan_for_gemm(m, n, k, config.blocking, 1, seed=1)
    result = driver.gemm(
        rng.standard_normal((m, k)),
        rng.standard_normal((k, n)),
        injector=FaultInjector(plan),
    )
    assert result.verified
    n_p, n_j, n_i = 3, 4, 3
    assert type(driver).pack_a_calls == n_p * n_j * n_i


# ----------------------------------------------------------- fresh-C scaling


def test_fresh_c_skips_zeroing_stores(rng):
    a = rng.standard_normal((10, 10))
    b = rng.standard_normal((10, 10))
    fresh = BlockedGemm(BlockingConfig.small())
    fresh.gemm(a, b)  # c=None: freshly allocated, no zeroing pass
    provided = BlockedGemm(BlockingConfig.small())
    provided.gemm(a, b, np.full((10, 10), np.nan), beta=0.0)
    assert (
        provided.counters.stores_bytes - fresh.counters.stores_bytes
        == 10 * 10 * 8
    )
    # everything but the zeroing store is identical
    assert provided.counters.loads_bytes == fresh.counters.loads_bytes
    assert provided.counters.fma_flops == fresh.counters.fma_flops


def test_fresh_c_skip_preserves_ft_verification(rng):
    a = rng.standard_normal((15, 13))
    b = rng.standard_normal((13, 11))
    for scheme in ("dual", "weighted"):
        config = FTGemmConfig(
            blocking=BlockingConfig.small(), checksum_scheme=scheme
        )
        result = FTGemm(config).gemm(a, b)
        assert result.verified
        np.testing.assert_allclose(result.c, a @ b, rtol=1e-11, atol=1e-11)
