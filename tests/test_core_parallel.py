"""Parallel FT-GEMM: the Figure-1 scheme."""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive
from repro.gemm.blocking import BlockingConfig
from repro.gemm.reference import gemm_reference
from repro.parallel.team import SimulatedTeam
from repro.util.errors import ConfigError


@pytest.fixture
def pg(small_config):
    return ParallelFTGemm(small_config, n_threads=3)


@pytest.mark.parametrize("threads", [1, 2, 3, 5, 8])
def test_matches_oracle_any_thread_count(small_config, rng, threads):
    a = rng.standard_normal((41, 23))
    b = rng.standard_normal((23, 37))
    result = ParallelFTGemm(small_config, n_threads=threads).gemm(a, b)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11, atol=1e-11)


def test_more_threads_than_rows(small_config, rng):
    a = rng.standard_normal((3, 9))
    b = rng.standard_normal((9, 15))
    result = ParallelFTGemm(small_config, n_threads=6).gemm(a, b)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11)


@pytest.mark.parametrize("alpha,beta", [(2.0, 1.0), (-0.5, 0.75), (1.0, 0.0)])
def test_alpha_beta(pg, rng, alpha, beta):
    a = rng.standard_normal((29, 17))
    b = rng.standard_normal((17, 33))
    c0 = rng.standard_normal((29, 33))
    result = pg.gemm(a, b, c0.copy(), alpha=alpha, beta=beta)
    assert result.verified
    np.testing.assert_allclose(
        result.c, gemm_reference(a, b, c0, alpha=alpha, beta=beta),
        rtol=1e-11, atol=1e-11,
    )


def test_bitwise_identical_to_serial_single_thread(small_config, rng):
    """One-thread parallel must agree with the serial driver bit for bit —
    same loop nest, same packing, same kernels."""
    a = rng.standard_normal((25, 19))
    b = rng.standard_normal((19, 27))
    serial = FTGemm(small_config).gemm(a, b).c
    parallel = ParallelFTGemm(small_config, n_threads=1).gemm(a, b).c
    np.testing.assert_array_equal(serial, parallel)


def test_thread_count_does_not_change_result_values(small_config, rng):
    """The M-partition only splits row ownership; each C element is computed
    by exactly one thread through the same kernel sequence, so results are
    bit-identical across thread counts."""
    a = rng.standard_normal((31, 22))
    b = rng.standard_normal((22, 29))
    results = [
        ParallelFTGemm(small_config, n_threads=t).gemm(a, b).c
        for t in (1, 2, 4)
    ]
    np.testing.assert_array_equal(results[0], results[1])
    np.testing.assert_array_equal(results[0], results[2])


def test_schedule_independence(small_config, rng):
    """Rotating the simulated step order must not change anything — a
    failure here means a data race in the shared-buffer choreography."""
    a = rng.standard_normal((26, 18))
    b = rng.standard_normal((18, 22))
    outs = []
    for order in ([0, 1, 2], [2, 1, 0], [1, 2, 0]):
        driver = ParallelFTGemm(small_config, n_threads=3)
        # swap in a permuted team via the factory hook
        import repro.core.parallel as mod

        original = mod.make_team
        mod.make_team = lambda n, backend, **kw: SimulatedTeam(
            n, order=list(order)
        )
        try:
            outs.append(driver.gemm(a, b).c)
        finally:
            mod.make_team = original
    np.testing.assert_array_equal(outs[0], outs[1])
    np.testing.assert_array_equal(outs[0], outs[2])


def test_threads_backend_matches_simulated(small_config, rng):
    a = rng.standard_normal((37, 21))
    b = rng.standard_normal((21, 31))
    sim = ParallelFTGemm(small_config, n_threads=4, backend="simulated").gemm(a, b)
    real = ParallelFTGemm(small_config, n_threads=4, backend="threads").gemm(a, b)
    assert sim.verified and real.verified
    np.testing.assert_array_equal(sim.c, real.c)


def test_barriers_counted(pg, rng):
    a = rng.standard_normal((20, 20))
    result = pg.gemm(a, a.copy())
    # 1 prologue barrier + 2 per (p, j) block, per thread
    from repro.gemm.blocking import n_blocks

    n_pj = n_blocks(20, pg.config.blocking.kc) * n_blocks(20, pg.config.blocking.nc)
    assert result.counters.barriers == 3 * (1 + 2 * n_pj)


def test_injection_microkernel_corrected(pg, rng):
    a = rng.standard_normal((30, 20))
    b = rng.standard_normal((20, 25))
    inj = FaultInjector(
        InjectionPlan.single("microkernel", 5, model=Additive(magnitude=44.0))
    )
    result = pg.gemm(a, b, injector=inj)
    assert inj.n_injected == 1
    assert result.verified
    assert result.corrected + result.recomputed_blocks >= 1
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


def test_injection_shared_pack_b_recovered(pg, rng):
    """Corruption in the cooperatively packed shared B̃ poisons one thread's
    chunk but all row-owners consume it — the checksums still localize it."""
    a = rng.standard_normal((30, 20))
    b = rng.standard_normal((20, 25))
    inj = FaultInjector(
        InjectionPlan.single("pack_b", 1, model=Additive(magnitude=17.0))
    )
    result = pg.gemm(a, b, injector=inj)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10, atol=1e-10)


def test_injection_scale_dmr_parallel(pg, rng):
    a = rng.standard_normal((24, 16))
    b = rng.standard_normal((16, 21))
    c0 = rng.standard_normal((24, 21))
    inj = FaultInjector(
        InjectionPlan.single("scale", 1, model=Additive(magnitude=8.0))
    )
    result = pg.gemm(a, b, c0.copy(), beta=2.0, injector=inj)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b + 2.0 * c0, rtol=1e-10, atol=1e-10)


def test_ft_disabled_parallel(small_config, rng):
    a = rng.standard_normal((22, 14))
    b = rng.standard_normal((14, 26))
    ori = ParallelFTGemm(small_config.with_(enable_ft=False), n_threads=3)
    result = ori.gemm(a, b)
    assert not result.ft_enabled
    assert result.counters.checksum_flops == 0
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11)


def test_eager_mode_rejected():
    with pytest.raises(ConfigError, match="eager"):
        ParallelFTGemm(FTGemmConfig(verify_mode="eager"), n_threads=2)


def test_invalid_thread_count():
    with pytest.raises(ConfigError):
        ParallelFTGemm(n_threads=0)


def test_counters_reduced_across_threads(pg, rng):
    a = rng.standard_normal((30, 16))
    b = rng.standard_normal((16, 24))
    result = pg.gemm(a, b)
    # total FMA flops match the padded-tile accounting regardless of threads
    serial = FTGemm(pg.config).gemm(a, b)
    assert result.counters.fma_flops > 0
    assert result.counters.ft_extra_bytes == 0
