"""Property tests: the parallel scheme and fuzzed error topologies."""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.core.verification import ChecksumLedger, Verifier
from repro.simcpu.counters import Counters

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def finite_matrix(rows, cols):
    return hnp.arrays(
        np.float64,
        (rows, cols),
        elements=st.floats(min_value=-50, max_value=50, allow_nan=False, width=64),
    )


@COMMON
@given(
    m=st.integers(1, 30),
    n=st.integers(1, 30),
    k=st.integers(1, 30),
    threads=st.integers(1, 6),
    scheme=st.sampled_from(["dual", "weighted"]),
    data=st.data(),
)
def test_parallel_bitwise_equals_serial(m, n, k, threads, scheme, data):
    """For every shape, thread count and scheme: the Figure-1 parallel
    driver produces the bit-identical C of the serial driver (each element
    is computed by exactly one thread through the same kernel sequence)."""
    a = data.draw(finite_matrix(m, k))
    b = data.draw(finite_matrix(k, n))
    cfg = FTGemmConfig.small(checksum_scheme=scheme)
    serial = FTGemm(cfg).gemm(a, b)
    parallel = ParallelFTGemm(cfg, n_threads=threads).gemm(a, b)
    assert serial.verified and parallel.verified
    np.testing.assert_array_equal(serial.c, parallel.c)


@COMMON
@given(
    n_errors=st.integers(1, 6),
    scheme=st.sampled_from(["dual", "weighted"]),
    data=st.data(),
)
def test_fuzzed_error_topologies_always_resolved(n_errors, scheme, data):
    """Arbitrary (row, col, delta) plantings — any topology hypothesis can
    dream up — must end verified-and-correct, except patterns lying exactly
    in the checksum null space, which are excluded by construction (no two
    planted errors share a row or column here; null-space patterns need
    aligned sign-cancelling rectangles)."""
    m, n = 26, 22
    rows = data.draw(
        st.lists(st.integers(0, m - 1), min_size=n_errors, max_size=n_errors,
                 unique=True)
    )
    cols = data.draw(
        st.lists(st.integers(0, n - 1), min_size=n_errors, max_size=n_errors,
                 unique=True)
    )
    deltas = data.draw(
        st.lists(
            st.floats(min_value=1.0, max_value=1e8),
            min_size=n_errors, max_size=n_errors,
        )
    )
    signs = data.draw(
        st.lists(st.sampled_from([1.0, -1.0]), min_size=n_errors,
                 max_size=n_errors)
    )
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    a = rng.standard_normal((m, 15))
    b = rng.standard_normal((15, n))
    cfg = FTGemmConfig.small(checksum_scheme=scheme)
    weighted = scheme == "weighted"

    c = a @ b
    ledger = ChecksumLedger.zeros(m, n, weighted=weighted)
    ledger.row_pred = a.sum(axis=0) @ b
    ledger.col_pred = a @ b.sum(axis=1)
    ledger.env_row = np.abs(a).sum(axis=0) @ np.abs(b)
    ledger.env_col = np.abs(a) @ np.abs(b).sum(axis=1)
    if weighted:
        w_m = np.arange(1.0, m + 1.0)
        w_n = np.arange(1.0, n + 1.0)
        ledger.row_pred_w = (w_m @ a) @ b
        ledger.col_pred_w = a @ (b @ w_n)
    expected = c.copy()
    for i, j, d, s in zip(rows, cols, deltas, signs):
        c[i, j] += s * d
    ledger.row_ref = c.sum(axis=0)
    ledger.col_ref = c.sum(axis=1)
    if weighted:
        ledger.row_ref_w = w_m @ c
        ledger.col_ref_w = c @ w_n
    verifier = Verifier(
        a, b, alpha=1.0, beta=0.0, c0=None, config=cfg, counters=Counters()
    )
    reports, verified = verifier.finalize(c, ledger)
    assert verified
    scale = max(1.0, float(np.abs(expected).max()))
    assert np.abs(c - expected).max() < 1e-7 * scale
