"""The analyzer against the actual repository: the CI gate, as a test.

If a change introduces a new invariant violation anywhere in
``src/repro``, this fails with the same report CI would print — before
the PR ever reaches CI.
"""

import json
import subprocess
import sys
from pathlib import Path

import repro
from repro.analysis import Baseline, analyze, render_json
from repro.analysis.cli import DEFAULT_BASELINE

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE = Path(repro.__file__).resolve().parent


def test_repo_is_clean_against_committed_baseline():
    result = analyze([PACKAGE], root=REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
    comparison = baseline.compare(result.findings)
    assert comparison.new == [], "\n".join(
        f"{f.location()}: [{f.rule}] {f.message}" for f in comparison.new
    )
    assert comparison.stale == [], [e.key() for e in comparison.stale]
    assert result.errors == []


def test_every_rule_ran_over_a_meaningful_corpus():
    result = analyze([PACKAGE], root=REPO_ROOT)
    # the package is large enough that an analyzer silently skipping
    # files would be visible here
    assert result.files > 50


def _run_cli(*argv, cwd=REPO_ROOT):
    return subprocess.run(
        [sys.executable, "-m", "repro", "analyze", *argv],
        capture_output=True,
        text=True,
        cwd=cwd,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_strict_exits_zero_on_repo():
    proc = _run_cli("--strict")
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_exits_nonzero_on_bad_fixture(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import numpy as np\n"
        "def microkernel(c):\n"
        "    for i in range(4):\n"
        "        t = np.zeros(4)\n"
    )
    proc = _run_cli("--paths", str(bad), "--no-baseline")
    assert proc.returncode == 1
    assert "hot-loop-alloc" in proc.stdout


def test_cli_json_output_is_stable_and_sorted(tmp_path):
    out1 = tmp_path / "r1.json"
    out2 = tmp_path / "r2.json"
    for out in (out1, out2):
        proc = _run_cli("--json", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
    assert out1.read_text() == out2.read_text()
    payload = json.loads(out1.read_text())
    findings = payload["findings"]
    assert findings == sorted(
        findings, key=lambda f: (f["file"], f["line"], f["rule"], f["message"])
    )


def test_render_json_matches_cli_output(tmp_path):
    result = analyze([PACKAGE], root=REPO_ROOT)
    out = tmp_path / "direct.json"
    proc = _run_cli("--json", str(out))
    assert proc.returncode == 0
    assert out.read_text() == render_json(result)


def test_run_analysis_script_strict():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "run_analysis.py"),
         "--strict"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
