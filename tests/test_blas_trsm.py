"""Composite protected TRSM and rank-1 update."""

import numpy as np
import pytest
import scipy.linalg

from repro.blas import ft_ger, ft_trsm
from repro.core.config import FTGemmConfig
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive
from repro.gemm.blocking import BlockingConfig
from repro.util.errors import ShapeError


@pytest.fixture
def tri(rng):
    n = 40
    a = np.tril(rng.standard_normal((n, n))) + 6.0 * np.eye(n)
    b = rng.standard_normal((n, 12))
    return a, b


@pytest.fixture
def cfg():
    return FTGemmConfig(blocking=BlockingConfig.small())


# ------------------------------------------------------------------- trsm
def test_trsm_lower_matches_scipy(tri, cfg):
    a, b = tri
    result = ft_trsm(a, b, lower=True, block=12, config=cfg)
    expected = scipy.linalg.solve_triangular(a, b, lower=True)
    np.testing.assert_allclose(result.value, expected, rtol=1e-9, atol=1e-9)
    assert result.clean


def test_trsm_upper(tri, cfg):
    a, b = tri
    u = a.T.copy()
    result = ft_trsm(u, b, lower=False, block=12, config=cfg)
    expected = scipy.linalg.solve_triangular(u, b, lower=False)
    np.testing.assert_allclose(result.value, expected, rtol=1e-9, atol=1e-9)


def test_trsm_block_size_irrelevant_to_result(tri, cfg):
    a, b = tri
    x1 = ft_trsm(a, b, block=7, config=cfg).value
    x2 = ft_trsm(a, b, block=40, config=cfg).value
    np.testing.assert_allclose(x1, x2, rtol=1e-9, atol=1e-10)


def test_trsm_gemm_fault_absorbed(tri, cfg):
    """A fault in the trailing-update GEMM is caught by the fused ABFT."""
    a, b = tri
    inj = FaultInjector(
        InjectionPlan.single("microkernel", 2, model=Additive(magnitude=35.0))
    )
    result = ft_trsm(a, b, block=12, config=cfg, injector=inj)
    assert inj.n_injected == 1
    assert result.detected >= 1
    expected = scipy.linalg.solve_triangular(a, b, lower=True)
    np.testing.assert_allclose(result.value, expected, rtol=1e-8, atol=1e-8)


def test_trsm_diagonal_fault_absorbed(tri, cfg):
    """A fault in a diagonal solve is caught by DMR — and it matters:
    corrupting X_k would poison every later trailing update."""
    a, b = tri
    inj = FaultInjector(
        InjectionPlan.single("blas_compute", 0, model=Additive(magnitude=4.0))
    )
    result = ft_trsm(a, b, block=12, config=cfg, injector=inj)
    assert result.detected >= 1
    expected = scipy.linalg.solve_triangular(a, b, lower=True)
    np.testing.assert_allclose(result.value, expected, rtol=1e-8, atol=1e-8)


def test_trsm_validation(tri, cfg, rng):
    a, b = tri
    with pytest.raises(ShapeError):
        ft_trsm(a[:, :10], b, config=cfg)
    with pytest.raises(ShapeError):
        ft_trsm(a, b[:10], config=cfg)
    with pytest.raises(ShapeError):
        ft_trsm(a, b, block=0, config=cfg)
    singular = a.copy()
    singular[3, 3] = 0.0
    with pytest.raises(ShapeError, match="singular"):
        ft_trsm(singular, b, config=cfg)


# -------------------------------------------------------------------- ger
def test_ger_clean(rng):
    x = rng.standard_normal(10)
    y = rng.standard_normal(14)
    a = rng.standard_normal((10, 14))
    expected = a + 2.0 * np.outer(x, y)
    result = ft_ger(2.0, x, y, a)
    assert result.clean
    np.testing.assert_array_equal(a, expected)


def test_ger_fault_repaired(rng):
    x = rng.standard_normal(8)
    y = rng.standard_normal(9)
    a = rng.standard_normal((8, 9))
    expected = a - 0.5 * np.outer(x, y)

    class Strike:
        def visit(self, site, array):
            array[2, 3] += 50.0
            return True

        def mark_detected(self, n):
            pass

    result = ft_ger(-0.5, x, y, a, injector=Strike())
    assert result.corrected == 1
    np.testing.assert_array_equal(a, expected)


def test_ger_shape_validation(rng):
    with pytest.raises(ShapeError):
        ft_ger(1.0, rng.standard_normal(3), rng.standard_normal(4),
               rng.standard_normal((4, 4)))
