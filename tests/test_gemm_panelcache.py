"""Panel cache: encode equivalence, driver integration, keying, LRU,
invalidation, and the distrust-the-cache re-verification."""

import numpy as np
import pytest

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import BitFlip
from repro.gemm.blocking import BlockingConfig
from repro.gemm.packing import pack_b, panels_from_cols
from repro.gemm.panelcache import (
    PackedB,
    PanelCache,
    encode_b,
    fingerprint_of,
)
from repro.gemm.reference import gemm_reference
from repro.util.errors import ConfigError, ShapeError


@pytest.fixture
def blocking():
    return BlockingConfig.small(mr=4, nr=4)


@pytest.fixture
def config(blocking):
    return FTGemmConfig(blocking=blocking)


# ------------------------------------------------------------- encode_b
def test_encode_matches_pack_b(rng, blocking):
    """The cached panels are bit-identical to what pack_b would build for
    every (p, j) block, including ragged edges."""
    k, n = 23, 29
    b = rng.standard_normal((k, n))
    entry = encode_b(b, blocking)
    for p_idx, p0 in enumerate(range(0, k, blocking.kc)):
        plen = min(blocking.kc, k - p0)
        for j_idx, j0 in enumerate(range(0, n, blocking.nc)):
            jlen = min(blocking.nc, n - j0)
            expected = pack_b(
                b[p0 : p0 + plen, j0 : j0 + jlen], blocking.nr
            )
            blk = entry.block(p_idx, j_idx)
            np.testing.assert_array_equal(
                blk.packed.cols(), expected.cols()
            )
            np.testing.assert_array_equal(
                np.abs(expected.cols()), blk.abs_cols
            )
            b_blk = b[p0 : p0 + plen, j0 : j0 + jlen]
            np.testing.assert_array_equal(blk.bc, b_blk.sum(axis=1))
            np.testing.assert_array_equal(
                blk.abs_bc, np.abs(b_blk).sum(axis=1)
            )
    assert entry.verify()


def test_encode_estimate_is_exact(rng, blocking):
    b = rng.standard_normal((23, 29))
    entry = encode_b(b, blocking)
    assert entry.nbytes == PackedB.estimate_nbytes(23, 29, blocking)


def test_panels_from_cols_is_zero_copy(rng):
    cols = rng.standard_normal((6, 8))
    packed = panels_from_cols(cols, 4, valid=7)
    cols[2, 5] = 123.0
    assert packed.cols()[2, 5] == 123.0
    assert packed.panel(1)[2, 1] == 123.0


# ------------------------------------------------- driver integration
def test_gemm_with_packed_b_bit_identical(rng, config, blocking):
    """A cached call must produce the same bits as the uncached call and
    stay fully verified."""
    a = rng.standard_normal((17, 23))
    b = rng.standard_normal((23, 29))
    entry = encode_b(b, blocking)
    plain = FTGemm(config).gemm(a, b)
    cached = FTGemm(config).gemm(a, b, packed_b=entry)
    assert cached.verified
    assert cached.clean_first_pass
    np.testing.assert_array_equal(cached.c, plain.c)


def test_gemm_with_packed_b_skips_pack_phase(rng, config, blocking):
    a = rng.standard_normal((9, 23))
    b = rng.standard_normal((23, 29))
    driver = FTGemm(config)
    driver.gemm(a, b)
    packed_bytes_plain = driver.counters.pack_b_bytes
    assert packed_bytes_plain > 0
    driver2 = FTGemm(config)
    driver2.gemm(a, b, packed_b=encode_b(b, blocking))
    assert driver2.counters.pack_b_bytes == 0
    # the fused replay is cheaper than the full fused encode
    assert (
        driver2.counters.checksum_flops < driver.counters.checksum_flops
    )


def test_gemm_with_packed_b_weighted_scheme(rng, blocking):
    config = FTGemmConfig(blocking=blocking, checksum_scheme="weighted")
    a = rng.standard_normal((11, 23))
    b = rng.standard_normal((23, 29))
    plain = FTGemm(config).gemm(a, b)
    cached = FTGemm(config).gemm(a, b, packed_b=encode_b(b, blocking))
    assert cached.verified
    np.testing.assert_array_equal(cached.c, plain.c)


def test_gemm_with_packed_b_alpha_beta(rng, config, blocking):
    a = rng.standard_normal((13, 23))
    b = rng.standard_normal((23, 29))
    c0 = rng.standard_normal((13, 29))
    c = c0.copy()
    result = FTGemm(config).gemm(
        a, b, c, alpha=-0.5, beta=0.75, packed_b=encode_b(b, blocking)
    )
    assert result.c is c
    assert result.verified
    np.testing.assert_allclose(
        result.c,
        gemm_reference(a, b, c0, alpha=-0.5, beta=0.75),
        rtol=1e-11,
        atol=1e-11,
    )


def test_gemm_with_packed_b_tile_dispatch(rng, blocking):
    """An on_tile hook forces the per-tile macro kernel, which consumes
    the cached panels through panel() views."""
    config = FTGemmConfig(blocking=blocking)
    a = rng.standard_normal((9, 23))
    b = rng.standard_normal((23, 29))
    tiles = []
    result = FTGemm(config).gemm(
        a,
        b,
        on_tile=lambda *args: tiles.append(args),
        packed_b=encode_b(b, blocking),
    )
    assert result.verified
    assert tiles
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11, atol=1e-11)


def test_packed_b_with_trans_b_rejected(rng, config, blocking):
    a = rng.standard_normal((9, 23))
    b = rng.standard_normal((29, 23))
    entry = encode_b(np.ascontiguousarray(b.T), blocking)
    with pytest.raises(ConfigError):
        FTGemm(config).gemm(a, b, trans_b=True, packed_b=entry)


def test_packed_b_geometry_mismatch_rejected(rng, config, blocking):
    a = rng.standard_normal((9, 23))
    b = rng.standard_normal((23, 29))
    wrong = encode_b(b, BlockingConfig.small(mr=4, nr=2))
    with pytest.raises(ShapeError):
        FTGemm(config).gemm(a, b, packed_b=wrong)


def test_injector_bypasses_cached_b(rng, config, blocking):
    """A faulted attempt must exercise the full pack + encode pipeline —
    the injection sites assume it — so the driver declines the cache."""
    a = rng.standard_normal((9, 23))
    b = rng.standard_normal((23, 29))
    plan = InjectionPlan.single(
        "pack_b", 0, model=BitFlip(bit=51), seed=5
    )
    driver = FTGemm(config)
    result = driver.gemm(
        a, b, packed_b=encode_b(b, blocking), injector=FaultInjector(plan)
    )
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-9, atol=1e-9)
    # the cached grid was declined: the pack phase ran (and got injected)
    assert driver.counters.pack_b_bytes > 0


def test_parallel_driver_ignores_packed_b(rng, blocking):
    driver = ParallelFTGemm(FTGemmConfig(blocking=blocking), n_threads=2)
    a = rng.standard_normal((16, 23))
    b = rng.standard_normal((23, 29))
    result = driver.gemm(a, b, packed_b=encode_b(b, blocking))
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11, atol=1e-11)


# ------------------------------------------------------------ PanelCache
def test_cache_hit_and_miss_accounting(rng, blocking):
    cache = PanelCache(1 << 24)
    b = rng.standard_normal((23, 29))
    first = cache.acquire(b, blocking)
    again = cache.acquire(b, blocking)
    assert first is again
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["entries"] == 1
    assert cache.bytes_used == first.nbytes
    assert cache.recent_hit_ratio() == 0.5


def test_cache_eviction_exactly_at_budget_boundary(rng, blocking):
    """Two entries fitting the budget exactly stay resident; one more
    byte of demand evicts exactly the LRU entry."""
    k, n = 16, 20
    per_entry = PackedB.estimate_nbytes(k, n, blocking)
    cache = PanelCache(2 * per_entry)
    b1 = rng.standard_normal((k, n))
    b2 = rng.standard_normal((k, n))
    b3 = rng.standard_normal((k, n))
    cache.acquire(b1, blocking)
    cache.acquire(b2, blocking)
    # bytes == budget: no eviction at the exact boundary
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 0
    assert cache.bytes_used == 2 * per_entry
    # refresh b1's recency so b2 is the LRU victim
    cache.acquire(b1, blocking)
    cache.acquire(b3, blocking)
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 1
    assert cache.peek(b1, blocking) is not None
    assert cache.peek(b2, blocking) is None
    assert cache.peek(b3, blocking) is not None


def test_cache_oversize_entry_refused(rng, blocking):
    k, n = 16, 20
    cache = PanelCache(PackedB.estimate_nbytes(k, n, blocking) - 1)
    assert cache.acquire(rng.standard_normal((k, n)), blocking) is None
    assert len(cache) == 0
    assert cache.stats()["oversize"] == 1


def test_cache_fingerprint_catches_sampled_mutation(rng, blocking):
    """Mutating an element on the fingerprint grid invalidates the entry
    on the next lookup — no stale reuse."""
    b = rng.standard_normal((23, 29))
    cache = PanelCache(1 << 24)
    first = cache.acquire(b, blocking)
    b[0, 0] += 1.0  # corner: always sampled
    second = cache.acquire(b, blocking)
    assert second is not first
    assert cache.stats()["invalidations"] == 1
    np.testing.assert_array_equal(second.block(0, 0).packed.cols()[0, 0], b[0, 0])


def test_cache_explicit_invalidate_for_unsampled_mutation(rng, blocking):
    """A mutation that dodges the sample grid needs invalidate() — the
    documented authoritative path — after which the rebuild sees the new
    values."""
    b = rng.standard_normal((40, 40))
    fp_before = fingerprint_of(b)
    cache = PanelCache(1 << 24)
    stale = cache.acquire(b, blocking)
    b[1, 1] += 1.0  # 40x40 grid samples every ~5.6th index; (1,1) is off it
    assert fingerprint_of(b) == fp_before, "mutation must dodge the grid"
    assert cache.invalidate(b) == 1
    assert cache.stats()["invalidations"] == 1
    rebuilt = cache.acquire(b, blocking)
    assert rebuilt is not stale
    np.testing.assert_array_equal(
        rebuilt.block(0, 0).packed.cols()[1, 1], b[1, 1]
    )


def test_cache_reverify_catches_resident_corruption(rng, blocking):
    """Distrust-the-cache: corrupting a resident panel between requests is
    caught at the next admission and the entry is rebuilt from source."""
    b = rng.standard_normal((23, 29))
    cache = PanelCache(1 << 24)
    entry = cache.acquire(b, blocking)
    entry.psets[0].stack[0, 0] += 2.0 ** -20  # silent resident bit rot
    assert not entry.verify()
    fresh = cache.acquire(b, blocking)
    assert fresh is not entry
    assert fresh.verify()
    assert cache.stats()["reverify_failed"] == 1
    # and the rebuilt entry serves a correct, verified call
    config = FTGemmConfig(blocking=blocking)
    a = rng.standard_normal((9, 23))
    result = FTGemm(config).gemm(a, b, packed_b=fresh)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-11, atol=1e-11)


def test_cache_touch_refreshes_recency(rng, blocking):
    k, n = 16, 20
    per_entry = PackedB.estimate_nbytes(k, n, blocking)
    cache = PanelCache(2 * per_entry)
    b1 = rng.standard_normal((k, n))
    b2 = rng.standard_normal((k, n))
    cache.acquire(b1, blocking)
    cache.acquire(b2, blocking)
    assert cache.touch(id(b1))  # b1 becomes most-recent
    cache.acquire(rng.standard_normal((k, n)), blocking)
    assert cache.peek(b1, blocking) is not None
    assert cache.peek(b2, blocking) is None
    assert not cache.touch(id(b2))


def test_cache_budget_validation():
    with pytest.raises(ConfigError):
        PanelCache(0)
