"""FT-GEMM reproduction — fault-tolerant high-performance GEMM (HPDC'23).

A full Python rebuild of Wu et al., *"FT-GEMM: A Fault Tolerant High
Performance GEMM Implementation on x86 CPUs"* (HPDC 2023): the GotoBLAS-style
blocked GEMM substrate, the fused ABFT scheme, the parallel Figure-1 design,
a simulated Cascade Lake machine model, fault-injection campaigns, calibrated
baseline libraries, and a benchmark harness regenerating every figure of the
paper's evaluation. See DESIGN.md for the system inventory and EXPERIMENTS.md
for paper-vs-measured results.

Quick start::

    import numpy as np
    from repro import FTGemm

    rng = np.random.default_rng(0)
    a, b = rng.standard_normal((500, 300)), rng.standard_normal((300, 400))
    result = FTGemm().gemm(a, b)
    assert result.verified
    np.testing.assert_allclose(result.c, a @ b, rtol=1e-10)
"""

from repro.core import (
    FTGemm,
    FTGemmConfig,
    FTGemmResult,
    ParallelFTGemm,
    VerificationReport,
)
from repro.gemm import BlockedGemm, BlockingConfig, gemm_reference
from repro.simcpu import MachineSpec
from repro.faults import (
    CampaignConfig,
    FaultInjector,
    InjectionPlan,
    run_campaign,
)

__version__ = "1.0.0"

__all__ = [
    "FTGemm",
    "FTGemmConfig",
    "FTGemmResult",
    "ParallelFTGemm",
    "VerificationReport",
    "BlockedGemm",
    "BlockingConfig",
    "gemm_reference",
    "MachineSpec",
    "CampaignConfig",
    "FaultInjector",
    "InjectionPlan",
    "run_campaign",
    "__version__",
]
