"""The GEMM service facade: admission, scheduling, execution, completion.

:class:`GemmService` wires the serving pipeline together —

    submit() -> AdmissionQueue -> BatchScheduler -> WorkerPool -> futures

— and owns the one invariant every other module contributes to: **each
admitted request is answered exactly once**, whatever mix of faults,
retries, shedding, expiry and shutdown it meets on the way. Completion is
funnelled through a single :meth:`_complete` hook that stamps latency,
records metrics and the ``serve.request`` span, and resolves the future;
the future's one-shot guard turns any accounting bug into a counted
``serve.duplicate_responses`` instead of a corrupted answer.

Trace layout (kept compatible with the structural validator, which wants
spans on one tid to nest or stay disjoint):

- each request's lifetime span goes on its **own** tid lane
  (``10000 + seq``) — request lifetimes overlap arbitrarily, so they
  cannot share a lane;
- each worker's batch spans go on lane ``1000 + worker_index`` — one
  worker runs one batch at a time, so its spans are naturally disjoint.

Shutdown comes in two flavours: :meth:`drain` closes admission, lets the
scheduler and workers finish everything queued, then retires them;
:meth:`shutdown` with ``drain=False`` answers the backlog with status
``cancelled`` instead of executing it.
"""

from __future__ import annotations

import collections
import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.core.config import FTGemmConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.serve.pool import WorkerPool
from repro.serve.queue import AdmissionQueue
from repro.serve.request import (
    GemmRequest,
    GemmResponse,
    ResponseFuture,
    Ticket,
)
from repro.serve.scheduler import BatchScheduler
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class ServiceConfig:
    """Everything tunable about the serving layer.

    The fault-tolerance side (``ft``) is a plain :class:`FTGemmConfig`
    handed to every worker driver; serving knobs sit alongside it.
    ``degraded_depth`` arms the pressure valve: once the backlog (admission
    queue plus formed-but-unclaimed batches) is at least that deep, batches
    run with a checksum-only config (no escalation supervisor) until the
    backlog recedes; None disables it.
    """

    workers: int = 2
    #: admission queue capacity (requests)
    capacity: int = 256
    #: backpressure policy: "block" | "reject" | "shed-lowest"
    policy: str = "block"
    #: coalescing limit (requests per batch)
    max_batch: int = 16
    #: batching window the scheduler holds a non-full lane open (seconds)
    window_s: float = 0.002
    #: re-executions after a failed/unverified attempt
    retry_budget: int = 2
    #: first retry backoff; doubles per attempt (seconds)
    backoff_base_s: float = 0.001
    #: consecutive failed batches before a worker is quarantined
    quarantine_after: int = 3
    #: backlog depth (queue + ready batches) that flips execution to
    #: degraded mode (None = never)
    degraded_depth: int | None = None
    #: intra-request GEMM threads (1 = serial FTGemm per worker;
    #: > 1 = ParallelFTGemm per worker)
    gemm_threads: int = 1
    #: byte budget of the cross-request packed-panel cache (None = off;
    #: the default — enabling it changes no correctness but alters the
    #: cost profile of hot-B traffic). Ignored when ``gemm_threads > 1``:
    #: the parallel driver rebuilds every buffer per epoch by design.
    panel_cache_bytes: int | None = None
    #: how much deeper the backlog may grow before degraded mode engages
    #: when the panel cache is running hot (multiplier on
    #: ``degraded_depth`` at a 100% recent hit ratio; 1.0 = no relief).
    #: Rationale: a hot cache removes the whole pack_b+encode phase from
    #: each batch, so the same backlog clears faster — degrading
    #: verification effort at the cold-cache threshold would shed quality
    #: the service no longer needs to shed.
    degraded_cache_relief: float = 2.0
    #: team backend for ParallelFTGemm ("simulated" | "threads")
    team_backend: str = "simulated"
    #: driver configuration shared by every worker
    ft: FTGemmConfig = field(default_factory=FTGemmConfig)
    #: collect serve-layer spans/metrics (drivers stay untraced — their
    #: spans would collide with the serve lanes)
    trace: bool = False
    #: worker **processes** (the process tier). 0 — the default — keeps
    #: execution in the thread tier above; > 0 replaces the thread pool
    #: with a :class:`~repro.serve.proc.pool.ProcWorkerPool` of this many
    #: spawned processes (``workers`` is then ignored: the process is the
    #: worker)
    processes: int = 0
    #: child heartbeat interval (seconds); also the monitor's tick
    proc_heartbeat_s: float = 0.05
    #: heartbeat intervals without progress before a live-but-frozen
    #: worker is declared dead (window = heartbeat_s * miss_limit)
    proc_miss_limit: int = 40
    #: times one batch may lose its worker process before its requests
    #: are answered ``failed`` (bounds the replay loop)
    proc_max_replays: int = 3
    #: worker deaths on one shape bucket before that bucket is pinned to
    #: degraded (checksum-only) execution
    proc_bucket_degraded_after: int = 2
    #: total replacement processes the pool may spawn over its lifetime
    proc_respawn_budget: int = 16
    #: batches in flight per worker process (pipelines dispatch against
    #: execution; the ready lane stays bounded by the scheduler)
    proc_inflight_per_worker: int = 2
    #: operand transport: "shm" (named SharedMemory segments) or
    #: "pickle" (operand bytes inline in the control pipe — the
    #: benchmark baseline)
    proc_transport: str = "shm"
    #: largest operand staged through a segment; bigger falls back to
    #: inline bytes (None = no limit)
    proc_shm_max_bytes: int | None = None
    #: hot-B operands mirrored into each worker process (0 = off)
    proc_b_cache_entries: int = 8
    #: respawned workers must pass a probation probe before readmission
    proc_probation: bool = True
    #: seed for per-worker RNG derivation (determinism across platforms)
    proc_seed: int = 0

    def validate(self) -> "ServiceConfig":
        problems: list[str] = []
        if self.workers < 1:
            problems.append(f"workers must be >= 1, got {self.workers}")
        if self.retry_budget < 0:
            problems.append(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.backoff_base_s < 0:
            problems.append(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.quarantine_after < 1:
            problems.append(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )
        if self.degraded_depth is not None and self.degraded_depth < 1:
            problems.append(
                f"degraded_depth must be >= 1 or None, got "
                f"{self.degraded_depth}"
            )
        if self.panel_cache_bytes is not None and self.panel_cache_bytes < 1:
            problems.append(
                f"panel_cache_bytes must be >= 1 or None, got "
                f"{self.panel_cache_bytes}"
            )
        if self.degraded_cache_relief < 1.0:
            problems.append(
                f"degraded_cache_relief must be >= 1.0, got "
                f"{self.degraded_cache_relief}"
            )
        if self.processes < 0:
            problems.append(
                f"processes must be >= 0, got {self.processes}"
            )
        if self.proc_heartbeat_s <= 0:
            problems.append(
                f"proc_heartbeat_s must be positive, got "
                f"{self.proc_heartbeat_s}"
            )
        if self.proc_miss_limit < 1:
            problems.append(
                f"proc_miss_limit must be >= 1, got {self.proc_miss_limit}"
            )
        if self.proc_max_replays < 0:
            problems.append(
                f"proc_max_replays must be >= 0, got "
                f"{self.proc_max_replays}"
            )
        if self.proc_bucket_degraded_after < 1:
            problems.append(
                f"proc_bucket_degraded_after must be >= 1, got "
                f"{self.proc_bucket_degraded_after}"
            )
        if self.proc_respawn_budget < 0:
            problems.append(
                f"proc_respawn_budget must be >= 0, got "
                f"{self.proc_respawn_budget}"
            )
        if self.proc_inflight_per_worker < 1:
            problems.append(
                f"proc_inflight_per_worker must be >= 1, got "
                f"{self.proc_inflight_per_worker}"
            )
        if self.proc_transport not in ("shm", "pickle"):
            problems.append(
                f"proc_transport must be 'shm' or 'pickle', got "
                f"{self.proc_transport!r}"
            )
        if (
            self.proc_shm_max_bytes is not None
            and self.proc_shm_max_bytes < 1
        ):
            problems.append(
                f"proc_shm_max_bytes must be >= 1 or None, got "
                f"{self.proc_shm_max_bytes}"
            )
        if self.proc_b_cache_entries < 0:
            problems.append(
                f"proc_b_cache_entries must be >= 0, got "
                f"{self.proc_b_cache_entries}"
            )
        if problems:
            raise ConfigError(
                "inconsistent ServiceConfig: " + "; ".join(problems)
            )
        # driver-side consistency (raises its own ConfigError)
        self.ft.validate(
            n_threads=self.gemm_threads if self.gemm_threads > 1 else None
        )
        return self

    @property
    def effective_workers(self) -> int:
        """Execution-unit count of the selected tier: processes when the
        process tier is on, threads otherwise (sizes the ready lane)."""
        return self.processes if self.processes > 0 else self.workers


class GemmService:
    """The serving facade: submit requests, receive exactly-once responses.

    Typical use::

        service = GemmService(ServiceConfig(workers=4))
        service.start()
        ticket = service.submit(GemmRequest(a, b, priority=1))
        response = ticket.result(timeout=5.0)
        service.drain()

    ``injector_factory(shape, attempt, request_id, config)`` — when given —
    is consulted before every execution attempt and may return a
    :class:`~repro.faults.injector.FaultInjector` (or None) to exercise
    the fault-tolerance machinery with live traffic. It is a thread-tier
    construct (a live injector cannot cross a process boundary); with
    ``processes > 0`` pass ``fault_spec_factory(request_id, config)``
    instead — a picklable spec dict each worker process rebuilds its
    injector from — and optionally ``chaos(batch_id, deaths)`` returning
    a process-kill phase for the chaos storm.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        injector_factory=None,
        fault_spec_factory=None,
        chaos=None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        clock=time.monotonic,
        tune_db=None,
    ) -> None:
        self.config = (config or ServiceConfig()).validate()
        #: optional :class:`~repro.tune.db.TuningDB` consulted once per
        #: request at admission; ``None`` (the default) leaves every
        #: request on the static config — byte-for-byte the untuned
        #: service's behavior (pinned by the A/B test)
        self.tune_db = tune_db
        if self.config.processes > 0 and injector_factory is not None:
            raise ConfigError(
                "injector_factory cannot cross the process boundary; "
                "use fault_spec_factory with processes > 0"
            )
        if self.config.processes == 0 and (
            fault_spec_factory is not None or chaos is not None
        ):
            raise ConfigError(
                "fault_spec_factory/chaos require the process tier "
                "(processes > 0); the thread tier takes injector_factory"
            )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if tracer is None and self.config.trace:
            tracer = Tracer(metrics=self.metrics)
        self.tracer = tracer
        self.clock = clock
        #: cross-request packed-panel cache, shared by the scheduler
        #: (recency touch at batch formation) and every worker (verified
        #: acquire at execution); None when disabled
        self.panel_cache = None
        if self.config.panel_cache_bytes is not None:
            from repro.gemm.panelcache import PanelCache

            self.panel_cache = PanelCache(
                self.config.panel_cache_bytes,
                metrics=self.metrics,
                tracer=self.tracer,
            )
        self.queue = AdmissionQueue(
            self.config.capacity,
            policy=self.config.policy,
            metrics=self.metrics,
            clock=clock,
        )
        self.scheduler = BatchScheduler(
            self.queue,
            max_batch=self.config.max_batch,
            window_s=self.config.window_s,
            # one batch in flight per worker plus one forming keeps every
            # worker busy while leaving the backlog under queue policy
            max_ready=self.config.effective_workers + 1,
            on_expired=lambda req: self._complete(
                req,
                GemmResponse(request_id=req.request_id, status="expired",
                             error="deadline passed while queued"),
            ),
            metrics=self.metrics,
            clock=clock,
            panel_cache=self.panel_cache,
        )
        if self.config.processes > 0:
            # the process tier: same scheduler, same _complete contract,
            # but the execution fault domain is a spawned process (import
            # here keeps serve.service out of the proc package's graph)
            from repro.serve.proc.pool import ProcWorkerPool

            self.pool = ProcWorkerPool(
                self.scheduler,
                self.config,
                complete=self._complete,
                use_degraded=self._use_degraded,
                metrics=self.metrics,
                tracer=self.tracer,
                fault_spec_factory=fault_spec_factory,
                chaos=chaos,
            )
        else:
            self.pool = WorkerPool(
                self.scheduler,
                self.config,
                complete=self._complete,
                injector_factory=injector_factory,
                use_degraded=self._use_degraded,
                metrics=self.metrics,
                tracer=self.tracer,
                panel_cache=self.panel_cache,
            )
        self._ids = itertools.count()
        self._lane_seq = itertools.count()
        self._lock = threading.Lock()
        #: per-request bookkeeping held only while the request is in
        #: flight — _complete prunes all four maps, so a long-running
        #: service does not grow with total traffic served
        self._futures: dict[str, ResponseFuture] = {}
        #: tid lane per request id for the serve.request span
        self._lanes: dict[str, int] = {}
        self._started_at: dict[str, float] = {}
        self._span_t0: dict[str, float] = {}
        #: bounded LRU of resolved futures: late result() callers still
        #: find their response, and a late second completion still hits
        #: the one-shot guard and is counted as a duplicate
        self._recent: collections.OrderedDict[str, ResponseFuture] = (
            collections.OrderedDict()
        )
        self._recent_cap = max(1024, 4 * self.config.capacity)
        self._started = False
        self._stopped = False
        #: responses delivered, by status (exact integers for reports)
        self.completed: dict[str, int] = {}
        self.duplicates = 0

    # -------------------------------------------------------------- lifecycle
    def start(self) -> "GemmService":
        if self._started:
            return self
        self._started = True
        self.scheduler.start()
        self.pool.start()
        return self

    def __enter__(self) -> "GemmService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()

    def drain(self) -> None:
        """Close admission, execute everything queued, then retire."""
        self.shutdown(drain=True)

    def shutdown(self, *, drain: bool = True) -> None:
        if self._stopped:
            return
        self._stopped = True
        if drain:
            # seal: refuse new admissions but keep the backlog — the
            # scheduler keeps popping a sealed queue until it is empty
            # (that's its exit signal), workers keep executing until the
            # scheduler's ready lane drains, and only then does stop()
            # return. Every in-flight request gets its real answer.
            self.queue.seal()
            self.scheduler.stop(join=True)
            self.pool.stop(join=True)
        else:
            leftovers = self.queue.close()
            self.scheduler.stop(join=True)
            self.pool.stop(join=True)
            for request in leftovers:
                self._complete(
                    request,
                    GemmResponse(
                        request_id=request.request_id,
                        status="cancelled",
                        error="service shut down before execution",
                    ),
                )

    # -------------------------------------------------------------- admission
    def submit(
        self,
        request: GemmRequest,
        *,
        timeout: float | None = None,
    ) -> Ticket:
        """Admit a request; returns a :class:`Ticket` whose future resolves
        to the terminal response (including non-ok outcomes — a rejected
        or shed request gets its answer through the same future)."""
        if not self._started or self._stopped:
            raise ConfigError(
                "service is not running (call start(); submit after "
                "drain/shutdown is refused)"
            )
        if request.request_id is None:
            request.request_id = f"r{next(self._ids):06d}"
        if self.tune_db is not None and request.kernel == "gemm":
            # one dict lookup per admission: resolve the shape class to a
            # tuned config (or fall back to static on a miss / stale DB);
            # the DB is keyed on GEMM (m, n, k) classes, so other kernels
            # stay on their static configs
            tuned = self.tune_db.resolve(request.m, request.n, request.k)
            if tuned is not None:
                request.tuned = tuned
                self.metrics.inc("tune.resolve_hits")
            else:
                self.metrics.inc("tune.resolve_misses")
        future = ResponseFuture()
        with self._lock:
            self._futures[request.request_id] = future
            # monotonic lane numbers: len(_lanes) would shrink as
            # _complete prunes, handing one tid to overlapping requests
            self._lanes[request.request_id] = 10000 + next(self._lane_seq)
            self._started_at[request.request_id] = self.clock()
            if self.tracer is not None:
                self._span_t0[request.request_id] = self.tracer.now_us()
        admission = self.queue.put(request, timeout=timeout)
        if not admission.admitted:
            self._complete(
                request,
                GemmResponse(
                    request_id=request.request_id,
                    status="rejected",
                    error=admission.reason,
                ),
            )
        elif admission.victim is not None:
            self._complete(
                admission.victim,
                GemmResponse(
                    request_id=admission.victim.request_id,
                    status="shed",
                    error="evicted for higher-priority work",
                ),
            )
        return Ticket(request_id=request.request_id, future=future)

    # ------------------------------------------------------------- completion
    def _complete(self, request: GemmRequest, response: GemmResponse) -> None:
        """The single funnel every terminal response passes through."""
        with self._lock:
            future = self._futures.pop(response.request_id, None)
            lane = self._lanes.pop(response.request_id, 0)
            started = self._started_at.pop(response.request_id, None)
            span_t0 = self._span_t0.pop(response.request_id, None)
            if future is None:
                # already completed (or never submitted): the resolved
                # future, if still retained, turns this into a counted
                # duplicate via its one-shot guard
                future = self._recent.get(response.request_id)
            else:
                self._recent[response.request_id] = future
                while len(self._recent) > self._recent_cap:
                    self._recent.popitem(last=False)
        if started is not None:
            response.latency_s = self.clock() - started
        if future is None or not future.set(response):
            with self._lock:
                self.duplicates += 1
            self.metrics.inc("serve.duplicate_responses")
            return
        with self._lock:
            self.completed[response.status] = (
                self.completed.get(response.status, 0) + 1
            )
        self.metrics.inc(f"serve.responses.{response.status}")
        self.metrics.observe(
            "serve.latency_ms", response.latency_s * 1e3
        )
        if response.ok:
            self.metrics.observe(
                "serve.attempts", float(response.attempts)
            )
        if self.tracer is not None and span_t0 is not None:
            self.tracer.complete(
                "serve.request",
                cat="serve",
                tid=lane,
                t0_us=span_t0,
                args={
                    "request_id": response.request_id,
                    "status": response.status,
                    "attempts": response.attempts,
                    "batch_size": response.batch_size,
                    "degraded": response.degraded,
                },
            )

    def _use_degraded(self) -> bool:
        depth = self.config.degraded_depth
        if depth is None:
            return False
        if self.panel_cache is not None:
            # cache-state-aware pressure valve: a hot cache removes the
            # pack_b+encode phase from each batch, so the same backlog
            # clears faster — stretch the threshold proportionally to the
            # recent hit ratio before shedding verification effort
            relief = self.config.degraded_cache_relief
            depth = depth * (
                1.0 + (relief - 1.0) * self.panel_cache.recent_hit_ratio()
            )
        # pressure = everything admitted but not yet executing: requests
        # still in the admission queue plus batches already formed and
        # waiting for a worker (the scheduler transfers aggressively, so
        # the queue alone understates the backlog)
        return self.queue.depth + self.scheduler.ready_depth >= depth

    # ------------------------------------------------------------- inspection
    def result(
        self, request_id: str, timeout: float | None = None
    ) -> GemmResponse:
        """Block for the response to a previously submitted request."""
        with self._lock:
            future = self._futures.get(request_id)
            if future is None:
                future = self._recent.get(request_id)
        if future is None:
            raise KeyError(f"unknown request id {request_id!r}")
        return future.result(timeout)

    def stats(self) -> dict:
        """A JSON-serialisable snapshot for reports and the CLI."""
        with self._lock:
            completed = dict(self.completed)
            duplicates = self.duplicates
        snapshot = {
            "completed": completed,
            "duplicates": duplicates,
            "scheduler": {
                "batches": self.scheduler.stats.batches,
                "coalesced_batches": self.scheduler.stats.coalesced_batches,
                "coalesced_requests": self.scheduler.stats.coalesced_requests,
                "singleton_batches": self.scheduler.stats.singleton_batches,
                "expired": self.scheduler.stats.expired,
            },
            "quarantined_workers": list(self.pool.quarantined),
            "metrics": self.metrics.snapshot(),
        }
        if self.panel_cache is not None:
            snapshot["panel_cache"] = self.panel_cache.stats()
        if self.tune_db is not None:
            snapshot["tune_db"] = {
                "entries": len(self.tune_db),
                "stale": self.tune_db.stale,
                "fingerprint": self.tune_db.fingerprint,
            }
        if self.config.processes > 0:
            snapshot["proc"] = self.pool.stats()
        return snapshot
