"""Request/response types of the GEMM serving layer.

A :class:`GemmRequest` is one protected product a client wants computed:
operands, scalars, a priority, an optional deadline, and the fault-
tolerance scheme to protect it with. The service answers every admitted
request with exactly one :class:`GemmResponse` — delivered through a
:class:`ResponseFuture` — whatever happens in between (faults, retries,
worker deaths, shedding, expiry). The terminal statuses enumerate every
way a request can leave the system; ``ok`` is the only one carrying a
verified :class:`~repro.core.results.FTGemmResult`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core.results import FTGemmResult
from repro.util.errors import ConfigError, ShapeError

#: every terminal state a request can reach; the service guarantees each
#: request reaches exactly one of them, exactly once
TERMINAL_STATUSES = (
    "ok",         # executed and verified
    "failed",     # retry budget exhausted without a verified result
    "rejected",   # refused at admission (queue full under "reject"/"block")
    "shed",       # evicted from the queue to admit higher-priority work
    "expired",    # deadline passed while queued or in a batch awaiting
                  # a worker (checked one last time before execution)
    "cancelled",  # service shut down without draining
)

#: checksum schemes a request may ask for (mirrors FTGemmConfig)
SCHEMES = ("dual", "weighted")


@dataclass(eq=False)
class GemmRequest:
    """One GEMM the service should compute: ``C = alpha * A @ B + beta * C0``.

    Identity equality (``eq=False``): a request is a unique in-flight unit
    of work — comparing operand arrays element-wise is both meaningless
    and broken (ndarray ``==`` is elementwise), and the queue's
    bookkeeping is keyed on object identity.

    ``priority`` — larger is more urgent; it orders the admission queue and
    decides who is shed under the ``shed-lowest`` backpressure policy.
    ``deadline_s`` — seconds from admission the caller is willing to wait
    before execution starts; a lapsed deadline produces an ``expired``
    response. The deadline is enforced while the request sits in the
    admission queue *and* once more at the last moment before a worker
    starts its batch (a request can outlive its deadline inside a formed
    batch behind slower work); only a request whose execution has
    actually begun is immune to expiry.
    ``scheme`` — checksum scheme protecting the product (see
    :class:`~repro.core.config.FTGemmConfig`).

    ``request_id`` is assigned by the service at submit time when left
    None; it correlates the response, the driver result, any recovery
    report, and the ``serve.request`` trace span.
    """

    a: np.ndarray
    b: np.ndarray
    c0: np.ndarray | None = None
    alpha: float = 1.0
    beta: float = 0.0
    priority: int = 0
    deadline_s: float | None = None
    scheme: str = "dual"
    request_id: str | None = None
    # stamped by the service at admission (monotonic seconds)
    submitted_at: float = 0.0
    expires_at: float | None = None
    #: resolved tuning-DB entry for this request's shape class
    #: (:class:`~repro.tune.db.TunedConfig`), stamped by the service at
    #: admission when it was built with a ``tune_db``; None means "run on
    #: the static config" — the untuned service never sets it
    tuned: object | None = field(default=None, repr=False)
    #: memoized coalescing key — derived once, then shared by every
    #: consumer (the scheduler's head bucket, the queue's compatibility
    #: scan over the whole backlog, and the panel cache's admission
    #: consult); the inputs are fixed after __post_init__, so caching
    #: is sound
    _bucket_key: tuple | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=np.float64)
        self.b = np.asarray(self.b, dtype=np.float64)
        if self.a.ndim != 2 or self.b.ndim != 2:
            raise ShapeError(
                f"request operands must be 2-D, got A{self.a.shape} "
                f"B{self.b.shape}"
            )
        if self.a.shape[1] != self.b.shape[0]:
            raise ShapeError(
                f"inner dimensions differ: A{self.a.shape} B{self.b.shape}"
            )
        if self.c0 is not None:
            self.c0 = np.asarray(self.c0, dtype=np.float64)
            if self.c0.shape != (self.m, self.n):
                raise ShapeError(
                    f"C0 shape {self.c0.shape} does not match "
                    f"{(self.m, self.n)}"
                )
        if self.beta != 0.0 and self.c0 is None:
            raise ConfigError("beta != 0 requires a C0 operand")
        if self.scheme not in SCHEMES:
            raise ConfigError(
                f"unknown scheme {self.scheme!r}; choose from {SCHEMES}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    @property
    def m(self) -> int:
        return self.a.shape[0]

    @property
    def k(self) -> int:
        return self.a.shape[1]

    @property
    def n(self) -> int:
        return self.b.shape[1]

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.m, self.n, self.k)

    def bucket(self) -> tuple:
        """The shape-coalescing key: requests in one bucket may execute as
        a single stacked product. Identical B (by object), identical
        (k, n), scalars and scheme; ``beta == 0`` only — a C0 leg would
        need per-request scaling that stacking cannot express."""
        key = self._bucket_key
        if key is None:
            key = self._bucket_key = (
                id(self.b),
                self.k,
                self.n,
                self.alpha,
                self.scheme,
                self.beta == 0.0,
            )
        return key

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at


@dataclass(eq=False)
class GemmResponse:
    """The service's single, terminal answer to one request (identity
    equality — it wraps ndarray-bearing results)."""

    request_id: str
    status: str
    result: FTGemmResult | None = None
    error: str = ""
    #: worker that produced the answer (-1 when it never reached one)
    worker: int = -1
    #: execution attempts consumed (0 when never executed)
    attempts: int = 0
    #: how many requests shared the coalesced execution (1 = singleton)
    batch_size: int = 1
    #: end-to-end latency, admission -> completion (seconds)
    latency_s: float = 0.0
    #: the batch ran with the degraded (checksum-only) config
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def verified(self) -> bool:
        return self.result is not None and self.result.verified

    def summary(self) -> str:
        extra = f", batch={self.batch_size}" if self.batch_size > 1 else ""
        extra += ", degraded" if self.degraded else ""
        tail = f": {self.error}" if self.error else ""
        return (
            f"GemmResponse({self.request_id}, {self.status}, "
            f"attempts={self.attempts}{extra}, "
            f"latency={self.latency_s * 1e3:.2f}ms{tail})"
        )


class ResponseFuture:
    """One-shot, thread-safe slot the service fills with the response.

    ``set`` returns False (and changes nothing) on a second completion
    attempt — the exactly-once guard the soak tests assert on.
    """

    __slots__ = ("_event", "_response", "_lock", "_callbacks")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: GemmResponse | None = None
        self._lock = threading.Lock()
        self._callbacks: list = []

    def set(self, response: GemmResponse) -> bool:
        with self._lock:
            if self._response is not None:
                return False
            self._response = response
            callbacks = list(self._callbacks)
        self._event.set()
        for cb in callbacks:
            cb(response)
        return True

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> GemmResponse:
        """Block until the response arrives; raises TimeoutError otherwise."""
        if not self._event.wait(timeout):
            raise TimeoutError("no response within timeout")
        with self._lock:
            return self._response

    def peek(self) -> GemmResponse | None:
        with self._lock:
            return self._response

    def add_done_callback(self, cb) -> None:
        with self._lock:
            if self._response is None:
                self._callbacks.append(cb)
                return
            response = self._response
        cb(response)


@dataclass
class Ticket:
    """What ``submit`` hands back: the assigned id plus the future."""

    request_id: str
    future: ResponseFuture

    def result(self, timeout: float | None = None) -> GemmResponse:
        return self.future.result(timeout)
