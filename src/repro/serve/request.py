"""Request/response types of the protected-kernel serving layer.

A :class:`KernelRequest` is one protected computation a client wants
performed: operands, scalars, a priority, an optional deadline, and the
fault-tolerance scheme to protect it with. Four concrete request types
exist, one per registered :mod:`repro.kernels` kernel —
:class:`GemmRequest` (the original workload), :class:`GemvRequest`,
:class:`TrsmRequest` and :class:`FftRequest`. The service answers every
admitted request with exactly one :class:`GemmResponse` — delivered
through a :class:`ResponseFuture` — whatever happens in between (faults,
retries, worker deaths, shedding, expiry). The terminal statuses
enumerate every way a request can leave the system; ``ok`` is the only
one carrying a verified result (an
:class:`~repro.core.results.FTGemmResult` for GEMM, a
:class:`~repro.kernels.base.KernelResult` for the other kernels).

Every request's :meth:`~KernelRequest.bucket` carries the **kernel
discriminator** in its key: two requests of different kernels can never
share a coalescing bucket, however coincidentally equal their shapes and
operand identities are (pinned by a regression test — an early draft
collided a GEMV against a beta!=0 GEMM). The key's first element stays
the shared-operand identity (the panel cache's recency handle) and its
last element stays the stackability flag (:class:`Batch.coalesced` reads
``bucket[-1]``); only GEMM buckets are ever stackable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import ConfigError, ShapeError

#: every terminal state a request can reach; the service guarantees each
#: request reaches exactly one of them, exactly once
TERMINAL_STATUSES = (
    "ok",         # executed and verified
    "failed",     # retry budget exhausted without a verified result
    "rejected",   # refused at admission (queue full under "reject"/"block")
    "shed",       # evicted from the queue to admit higher-priority work
    "expired",    # deadline passed while queued or in a batch awaiting
                  # a worker (checked one last time before execution)
    "cancelled",  # service shut down without draining
)

#: checksum schemes a request may ask for (mirrors FTGemmConfig)
SCHEMES = ("dual", "weighted")

#: the servable kernels, in registry order (mirrors repro.kernels)
KERNEL_NAMES = ("gemm", "gemv", "trsm", "fft")


@dataclass(eq=False, kw_only=True)
class KernelRequest:
    """Base of every servable request: the serving envelope.

    Identity equality (``eq=False``): a request is a unique in-flight unit
    of work — comparing operand arrays element-wise is both meaningless
    and broken (ndarray ``==`` is elementwise), and the queue's
    bookkeeping is keyed on object identity.

    ``priority`` — larger is more urgent; it orders the admission queue and
    decides who is shed under the ``shed-lowest`` backpressure policy.
    ``deadline_s`` — seconds from admission the caller is willing to wait
    before execution starts; a lapsed deadline produces an ``expired``
    response. The deadline is enforced while the request sits in the
    admission queue *and* once more at the last moment before a worker
    starts its batch (a request can outlive its deadline inside a formed
    batch behind slower work); only a request whose execution has
    actually begun is immune to expiry.
    ``scheme`` — checksum scheme protecting the computation (see
    :class:`~repro.core.config.FTGemmConfig`; non-GEMM kernels accept it
    for envelope uniformity but their protection split is fixed by the
    kernel: ABFT where checksums amortize, DMR where they cannot).

    ``request_id`` is assigned by the service at submit time when left
    None; it correlates the response, the driver result, any recovery
    report, and the ``serve.request`` trace span.

    All envelope fields are keyword-only, so subclasses keep their
    operands positional — ``GemmRequest(a, b)`` reads exactly as before
    the kernel family broadened.
    """

    #: kernel discriminator, overridden per subclass (class attribute —
    #: zero per-instance cost; the pool's hot-path routing is one string
    #: compare against it)
    kernel = "?"

    priority: int = 0
    deadline_s: float | None = None
    scheme: str = "dual"
    request_id: str | None = None
    # stamped by the service at admission (monotonic seconds)
    submitted_at: float = 0.0
    expires_at: float | None = None
    #: resolved tuning-DB entry for this request's shape class
    #: (:class:`~repro.tune.db.TunedConfig`), stamped by the service at
    #: admission when it was built with a ``tune_db``; None means "run on
    #: the static config" — the untuned service never sets it. Only GEMM
    #: shapes are ever resolved; the DB's shape classes are GEMM classes.
    tuned: object | None = field(default=None, repr=False)
    #: memoized coalescing key — derived once, then shared by every
    #: consumer (the scheduler's head bucket, the queue's compatibility
    #: scan over the whole backlog, and the panel cache's admission
    #: consult); the inputs are fixed after __post_init__, so caching
    #: is sound
    _bucket_key: tuple | None = field(default=None, init=False, repr=False)

    def _validate_envelope(self) -> None:
        if self.scheme not in SCHEMES:
            raise ConfigError(
                f"unknown scheme {self.scheme!r}; choose from {SCHEMES}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )

    def bucket(self) -> tuple:
        """The shape-coalescing key: requests in one bucket may travel in
        one batch. Layout contract (every kernel): ``key[0]`` is the
        shared-operand identity (0 when the kernel has none), the kernel
        name appears verbatim, and ``key[-1]`` is the stackable flag —
        True only for GEMM buckets whose stacked execution is expressible
        (``beta == 0``)."""
        key = self._bucket_key
        if key is None:
            key = self._bucket_key = self._bucket()
        return key

    def _bucket(self) -> tuple:
        raise NotImplementedError

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at

    # ------------------------------------------------------- kernel contract
    @property
    def shape(self) -> tuple:
        """Kernel-specific shape tuple (feeds fault-plan construction and
        metrics; interpretation is per-kernel)."""
        raise NotImplementedError

    @property
    def shared_operand(self) -> np.ndarray | None:
        """The operand many requests may share by identity (the "weights"
        of the serving pattern): B for GEMM, A for GEMV/TRSM, None for
        FFT. Both tiers key their operand caches and shard routing on it."""
        return None

    @property
    def result_shape(self) -> tuple[int, int]:
        """Canonical 2-D result shape (the proc tier's result-slot size)."""
        raise NotImplementedError


@dataclass(eq=False)
class GemmRequest(KernelRequest):
    """One GEMM the service should compute: ``C = alpha * A @ B + beta * C0``."""

    kernel = "gemm"

    a: np.ndarray
    b: np.ndarray
    c0: np.ndarray | None = None
    alpha: float = 1.0
    beta: float = 0.0

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=np.float64)
        self.b = np.asarray(self.b, dtype=np.float64)
        if self.a.ndim != 2 or self.b.ndim != 2:
            raise ShapeError(
                f"request operands must be 2-D, got A{self.a.shape} "
                f"B{self.b.shape}"
            )
        if self.a.shape[1] != self.b.shape[0]:
            raise ShapeError(
                f"inner dimensions differ: A{self.a.shape} B{self.b.shape}"
            )
        if self.c0 is not None:
            self.c0 = np.asarray(self.c0, dtype=np.float64)
            if self.c0.shape != (self.m, self.n):
                raise ShapeError(
                    f"C0 shape {self.c0.shape} does not match "
                    f"{(self.m, self.n)}"
                )
        if self.beta != 0.0 and self.c0 is None:
            raise ConfigError("beta != 0 requires a C0 operand")
        self._validate_envelope()

    @property
    def m(self) -> int:
        return self.a.shape[0]

    @property
    def k(self) -> int:
        return self.a.shape[1]

    @property
    def n(self) -> int:
        return self.b.shape[1]

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.m, self.n, self.k)

    @property
    def shared_operand(self) -> np.ndarray:
        return self.b

    @property
    def result_shape(self) -> tuple[int, int]:
        return (self.m, self.n)

    def _bucket(self) -> tuple:
        """Identical B (by object), identical (k, n), scalars and scheme;
        stackable only with ``beta == 0`` — a C0 leg would need
        per-request scaling that stacking cannot express."""
        return (
            id(self.b),
            self.k,
            self.n,
            self.alpha,
            self.scheme,
            self.kernel,
            self.beta == 0.0,
        )


@dataclass(eq=False)
class GemvRequest(KernelRequest):
    """One protected GEMV: ``y = alpha * A @ x + beta * y0``.

    ``A`` is the shared operand (the weights pattern: many activation
    vectors against one matrix); requests sharing an A land in one bucket
    and travel in one batch, executing request-by-request (a GEMV stack
    would *be* a GEMM — callers wanting that submit one).
    """

    kernel = "gemv"

    a: np.ndarray
    x: np.ndarray
    y0: np.ndarray | None = None
    alpha: float = 1.0
    beta: float = 0.0

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=np.float64)
        self.x = np.asarray(self.x, dtype=np.float64)
        if self.a.ndim != 2:
            raise ShapeError(f"A must be 2-D, got {self.a.shape}")
        if self.x.ndim != 1 or self.x.size != self.a.shape[1]:
            raise ShapeError(
                f"x must have length {self.a.shape[1]}, got shape "
                f"{self.x.shape}"
            )
        if self.y0 is not None:
            self.y0 = np.asarray(self.y0, dtype=np.float64)
            if self.y0.shape != (self.m,):
                raise ShapeError(
                    f"y0 must have length {self.m}, got shape {self.y0.shape}"
                )
        if self.beta != 0.0 and self.y0 is None:
            raise ConfigError("beta != 0 requires a y0 operand")
        self._validate_envelope()

    @property
    def m(self) -> int:
        return self.a.shape[0]

    @property
    def k(self) -> int:
        return self.a.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.m, self.k)

    @property
    def shared_operand(self) -> np.ndarray:
        return self.a

    @property
    def result_shape(self) -> tuple[int, int]:
        return (self.m, 1)

    def _bucket(self) -> tuple:
        return (
            id(self.a),
            self.k,
            self.m,
            self.alpha,
            self.scheme,
            self.kernel,
            False,
        )


@dataclass(eq=False)
class TrsmRequest(KernelRequest):
    """One protected triangular solve: ``A X = B`` (A n×n triangular with
    a non-singular diagonal, B the n×nrhs right-hand sides).

    ``A`` — the factor — is the shared operand (one factorization, many
    solves); ``lower`` selects forward vs backward substitution.
    """

    kernel = "trsm"

    a: np.ndarray
    b: np.ndarray
    lower: bool = True

    def __post_init__(self) -> None:
        self.a = np.asarray(self.a, dtype=np.float64)
        self.b = np.asarray(self.b, dtype=np.float64)
        if self.a.ndim != 2 or self.a.shape[0] != self.a.shape[1]:
            raise ShapeError(f"TRSM needs a square A, got {self.a.shape}")
        if self.b.ndim != 2 or self.b.shape[0] != self.a.shape[0]:
            raise ShapeError(
                f"B must have {self.a.shape[0]} rows, got {self.b.shape}"
            )
        if np.any(np.diag(self.a) == 0.0):
            raise ShapeError("singular triangular matrix (zero diagonal)")
        self._validate_envelope()

    @property
    def n(self) -> int:
        return self.a.shape[0]

    @property
    def nrhs(self) -> int:
        return self.b.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.nrhs)

    @property
    def shared_operand(self) -> np.ndarray:
        return self.a

    @property
    def result_shape(self) -> tuple[int, int]:
        return (self.n, self.nrhs)

    def _bucket(self) -> tuple:
        return (
            id(self.a),
            self.n,
            self.nrhs,
            self.lower,
            self.scheme,
            self.kernel,
            False,
        )


@dataclass(eq=False)
class FftRequest(KernelRequest):
    """One protected FFT of a real signal of power-of-two length.

    The canonical result is the float64 ``(N, 2)`` [Re, Im] spectrum —
    2-D so the all-float64 transport, result slots and oracle audit treat
    every kernel uniformly. There is no shared operand: every signal is
    private, so FFT batches group by length only and never coalesce.
    """

    kernel = "fft"

    x: np.ndarray

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=np.float64)
        if self.x.ndim != 1:
            raise ShapeError(f"x must be 1-D, got {self.x.shape}")
        n = self.x.size
        if n < 2 or n & (n - 1):
            raise ShapeError(
                f"FFT length must be a power of two >= 2, got {n}"
            )
        self._validate_envelope()

    @property
    def n(self) -> int:
        return self.x.size

    @property
    def shape(self) -> tuple[int]:
        return (self.n,)

    @property
    def result_shape(self) -> tuple[int, int]:
        return (self.n, 2)

    def _bucket(self) -> tuple:
        return (
            0,
            self.n,
            1.0,
            self.scheme,
            self.kernel,
            False,
        )


#: request class per kernel name (the proc tier's child rebuilds requests
#: from wire messages through this table)
REQUEST_TYPES: dict[str, type[KernelRequest]] = {
    "gemm": GemmRequest,
    "gemv": GemvRequest,
    "trsm": TrsmRequest,
    "fft": FftRequest,
}


def request_from_wire(
    kernel: str,
    unit: np.ndarray,
    shared: np.ndarray | None,
    aux: np.ndarray | None,
    params: dict | None,
    *,
    scheme: str = "dual",
    request_id: str | None = None,
) -> KernelRequest:
    """Rebuild a request from the proc tier's wire operands.

    The inverse of the kernel descriptors (``unit_operand`` /
    ``shared_operand`` / ``aux_operand`` / ``wire_params``): the parent
    decomposes a request into those four pieces to ship it over shared
    memory; the child calls this to put it back together. Raises
    :class:`~repro.util.errors.ConfigError` on an unknown kernel so a
    version-skewed message fails loudly instead of executing garbage.
    """
    params = params or {}
    if kernel == "gemm":
        request = GemmRequest(
            unit, shared, aux,
            alpha=params.get("alpha", 1.0), beta=params.get("beta", 0.0),
            scheme=scheme,
        )
    elif kernel == "gemv":
        request = GemvRequest(
            shared, unit, aux,
            alpha=params.get("alpha", 1.0), beta=params.get("beta", 0.0),
            scheme=scheme,
        )
    elif kernel == "trsm":
        request = TrsmRequest(
            shared, unit, lower=bool(params.get("lower", True)),
            scheme=scheme,
        )
    elif kernel == "fft":
        request = FftRequest(unit, scheme=scheme)
    else:
        raise ConfigError(
            f"unknown kernel {kernel!r} on the wire; known: {KERNEL_NAMES}"
        )
    request.request_id = request_id
    return request


@dataclass(eq=False)
class GemmResponse:
    """The service's single, terminal answer to one request (identity
    equality — it wraps ndarray-bearing results).

    ``result`` is an :class:`~repro.core.results.FTGemmResult` for GEMM
    requests and a :class:`~repro.kernels.base.KernelResult` for every
    other kernel; both expose ``.c`` and ``.verified``, which is all the
    response layer reads.
    """

    request_id: str
    status: str
    result: object | None = None
    error: str = ""
    #: worker that produced the answer (-1 when it never reached one)
    worker: int = -1
    #: execution attempts consumed (0 when never executed)
    attempts: int = 0
    #: how many requests shared the coalesced execution (1 = singleton)
    batch_size: int = 1
    #: end-to-end latency, admission -> completion (seconds)
    latency_s: float = 0.0
    #: the batch ran with the degraded (checksum-only) config
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def verified(self) -> bool:
        return self.result is not None and self.result.verified

    def summary(self) -> str:
        extra = f", batch={self.batch_size}" if self.batch_size > 1 else ""
        extra += ", degraded" if self.degraded else ""
        tail = f": {self.error}" if self.error else ""
        return (
            f"GemmResponse({self.request_id}, {self.status}, "
            f"attempts={self.attempts}{extra}, "
            f"latency={self.latency_s * 1e3:.2f}ms{tail})"
        )


#: the response type is kernel-agnostic; the historical name stays for
#: compatibility, the alias states the contract
KernelResponse = GemmResponse


class ResponseFuture:
    """One-shot, thread-safe slot the service fills with the response.

    ``set`` returns False (and changes nothing) on a second completion
    attempt — the exactly-once guard the soak tests assert on.
    """

    __slots__ = ("_event", "_response", "_lock", "_callbacks")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: GemmResponse | None = None
        self._lock = threading.Lock()
        self._callbacks: list = []

    def set(self, response: GemmResponse) -> bool:
        with self._lock:
            if self._response is not None:
                return False
            self._response = response
            callbacks = list(self._callbacks)
        self._event.set()
        for cb in callbacks:
            cb(response)
        return True

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> GemmResponse:
        """Block until the response arrives; raises TimeoutError otherwise."""
        if not self._event.wait(timeout):
            raise TimeoutError("no response within timeout")
        with self._lock:
            return self._response

    def peek(self) -> GemmResponse | None:
        with self._lock:
            return self._response

    def add_done_callback(self, cb) -> None:
        with self._lock:
            if self._response is None:
                self._callbacks.append(cb)
                return
            response = self._response
        cb(response)


@dataclass
class Ticket:
    """What ``submit`` hands back: the assigned id plus the future."""

    request_id: str
    future: ResponseFuture

    def result(self, timeout: float | None = None) -> GemmResponse:
        return self.future.result(timeout)
