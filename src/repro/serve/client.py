"""Synchronous client for :class:`~repro.serve.service.GemmService`.

The futures-based service API is what the workload driver and the tests
use; the client is the ergonomic wrapper for callers that just want a
protected product back — submit, block, unwrap, raise on anything that
is not a verified ``ok``.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import FTGemmResult
from repro.serve.request import GemmRequest, GemmResponse
from repro.serve.service import GemmService
from repro.util.errors import ServeError


class GemmClient:
    """Blocking calls against a running service.

    ::

        with GemmService(config) as service:
            client = GemmClient(service)
            c = client.gemm(a, b)          # np.ndarray, verified
    """

    def __init__(self, service: GemmService, *,
                 default_timeout: float | None = 30.0) -> None:
        self.service = service
        self.default_timeout = default_timeout

    def submit(self, a, b, c0=None, *, alpha: float = 1.0, beta: float = 0.0,
               priority: int = 0, deadline_s: float | None = None,
               scheme: str = "dual"):
        """Non-blocking submit; returns the service's Ticket."""
        request = GemmRequest(
            a, b, c0, alpha=alpha, beta=beta, priority=priority,
            deadline_s=deadline_s, scheme=scheme,
        )
        return self.service.submit(request)

    def call(self, a, b, c0=None, *, alpha: float = 1.0, beta: float = 0.0,
             priority: int = 0, deadline_s: float | None = None,
             scheme: str = "dual",
             timeout: float | None = None) -> GemmResponse:
        """Submit and block for the full response (any terminal status)."""
        ticket = self.submit(
            a, b, c0, alpha=alpha, beta=beta, priority=priority,
            deadline_s=deadline_s, scheme=scheme,
        )
        return ticket.result(
            self.default_timeout if timeout is None else timeout
        )

    def gemm(self, a, b, c0=None, *, alpha: float = 1.0, beta: float = 0.0,
             priority: int = 0, deadline_s: float | None = None,
             scheme: str = "dual",
             timeout: float | None = None) -> np.ndarray:
        """Submit, block, and unwrap: the verified product or ServeError."""
        response = self.call(
            a, b, c0, alpha=alpha, beta=beta, priority=priority,
            deadline_s=deadline_s, scheme=scheme, timeout=timeout,
        )
        result = self.unwrap(response)
        return result.c

    @staticmethod
    def unwrap(response: GemmResponse) -> FTGemmResult:
        """The verified result, or :class:`ServeError` carrying the
        response for callers that want the post-mortem."""
        if response.ok and response.result is not None:
            return response.result
        detail = f": {response.error}" if response.error else ""
        raise ServeError(
            f"request {response.request_id} ended "
            f"{response.status}{detail}",
            response=response,
        )
