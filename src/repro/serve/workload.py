"""Open-loop synthetic workloads against the serving layer.

The workload driver is what the ``repro serve`` CLI subcommand, the CI
smoke job and the soak tests run: submit requests at a configured arrival
rate for a configured duration — *open loop*, so submission pressure does
not slack off when the service slows down — optionally under live fault
injection, then audit the outcome:

- **exactly-once**: every submitted request produced exactly one terminal
  response (``lost == 0`` and ``service.duplicates == 0``);
- **correctness**: every ``ok`` response matches the NumPy oracle
  computed from the request's own operands;
- **performance**: throughput, latency percentiles, batch-size mix.

Shapes are drawn from a weighted mix. Requests of one shape class share
one operand (the inference pattern: many activations against one weight
matrix — B for GEMM, the A factor for GEMV/TRSM), which is what gives
the scheduler something to coalesce and the caches something to reuse;
classes marked ``private_b`` get fresh operands per request and always
execute as singletons — the control group.

A shape class may name any registered kernel (``ShapeSpec.kernel``), so
one open-loop run can storm a heterogeneous mix — :data:`MIXED_SHAPES`
is the stock four-kernel blend — and the audit checks each ``ok``
response against *its own kernel's* NumPy oracle.

Fault injection is deterministic per (request, attempt): the factory
derives every choice from the workload seed, so a failing soak replays
exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.faults.campaign import (
    plan_for_gemm,
    site_invocation_counts_parallel,
)
from repro.faults.injector import FaultInjector
from repro.faults.models import BitFlip, FailStop, StuckBit
from repro.kernels import get_kernel
from repro.serve.request import (
    FftRequest,
    GemmRequest,
    GemvRequest,
    KernelRequest,
    TrsmRequest,
)
from repro.serve.service import GemmService, ServiceConfig
from repro.util.errors import ConfigError
from repro.util.rng import derive_seed, make_rng


@dataclass(frozen=True)
class ShapeSpec:
    """One shape class in the mix: ``weight`` is its draw probability
    mass; ``private_b`` forces per-request operands (no sharing, no
    coalescing); ``kernel`` names the registered kernel the class
    exercises.

    Dimension conventions per kernel (the three fields are positional
    for GEMM history; other kernels read the ones they need):

    - ``gemm`` — A is ``m×k``, B is ``k×n``;
    - ``gemv`` — A is ``m×k``, x has length ``k`` (``n`` unused);
    - ``trsm`` — the triangular factor is ``k×k``, ``n`` right-hand
      sides (``m`` unused);
    - ``fft`` — signals of power-of-two length ``n`` (``m``/``k``
      unused; every signal is private).
    """

    m: int
    k: int
    n: int
    weight: float = 1.0
    private_b: bool = False
    kernel: str = "gemm"


#: default mixed-shape workload: two coalescible classes sharing a B each,
#: plus a private-B singleton class
DEFAULT_SHAPES = (
    ShapeSpec(24, 32, 32, weight=0.5),
    ShapeSpec(16, 48, 24, weight=0.3),
    ShapeSpec(20, 40, 28, weight=0.2, private_b=True),
)

#: the stock heterogeneous blend: every registered kernel in one storm —
#: a coalescible GEMM class, GEMV and TRSM classes sharing their A
#: factors (the many-solves-per-factorization pattern), and private FFT
#: signals
MIXED_SHAPES = (
    ShapeSpec(24, 32, 32, weight=0.35),
    ShapeSpec(40, 24, 1, weight=0.25, kernel="gemv"),
    ShapeSpec(1, 40, 8, weight=0.2, kernel="trsm"),
    ShapeSpec(1, 1, 64, weight=0.2, private_b=True, kernel="fft"),
)


@dataclass(frozen=True)
class WorkloadConfig:
    """An open-loop run: arrivals, shapes, faults, stop conditions."""

    duration_s: float = 2.0
    #: mean arrival rate (requests/second); inter-arrival times are
    #: exponential (Poisson arrivals)
    arrival_rate: float = 50.0
    #: fraction of first execution attempts that receive a fault plan
    fault_rate: float = 0.0
    #: of the faulted attempts: how many carry a fail-stop on top
    #: (needs ``gemm_threads >= 2``; silently skipped otherwise)
    fail_stop_fraction: float = 0.2
    #: errors per faulted call
    errors_per_call: int = 2
    seed: int = 0
    shapes: tuple[ShapeSpec, ...] = DEFAULT_SHAPES
    #: queue deadline applied to every request (None = none)
    deadline_s: float | None = None
    #: priorities drawn uniformly from this tuple
    priorities: tuple[int, ...] = (0,)
    #: stop after this many submissions even if time remains
    max_requests: int | None = None
    #: hot-B mode: instead of one shared B per coalescible shape class,
    #: draw each request's B from a pool of this many operands with
    #: Zipf-distributed popularity (rank r drawn ∝ 1/r^zipf_s) — the
    #: realistic reuse skew hot-operand caching feeds on. None (default)
    #: keeps the single-shared-B behaviour (and the exact operand rng
    #: sequence) of every existing benchmark and soak.
    hot_b_pool: int | None = None
    #: skew exponent of the hot-B popularity distribution (larger =
    #: hotter head); only read when ``hot_b_pool`` is set
    zipf_s: float = 1.2
    #: process-kill chaos (process tier only): probability a dispatched
    #: batch's worker SIGKILLs itself mid-batch at a random phase
    #: (pack / compute / reduce / reply). Halved per replay of the same
    #: batch so a chaos storm converges instead of deterministically
    #: re-killing its own replays.
    proc_kill_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if self.arrival_rate <= 0:
            raise ConfigError(
                f"arrival_rate must be positive, got {self.arrival_rate}"
            )
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigError(
                f"fault_rate must be in [0, 1], got {self.fault_rate}"
            )
        if not self.shapes:
            raise ConfigError("shapes must not be empty")
        if self.hot_b_pool is not None and self.hot_b_pool < 1:
            raise ConfigError(
                f"hot_b_pool must be >= 1 or None, got {self.hot_b_pool}"
            )
        if self.zipf_s <= 0:
            raise ConfigError(
                f"zipf_s must be positive, got {self.zipf_s}"
            )
        if not 0.0 <= self.proc_kill_rate <= 1.0:
            raise ConfigError(
                f"proc_kill_rate must be in [0, 1], got "
                f"{self.proc_kill_rate}"
            )


@dataclass
class WorkloadReport:
    """The audit of one run; ``ok`` gates the CI smoke job's exit code."""

    submitted: int = 0
    responses: dict[str, int] = field(default_factory=dict)
    #: submitted requests that never produced a response — must be 0
    lost: int = 0
    #: second completions observed by the service — must be 0
    duplicates: int = 0
    #: ok responses whose C failed the NumPy oracle — must be 0
    wrong: int = 0
    elapsed_s: float = 0.0
    throughput_rps: float = 0.0
    latency_ms: dict[str, float] = field(default_factory=dict)
    #: scheduler view: batches formed, coalesced share
    scheduler: dict = field(default_factory=dict)
    #: fault-path view: retries, quarantines, degraded batches
    recovery: dict = field(default_factory=dict)
    #: panel-cache view (empty when the cache is disabled)
    panel_cache: dict = field(default_factory=dict)
    #: per-kernel audit tally: kernel -> {submitted, ok, wrong} (a
    #: GEMM-only run reports a single "gemm" row)
    kernels: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Every request answered exactly once, every answer correct."""
        return self.lost == 0 and self.duplicates == 0 and self.wrong == 0

    def summary(self) -> str:
        parts = [
            f"submitted={self.submitted}",
            "responses="
            + "/".join(f"{k}:{v}" for k, v in sorted(self.responses.items())),
            f"lost={self.lost}",
            f"duplicates={self.duplicates}",
            f"wrong={self.wrong}",
            f"throughput={self.throughput_rps:.1f} req/s",
        ]
        if self.latency_ms:
            parts.append(
                f"latency p50/p95={self.latency_ms.get('p50', 0.0):.2f}/"
                f"{self.latency_ms.get('p95', 0.0):.2f} ms"
            )
        status = "OK" if self.ok else "FAILED"
        return f"workload {status}: " + ", ".join(parts)

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "responses": dict(self.responses),
            "lost": self.lost,
            "duplicates": self.duplicates,
            "wrong": self.wrong,
            "elapsed_s": self.elapsed_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": dict(self.latency_ms),
            "scheduler": dict(self.scheduler),
            "recovery": dict(self.recovery),
            "panel_cache": dict(self.panel_cache),
            "kernels": {k: dict(v) for k, v in self.kernels.items()},
            "ok": self.ok,
        }


def make_injector_factory(workload: WorkloadConfig):
    """An ``injector_factory`` for :class:`GemmService` drawing a
    deterministic fault mix: bit flips (transient), stuck bits (the sticky
    model the supervisor quarantines), and — on multi-threaded workers —
    fail-stop thread deaths.

    Only first attempts are faulted: a retry models re-execution on
    healthy substrate, which is the service-level recovery the retries
    exist to provide.
    """
    if workload.fault_rate <= 0.0:
        return None

    def factory(shape, attempt, request_id, service_config, kernel="gemm"):
        if attempt > 0:
            return None
        rng = make_rng(derive_seed(workload.seed, "serve", request_id))
        if rng.random() >= workload.fault_rate:
            return None
        model = (
            StuckBit(bit=51) if rng.random() < 0.3 else BitFlip(bit=50)
        )
        if kernel != "gemm":
            # the kernel's own site map; no fail-stop rung (the non-GEMM
            # kernels run single-threaded — there is no thread team to
            # lose a member of)
            plan = get_kernel(kernel).plan(
                tuple(shape),
                workload.errors_per_call,
                model=model,
                seed=derive_seed(workload.seed, "plan", request_id),
            )
            return FaultInjector(plan)
        m, n, k = shape
        blocking = service_config.ft.blocking
        counts = None
        if service_config.gemm_threads > 1:
            counts = site_invocation_counts_parallel(
                m, n, k, blocking, service_config.gemm_threads
            )
        plan = plan_for_gemm(
            m, n, k, blocking,
            workload.errors_per_call,
            model=model,
            seed=derive_seed(workload.seed, "plan", request_id),
            counts=counts,
        )
        if (
            service_config.gemm_threads >= 2
            and rng.random() < workload.fail_stop_fraction
        ):
            from dataclasses import replace

            # barriers 1..3 exist for every shape (the round barriers of
            # the first K-block); thread 0 must survive to supervise
            plan = replace(
                plan,
                fail_stops=(
                    FailStop(
                        thread=int(rng.integers(1, service_config.gemm_threads)),
                        barrier=int(rng.integers(1, 4)),
                    ),
                ),
            )
        return FaultInjector(plan)

    return factory


def make_fault_spec_factory(workload: WorkloadConfig):
    """The process-tier twin of :func:`make_injector_factory`: returns a
    ``fault_spec_factory(request_id, service_config)`` producing the plain
    picklable spec dict a worker process rebuilds its injector from
    (:func:`repro.serve.proc.worker.injector_from_spec`).

    The RNG draws mirror :func:`make_injector_factory` draw-for-draw —
    same seed derivation, same gate, same model split, same fail-stop
    tail — so a workload replayed on the process tier strikes the same
    requests with the same faults as the thread tier. Children fault
    first attempts only, matching the thread tier's retry semantics.
    """
    if workload.fault_rate <= 0.0:
        return None

    def factory(request_id, service_config, kernel="gemm"):
        rng = make_rng(derive_seed(workload.seed, "serve", request_id))
        if rng.random() >= workload.fault_rate:
            return None
        spec = {
            "model": "stuck" if rng.random() < 0.3 else "flip",
            "errors_per_call": workload.errors_per_call,
            "plan_seed": derive_seed(workload.seed, "plan", request_id),
            "fail_stop": None,
        }
        spec["bit"] = 51 if spec["model"] == "stuck" else 50
        if kernel != "gemm":
            # mirrors the thread tier: the non-GEMM branch ends after the
            # model draw, so both tiers' RNG streams stay draw-for-draw
            spec["kernel"] = kernel
            return spec
        if (
            service_config.gemm_threads >= 2
            and rng.random() < workload.fail_stop_fraction
        ):
            spec["fail_stop"] = {
                "thread": int(rng.integers(1, service_config.gemm_threads)),
                "barrier": int(rng.integers(1, 4)),
            }
        return spec

    return factory


def make_proc_chaos(workload: WorkloadConfig):
    """A deterministic process-kill schedule for the process tier: returns
    ``chaos(batch_id, deaths)`` yielding a kill phase (or ``None``) for
    each dispatch of a batch.

    Each (batch, dispatch-attempt) pair draws independently from the
    workload seed, so the storm replays exactly; the kill probability is
    halved per prior death of the batch (``deaths``) so a storm at high
    rate still converges — replays are progressively less likely to be
    re-killed rather than deterministically doomed. Draws span the four
    mid-batch phases; ``stall`` is exercised by a dedicated heartbeat
    test, not the storm, because a stall costs a full miss window of
    wall-clock per strike.
    """
    if workload.proc_kill_rate <= 0.0:
        return None
    phases = ("pack", "compute", "reduce", "reply")

    def chaos(batch_id, deaths):
        rng = make_rng(
            derive_seed(workload.seed, "prockill", batch_id, deaths)
        )
        if rng.random() >= workload.proc_kill_rate * (0.5 ** deaths):
            return None
        return phases[int(rng.integers(len(phases)))]

    return chaos


def _trsm_factor(rng: np.random.Generator, dim: int) -> np.ndarray:
    """A well-conditioned lower-triangular factor (diagonally dominant,
    so solve error stays well under the audit tolerance)."""
    return np.tril(rng.standard_normal((dim, dim))) + dim * np.eye(dim)


def _shared_operand(rng: np.random.Generator, spec: ShapeSpec):
    """The class's shareable operand: B for GEMM (byte-identical draw to
    the GEMM-only driver), the A factor for GEMV/TRSM."""
    if spec.kernel == "gemm":
        return rng.standard_normal((spec.k, spec.n))
    if spec.kernel == "gemv":
        return rng.standard_normal((spec.m, spec.k))
    if spec.kernel == "trsm":
        return _trsm_factor(rng, spec.k)
    return None  # fft: every signal is private


def _build_requests(workload: WorkloadConfig) -> list[KernelRequest]:
    """Pre-build the whole arrival schedule so submission-time work is
    only the sleep + submit (operand construction off the clock).

    GEMM-only shape mixes consume the RNG stream exactly as before the
    kernel family broadened (pinned by the A/B test): the per-kernel
    branches draw nothing unless their class is actually in the mix.
    """
    rng = make_rng(derive_seed(workload.seed, "workload"))
    weights = np.array([s.weight for s in workload.shapes], dtype=float)
    weights /= weights.sum()
    n_requests = int(round(workload.arrival_rate * workload.duration_s))
    if workload.max_requests is not None:
        n_requests = min(n_requests, workload.max_requests)
    n_requests = max(n_requests, 1)
    pool = 1 if workload.hot_b_pool is None else workload.hot_b_pool
    # one shared operand per coalescible class — or, in hot-B mode, a
    # pool of candidates drawn with Zipf-rank popularity (rank 1 hot)
    shared_b = {
        i: [_shared_operand(rng, spec) for _ in range(pool)]
        for i, spec in enumerate(workload.shapes)
        if not spec.private_b and spec.kernel != "fft"
    }
    zipf_p = None
    if workload.hot_b_pool is not None:
        ranks = np.arange(1.0, workload.hot_b_pool + 1.0)
        zipf_p = ranks ** -workload.zipf_s
        zipf_p /= zipf_p.sum()
    requests = []
    for _ in range(n_requests):
        i = int(rng.choice(len(workload.shapes), p=weights))
        spec = workload.shapes[i]
        if spec.kernel == "gemm":
            a = rng.standard_normal((spec.m, spec.k))
            if spec.private_b:
                b = rng.standard_normal((spec.k, spec.n))
            elif zipf_p is None:
                b = shared_b[i][0]
            else:
                b = shared_b[i][int(rng.choice(len(zipf_p), p=zipf_p))]
            build = lambda **env: GemmRequest(a, b, **env)  # noqa: E731
        elif spec.kernel == "gemv":
            x = rng.standard_normal(spec.k)
            if spec.private_b:
                mat = rng.standard_normal((spec.m, spec.k))
            elif zipf_p is None:
                mat = shared_b[i][0]
            else:
                mat = shared_b[i][int(rng.choice(len(zipf_p), p=zipf_p))]
            build = lambda **env: GemvRequest(mat, x, **env)  # noqa: E731
        elif spec.kernel == "trsm":
            rhs = rng.standard_normal((spec.k, spec.n))
            if spec.private_b:
                factor = _trsm_factor(rng, spec.k)
            elif zipf_p is None:
                factor = shared_b[i][0]
            else:
                factor = shared_b[i][int(rng.choice(len(zipf_p), p=zipf_p))]
            build = lambda **env: TrsmRequest(factor, rhs, **env)  # noqa: E731
        elif spec.kernel == "fft":
            sig = rng.standard_normal(spec.n)
            build = lambda **env: FftRequest(sig, **env)  # noqa: E731
        else:
            raise ConfigError(
                f"unknown kernel {spec.kernel!r} in shape mix"
            )
        priority = workload.priorities[
            int(rng.integers(len(workload.priorities)))
        ]
        requests.append(
            build(
                priority=int(priority),
                deadline_s=workload.deadline_s,
            )
        )
    return requests


def run_workload(
    service: GemmService,
    workload: WorkloadConfig,
    *,
    timeout_s: float = 60.0,
) -> WorkloadReport:
    """Drive ``service`` (already started) with an open-loop run and audit
    the responses. Drains the service before auditing — after this
    returns the service is retired."""
    rng = make_rng(derive_seed(workload.seed, "arrivals"))
    requests = _build_requests(workload)
    tickets = []
    t_start = time.perf_counter()
    deadline = t_start + workload.duration_s
    for request in requests:
        tickets.append((request, service.submit(request)))
        gap = rng.exponential(1.0 / workload.arrival_rate)
        remaining = deadline - time.perf_counter()
        if remaining <= 0:
            break
        time.sleep(min(gap, remaining))
    service.drain()
    elapsed = time.perf_counter() - t_start

    report = WorkloadReport(submitted=len(tickets), elapsed_s=elapsed)
    latencies = []
    audit_deadline = time.perf_counter() + timeout_s
    for request, ticket in tickets:
        tally = report.kernels.setdefault(
            request.kernel, {"submitted": 0, "ok": 0, "wrong": 0}
        )
        tally["submitted"] += 1
        try:
            response = ticket.result(
                max(0.0, audit_deadline - time.perf_counter())
            )
        except TimeoutError:
            report.lost += 1
            continue
        report.responses[response.status] = (
            report.responses.get(response.status, 0) + 1
        )
        latencies.append(response.latency_s * 1e3)
        if response.ok:
            tally["ok"] += 1
            # each kernel's own NumPy oracle, recomputed from the
            # request's operands (for GEMM this is gemm_reference —
            # byte-identical to the audit before the family broadened)
            expected = get_kernel(request.kernel).oracle(request)
            scale = float(np.max(np.abs(expected))) + 1.0
            err = float(
                np.max(np.abs(np.asarray(response.result.c) - expected))
            )
            if err > 1e-8 * scale:
                report.wrong += 1
                tally["wrong"] += 1
    report.duplicates = service.duplicates
    n_ok = report.responses.get("ok", 0)
    report.throughput_rps = n_ok / elapsed if elapsed > 0 else 0.0
    if latencies:
        arr = np.array(latencies)
        report.latency_ms = {
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "max": float(arr.max()),
        }
    stats = service.stats()
    report.scheduler = stats["scheduler"]
    metrics = stats["metrics"]["counters"]
    report.recovery = {
        "retries": int(metrics.get("serve.retries", 0)),
        "quarantined": len(stats["quarantined_workers"]),
        "degraded_batches": int(metrics.get("serve.degraded_batches", 0)),
        "shed": int(metrics.get("serve.shed", 0)),
        "rejected": int(metrics.get("serve.rejected", 0)),
        "expired": int(metrics.get("serve.expired", 0)),
    }
    if "proc" in stats:
        report.recovery.update(
            proc_deaths=int(metrics.get("serve.proc.deaths", 0)),
            proc_replays=int(metrics.get("serve.proc.replays", 0)),
            proc_respawns=stats["proc"]["respawns"],
            proc_child_retries=int(
                metrics.get("serve.proc.child_retries", 0)
            ),
            proc_degraded_buckets=stats["proc"]["degraded_buckets"],
            proc_late_results=int(
                metrics.get("serve.proc.late_results", 0)
            ),
            proc_leaked_segments=stats["proc"]["segments"]["live"],
        )
    report.panel_cache = stats.get("panel_cache", {})
    return report


def run_serve_workload(
    service_config: ServiceConfig,
    workload: WorkloadConfig,
    *,
    timeout_s: float = 60.0,
) -> WorkloadReport:
    """Convenience wrapper: build, start, drive, drain, audit.

    Fault plumbing follows the tier: in-process services take a live
    ``injector_factory``; process tiers (``processes > 0``) take the
    picklable spec factory plus the process-kill chaos schedule.
    """
    if service_config.processes > 0:
        service = GemmService(
            service_config,
            fault_spec_factory=make_fault_spec_factory(workload),
            chaos=make_proc_chaos(workload),
        )
    else:
        service = GemmService(
            service_config,
            injector_factory=make_injector_factory(workload),
        )
    service.start()
    return run_workload(service, workload, timeout_s=timeout_s)
