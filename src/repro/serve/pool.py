"""Supervised worker pool: execution, retries, quarantine, degraded mode.

Each worker is an OS thread owning its own driver instances (``FTGemm``,
or ``ParallelFTGemm`` when the service config asks for intra-request
threading) — drivers are reusable but not reentrant, so nothing is shared
between workers. Every driver runs with the escalation supervisor enabled:
in-call recovery (correction, targeted recompute, repack, DMR) is the
first line of defence and comes for free from the core layer.

The pool adds the *service-level* resilience on top:

- **retries with exponential backoff** — a batch whose execution raises
  (:class:`UncorrectableError`, or any unexpected exception from a faulty
  substrate) or returns unverified is re-executed up to ``retry_budget``
  times, with ``backoff_base_s * 2**attempt`` sleeps between attempts;
  fresh attempts rebuild all driver state, so transient poisonings do not
  survive;
- **worker quarantine** — a worker whose batches keep failing
  (``quarantine_after`` consecutive failures) is presumed to sit on bad
  substrate (sticky faults the injector model makes persistent); it
  retires itself and the pool spawns a replacement, mirroring how a fleet
  rotates a bad host out of rotation;
- **degraded mode** — when the admission queue is deeper than
  ``degraded_depth``, batches execute with a cheaper checksum-only
  config (no escalation supervisor, no recompute fallback): under
  pressure the service trades per-call repair effort for throughput,
  leaning on retries for the rare unverified result.

Responses are delivered through the service's completion hook; the pool
never answers a request twice (the future's one-shot guard is the final
backstop, and the soak tests count duplicates).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.core.results import FTGemmResult
from repro.gemm.blocking import BlockingConfig
from repro.obs.metrics import NULL_METRICS
from repro.serve.request import GemmRequest, GemmResponse
from repro.serve.scheduler import Batch, BatchScheduler
from repro.util.errors import ReproError

#: TEST-ONLY: when flipped on, the pool acquires its own lock and the
#: scheduler's ready lock in opposite orders on the spawn and stop paths
#: — a textbook lock-order inversion. It exists solely so the runtime
#: sanitizer's cycle detector has a guaranteed-positive regression test
#: (tests/test_sanitize.py); nothing in the product sets it.
SEED_LOCK_INVERSION = False


def tuned_parts(tuned) -> tuple[BlockingConfig, int]:
    """``(blocking, threads)`` of a resolved tuning-DB entry.

    Accepts either the :class:`~repro.tune.db.TunedConfig` object the
    thread tier carries on requests or the plain dict the proc tier ships
    over its pipe — the serve layer stays structurally decoupled from the
    tune package's types.
    """
    if hasattr(tuned, "blocking"):
        return tuned.blocking(), max(1, int(getattr(tuned, "threads", 1) or 1))
    blocking = BlockingConfig(
        mc=int(tuned["mc"]),
        kc=int(tuned["kc"]),
        nc=int(tuned["nc"]),
        mr=int(tuned.get("mr", 16)),
        nr=int(tuned.get("nr", 14)),
        dispatch=str(tuned.get("dispatch", "auto")),
    )
    return blocking, max(1, int(tuned.get("threads", 1) or 1))


class Worker:
    """Per-thread execution state: cached drivers and a failure streak."""

    def __init__(self, index: int, service_config) -> None:
        self.index = index
        self.config = service_config
        self.consecutive_failures = 0
        self._drivers: dict[tuple, object] = {}

    def driver_for(self, scheme: str, degraded: bool, tuned=None):
        blocking = None
        threads = self.config.gemm_threads
        if tuned is not None:
            blocking, threads = tuned_parts(tuned)
        key = (
            (scheme, degraded)
            if blocking is None
            else (scheme, degraded, blocking, threads)
        )
        driver = self._drivers.get(key)
        if driver is None:
            ft = self.config.ft.with_(checksum_scheme=scheme, strict=True)
            if blocking is not None:
                ft = ft.with_(blocking=blocking)
            if degraded:
                # checksum-only verification: no escalation ladder, no
                # recompute fallback; unverified results surface (non-
                # strict) and the retry path owns recovery
                ft = ft.with_(
                    enable_supervisor=False,
                    recompute_fallback=False,
                    strict=False,
                )
            if threads > 1:
                driver = ParallelFTGemm(
                    ft,
                    n_threads=threads,
                    backend=self.config.team_backend,
                )
            else:
                driver = FTGemm(ft)
            self._drivers[key] = driver
        return driver


class WorkerPool:
    """Spawns, replaces and retires the workers draining the scheduler."""

    def __init__(
        self,
        scheduler: BatchScheduler,
        service_config,
        *,
        complete,
        injector_factory=None,
        use_degraded=None,
        metrics=NULL_METRICS,
        tracer=None,
        sleep=time.sleep,
        panel_cache=None,
    ) -> None:
        self.scheduler = scheduler
        self.config = service_config
        self.complete = complete
        self.injector_factory = injector_factory
        self.use_degraded = use_degraded or (lambda: False)
        #: optional :class:`~repro.gemm.panelcache.PanelCache` shared by
        #: every worker (the cache is internally locked; entries are
        #: immutable once built, so concurrent consumers are safe)
        self.panel_cache = panel_cache
        self.metrics = metrics
        self.tracer = tracer
        self.sleep = sleep
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._next_index = 0
        self._stopping = False
        self.quarantined: list[int] = []

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        for _ in range(self.config.workers):
            self._spawn()

    def _spawn(self) -> bool:
        if SEED_LOCK_INVERSION:
            with self._lock:
                with self.scheduler._ready_lock:  # pool -> scheduler order
                    pass
        with self._lock:
            if self._stopping:
                return False
            index = self._next_index
            self._next_index += 1
            thread = threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"serve-worker-{index}",
                daemon=True,
            )
            self._threads.append(thread)
        thread.start()
        return True

    def stop(self, join: bool = True) -> None:
        if SEED_LOCK_INVERSION:
            with self.scheduler._ready_lock:
                with self._lock:  # scheduler -> pool: inverts _spawn's order
                    pass
        with self._lock:
            self._stopping = True
        if join:
            # quarantine replacements may race the snapshot: keep joining
            # until no thread remains unjoined
            joined: set[threading.Thread] = set()
            while True:
                with self._lock:
                    pending = [t for t in self._threads if t not in joined]
                if not pending:
                    break
                for thread in pending:
                    thread.join()
                    joined.add(thread)

    # ------------------------------------------------------------ worker loop
    def _worker_loop(self, index: int) -> None:
        worker = Worker(index, self.config)
        while True:
            batch = self.scheduler.next_batch(timeout=0.05)
            if batch is None:
                # stale read tolerated: the flag is re-polled within 50ms
                # and stop() joins, so retirement is never missed
                if self.scheduler.finished or self._stopping:  # analysis: ignore[lock-discipline]
                    return
                continue
            self._execute_batch(worker, batch)
            if worker.consecutive_failures >= self.config.quarantine_after:
                if self._quarantine(worker):
                    return
                # shutdown refused the replacement: the suspect worker
                # soldiers on so nothing in the ready lane is orphaned —
                # answering every request beats retiring a bad host
                worker.consecutive_failures = 0

    def _quarantine(self, worker: Worker) -> bool:
        """Retire a repeatedly failing worker; returns True when a
        replacement took over (False during shutdown — the caller keeps
        the worker alive to finish the drain)."""
        self.metrics.inc("serve.worker_quarantined")
        if self.tracer is not None:
            self.tracer.event(
                "serve.quarantine",
                cat="serve",
                tid=1000 + worker.index,
                args={"worker": worker.index,
                      "failures": worker.consecutive_failures},
            )
        with self._lock:
            self.quarantined.append(worker.index)
        # replace the lost capacity unless the pool is shutting down
        return self._spawn()

    # -------------------------------------------------------------- execution
    def _execute_batch(self, worker: Worker, batch: Batch) -> None:
        # deadline check at the last moment before work starts: a request
        # can outlive its deadline inside a formed batch while the worker
        # chews through earlier ones — running it then wastes the very
        # capacity the deadline was protecting
        now = self.scheduler.clock()
        live: list[GemmRequest] = []
        for request in batch.items:
            if request.expired(now):
                self.metrics.inc("serve.expired")
                self.complete(
                    request,
                    GemmResponse(
                        request_id=request.request_id,
                        status="expired",
                        error="deadline passed before execution",
                        worker=worker.index,
                    ),
                )
            else:
                live.append(request)
        if not live:
            return
        if len(live) != len(batch.items):
            batch = Batch(
                items=live,
                bucket=batch.bucket,
                batch_id=batch.batch_id,
                formed_at=batch.formed_at,
            )
        degraded = bool(self.use_degraded())
        if degraded:
            self.metrics.inc("serve.degraded_batches")
        tr = self.tracer
        t0 = tr.now_us() if tr is not None else 0.0
        if batch.coalesced:
            ok = self._run_coalesced(worker, batch, degraded)
        else:
            # materialize before reducing: all() over a generator would
            # short-circuit on the first failure and strand every later
            # request in the batch without a response
            results = [
                self._run_single(worker, request, batch, degraded)
                for request in batch.items
            ]
            ok = all(results)
        if tr is not None:
            tr.complete(
                "serve.batch",
                cat="serve",
                tid=1000 + worker.index,
                t0_us=t0,
                args={
                    "batch_id": batch.batch_id,
                    "size": len(batch),
                    "coalesced": batch.coalesced,
                    "degraded": degraded,
                    "ok": ok,
                },
            )
        if ok:
            worker.consecutive_failures = 0
        else:
            worker.consecutive_failures += 1

    def _attempts(self, worker: Worker, shape, request_id: str, driver,
                  run, kernel: str | None = None
                  ) -> tuple[FTGemmResult | None, int, str]:
        """Run ``run(injector)`` with retries; returns (result, attempts,
        last error message).

        ``kernel`` is forwarded to the injector factory as a fifth
        positional argument *only* for the non-GEMM kernels — existing
        four-argument factories (every pre-mixed-workload caller) keep
        working unchanged, and GEMM fault plans stay byte-identical.
        """
        budget = self.config.retry_budget
        error = ""
        for attempt in range(budget + 1):
            if attempt:
                self.metrics.inc("serve.retries")
                self.sleep(self.config.backoff_base_s * 2 ** (attempt - 1))
            try:
                injector = None
                if self.injector_factory is not None:
                    if kernel is None:
                        injector = self.injector_factory(
                            shape, attempt, request_id, self.config
                        )
                    else:
                        injector = self.injector_factory(
                            shape, attempt, request_id, self.config, kernel
                        )
                result = run(driver, injector)
            except ReproError as exc:
                error = f"{type(exc).__name__}: {exc}"
                continue
            except Exception as exc:  # substrate fault models may raise
                error = f"{type(exc).__name__}: {exc}"
                continue
            if result.verified:
                return result, attempt + 1, ""
            error = "verification failed"
        return None, budget + 1, error

    def _consult_cache(self, b, tuned=None):
        """The admission-path cache consult: a verified resident encoding
        of ``b``, or None (cache off, parallel drivers, or oversize).
        Drivers with intra-request threads ignore packed panels — their
        fail-stop recovery epochs rebuild every buffer from source — so
        consulting would only burn encode work. A tuned entry keys the
        cache under *its* blocking, so tuned and static encodings of the
        same B coexist without ever cross-matching."""
        cache = self.panel_cache
        blocking = self.config.ft.blocking
        threads = self.config.gemm_threads
        if tuned is not None:
            blocking, threads = tuned_parts(tuned)
        if cache is None or threads > 1:
            return None
        return cache.acquire(b, blocking)

    def _pick_drivers(self, worker: Worker, scheme: str, degraded: bool,
                      tuned):
        """(static driver, execution driver) for one batch.

        Injected attempts always run on the static driver: fault campaign
        plans derive their site/invocation schedules from the *static*
        blocking, and re-deriving them per tuned config would silently
        shift every scheduled fault. Clean attempts get the tuned driver.
        """
        static = worker.driver_for(scheme, degraded)
        if tuned is None:
            return static, static
        self.metrics.inc("tune.applied")
        return static, worker.driver_for(scheme, degraded, tuned=tuned)

    def _run_coalesced(self, worker: Worker, batch: Batch,
                       degraded: bool) -> bool:
        head = batch.items[0]
        tuned = head.tuned
        driver, exec_driver = self._pick_drivers(
            worker, head.scheme, degraded, tuned
        )
        a_stack = np.vstack([r.a for r in batch.items])
        shape = (a_stack.shape[0], head.n, head.k)
        packed = self._consult_cache(head.b, tuned)

        def run(drv, injector):
            # injected attempts decline both the cached panels and the
            # tuned driver (the drv the retry loop hands back is the
            # static one): campaigns keep exact schedules and the cache
            # is never consulted around a live injector
            use = exec_driver if injector is None else drv
            return use.gemm(
                a_stack,
                head.b,
                alpha=head.alpha,
                injector=injector,
                request_id=batch.batch_id,
                packed_b=packed if injector is None else None,
            )

        result, attempts, error = self._attempts(
            worker, shape, batch.batch_id, driver, run
        )
        if result is None:
            for request in batch.items:
                self.complete(
                    request,
                    GemmResponse(
                        request_id=request.request_id,
                        status="failed",
                        error=error,
                        worker=worker.index,
                        attempts=attempts,
                        batch_size=len(batch),
                        degraded=degraded,
                    ),
                )
            return False
        # split the stacked product back into per-request results; the
        # evidence (counters, reports, recovery) is shared — it describes
        # the one driver call that produced every slice
        offset = 0
        for request in batch.items:
            c_slice = result.c[offset : offset + request.m]
            offset += request.m
            sliced = FTGemmResult(
                c=c_slice,
                counters=result.counters,
                reports=result.reports,
                verified=result.verified,
                ft_enabled=result.ft_enabled,
                recovery=result.recovery,
                request_id=request.request_id,
            )
            self.complete(
                request,
                GemmResponse(
                    request_id=request.request_id,
                    status="ok",
                    result=sliced,
                    worker=worker.index,
                    attempts=attempts,
                    batch_size=len(batch),
                    degraded=degraded,
                ),
            )
        return True

    def _run_kernel(self, worker: Worker, request, batch: Batch,
                    degraded: bool) -> bool:
        """Non-GEMM execution: resolve the registry kernel and run it
        under the same retry/degraded/injector envelope as GEMM. The
        registry import lives here — a GEMM-only service never touches
        it (pinned by the poisoned-registry A/B test)."""
        from repro.kernels import get_kernel

        kern = get_kernel(request.kernel)
        shape = request.shape

        def run(_driver, injector):
            return kern.run(
                request,
                injector=injector,
                degraded=degraded,
                tracer=self.tracer,
                tid=1000 + worker.index,
            )

        result, attempts, error = self._attempts(
            worker, shape, request.request_id, None, run,
            kernel=request.kernel,
        )
        if result is None:
            self.complete(
                request,
                GemmResponse(
                    request_id=request.request_id,
                    status="failed",
                    error=error,
                    worker=worker.index,
                    attempts=attempts,
                    batch_size=len(batch),
                    degraded=degraded,
                ),
            )
            return False
        self.complete(
            request,
            GemmResponse(
                request_id=request.request_id,
                status="ok",
                result=result,
                worker=worker.index,
                attempts=attempts,
                batch_size=len(batch),
                degraded=degraded,
            ),
        )
        return True

    def _run_single(self, worker: Worker, request: GemmRequest,
                    batch: Batch, degraded: bool) -> bool:
        if request.kernel != "gemm":
            return self._run_kernel(worker, request, batch, degraded)
        tuned = request.tuned
        driver, exec_driver = self._pick_drivers(
            worker, request.scheme, degraded, tuned
        )
        shape = (request.m, request.n, request.k)
        packed = self._consult_cache(request.b, tuned)

        def run(drv, injector):
            use = exec_driver if injector is None else drv
            c = request.c0.copy() if request.c0 is not None else None
            return use.gemm(
                request.a,
                request.b,
                c,
                alpha=request.alpha,
                beta=request.beta,
                injector=injector,
                request_id=request.request_id,
                packed_b=packed if injector is None else None,
            )

        result, attempts, error = self._attempts(
            worker, shape, request.request_id, driver, run
        )
        if result is None:
            self.complete(
                request,
                GemmResponse(
                    request_id=request.request_id,
                    status="failed",
                    error=error,
                    worker=worker.index,
                    attempts=attempts,
                    batch_size=len(batch),
                    degraded=degraded,
                ),
            )
            return False
        self.complete(
            request,
            GemmResponse(
                request_id=request.request_id,
                status="ok",
                result=result,
                worker=worker.index,
                attempts=attempts,
                batch_size=len(batch),
                degraded=degraded,
            ),
        )
        return True
