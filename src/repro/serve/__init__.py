"""Fault-tolerant GEMM serving: queue, scheduler, worker pool, service.

The serving subsystem turns the library's protected GEMM drivers into a
long-running, multi-tenant service with an exactly-once response
guarantee:

- :mod:`repro.serve.request` — request/response types and the one-shot
  :class:`ResponseFuture`;
- :mod:`repro.serve.queue` — bounded admission with backpressure
  (block / reject / shed-lowest) and deadline expiry;
- :mod:`repro.serve.scheduler` — shape-coalescing batcher: compatible
  requests execute as one stacked product;
- :mod:`repro.serve.pool` — supervised workers with retries, quarantine
  and a degraded checksum-only mode under pressure;
- :mod:`repro.serve.service` — the :class:`GemmService` facade wiring it
  together; :mod:`repro.serve.client` — the blocking convenience client;
- :mod:`repro.serve.workload` — open-loop synthetic workloads with a
  built-in exactly-once / correctness audit (the CLI and CI entry);
- :mod:`repro.serve.proc` — the process tier: multiprocessing workers
  behind the same scheduler, shared-memory operand transport, heartbeat
  death detection with exactly-once replay, and an asyncio gateway.
"""

from repro.serve.client import GemmClient
from repro.serve.queue import Admission, AdmissionQueue, POLICIES
from repro.serve.request import (
    GemmRequest,
    GemmResponse,
    ResponseFuture,
    SCHEMES,
    TERMINAL_STATUSES,
    Ticket,
)
from repro.serve.scheduler import Batch, BatchScheduler, SchedulerStats
from repro.serve.pool import Worker, WorkerPool
from repro.serve.service import GemmService, ServiceConfig
from repro.serve.workload import (
    DEFAULT_SHAPES,
    MIXED_SHAPES,
    ShapeSpec,
    WorkloadConfig,
    WorkloadReport,
    make_fault_spec_factory,
    make_injector_factory,
    make_proc_chaos,
    run_serve_workload,
    run_workload,
)

__all__ = [
    "Admission",
    "AdmissionQueue",
    "Batch",
    "BatchScheduler",
    "DEFAULT_SHAPES",
    "MIXED_SHAPES",
    "GemmClient",
    "GemmRequest",
    "GemmResponse",
    "GemmService",
    "POLICIES",
    "ResponseFuture",
    "SCHEMES",
    "SchedulerStats",
    "ServiceConfig",
    "ShapeSpec",
    "TERMINAL_STATUSES",
    "Ticket",
    "Worker",
    "WorkerPool",
    "WorkloadConfig",
    "WorkloadReport",
    "make_fault_spec_factory",
    "make_injector_factory",
    "make_proc_chaos",
    "run_serve_workload",
    "run_workload",
]
