"""Shape-coalescing batch scheduler.

The scheduler is the single thread between the admission queue and the
worker pool. Its job is to turn a stream of individual requests into
:class:`Batch` objects that execute well:

- it pops the highest-priority request, then *coalesces* — pulls every
  queued request sharing the head's shape bucket (same B operand, same
  (k, n), scalars and scheme; see :meth:`GemmRequest.bucket`) into the
  same batch, up to ``max_batch``;
- if the batch is not full it holds the lane open for a **batching
  window** (``window_s``), absorbing compatible arrivals; an incompatible
  arrival ships the batch immediately rather than holding the newcomer
  hostage behind a lane it cannot join;
- requests with nothing to coalesce with — odd shapes, ``beta != 0``,
  private B operands — fall through as singleton batches, so nothing
  waits on a window that cannot help it;
- queued requests whose deadline passes are reaped and answered
  (status ``expired``) before they waste worker time;
- the ready lane is **bounded** (``max_ready`` formed batches): once
  every worker has work waiting, the backlog stays in the admission
  queue, where the backpressure policy and deadlines actually apply —
  an unbounded ready lane would quietly bypass the queue's capacity.

A coalesced batch is executed by the pool as **one stacked product**
(the A operands concatenated along M) through a single driver call on the
batched dispatch engine — per-call fixed costs (prologue, packing ramp,
verification, supervision) amortize across the batch, which is where the
serving throughput multiple comes from.
"""

from __future__ import annotations

import collections
import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import NULL_METRICS
from repro.serve.queue import AdmissionQueue
from repro.serve.request import GemmRequest
from repro.util.errors import ConfigError


@dataclass
class Batch:
    """One unit of worker execution: requests that travel together.

    ``coalesced`` batches share a bucket with ``beta == 0`` and execute as
    one stacked GEMM; everything else executes request-by-request through
    the same driver instance.
    """

    items: list[GemmRequest]
    bucket: tuple | None = None
    batch_id: str = ""
    formed_at: float = 0.0

    def __len__(self) -> int:
        return len(self.items)

    @property
    def coalesced(self) -> bool:
        return (
            len(self.items) > 1
            and self.bucket is not None
            and bool(self.bucket[-1])  # the beta == 0 flag of the key
        )


@dataclass
class SchedulerStats:
    """Counters the scheduler keeps outside the metrics registry (exact
    integers for reports and tests)."""

    batches: int = 0
    coalesced_batches: int = 0
    coalesced_requests: int = 0
    singleton_batches: int = 0
    expired: int = 0


class BatchScheduler:
    """Single consumer of the admission queue, producer of ready batches.

    ``on_expired`` is called (from the scheduler thread) with each request
    reaped past its deadline — the service answers it there. Workers pull
    with :meth:`next_batch`; after :meth:`stop` drains, it returns None to
    every caller.
    """

    def __init__(
        self,
        queue: AdmissionQueue,
        *,
        max_batch: int = 16,
        window_s: float = 0.002,
        max_ready: int = 4,
        on_expired=None,
        metrics=NULL_METRICS,
        clock=time.monotonic,
        poll_s: float = 0.05,
        panel_cache=None,
    ) -> None:
        if max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if window_s < 0:
            raise ConfigError(f"window_s must be >= 0, got {window_s}")
        if max_ready < 1:
            raise ConfigError(f"max_ready must be >= 1, got {max_ready}")
        self.queue = queue
        self.max_batch = max_batch
        self.window_s = window_s
        self.max_ready = max_ready
        self.on_expired = on_expired
        self.metrics = metrics
        self.clock = clock
        self.poll_s = poll_s
        #: optional :class:`~repro.gemm.panelcache.PanelCache` consulted at
        #: batch formation: touching the head's B keeps a hot operand's
        #: panels LRU-resident while its batches are still forming
        self.panel_cache = panel_cache
        self.stats = SchedulerStats()
        self._ready: collections.deque[Batch] = collections.deque()
        self._ready_lock = threading.Lock()
        self._ready_cv = threading.Condition(self._ready_lock)
        self._stopping = False
        self._finished = False
        # monotonic batch ids without shared read-modify-write state
        self._seq = itertools.count(1)
        self._thread: threading.Thread | None = None

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="serve-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, join: bool = True) -> None:
        """Finish scheduling whatever the queue still holds, then retire.

        The admission queue must be closed first (the service does) so the
        backlog is bounded; ready batches stay consumable by workers.
        """
        with self._ready_cv:
            self._stopping = True
            # wake the producer out of its bounded-lane wait so shutdown
            # is not delayed by a full ready lane
            self._ready_cv.notify_all()
        if join and self._thread is not None:
            self._thread.join()

    @property
    def ready_depth(self) -> int:
        """Batches formed but not yet claimed by a worker (with the
        admission-queue depth, the service's backpressure signal)."""
        with self._ready_lock:
            return len(self._ready)

    @property
    def finished(self) -> bool:
        """True once the scheduler thread has exited and the ready lane is
        empty (workers seeing None may retire)."""
        with self._ready_lock:
            return self._finished and not self._ready

    # ------------------------------------------------------------ worker side
    def next_batch(self, timeout: float = 0.1) -> Batch | None:
        """Pull the next ready batch; None on timeout or full drain."""
        deadline = self.clock() + timeout
        with self._ready_cv:
            while not self._ready:
                if self._finished:
                    return None
                remaining = deadline - self.clock()
                if remaining <= 0:
                    return None
                self._ready_cv.wait(remaining)
            batch = self._ready.popleft()
            self._ready_cv.notify_all()  # wake the producer's bound check
            return batch

    # --------------------------------------------------------- the main loop
    def _run(self) -> None:
        queue = self.queue
        while True:
            self._reap()
            # bounded ready lane: while every worker has a formed batch
            # waiting, leave the backlog in the admission queue — that is
            # where deadlines lapse and the backpressure policy binds (an
            # unbounded ready lane would launder the queue's capacity
            # limit away). Shutdown lifts the bound so the drain cannot
            # stall behind it.
            with self._ready_cv:
                if len(self._ready) >= self.max_ready and not self._stopping:
                    self._ready_cv.wait(self.poll_s)
                    backoff = True
                else:
                    backoff = False
            if backoff:
                continue
            head = queue.pop(timeout=self.poll_s)
            if head is None:
                # stale reads are safe: a missed flag flip is re-checked
                # within poll_s on the next pass of the loop
                if queue.closed or self._stopping:  # analysis: ignore[lock-discipline]
                    break
                continue
            now = self.clock()
            if head.expired(now):
                # popped before the reaper saw it: count it here (reaped
                # requests are counted by the queue itself)
                self.metrics.inc("serve.expired")
                self._expire(head)
                continue
            batch = self._coalesce(head, now)
            self._emit(batch)
        with self._ready_cv:
            self._finished = True
            self._ready_cv.notify_all()

    def _coalesce(self, head: GemmRequest, now: float) -> Batch:
        # the memoized bucket doubles as the cache consult key: bucket[0]
        # is id(B), computed once here and shared with every compatibility
        # scan below (no per-request re-derivation)
        bucket = head.bucket()
        if self.panel_cache is not None:
            self.panel_cache.touch(bucket[0])
        # a tuning-DB entry may cap coalescing below the global max_batch:
        # stacking more A operands than the tuned config's footprint
        # analysis allows would push the batched call out of cache
        limit = self.max_batch
        tuned = head.tuned
        if tuned is not None:
            cap = int(getattr(tuned, "coalesce_limit", 0) or 0)
            if cap > 0:
                limit = min(limit, cap)
        items = [head]
        want = limit - 1
        if want > 0:
            items += self.queue.take_compatible(bucket, want)
            window_end = now + self.window_s
            while (
                len(items) < limit
                # stale read tolerated: worst case one extra window wait
                and not self._stopping  # analysis: ignore[lock-discipline]
                and not self.queue.closed
            ):
                remaining = window_end - self.clock()
                if remaining <= 0:
                    break
                if not self.queue.wait_nonempty(remaining):
                    break
                more = self.queue.take_compatible(
                    bucket, limit - len(items)
                )
                if not more:
                    # an incompatible request is waiting: ship this batch
                    # now instead of idling the queue behind the window
                    break
                items += more
        return Batch(
            items=items,
            bucket=bucket,
            batch_id=f"b{next(self._seq):06d}",
            formed_at=now,
        )

    def _emit(self, batch: Batch) -> None:
        self.metrics.inc("serve.batches")
        if batch.coalesced:
            self.metrics.inc("serve.coalesced_requests", len(batch))
        self.metrics.observe("serve.batch_size", float(len(batch)))
        with self._ready_cv:
            self.stats.batches += 1
            if batch.coalesced:
                self.stats.coalesced_batches += 1
                self.stats.coalesced_requests += len(batch)
            else:
                self.stats.singleton_batches += 1
            self._ready.append(batch)
            self._ready_cv.notify()

    def _reap(self) -> None:
        for request in self.queue.reap_expired():
            self._expire(request)

    def _expire(self, request: GemmRequest) -> None:
        # stats are mutated under the cv everywhere (_emit) — keep the
        # expiry counter consistent with that
        with self._ready_cv:
            self.stats.expired += 1
        if self.on_expired is not None:
            self.on_expired(request)
