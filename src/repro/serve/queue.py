"""Bounded admission queue with backpressure policies and deadline expiry.

The queue is the service's only buffer: every request the system has
accepted but not yet handed to a worker lives here. It is strictly
bounded — a service facing millions of users sheds load here, visibly,
instead of growing an unbounded backlog and falling over later. Three
policies decide what happens when a request arrives at a full queue:

- ``"block"``  — the submitting thread waits for space (classic
  producer-side backpressure; an optional timeout turns the wait into a
  rejection);
- ``"reject"`` — the request is refused immediately;
- ``"shed-lowest"`` — the lowest-priority queued request is evicted to
  make room, provided the newcomer outranks it; otherwise the newcomer
  itself is refused. Eviction victims are returned to the caller so the
  service can answer them (status ``shed``) — the queue never drops a
  request silently.

Ordering is priority-first (larger wins), FIFO within a priority.
Deadlines are enforced here too: :meth:`reap_expired` removes requests
whose queue deadline passed, again returning them for explicit
completion. Every transition updates the shared metrics registry
(``serve.queue_depth`` gauge, ``serve.admitted``/``rejected``/``shed``/
``expired`` counters).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.obs.metrics import NULL_METRICS
from repro.serve.request import GemmRequest
from repro.util.errors import ConfigError

#: recognised backpressure policies
POLICIES = ("block", "reject", "shed-lowest")


@dataclass
class Admission:
    """Outcome of one ``put``: admitted or not, plus any eviction victim."""

    admitted: bool
    #: request evicted to make room (``shed-lowest`` only); the caller
    #: must complete it with status ``shed``
    victim: GemmRequest | None = None
    #: why the request was not admitted ("" when admitted)
    reason: str = ""


class AdmissionQueue:
    """Thread-safe bounded priority queue of :class:`GemmRequest`.

    One lock + two conditions (not-full for blocked producers, not-empty
    for the scheduler). The store is a plain list scanned under the lock —
    capacities are hundreds, not millions, so O(n) operations are cheaper
    than a heap plus the arbitrary-removal bookkeeping that shedding,
    coalescing extraction and expiry reaping would need on top of it.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        policy: str = "block",
        metrics=NULL_METRICS,
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if policy not in POLICIES:
            raise ConfigError(
                f"unknown backpressure policy {policy!r}; "
                f"choose from {POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self.metrics = metrics
        self.clock = clock
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._items: list[GemmRequest] = []
        self._seq = 0
        self._order: dict[int, int] = {}  # id(request) -> admission seq
        self._closed = False

    # ----------------------------------------------------------- inspection
    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def depth(self) -> int:
        return len(self)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------ admission
    def put(
        self, request: GemmRequest, *, timeout: float | None = None
    ) -> Admission:
        """Admit ``request`` under the configured backpressure policy."""
        with self._lock:
            if self._closed:
                return Admission(False, reason="queue closed")
            if len(self._items) >= self.capacity:
                if self.policy == "reject":
                    self.metrics.inc("serve.rejected")
                    return Admission(False, reason="queue full")
                if self.policy == "shed-lowest":
                    victim = self._lowest_priority()
                    if victim is None or victim.priority >= request.priority:
                        # the newcomer is the lowest — refuse it instead
                        self.metrics.inc("serve.rejected")
                        return Admission(
                            False,
                            reason="queue full of equal-or-higher priority",
                        )
                    self._remove(victim)
                    self.metrics.inc("serve.shed")
                    self._admit(request)
                    return Admission(True, victim=victim)
                # policy == "block"
                deadline = (
                    None if timeout is None else self.clock() + timeout
                )
                while len(self._items) >= self.capacity and not self._closed:
                    remaining = (
                        None if deadline is None else deadline - self.clock()
                    )
                    if remaining is not None and remaining <= 0:
                        self.metrics.inc("serve.rejected")
                        return Admission(
                            False, reason="admission timed out"
                        )
                    self._not_full.wait(remaining)
                if self._closed:
                    return Admission(False, reason="queue closed")
            self._admit(request)
            return Admission(True)

    def _admit(self, request: GemmRequest) -> None:
        now = self.clock()
        request.submitted_at = now
        if request.deadline_s is not None:
            request.expires_at = now + request.deadline_s
        self._items.append(request)
        self._order[id(request)] = self._seq
        self._seq += 1
        self.metrics.inc("serve.admitted")
        self.metrics.set_gauge("serve.queue_depth", float(len(self._items)))
        self._not_empty.notify()

    # ------------------------------------------------------------ extraction
    def pop(self, timeout: float | None = None) -> GemmRequest | None:
        """Remove and return the highest-priority request (FIFO within a
        priority); None on timeout or when closed and drained."""
        with self._lock:
            deadline = None if timeout is None else self.clock() + timeout
            while not self._items:
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None else deadline - self.clock()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)
            best = min(
                self._items,
                key=lambda r: (-r.priority, self._order[id(r)]),
            )
            self._remove(best)
            self._after_removal()
            return best

    def take_compatible(
        self, bucket: tuple, limit: int
    ) -> list[GemmRequest]:
        """Remove up to ``limit`` queued requests sharing ``bucket`` (the
        shape-coalescing key), in admission order."""
        if limit <= 0:
            return []
        with self._lock:
            mates = [r for r in self._items if r.bucket() == bucket]
            mates.sort(key=lambda r: (-r.priority, self._order[id(r)]))
            mates = mates[:limit]
            for r in mates:
                self._remove(r)
            if mates:
                self._after_removal()
            return mates

    def reap_expired(self, now: float | None = None) -> list[GemmRequest]:
        """Remove and return every queued request whose deadline passed."""
        with self._lock:
            now = self.clock() if now is None else now
            dead = [r for r in self._items if r.expired(now)]
            for r in dead:
                self._remove(r)
                self.metrics.inc("serve.expired")
            if dead:
                self._after_removal()
            return dead

    def _lowest_priority(self) -> GemmRequest | None:
        if not self._items:
            return None
        # lowest priority; newest within it (shed the work least invested)
        return max(
            self._items,
            key=lambda r: (-r.priority, self._order[id(r)]),
        )

    def _remove(self, request: GemmRequest) -> None:
        self._items.remove(request)
        del self._order[id(request)]

    def _after_removal(self) -> None:
        self.metrics.set_gauge("serve.queue_depth", float(len(self._items)))
        self._not_full.notify()

    # --------------------------------------------------------------- closing
    def seal(self) -> None:
        """Refuse further admissions but keep the backlog for draining.

        The drain path: seal, then let the scheduler keep popping until
        empty — ``pop`` on a sealed queue returns items while any remain
        and None once drained, which is the scheduler's exit signal.
        Producers blocked in ``put`` are woken and refused.
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    def close(self) -> list[GemmRequest]:
        """Refuse further admissions; return everything still queued so the
        caller can answer it (drain executes it, shutdown cancels it)."""
        with self._lock:
            self._closed = True
            leftovers = list(self._items)
            self._items.clear()
            self._order.clear()
            self.metrics.set_gauge("serve.queue_depth", 0.0)
            self._not_empty.notify_all()
            self._not_full.notify_all()
            return leftovers

    def wait_nonempty(self, timeout: float) -> bool:
        """Block until an item is queued (or timeout); scheduler's idle wait."""
        with self._lock:
            if self._items:
                return True
            if self._closed:
                return False
            self._not_empty.wait(timeout)
            return bool(self._items)
