"""Worker-process liveness: heartbeat board, child beater, monitor.

A worker process proves two different things and the tier checks both:

- **existence** — the PID is alive. A SIGKILL'd worker fails this
  instantly; the monitor's per-tick ``liveness`` probe (``Process.
  is_alive`` in the pool) catches it within one interval.
- **progress** — the child's beater thread keeps incrementing a shared
  counter. A process that exists but has stopped beating (hard hang,
  livelock, a chaos ``stall``) fails this after ``miss_limit``
  intervals without a counter change.

The split matters because the two failures escalate identically (death
protocol: replay, respawn, probation) but are observed differently, and
because the progress check must tolerate scheduling jitter: the board
tracks *when the counter last changed*, not how many beats arrived, so
a slow-but-moving worker is never declared dead.

Lock discipline (pinned by the analyzer's lock-discipline rule): the
board's per-key bookkeeping — last observed count, last change time —
is read-modified-written only under the board's own lock. The shared
counter itself is a ``multiprocessing.Value`` with its own cross-process
lock; the board samples it *outside* the board lock so no thread ever
blocks on the child-side lock while holding parent-side state.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import NULL_METRICS
from repro.serve.proc.spawnctx import spawn_context

#: stall window floor applied before a worker's *first* beat: a spawned
#: child spends seconds importing its runtime before the beater thread
#: exists, and a tight miss window must not mistake that boot for a hang
#: (it would SIGKILL every replacement at birth and drain the respawn
#: budget). Once one beat lands, the configured window takes over.
BOOT_GRACE_S = 15.0


class _Slot:
    __slots__ = ("value", "last_count", "last_change", "beaten")

    def __init__(self, value, now: float) -> None:
        self.value = value
        self.last_count = 0
        self.last_change = now
        self.beaten = False


class HeartbeatBoard:
    """Per-worker beat counters plus the parent-side stall bookkeeping."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._slots: dict[object, _Slot] = {}

    def register(self, key):
        """Allocate the shared counter for ``key``; the returned
        ``Value`` goes into the worker bootstrap for its beater."""
        value = spawn_context().Value("Q", 0)
        with self._lock:
            self._slots[key] = _Slot(value, time.monotonic())
        return value

    def deregister(self, key) -> None:
        with self._lock:
            self._slots.pop(key, None)

    def keys(self) -> list:
        with self._lock:
            return list(self._slots)

    def beats(self, key) -> int:
        """Current beat count (0 for unknown keys)."""
        with self._lock:
            slot = self._slots.get(key)
        if slot is None:
            return 0
        return int(slot.value.value)

    def stalled(self, key, window_s: float, now: float | None = None) -> bool:
        """True when ``key``'s counter has not moved for ``window_s``.

        Progress resets the window: any counter change observed here
        stamps a fresh ``last_change``, so only a genuinely frozen
        worker accumulates a full window of silence.
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            slot = self._slots.get(key)
        if slot is None:
            return False
        # sample the cross-process counter outside the board lock: the
        # Value getter takes the child-shared lock and must never be
        # held-for while parent bookkeeping is locked
        count = int(slot.value.value)
        with self._lock:
            if self._slots.get(key) is not slot:
                return False  # deregistered/replaced between samples
            if count != slot.last_count:
                slot.last_count = count
                slot.last_change = now
                slot.beaten = True
                return False
            if not slot.beaten:
                window_s = max(window_s, BOOT_GRACE_S)
            return (now - slot.last_change) >= window_s


class Beater:
    """Child-side daemon thread that increments the shared counter.

    Runs in the worker process; a chaos ``stall`` stops it (without
    killing the process) to exercise the monitor's miss detection.
    """

    def __init__(self, value, interval_s: float) -> None:
        self._value = value
        self._interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="proc-beater", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            with self._value.get_lock():
                self._value.value += 1
            self._stop.wait(self._interval_s)

    def stop(self) -> None:
        self._stop.set()


class HeartbeatMonitor:
    """Parent-side thread that turns missed liveness into callbacks.

    Each tick, for every registered key: ``liveness(key)`` false →
    ``on_dead(key)`` (the PID is gone — SIGKILL, OOM-kill); else a
    stalled counter → ``on_stall(key)`` (exists but frozen). Callbacks
    run on the monitor thread with **no board lock held**; the pool's
    death handler owns its own state transition guard, so a key that
    keeps failing until it is deregistered only escalates once.
    """

    def __init__(
        self,
        board: HeartbeatBoard,
        *,
        interval_s: float,
        miss_limit: int,
        liveness,
        on_dead,
        on_stall,
        metrics=NULL_METRICS,
    ) -> None:
        self.board = board
        self.interval_s = interval_s
        self.window_s = interval_s * miss_limit
        self.liveness = liveness
        self.on_dead = on_dead
        self.on_stall = on_stall
        self.metrics = metrics
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="proc-heartbeat-monitor", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.is_set():
            self.tick()
            self._stop.wait(self.interval_s)

    def tick(self) -> None:
        """One sweep over the board (also called directly by tests)."""
        self.metrics.inc("serve.proc.heartbeat_ticks")
        for key in self.board.keys():
            if not self.liveness(key):
                self.on_dead(key)
            elif self.board.stalled(key, self.window_s):
                self.on_stall(key)

    def stop(self, timeout_s: float = 2.0) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout_s)
