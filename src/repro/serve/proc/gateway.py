"""Asyncio gateway: await GEMM responses without a thread per client.

The service's :class:`~repro.serve.request.ResponseFuture` is a
threading primitive — fine for the soak drivers, wrong for an open-loop
async client that wants thousands of requests in flight on one event
loop. :class:`AsyncGateway` bridges the two worlds:

- ``submit`` runs the (potentially blocking, under the ``block``
  admission policy) ``service.submit`` in the loop's default executor so
  the event loop never stalls on backpressure;
- the returned awaitable is an ``asyncio.Future`` resolved through
  ``ResponseFuture.add_done_callback`` →
  ``loop.call_soon_threadsafe`` — the completion hops from whichever
  service thread delivered it onto the loop with no polling and no
  dedicated waiter thread.

The gateway adds no semantics: exactly-once, terminal statuses and the
one-shot guard are all the service's; cancellation of the asyncio future
abandons the *wait*, never the request (it still completes server-side
and is accounted normally).
"""

from __future__ import annotations

import asyncio
import functools

from repro.serve.request import GemmRequest


def _resolve(future: asyncio.Future, response) -> None:
    if not future.done():
        future.set_result(response)


class AsyncGateway:
    """Async facade over a started :class:`~repro.serve.service.GemmService`."""

    def __init__(self, service) -> None:
        self.service = service

    async def submit(
        self,
        request: GemmRequest,
        *,
        submit_timeout: float | None = None,
    ) -> tuple[str, asyncio.Future]:
        """Admit ``request``; returns ``(request_id, future)`` where the
        future resolves to the terminal :class:`GemmResponse`. The caller
        may hold many unresolved futures — that is the point."""
        loop = asyncio.get_running_loop()
        ticket = await loop.run_in_executor(
            None,
            functools.partial(
                self.service.submit, request, timeout=submit_timeout
            ),
        )
        future: asyncio.Future = loop.create_future()
        ticket.future.add_done_callback(
            lambda response: loop.call_soon_threadsafe(
                _resolve, future, response
            )
        )
        return ticket.request_id, future

    async def call(
        self,
        request: GemmRequest,
        *,
        submit_timeout: float | None = None,
        timeout: float | None = None,
    ):
        """Submit and await the response (closed-loop convenience)."""
        _, future = await self.submit(
            request, submit_timeout=submit_timeout
        )
        if timeout is None:
            return await future
        return await asyncio.wait_for(future, timeout)
