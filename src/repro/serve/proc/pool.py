"""ProcWorkerPool: sharded multiprocessing execution with death recovery.

The process tier's parent half. It drains the same
:class:`~repro.serve.scheduler.BatchScheduler` the thread pool does and
honours the same contract — every request of every claimed batch reaches
the service's ``_complete`` funnel exactly once — but its workers are
**spawned processes** reached over pipes, so the failure it must survive
is total: a worker can vanish mid-batch taking its address space, its
locks and its half-written results with it.

Thread layout (and the locking story the analyzer pins):

- **dispatcher** — the single thread that ever *sends* on a command
  pipe. One sender per pipe means no send locks and no interleaved
  frames; everything the child observes (batches, probes, the hot-B
  cache mirror, stop) is a total order. It pulls replayed flights first,
  then fresh batches, stages operands into shared memory, registers the
  flight in the handle's in-flight table **before** sending, and
  performs pool retirement when the drain completes.
- **one receiver per worker** — blocks on that worker's result pipe.
  A result message *claims* its flight by popping it from the in-flight
  table under the pool lock; EOF on the pipe is the fastest death
  signal and routes into the death protocol.
- **heartbeat monitor** — catches what EOF cannot: a process that still
  holds its pipes but stopped making progress (hard hang, chaos
  ``stall``). Missed beats escalate exactly like a dead PID.

Exactly-once under process death reduces to one atomic claim: a flight
is either popped by the receiver (results arrived — complete them) or
popped by the death protocol (replay or fail them), never both, because
both pops happen under the pool lock on the same table. Replays are
bounded (``proc_max_replays``) and *replayed flights always restage full
operands* — a replacement worker shares no cache with its predecessor.

Shard routing pins each shape bucket to a worker so that worker's hot-B
and panel caches stay warm; a bucket whose pinned worker keeps dying
(``proc_bucket_degraded_after``) is switched to degraded checksum-only
execution — the same pressure valve the thread tier uses for load,
repurposed as a blast-radius limiter.
"""

from __future__ import annotations

import collections
import itertools
import pickle
import threading
import time

import numpy as np

from repro.core.results import FTGemmResult
from repro.obs.metrics import NULL_METRICS
from repro.serve.proc.heartbeat import HeartbeatBoard, HeartbeatMonitor
from repro.serve.proc.shm import ShmRegistry, ShmTransport
from repro.serve.proc.spawnctx import spawn_context, worker_seed
from repro.serve.proc.worker import WorkerBootstrap, worker_main
from repro.serve.request import GemmResponse
from repro.serve.scheduler import Batch, BatchScheduler
from repro.simcpu.counters import Counters
from repro.util.rng import derive_seed

#: trace lane base for per-worker process events (thread workers use
#: 1000+, requests 10000+; disjoint bases keep the validator happy)
PROC_LANE = 2000


class _Flight:
    """One dispatched batch: the unit of exactly-once accounting."""

    __slots__ = ("batch", "deaths", "refs", "degraded", "kind",
                 "result_ref", "item_results", "slot")

    def __init__(self, batch: Batch) -> None:
        self.batch = batch
        #: times this flight lost its worker (process death or child
        #: error); bounds the replay loop
        self.deaths = 0
        #: every shm ref staged for the current dispatch — released when
        #: the flight resolves, swept when its worker dies
        self.refs: list[dict] = []
        self.degraded = False
        self.kind = ""
        self.result_ref: dict | None = None
        #: request_id -> result ref (non-coalesced dispatch)
        self.item_results: dict[str, dict] = {}
        self.slot = -1


class _Handle:
    """Parent-side state of one worker process (one incarnation)."""

    __slots__ = ("slot", "incarnation", "proc", "cmd_conn", "res_conn",
                 "state", "inflight", "b_mirror", "receiver",
                 "probe_sent")

    def __init__(self, slot: int, incarnation: int, proc, cmd_conn,
                 res_conn, state: str) -> None:
        self.slot = slot
        self.incarnation = incarnation
        self.proc = proc
        self.cmd_conn = cmd_conn
        self.res_conn = res_conn
        #: "probing" -> "ready" -> ("dead" | "stopped")
        self.state = state
        #: batch_id -> _Flight; the exactly-once claim table
        self.inflight: dict[str, _Flight] = {}
        #: parent half of the child's hot-B cache: identical bound,
        #: identical insert/hit/evict discipline, updated only by the
        #: dispatcher in pipe order — so both sides stay in lockstep
        #: without any invalidation traffic. Values hold strong B refs,
        #: which also keeps ``id(b)`` (the key source) stable.
        self.b_mirror: collections.OrderedDict[str, np.ndarray] = (
            collections.OrderedDict()
        )
        self.receiver: threading.Thread | None = None
        self.probe_sent = False


class ProcWorkerPool:
    """Drop-in pool with process workers (same contract as WorkerPool).

    ``fault_spec_factory(request_id, service_config)`` returns the plain
    fault-spec dict a child rebuilds its injector from (picklable, unlike
    the thread tier's injector factory). ``chaos(batch_id, deaths)``
    returns a kill phase (or None) stamped on the outgoing batch — the
    process-kill storm of the soak tests.
    """

    def __init__(
        self,
        scheduler: BatchScheduler,
        service_config,
        *,
        complete,
        use_degraded=None,
        metrics=NULL_METRICS,
        tracer=None,
        fault_spec_factory=None,
        chaos=None,
    ) -> None:
        self.scheduler = scheduler
        self.config = service_config
        self.complete = complete
        self.use_degraded = use_degraded or (lambda: False)
        self.metrics = metrics
        self.tracer = tracer
        self.fault_spec_factory = fault_spec_factory
        self.chaos = chaos
        self.registry = ShmRegistry(metrics)
        self.transport = ShmTransport(
            self.registry,
            mode=service_config.proc_transport,
            max_segment_bytes=service_config.proc_shm_max_bytes,
            metrics=metrics,
        )
        self.board = HeartbeatBoard()
        self.monitor = HeartbeatMonitor(
            self.board,
            interval_s=service_config.proc_heartbeat_s,
            miss_limit=service_config.proc_miss_limit,
            liveness=self._proc_alive,
            on_dead=lambda slot: self._declare_death(slot, "killed"),
            on_stall=lambda slot: self._declare_death(slot, "stalled"),
            metrics=metrics,
        )
        self._lock = threading.Lock()
        self._handles: dict[int, _Handle] = {}
        self._replay: collections.deque[_Flight] = collections.deque()
        #: shape bucket -> pinned worker slot (warm-cache shard routing)
        self._bucket_slot: dict[tuple, int] = {}
        self._bucket_deaths: dict[tuple, int] = {}
        self._degraded_buckets: set[tuple] = set()
        self._respawns = 0
        #: death protocols currently between "inflight drained" and
        #: "flights requeued / replacement spawned" — the drain gate
        #: counts them as live work so retirement cannot slip through
        #: the window where a dead worker's flights are in neither table
        self._death_pending = 0
        self._stopping = False
        self._retired = False
        self._dispatcher: threading.Thread | None = None
        self._seq = itertools.count()
        #: slots permanently retired (respawn budget exhausted); same
        #: field name as the thread pool for service.stats() parity
        self.quarantined: list[int] = []

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        for _ in range(self.config.processes):
            self._spawn(slot=next(self._seq), incarnation=0,
                        probation=False)
        self.monitor.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-proc-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    def stop(self, join: bool = True) -> None:
        with self._lock:
            self._stopping = True
        if join and self._dispatcher is not None:
            self._dispatcher.join()

    def _spawn(self, slot: int, incarnation: int, probation: bool) -> None:
        ctx = spawn_context()
        cmd_recv, cmd_send = ctx.Pipe(duplex=False)
        res_recv, res_send = ctx.Pipe(duplex=False)
        beat = self.board.register(slot)
        bootstrap = WorkerBootstrap(
            slot=slot,
            incarnation=incarnation,
            seed=worker_seed(self.config.proc_seed, slot, incarnation),
            service_config=self.config,
            beat_interval_s=self.config.proc_heartbeat_s,
        )
        tr = self.tracer
        t0 = tr.now_us() if tr is not None else 0.0
        proc = ctx.Process(
            target=worker_main,
            args=(bootstrap, cmd_recv, res_send, beat),
            name=f"serve-proc-{slot}-{incarnation}",
            daemon=True,
        )
        proc.start()
        # close the child's pipe ends in the parent so a dead child turns
        # into EOF on the result pipe instead of a silent hang
        cmd_recv.close()
        res_send.close()
        handle = _Handle(
            slot, incarnation, proc, cmd_send, res_recv,
            state="probing" if probation else "ready",
        )
        with self._lock:
            self._handles[slot] = handle
        receiver = threading.Thread(
            target=self._receive_loop, args=(handle,),
            name=f"serve-proc-recv-{slot}-{incarnation}", daemon=True,
        )
        handle.receiver = receiver
        receiver.start()
        if incarnation:
            self.metrics.inc("serve.proc.respawns")
        if tr is not None:
            tr.complete(
                "serve.proc.spawn", cat="serve.proc",
                tid=PROC_LANE + slot, t0_us=t0,
                args={"slot": slot, "incarnation": incarnation,
                      "probation": probation},
            )

    # --------------------------------------------------------- the dispatcher
    def _dispatch_loop(self) -> None:
        while True:
            self._service_probes()
            flight = self._next_flight()
            if flight is None:
                if self._drained():
                    break
                continue
            self._dispatch(flight)
        self._retire()

    def _next_flight(self) -> _Flight | None:
        with self._lock:
            if self._replay:
                return self._replay.popleft()
        batch = self.scheduler.next_batch(timeout=0.05)
        if batch is None:
            return None
        return _Flight(batch)

    def _drained(self) -> bool:
        finished = self.scheduler.finished
        with self._lock:
            idle = (
                not self._replay
                and self._death_pending == 0
                and all(not h.inflight for h in self._handles.values())
            )
            stopping = self._stopping
        return (finished or stopping) and idle

    def _dispatch(self, flight: _Flight) -> None:
        # last-moment expiry, mirroring the thread pool: a request can
        # outlive its deadline inside a formed batch or a replay queue
        now = self.scheduler.clock()
        live = []
        for request in flight.batch.items:
            if request.expired(now):
                self.metrics.inc("serve.expired")
                self.complete(
                    request,
                    GemmResponse(
                        request_id=request.request_id,
                        status="expired",
                        error="deadline passed before execution",
                    ),
                )
            else:
                live.append(request)
        if not live:
            return
        if len(live) != len(flight.batch.items):
            flight.batch = Batch(
                items=live,
                bucket=flight.batch.bucket,
                batch_id=flight.batch.batch_id,
                formed_at=flight.batch.formed_at,
            )
        handle = self._route(flight)
        if handle is None:
            if not self._capacity_possible():
                self._fail_flight(
                    flight, "no worker process available "
                    "(respawn budget exhausted)"
                )
                return
            with self._lock:
                self._replay.appendleft(flight)
            time.sleep(self.config.proc_heartbeat_s)
            return
        bucket = flight.batch.bucket
        with self._lock:
            bucket_degraded = bucket in self._degraded_buckets
        degraded = bool(self.use_degraded()) or bucket_degraded
        if degraded:
            self.metrics.inc("serve.degraded_batches")
        flight.degraded = degraded
        flight.slot = handle.slot
        kill_phase = None
        if self.chaos is not None:
            kill_phase = self.chaos(flight.batch.batch_id, flight.deaths)
        msg = self._build_message(flight, handle, degraded, kill_phase)
        with self._lock:
            if handle.state != "ready":
                # the worker died between routing and registration: put
                # the flight back and release what was staged for it
                self._replay.appendleft(flight)
                refs, flight.refs = flight.refs, []
            else:
                handle.inflight[flight.batch.batch_id] = flight
                refs = None
        if refs is not None:
            for ref in refs:
                self.transport.release(ref)
            return
        self.metrics.inc("serve.proc.batches")
        if kill_phase is not None:
            self.metrics.inc("serve.proc.chaos_kills_armed")
        self._send(handle, msg)

    def _capacity_possible(self) -> bool:
        """Can any worker ever take a batch again? False only when every
        slot is retired and the respawn budget is spent."""
        with self._lock:
            if any(
                h.state in ("ready", "probing")
                for h in self._handles.values()
            ):
                return True
            return self._respawns < self.config.proc_respawn_budget

    def _fail_flight(self, flight: _Flight, error: str) -> None:
        for ref in flight.refs:
            self.transport.release(ref)
        flight.refs = []
        for request in flight.batch.items:
            self.complete(
                request,
                GemmResponse(
                    request_id=request.request_id,
                    status="failed",
                    error=error,
                    worker=flight.slot,
                    batch_size=len(flight.batch),
                    degraded=flight.degraded,
                ),
            )

    def _route(self, flight: _Flight) -> _Handle | None:
        """The shard router: keep a bucket on its pinned worker while
        that worker is alive and has in-flight capacity; otherwise pick
        the least-loaded ready worker and re-pin."""
        bucket = flight.batch.bucket
        cap = self.config.proc_inflight_per_worker
        with self._lock:
            ready = [
                h for h in self._handles.values()
                if h.state == "ready" and len(h.inflight) < cap
            ]
            if not ready:
                return None
            pinned = self._bucket_slot.get(bucket)
            for handle in ready:
                if handle.slot == pinned:
                    return handle
            handle = min(ready, key=lambda h: (len(h.inflight), h.slot))
            if bucket is not None:
                self._bucket_slot[bucket] = handle.slot
            return handle

    # ---------------------------------------------------------- message build
    def _build_message(self, flight: _Flight, handle: _Handle,
                       degraded: bool, kill_phase: str | None) -> dict:
        batch = flight.batch
        head = batch.items[0]
        spec_of = self.fault_spec_factory or (lambda rid, cfg, *a: None)
        # batches form per bucket and every bucket carries the kernel
        # discriminator, so the head's kernel is the whole batch's kernel
        b_field, b_cache_key = self._stage_b(
            flight, handle, head.shared_operand
        )
        msg = {
            "op": "batch",
            "batch_id": batch.batch_id,
            "kernel": head.kernel,
            "coalesced": batch.coalesced,
            "degraded": degraded,
            "scheme": head.scheme,
            "alpha": getattr(head, "alpha", None),
            "kill_phase": kill_phase,
            "b": b_field,
            "b_cache_key": b_cache_key,
            # the resolved tuning entry crosses the pipe as a plain dict
            # (no tune types in the child's unpickle path); None = static
            "tuned": head.tuned.to_dict() if head.tuned is not None else None,
        }
        if head.kernel != "gemm":
            # kernel items: unit/aux operands through the same transport
            # slots GEMM uses ("a"/"c0"), plus the kernel's scalar params
            from repro.kernels import get_kernel

            kern = get_kernel(head.kernel)
            items = []
            for request in batch.items:
                unit_ref = self.transport.stage(
                    np.ascontiguousarray(kern.unit_operand(request))
                )
                flight.refs.append(unit_ref)
                aux = kern.aux_operand(request)
                aux_ref = None
                if aux is not None:
                    aux_ref = self.transport.stage(np.ascontiguousarray(aux))
                    flight.refs.append(aux_ref)
                result_ref = self.transport.alloc_result(request.result_shape)
                flight.refs.append(result_ref)
                flight.item_results[request.request_id] = result_ref
                items.append({
                    "request_id": request.request_id,
                    "a": unit_ref,
                    "c0": aux_ref,
                    "params": kern.wire_params(request),
                    # third positional arg only on the kernel path:
                    # existing two-arg factories never see it
                    "fault": spec_of(
                        request.request_id, self.config, head.kernel
                    ),
                    "result": result_ref,
                })
            flight.kind = "single"
            msg["items"] = items
            return msg
        if batch.coalesced:
            a_stack = np.vstack([r.a for r in batch.items])
            a_ref = self.transport.stage(a_stack)
            result_ref = self.transport.alloc_result(
                (a_stack.shape[0], head.n)
            )
            flight.refs += [a_ref, result_ref]
            flight.kind = "coalesced"
            flight.result_ref = result_ref
            msg.update(
                a_stack=a_ref,
                result=result_ref,
                fault=spec_of(batch.batch_id, self.config),
                items=[
                    {"request_id": r.request_id, "m": r.m}
                    for r in batch.items
                ],
            )
        else:
            flight.kind = "single"
            items = []
            for request in batch.items:
                a_ref = self.transport.stage(request.a)
                flight.refs.append(a_ref)
                c0_ref = None
                if request.c0 is not None:
                    c0_ref = self.transport.stage(request.c0)
                    flight.refs.append(c0_ref)
                result_ref = self.transport.alloc_result(
                    (request.m, request.n)
                )
                flight.refs.append(result_ref)
                flight.item_results[request.request_id] = result_ref
                items.append({
                    "request_id": request.request_id,
                    "a": a_ref,
                    "c0": c0_ref,
                    "beta": request.beta,
                    "fault": spec_of(request.request_id, self.config),
                    "result": result_ref,
                })
            msg["items"] = items
        return msg

    def _stage_b(self, flight: _Flight, handle: _Handle, b):
        """The shared operand through the per-worker cache mirror: a key
        the child already holds ships as a tiny ``cached`` ref; otherwise
        the full operand is staged (and offered for caching on first
        flights only — replays always restage, since they may land
        anywhere). ``b`` is B for GEMM, A for GEMV/TRSM; kernels without
        a shared operand (FFT) ship a ``none`` marker."""
        if b is None:
            return {"kind": "none"}, None
        entries = self.config.proc_b_cache_entries
        use_cache = entries > 0 and flight.deaths == 0
        key = f"K{id(b):x}"
        if use_cache and key in handle.b_mirror:
            handle.b_mirror.move_to_end(key)
            self.metrics.inc("serve.proc.b_cache_hits")
            return {"kind": "cached", "key": key}, None
        ref = self.transport.stage(b)
        flight.refs.append(ref)
        if not use_cache:
            return ref, None
        handle.b_mirror[key] = b
        handle.b_mirror.move_to_end(key)
        while len(handle.b_mirror) > entries:
            handle.b_mirror.popitem(last=False)
        return ref, key

    def _send(self, handle: _Handle, msg: dict) -> None:
        """Dispatcher-only (the single-sender invariant lives here)."""
        payload = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
        self.metrics.inc("serve.proc.pipe_tx_bytes", float(len(payload)))
        try:
            handle.cmd_conn.send_bytes(payload)
        except (BrokenPipeError, OSError):
            self._declare_death(handle.slot, "send-failed", handle=handle)

    def _service_probes(self) -> None:
        """Send the probation batch to freshly respawned workers."""
        with self._lock:
            targets = [
                h for h in self._handles.values()
                if h.state == "probing" and not h.probe_sent
            ]
            for handle in targets:
                handle.probe_sent = True
        for handle in targets:
            self._send(handle, {
                "op": "probe",
                "size": 16,
                "seed": derive_seed(
                    self.config.proc_seed, "probe",
                    handle.slot, handle.incarnation,
                ),
            })

    # ------------------------------------------------------------- receivers
    def _receive_loop(self, handle: _Handle) -> None:
        while True:
            try:
                raw = handle.res_conn.recv_bytes()
            except (EOFError, OSError):
                # the fast death signal: the child's end of the result
                # pipe closed (SIGKILL, crash, or post-stop exit)
                self._declare_death(handle.slot, "pipe-closed",
                                    handle=handle)
                return
            self.metrics.inc("serve.proc.pipe_rx_bytes", float(len(raw)))
            msg = pickle.loads(raw)
            op = msg.get("op")
            if op == "result":
                self._on_result(handle, msg)
            elif op == "probe_ok":
                self._on_probe(handle, msg)
            elif op == "stopped":
                self.metrics.merge(msg.get("metrics") or {})
                with self._lock:
                    if handle.state != "dead":
                        handle.state = "stopped"
                return

    def _on_probe(self, handle: _Handle, msg: dict) -> None:
        if msg.get("ok"):
            with self._lock:
                if handle.state == "probing":
                    handle.state = "ready"
            self.metrics.inc("serve.proc.probes_ok")
            if self.tracer is not None:
                self.tracer.event(
                    "serve.proc.probe_ok", cat="serve.proc",
                    tid=PROC_LANE + handle.slot,
                    args={"incarnation": handle.incarnation},
                )
        else:
            self.metrics.inc("serve.proc.probes_failed")
            self._declare_death(handle.slot, "probe-failed", handle=handle)

    def _on_result(self, handle: _Handle, msg: dict) -> None:
        with self._lock:
            flight = handle.inflight.pop(msg["batch_id"], None)
        if flight is None:
            # the death protocol claimed this flight first (monitor
            # declared the worker dead while its reply was in the pipe);
            # the replay path owns it now — late evidence is dropped
            self.metrics.inc("serve.proc.late_results")
            return
        if msg["kind"] == "error":
            # in-child failure outside the retry loop (e.g. a cache
            # mirror miss): drop the mirror — it is the only state that
            # can disagree with the child — then bounded re-dispatch
            # with full operands
            with self._lock:
                handle.b_mirror.clear()
            self._requeue_or_fail(flight, msg.get("error", "child error"))
            return
        try:
            if msg["kind"] == "coalesced":
                self._finish_coalesced(handle, flight, msg)
            else:
                self._finish_single(handle, flight, msg)
        finally:
            for ref in flight.refs:
                self.transport.release(ref)
            flight.refs = []

    def _requeue_or_fail(self, flight: _Flight, error: str) -> None:
        for ref in flight.refs:
            self.transport.release(ref)
        flight.refs = []
        flight.item_results = {}
        flight.result_ref = None
        flight.deaths += 1
        if flight.deaths > self.config.proc_max_replays:
            self.metrics.inc("serve.proc.replays_exhausted")
            self._fail_flight(flight, error)
            return
        self.metrics.inc("serve.proc.replays")
        if self.tracer is not None:
            self.tracer.event(
                "serve.proc.replay", cat="serve.proc",
                tid=PROC_LANE + max(flight.slot, 0),
                args={"batch_id": flight.batch.batch_id,
                      "deaths": flight.deaths, "error": error},
            )
        with self._lock:
            self._replay.append(flight)

    def _result_from(self, meta: dict, c, request_id: str):
        if meta.get("kernel"):
            # non-GEMM evidence: rebuild the kernel-family result (the
            # GEMM meta never carries a "kernel" key, so the original
            # path below is byte-identical for GEMM traffic)
            from repro.kernels.base import KernelResult

            return KernelResult(
                value=c,
                kernel=meta["kernel"],
                verified=bool(meta.get("verified")),
                detected=int(meta.get("detected", 0)),
                corrected=int(meta.get("corrected", 0)),
                recomputed=int(meta.get("recomputed", 0)),
                escalations=int(meta.get("escalations", 0)),
                protection_flops=int(meta.get("protection_flops", 0)),
                request_id=request_id,
            )
        return FTGemmResult(
            c=c,
            counters=meta.get("counters") or Counters(),
            reports=meta.get("reports") or [],
            verified=bool(meta.get("verified")),
            ft_enabled=bool(meta.get("ft_enabled", True)),
            recovery=meta.get("recovery"),
            request_id=request_id,
        )

    def _finish_coalesced(self, handle: _Handle, flight: _Flight,
                          msg: dict) -> None:
        batch = flight.batch
        if not msg["ok"]:
            for request in batch.items:
                self.complete(
                    request,
                    GemmResponse(
                        request_id=request.request_id,
                        status="failed",
                        error=msg["error"],
                        worker=handle.slot,
                        attempts=msg["attempts"],
                        batch_size=len(batch),
                        degraded=flight.degraded,
                    ),
                )
            return
        c_all = self.transport.fetch(flight.result_ref, msg.get("payload"))
        meta = msg["meta"]
        offset = 0
        for request in batch.items:
            c_slice = c_all[offset:offset + request.m]
            offset += request.m
            self.complete(
                request,
                GemmResponse(
                    request_id=request.request_id,
                    status="ok",
                    result=self._result_from(
                        meta, c_slice, request.request_id
                    ),
                    worker=handle.slot,
                    attempts=msg["attempts"],
                    batch_size=len(batch),
                    degraded=flight.degraded,
                ),
            )

    def _finish_single(self, handle: _Handle, flight: _Flight,
                       msg: dict) -> None:
        batch = flight.batch
        by_id = {r.request_id: r for r in batch.items}
        for item in msg["items"]:
            request = by_id.get(item["request_id"])
            if request is None:
                continue
            if not item["ok"]:
                self.complete(
                    request,
                    GemmResponse(
                        request_id=request.request_id,
                        status="failed",
                        error=item["error"],
                        worker=handle.slot,
                        attempts=item["attempts"],
                        batch_size=len(batch),
                        degraded=flight.degraded,
                    ),
                )
                continue
            c = self.transport.fetch(
                flight.item_results[request.request_id],
                item.get("payload"),
            )
            self.complete(
                request,
                GemmResponse(
                    request_id=request.request_id,
                    status="ok",
                    result=self._result_from(
                        item["meta"], c, request.request_id
                    ),
                    worker=handle.slot,
                    attempts=item["attempts"],
                    batch_size=len(batch),
                    degraded=flight.degraded,
                ),
            )

    # --------------------------------------------------------- death protocol
    def _proc_alive(self, slot: int) -> bool:
        with self._lock:
            handle = self._handles.get(slot)
        if handle is None or handle.state in ("dead", "stopped"):
            return True  # nothing for the monitor to escalate
        return handle.proc.is_alive()

    def _declare_death(self, slot: int, reason: str,
                       handle: _Handle | None = None) -> None:
        """The one entry point of the death protocol (monitor tick,
        receiver EOF, failed send/probe all converge here). The state
        guard under the lock makes it idempotent; the in-flight table
        drain *is* the exactly-once claim of every affected request."""
        with self._lock:
            h = self._handles.get(slot)
            if handle is not None and h is not handle:
                return  # a replacement already took this slot
            if h is None or h.state in ("dead", "stopped"):
                return
            h.state = "dead"
            flights = list(h.inflight.values())
            h.inflight.clear()
            self._death_pending += 1
        self.board.deregister(slot)
        self.metrics.inc("serve.proc.deaths")
        if self.tracer is not None:
            self.tracer.event(
                "serve.proc.death", cat="serve.proc",
                tid=PROC_LANE + slot,
                args={"reason": reason, "incarnation": h.incarnation,
                      "lost_batches": len(flights)},
            )
        if h.proc.is_alive():
            h.proc.kill()  # a stalled worker is retired, not reasoned with
        h.proc.join(timeout=5.0)
        for conn in (h.cmd_conn, h.res_conn):
            try:
                conn.close()
            except OSError:
                pass
        for flight in flights:
            self._lost_flight(flight, reason)
        # Respawn policy: keep the pool at size while running; during a
        # drain (stopping but not yet retired) respawn only if there is
        # still work a replacement could serve — a death with an empty
        # pipeline just retires the slot quietly. After retirement,
        # never: the registry and board are already torn down.
        respawn = quarantine = False
        with self._lock:
            work = bool(self._replay) or any(
                other.inflight for other in self._handles.values()
            )
            if not self._retired and (not self._stopping or work):
                if self._respawns >= self.config.proc_respawn_budget:
                    self.quarantined.append(slot)
                    quarantine = True
                else:
                    self._respawns += 1
                    respawn = True
        if quarantine:
            self.metrics.inc("serve.proc.slots_retired")
        elif respawn:
            self._spawn(slot, h.incarnation + 1,
                        probation=self.config.proc_probation)
        with self._lock:
            self._death_pending -= 1

    def _lost_flight(self, flight: _Flight, reason: str) -> None:
        """Escalation for one in-flight batch of a dead worker: count the
        bucket strike, unpin the shard, then replay-or-fail."""
        bucket = flight.batch.bucket
        newly_degraded = False
        with self._lock:
            if bucket is not None:
                strikes = self._bucket_deaths.get(bucket, 0) + 1
                self._bucket_deaths[bucket] = strikes
                if (
                    strikes >= self.config.proc_bucket_degraded_after
                    and bucket not in self._degraded_buckets
                ):
                    self._degraded_buckets.add(bucket)
                    newly_degraded = True
                self._bucket_slot.pop(bucket, None)
        if newly_degraded:
            self.metrics.inc("serve.proc.degraded_buckets")
        self._requeue_or_fail(
            flight, f"worker process lost ({reason}) "
            f"{flight.deaths + 1} time(s)"
        )

    # ------------------------------------------------------------- retirement
    def _retire(self) -> None:
        """Runs on the dispatcher after the drain: stop children, merge
        their metrics, reap processes, and unlink any leaked segments."""
        with self._lock:
            self._stopping = True
            self._retired = True
            handles = list(self._handles.values())
        self.monitor.stop()
        for handle in handles:
            with self._lock:
                live = handle.state in ("ready", "probing")
            if live:
                self._send(handle, {"op": "stop"})
        for handle in handles:
            if handle.receiver is not None:
                handle.receiver.join(timeout=10.0)
        for handle in handles:
            handle.proc.join(timeout=5.0)
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(timeout=5.0)
            for conn in (handle.cmd_conn, handle.res_conn):
                try:
                    conn.close()
                except OSError:
                    pass
            self.board.deregister(handle.slot)
        leaked = self.registry.unlink_all()
        self.metrics.set_gauge("serve.proc.leaked_segments", float(leaked))

    # -------------------------------------------------------------- reporting
    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": len(self._handles),
                "respawns": self._respawns,
                "degraded_buckets": len(self._degraded_buckets),
                "quarantined": list(self.quarantined),
                "replay_depth": len(self._replay),
                "segments": {
                    "created": self.registry.created,
                    "unlinked": self.registry.unlinked,
                    "live": len(self.registry.live()),
                },
            }
