"""Shared-memory operand transport with a leak-tracked registry.

Matrices never cross the process boundary through pickle: the parent
stages every A/B/C0 panel into a named ``multiprocessing.shared_memory``
segment and ships only a small *ref* dict (name, shape, dtype) through
the control pipe; the child attaches, computes, writes the result into a
parent-allocated result segment, and replies with another small message.
The pipe stays a control plane — operand bytes move exactly once, from
parent memory into the segment, and are read in place by the child.

Ownership is deliberately one-sided: **only the parent ever creates or
unlinks segments**. Children attach and close. That makes the
:class:`ShmRegistry` a complete account of every segment in existence —
graceful shutdown unlinks them as batches complete, and the death path
can sweep a killed worker's in-flight segments because the parent named
them all. ``live()`` / ``assert_clean()`` are what the lifecycle tests
pin: no ``/dev/shm`` residue survives the service, whichever way a
worker left.

Fallbacks keep the transport total: an operand larger than
``max_segment_bytes`` (or any segment-creation failure) degrades to an
inline-bytes ref carried in the pickled message — slower, counted
separately in the metrics, and exercised by the oversized-operand test.
The pure-pickle mode (``mode="pickle"``) exists as the benchmark
baseline the shm path is measured against.
"""

from __future__ import annotations

import os
import threading
from multiprocessing import shared_memory

import numpy as np

from repro.obs.metrics import NULL_METRICS
from repro.util.errors import ConfigError

#: transport modes: shared-memory segments vs. everything-inline (the
#: benchmark baseline that pickles operand bytes through the pipe)
TRANSPORT_MODES = ("shm", "pickle")

#: prefix of every segment name this process creates; short so names fit
#: conservative POSIX limits, unique per parent PID so concurrent
#: services never collide
def _name_prefix() -> str:
    return f"ftg{os.getpid():x}"


class ShmRegistry:
    """Accounts for every shared-memory segment the parent created.

    ``create`` hands out a fresh segment and records it; ``unlink``
    removes the name from the OS and the books. ``sweep`` is the death
    path: best-effort unlink of names whose owner may already have
    unlinked them (idempotent — a missing segment is not an error).
    """

    def __init__(self, metrics=NULL_METRICS) -> None:
        self.metrics = metrics
        self._lock = threading.Lock()
        self._live: dict[str, int] = {}
        self._seq = 0
        self.created = 0
        self.unlinked = 0

    def create(self, nbytes: int) -> shared_memory.SharedMemory:
        with self._lock:
            name = f"{_name_prefix()}s{self._seq:06x}"
            self._seq += 1
        # the allocation itself happens outside the lock (it can fault);
        # registration is re-entered only on success
        segment = shared_memory.SharedMemory(
            create=True, name=name, size=max(1, nbytes)
        )
        with self._lock:
            self._live[segment.name] = nbytes
            self.created += 1
        self.metrics.inc("serve.proc.shm_segments")
        return segment

    def unlink(self, name: str) -> bool:
        """Unlink ``name``; True when this call removed a live segment."""
        with self._lock:
            known = self._live.pop(name, None) is not None
            if known:
                self.unlinked += 1
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return False
        segment.close()
        segment.unlink()
        return known

    def sweep(self, names: list[str]) -> int:
        """Death-path cleanup: unlink every listed name still live."""
        return sum(1 for name in names if self.unlink(name))

    def live(self) -> list[str]:
        with self._lock:
            return sorted(self._live)

    def unlink_all(self) -> int:
        """Final backstop at pool retirement; returns the leak count (0
        when every batch path released its segments, which is what the
        lifecycle tests assert)."""
        return self.sweep(self.live())

    def assert_clean(self) -> None:
        leaked = self.live()
        if leaked:
            raise AssertionError(
                f"shared-memory segments leaked: {leaked}"
            )


class ShmTransport:
    """Stages arrays into segments (parent side) and fetches them back.

    Refs are small picklable dicts:

    - ``{"kind": "shm", "name", "shape", "dtype"}`` — a named segment;
    - ``{"kind": "bytes", "data", "shape", "dtype"}`` — inline fallback
      (oversized operand, creation failure, or pure-pickle mode);
    - ``{"kind": "inline", "shape", "dtype"}`` — a result slot whose
      bytes will ride back inside the reply message instead of a
      segment.
    """

    def __init__(
        self,
        registry: ShmRegistry,
        *,
        mode: str = "shm",
        max_segment_bytes: int | None = None,
        metrics=NULL_METRICS,
    ) -> None:
        if mode not in TRANSPORT_MODES:
            raise ConfigError(
                f"unknown transport mode {mode!r}; "
                f"choose from {TRANSPORT_MODES}"
            )
        if max_segment_bytes is not None and max_segment_bytes < 1:
            raise ConfigError(
                f"max_segment_bytes must be >= 1 or None, "
                f"got {max_segment_bytes}"
            )
        self.registry = registry
        self.mode = mode
        self.max_segment_bytes = max_segment_bytes
        self.metrics = metrics

    # --------------------------------------------------------------- staging
    def _fits(self, nbytes: int) -> bool:
        return (
            self.mode == "shm"
            and (
                self.max_segment_bytes is None
                or nbytes <= self.max_segment_bytes
            )
        )

    def stage(self, arr: np.ndarray) -> dict:
        """Copy ``arr`` into a fresh segment (or inline bytes) and return
        the ref the child materializes it from."""
        arr = np.ascontiguousarray(arr)
        if self._fits(arr.nbytes):
            try:
                segment = self.registry.create(arr.nbytes)
            except OSError:
                self.metrics.inc("serve.proc.shm_fallbacks")
            else:
                try:
                    view = np.ndarray(
                        arr.shape, dtype=arr.dtype, buffer=segment.buf
                    )
                    view[...] = arr
                    ref = {
                        "kind": "shm",
                        "name": segment.name,
                        "shape": arr.shape,
                        "dtype": str(arr.dtype),
                    }
                finally:
                    # close the parent mapping as soon as the copy is
                    # done (or dies): the name (not the mapping) is the
                    # handle; unlink() works on names
                    segment.close()
                self.metrics.inc("serve.proc.shm_bytes", float(arr.nbytes))
                return ref
        self.metrics.inc("serve.proc.inline_bytes", float(arr.nbytes))
        return {
            "kind": "bytes",
            "data": arr.tobytes(),
            "shape": arr.shape,
            "dtype": str(arr.dtype),
        }

    def alloc_result(self, shape: tuple[int, ...], dtype=np.float64) -> dict:
        """A writable result slot the child fills: a segment when it
        fits, otherwise an inline marker telling the child to ship the
        bytes back inside its reply."""
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if self._fits(nbytes):
            try:
                segment = self.registry.create(nbytes)
            except OSError:
                self.metrics.inc("serve.proc.shm_fallbacks")
            else:
                try:
                    ref = {
                        "kind": "shm",
                        "name": segment.name,
                        "shape": tuple(shape),
                        "dtype": str(np.dtype(dtype)),
                    }
                finally:
                    segment.close()
                self.metrics.inc("serve.proc.shm_bytes", float(nbytes))
                return ref
        return {
            "kind": "inline",
            "shape": tuple(shape),
            "dtype": str(np.dtype(dtype)),
        }

    # -------------------------------------------------------------- fetching
    def fetch(self, ref: dict, payload: bytes | None = None) -> np.ndarray:
        """Materialize a ref back into parent memory (an owned copy).

        ``payload`` carries the bytes of an ``inline`` result ref (they
        arrived inside the reply message)."""
        if ref["kind"] == "shm":
            segment = shared_memory.SharedMemory(name=ref["name"])
            try:
                view = np.ndarray(
                    ref["shape"], dtype=np.dtype(ref["dtype"]),
                    buffer=segment.buf,
                )
                return np.array(view)  # owned copy; segment may die after
            finally:
                segment.close()
        data = ref["data"] if ref["kind"] == "bytes" else payload
        if data is None:
            raise ConfigError("inline result ref arrived without payload")
        return np.frombuffer(
            bytearray(data), dtype=np.dtype(ref["dtype"])
        ).reshape(ref["shape"])

    def release(self, ref: dict | None) -> None:
        """Unlink the segment behind a ref (no-op for inline refs)."""
        if ref is not None and ref.get("kind") == "shm":
            self.registry.unlink(ref["name"])


# ---------------------------------------------------------------- child side
def attach(ref: dict) -> tuple[np.ndarray, shared_memory.SharedMemory | None]:
    """Child-side materialization: a readable array plus the segment
    holder the caller must ``close()`` once the array is dead (inline
    refs return ``None`` — nothing to close)."""
    if ref["kind"] == "shm":
        segment = shared_memory.SharedMemory(name=ref["name"])
        view = np.ndarray(
            ref["shape"], dtype=np.dtype(ref["dtype"]), buffer=segment.buf
        )
        return view, segment
    return (
        np.frombuffer(
            bytearray(ref["data"]), dtype=np.dtype(ref["dtype"])
        ).reshape(ref["shape"]),
        None,
    )


def write_result(ref: dict, arr: np.ndarray) -> bytes | None:
    """Child-side result delivery: copy ``arr`` into the result slot.

    Returns the inline payload to embed in the reply when the slot is an
    ``inline`` ref, None when the bytes went through shared memory."""
    if ref["kind"] == "shm":
        segment = shared_memory.SharedMemory(name=ref["name"])
        try:
            view = np.ndarray(
                ref["shape"], dtype=np.dtype(ref["dtype"]), buffer=segment.buf
            )
            view[...] = arr
            return None
        finally:
            segment.close()
    return np.ascontiguousarray(arr).tobytes()
