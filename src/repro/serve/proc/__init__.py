"""Process-level serving tier: the fault domain becomes the process.

`repro.serve.proc` scales the serving subsystem past one interpreter: a
pool of **spawned worker processes**, each holding its own protected
GEMM engines, executes the batches the in-parent scheduler forms. The
tier keeps every guarantee the thread tier proved — exactly-once
responses through the service's ``_complete`` funnel, verified results,
graceful drain — while surviving the fault the thread tier cannot:
**loss of a whole worker process** (SIGKILL, OOM-kill, hard hang).

- :mod:`repro.serve.proc.spawnctx` — the one place the ``spawn`` start
  method is pinned, plus deterministic per-worker RNG seed derivation;
- :mod:`repro.serve.proc.shm` — shared-memory operand transport: A/B/C
  panels move through named ``SharedMemory`` segments tracked by a
  leak-audited registry (matrices are never pickled across the process
  boundary), with an inline-bytes fallback for oversized operands;
- :mod:`repro.serve.proc.heartbeat` — per-worker heartbeat board and the
  monitor that turns missed beats or a dead PID into the death protocol;
- :mod:`repro.serve.proc.worker` — the child-process entry point:
  engines, per-worker operand/panel caches, deterministic in-child fault
  injection, and the chaos self-kill hooks;
- :mod:`repro.serve.proc.pool` — :class:`ProcWorkerPool`: shape-bucket
  shard routing, dispatch/receive/monitor threads, exactly-once replay
  of a dead worker's in-flight batches, probation re-admission and
  per-bucket degraded mode;
- :mod:`repro.serve.proc.gateway` — the asyncio gateway: open-loop
  clients await responses without holding a thread each.
"""

from repro.serve.proc.gateway import AsyncGateway
from repro.serve.proc.heartbeat import HeartbeatBoard, HeartbeatMonitor
from repro.serve.proc.pool import ProcWorkerPool
from repro.serve.proc.shm import ShmRegistry, ShmTransport
from repro.serve.proc.spawnctx import spawn_context, worker_seed

__all__ = [
    "AsyncGateway",
    "HeartbeatBoard",
    "HeartbeatMonitor",
    "ProcWorkerPool",
    "ShmRegistry",
    "ShmTransport",
    "spawn_context",
    "worker_seed",
]
