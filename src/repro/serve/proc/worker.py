"""Worker-process entry point: engines, caches, faults, chaos kills.

``worker_main`` is what :class:`~repro.serve.proc.pool.ProcWorkerPool`
spawns. The child is a loop over a command pipe: ``probe`` (probation
health check), ``batch`` (execute and write results into shared memory),
``stop`` (ship the child's metrics snapshot home and exit). One reply
message per command keeps the parent's exactly-once accounting atomic —
a batch either produces its single ``result`` message or the process
dies and the parent's death protocol claims every in-flight request.

The child never constructs a :class:`~repro.serve.request.GemmResponse`
— terminal responses exist only in the parent, where the analyzer's
complete-funnel rule can see them route through ``_complete``. The child
returns raw evidence (verified flag, counters, verification reports,
recovery report) and writes C panels into the parent-allocated result
slots; the parent reassembles per-request ``FTGemmResult`` objects.

Determinism: the bootstrap carries an explicit seed derived from
(service seed, slot, incarnation) — see
:func:`~repro.serve.proc.spawnctx.worker_seed` — and every fault an
execution sees is rebuilt in-child from a plain *fault spec* dict the
parent derived from the workload seed. Nothing in a process-tier run
depends on spawn timing or platform RNG state.

Chaos self-kills: a batch message may carry a ``kill`` phase. The child
then SIGKILLs **itself** at that phase boundary — ``pack`` (operands
materialized), ``compute`` (first tile callback), ``reduce`` (product
done, result not yet written), ``reply`` (result written, message not
yet sent) — or ``stall``\\ s (stops its heartbeat and idles) so the
monitor's miss detection, not PID death, has to notice. Each phase
leaves the protocol in a different half-finished state, which is exactly
what the replay path must be indifferent to.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from repro.faults.campaign import (
    plan_for_gemm,
    site_invocation_counts_parallel,
)
from repro.faults.injector import FaultInjector
from repro.faults.models import BitFlip, FailStop, StuckBit
from repro.obs.metrics import MetricsRegistry
from repro.serve.pool import Worker, tuned_parts
from repro.serve.proc.heartbeat import Beater
from repro.serve.proc.shm import attach, write_result
from repro.util.errors import ReproError
from repro.util.rng import make_rng


@dataclass(frozen=True)
class WorkerBootstrap:
    """Everything a spawned worker needs (must stay picklable)."""

    slot: int
    incarnation: int
    #: explicit RNG seed (probe operands; never platform state)
    seed: int
    #: the service's :class:`~repro.serve.service.ServiceConfig` (typed
    #: loosely: importing the service here would cycle through the proc
    #: package the service itself constructs)
    service_config: object
    beat_interval_s: float = 0.05


def _self_kill() -> None:
    """The chaos kill: immediate, uncatchable, exactly like the OOM
    killer or an operator's ``kill -9``."""
    os.kill(os.getpid(), signal.SIGKILL)


def _send(conn, msg: dict) -> None:
    conn.send_bytes(pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL))


def _portable(obj):
    """``obj`` if it survives pickling, else None — evidence objects ride
    home best-effort; correctness never depends on them."""
    try:
        pickle.dumps(obj)
    except Exception:
        return None
    return obj


def injector_from_spec(spec: dict | None, shape, service_config):
    """Rebuild the deterministic in-child injector from a plain spec.

    The parent derives the spec (model choice, plan seed, optional
    fail-stop) from the workload seed; the child re-derives the full
    site plan from it so the injector never crosses the process boundary
    as a live object. Mirrors the thread tier's
    :func:`~repro.serve.workload.make_injector_factory` fault mix.
    """
    if spec is None:
        return None
    kernel = spec.get("kernel", "gemm")
    if kernel != "gemm":
        # non-GEMM plans come from the kernel's own site map; the model
        # mix mirrors the GEMM path (no fail-stop rung — the kernels run
        # single-threaded, and FailStop needs a thread team)
        from repro.kernels import get_kernel

        model = (
            StuckBit(bit=spec["bit"]) if spec["model"] == "stuck"
            else BitFlip(bit=spec["bit"])
        )
        plan = get_kernel(kernel).plan(
            tuple(shape), spec["errors_per_call"],
            model=model, seed=spec["plan_seed"],
        )
        return FaultInjector(plan)
    m, n, k = shape
    blocking = service_config.ft.blocking
    counts = None
    if service_config.gemm_threads > 1:
        counts = site_invocation_counts_parallel(
            m, n, k, blocking, service_config.gemm_threads
        )
    model = (
        StuckBit(bit=spec["bit"]) if spec["model"] == "stuck"
        else BitFlip(bit=spec["bit"])
    )
    plan = plan_for_gemm(
        m, n, k, blocking,
        spec["errors_per_call"],
        model=model,
        seed=spec["plan_seed"],
        counts=counts,
    )
    fail_stop = spec.get("fail_stop")
    if fail_stop is not None and service_config.gemm_threads >= 2:
        plan = replace(
            plan,
            fail_stops=(
                FailStop(
                    thread=fail_stop["thread"], barrier=fail_stop["barrier"]
                ),
            ),
        )
    return FaultInjector(plan)


class _ChildState:
    """Per-process serving state: engines, hot-B cache, panel cache."""

    def __init__(self, bootstrap: WorkerBootstrap) -> None:
        self.bootstrap = bootstrap
        self.config = bootstrap.service_config
        self.metrics = MetricsRegistry()
        self.rng = make_rng(bootstrap.seed)
        # reuse the thread tier's driver construction wholesale: same
        # schemes, same degraded (checksum-only) wiring
        self.engines = Worker(bootstrap.slot, self.config)
        #: hot-B cache mirrored with the parent dispatcher: the parent
        #: only sends ``{"kind": "cached"}`` refs for keys it inserted
        #: earlier on this same (ordered) pipe, with the same bound and
        #: eviction discipline on both sides
        self.b_cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self.b_cache_entries = int(
            getattr(self.config, "proc_b_cache_entries", 0) or 0
        )
        self.panel_cache = None
        if (
            getattr(self.config, "panel_cache_bytes", None) is not None
            and self.config.gemm_threads == 1
        ):
            from repro.gemm.panelcache import PanelCache

            self.panel_cache = PanelCache(
                self.config.panel_cache_bytes, metrics=self.metrics
            )

    def remember_b(self, key: str, b: np.ndarray) -> None:
        self.b_cache[key] = b
        self.b_cache.move_to_end(key)
        while len(self.b_cache) > self.b_cache_entries:
            self.b_cache.popitem(last=False)

    def _panels_for(self, b: np.ndarray, resident: bool, tuned=None):
        """Packed panels for a *resident* (cache-owned) B. Transient shm
        views are never encoded: the cache would pin the dying segment's
        buffer and the next request re-encodes anyway. A tuned batch keys
        the cache under its own blocking (matching the driver that will
        consume the panels); tuned team execution skips panels entirely,
        like the thread tier."""
        if self.panel_cache is None or not resident:
            return None
        blocking = self.config.ft.blocking
        if tuned is not None:
            blocking, threads = tuned_parts(tuned)
            if threads > 1:
                return None
        return self.panel_cache.acquire(b, blocking)


def _attempt_loop(state: _ChildState, driver, spec, shape, request_id,
                  run, kill_phase):
    """The in-child mirror of the thread pool's retry loop: faults on
    attempt 0 only, exponential backoff, verified-or-retry."""
    config = state.config
    error = ""
    for attempt in range(config.retry_budget + 1):
        if attempt:
            state.metrics.inc("serve.proc.child_retries")
            time.sleep(config.backoff_base_s * 2 ** (attempt - 1))
        injector = None
        if attempt == 0:
            injector = injector_from_spec(spec, shape, config)
        on_tile = None
        if attempt == 0 and kill_phase == "compute":
            def on_tile(*_args, **_kwargs):
                _self_kill()
        try:
            result = run(driver, injector, on_tile)
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
            continue
        except Exception as exc:  # substrate faults may raise anything
            error = f"{type(exc).__name__}: {exc}"
            continue
        if attempt == 0 and kill_phase == "reduce":
            _self_kill()
        if result.verified:
            return result, attempt + 1, ""
        error = "verification failed"
    return None, config.retry_budget + 1, error


def _evidence(result) -> dict:
    """The picklable slice of an FTGemmResult (C travels via shm)."""
    return {
        "verified": bool(result.verified),
        "ft_enabled": bool(result.ft_enabled),
        "counters": _portable(result.counters),
        "reports": _portable(result.reports) or [],
        "recovery": _portable(result.recovery),
    }


def _materialize_b(state: _ChildState, msg: dict):
    """Resolve the batch's B operand: child-cache hit, cache insert, or
    a transient segment view. Returns (b, resident, segment|None) —
    ``resident`` marks a cache-owned array safe to encode panels for."""
    ref = msg["b"]
    if ref.get("kind") == "none":
        return None, False, None  # kernel without a shared operand (FFT)
    if ref.get("kind") == "cached":
        b = state.b_cache.get(ref["key"])
        if b is None:
            raise KeyError(f"b-cache miss for {ref['key']!r}")
        state.b_cache.move_to_end(ref["key"])
        state.metrics.inc("serve.proc.b_cache_hits")
        return b, True, None
    view, segment = attach(ref)
    key = msg.get("b_cache_key")
    if key is not None and state.b_cache_entries > 0:
        b = np.array(view)  # owned: outlives the segment
        if segment is not None:
            segment.close()
        state.remember_b(key, b)
        return b, True, None
    return view, False, segment


def _child_drivers(state: _ChildState, msg: dict):
    """(static driver, execution driver) for one batch message.

    ``msg["tuned"]`` is the plain-dict form of the resolved tuning entry
    (or None); the Worker engine cache rebuilds and memoizes the tuned
    driver on first sight, so steady-state batches pay one dict lookup.
    """
    static = state.engines.driver_for(msg["scheme"], msg["degraded"])
    tuned = msg.get("tuned")
    if tuned is None:
        return static, static
    state.metrics.inc("tune.applied")
    return static, state.engines.driver_for(
        msg["scheme"], msg["degraded"], tuned=tuned
    )


def _execute_coalesced(state: _ChildState, msg: dict, b) -> dict:
    driver, exec_driver = _child_drivers(state, msg)
    a_view, a_segment = attach(msg["a_stack"])
    # everything from here on runs under the finally: panel prep can
    # raise too, and the segment must close on that path as well
    try:
        packed = state._panels_for(b, msg["b_resident"], msg.get("tuned"))
        shape = (a_view.shape[0], b.shape[1], b.shape[0])
        if msg["kill_phase"] == "pack":
            _self_kill()

        def run(drv, injector, on_tile):
            # mirror the thread tier: injected attempts run on the static
            # driver (fault plans derive their schedules from the static
            # blocking), clean attempts on the tuned one
            use = exec_driver if injector is None else drv
            return use.gemm(
                a_view,
                b,
                alpha=msg["alpha"],
                injector=injector,
                on_tile=on_tile,
                request_id=msg["batch_id"],
                packed_b=packed if injector is None else None,
            )

        result, attempts, error = _attempt_loop(
            state, driver, msg["fault"], shape, msg["batch_id"],
            run, msg["kill_phase"],
        )
    finally:
        if a_segment is not None:
            a_segment.close()
    if result is None:
        return {"ok": False, "error": error, "attempts": attempts,
                "meta": None, "payload": None}
    payload = write_result(msg["result"], result.c)
    return {"ok": True, "error": "", "attempts": attempts,
            "meta": _evidence(result), "payload": payload}


def _execute_single(state: _ChildState, item: dict, msg: dict, b) -> dict:
    driver, exec_driver = _child_drivers(state, msg)
    a_view, a_segment = attach(item["a"])
    c0_view = c0_segment = None
    # the second attach and the panel prep can raise: both segments
    # must close on those paths too, so the finally starts here
    try:
        if item["c0"] is not None:
            c0_view, c0_segment = attach(item["c0"])
        packed = state._panels_for(b, msg["b_resident"], msg.get("tuned"))
        shape = (a_view.shape[0], b.shape[1], b.shape[0])
        if msg["kill_phase"] == "pack":
            _self_kill()

        def run(drv, injector, on_tile):
            use = exec_driver if injector is None else drv
            c = np.array(c0_view) if c0_view is not None else None
            return use.gemm(
                a_view,
                b,
                c,
                alpha=msg["alpha"],
                beta=item["beta"],
                injector=injector,
                on_tile=on_tile,
                request_id=item["request_id"],
                packed_b=packed if injector is None else None,
            )

        result, attempts, error = _attempt_loop(
            state, driver, item["fault"], shape, item["request_id"],
            run, msg["kill_phase"],
        )
    finally:
        if a_segment is not None:
            a_segment.close()
        if c0_segment is not None:
            c0_segment.close()
    if result is None:
        return {"request_id": item["request_id"], "ok": False,
                "error": error, "attempts": attempts,
                "meta": None, "payload": None}
    payload = write_result(item["result"], result.c)
    return {"request_id": item["request_id"], "ok": True, "error": "",
            "attempts": attempts, "meta": _evidence(result),
            "payload": payload}


def _kernel_evidence(result) -> dict:
    """The picklable slice of a KernelResult (the value travels via shm).
    The ``kernel`` key doubles as the parent's routing discriminator —
    GEMM evidence never carries one."""
    return {
        "kernel": result.kernel,
        "verified": bool(result.verified),
        "detected": int(result.detected),
        "corrected": int(result.corrected),
        "recomputed": int(result.recomputed),
        "escalations": int(result.escalations),
        "protection_flops": int(result.protection_flops),
    }


def _execute_kernel_item(state: _ChildState, item: dict, msg: dict,
                         shared) -> dict:
    """One non-GEMM request: rebuild it from wire operands, run it through
    the registry kernel under the shared retry loop, write the canonical
    2-D float64 value into the parent-allocated result slot."""
    from repro.kernels import get_kernel
    from repro.serve.request import request_from_wire

    kern = get_kernel(msg["kernel"])
    unit_view, unit_segment = attach(item["a"])
    aux_view = aux_segment = None
    # the aux attach and the wire rebuild can raise: both segments must
    # close on those paths too, so the finally starts here
    try:
        if item["c0"] is not None:
            aux_view, aux_segment = attach(item["c0"])
        request = request_from_wire(
            msg["kernel"], unit_view, shared, aux_view, item["params"],
            scheme=msg["scheme"], request_id=item["request_id"],
        )
        shape = request.shape
        if msg["kill_phase"] == "pack":
            _self_kill()

        def run(_drv, injector, on_tile):
            if on_tile is not None:
                # the "compute" chaos phase: the registry kernels take no
                # tile callback, so dying at dispatch is the closest
                # analogue of dying at the first tile (attempt 0 only,
                # like GEMM)
                _self_kill()
            return kern.run(request, injector=injector,
                            degraded=msg["degraded"])

        result, attempts, error = _attempt_loop(
            state, None, item["fault"], shape, item["request_id"],
            run, msg["kill_phase"],
        )
    finally:
        if unit_segment is not None:
            unit_segment.close()
        if aux_segment is not None:
            aux_segment.close()
    if result is None:
        return {"request_id": item["request_id"], "ok": False,
                "error": error, "attempts": attempts,
                "meta": None, "payload": None}
    payload = write_result(
        item["result"], np.asarray(result.c, dtype=np.float64)
    )
    return {"request_id": item["request_id"], "ok": True, "error": "",
            "attempts": attempts, "meta": _kernel_evidence(result),
            "payload": payload}


def _serve_batch(state: _ChildState, msg: dict) -> dict:
    """Execute one batch message; returns the single result reply."""
    state.metrics.inc("serve.proc.child_batches")
    kill_phase = msg["kill_phase"]
    b_segment = None
    try:
        b, resident, b_segment = _materialize_b(state, msg)
        msg["b_resident"] = resident
        if kill_phase == "stall":
            # exist-but-frozen: heartbeat stops, PID stays alive; only
            # the monitor's miss detection can rescue this batch
            state.beater.stop()
            while True:
                time.sleep(3600.0)
        if msg.get("kernel", "gemm") != "gemm":
            items = [
                _execute_kernel_item(state, item, msg, b)
                for item in msg["items"]
            ]
            reply = {"op": "result", "batch_id": msg["batch_id"],
                     "kind": "single", "items": items}
        elif msg["coalesced"]:
            body = _execute_coalesced(state, msg, b)
            reply = {"op": "result", "batch_id": msg["batch_id"],
                     "kind": "coalesced", **body}
        else:
            items = [
                _execute_single(state, item, msg, b)
                for item in msg["items"]
            ]
            reply = {"op": "result", "batch_id": msg["batch_id"],
                     "kind": "single", "items": items}
    except Exception as exc:
        # a broken message or cache-mirror miss must still produce the
        # batch's one reply: the parent turns it into retry/replay
        reply = {"op": "result", "batch_id": msg["batch_id"],
                 "kind": "error",
                 "error": f"{type(exc).__name__}: {exc}"}
    finally:
        if b_segment is not None:
            b_segment.close()
    if kill_phase == "reply":
        _self_kill()
    return reply


def _probe(state: _ChildState, msg: dict) -> dict:
    """Probation health check: one small verified GEMM vs the oracle."""
    rng = make_rng(msg["seed"])
    size = msg.get("size", 16)
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))
    driver = state.engines.driver_for("dual", False)
    try:
        result = driver.gemm(a, b)
        ok = bool(result.verified) and np.allclose(
            result.c, a @ b, atol=1e-8
        )
    except Exception:
        ok = False
    return {"op": "probe_ok", "ok": ok, "slot": state.bootstrap.slot,
            "incarnation": state.bootstrap.incarnation}


def worker_main(bootstrap: WorkerBootstrap, cmd_conn, res_conn,
                beat_value) -> None:
    """The spawned process's main loop (also its module-level pickle
    anchor: spawn imports this module fresh in the child)."""
    state = _ChildState(bootstrap)
    state.beater = Beater(beat_value, bootstrap.beat_interval_s)
    state.beater.start()
    while True:
        try:
            raw = cmd_conn.recv_bytes()
        except (EOFError, OSError):
            break  # parent died or closed: nothing left to serve
        msg = pickle.loads(raw)
        op = msg.get("op")
        try:
            if op == "stop":
                _send(res_conn, {"op": "stopped",
                                 "slot": bootstrap.slot,
                                 "metrics": state.metrics.snapshot()})
                break
            if op == "probe":
                _send(res_conn, _probe(state, msg))
            elif op == "batch":
                _send(res_conn, _serve_batch(state, msg))
        except (BrokenPipeError, OSError):
            break
    state.beater.stop()
