"""The single place the multiprocessing start method is pinned.

Every process the tier creates comes from :func:`spawn_context`, which
pins the **spawn** start method: children begin from a fresh interpreter
that re-imports the library instead of forking the parent's address
space. That is the only start method whose semantics are identical on
Linux and macOS (fork is unsafe with threads on macOS and the serving
parent is full of threads), and a fresh interpreter is what makes the
process the genuine fault domain the tier claims to recover — a child
shares no locks, no NumPy state and no arena memory with the parent.

Pinning happens here via ``multiprocessing.get_context("spawn")`` rather
than ``multiprocessing.set_start_method("spawn")``: a context object
scopes the choice to this tier without mutating the process-global
default out from under embedding applications — while still being the
one authoritative spot the whole package gets its start method from
(nothing under ``repro.serve.proc`` may call ``multiprocessing``
directly; the analyzer's import conventions and the tests pin this).

Determinism rides along: :func:`worker_seed` derives the explicit RNG
seed each worker bootstrap carries, from the service seed, the worker
slot and the incarnation number — so a respawned worker draws a fresh
but reproducible stream, and a process-tier run replays identically on
any platform regardless of spawn timing.
"""

from __future__ import annotations

import multiprocessing

from repro.util.rng import derive_seed

_CTX: multiprocessing.context.BaseContext | None = None


def spawn_context() -> multiprocessing.context.BaseContext:
    """The tier's pinned multiprocessing context (start method: spawn)."""
    global _CTX
    if _CTX is None:
        _CTX = multiprocessing.get_context("spawn")
    return _CTX


def worker_seed(service_seed: int, slot: int, incarnation: int) -> int:
    """The explicit RNG seed a worker bootstrap carries.

    Stable across platforms and interpreter runs (``derive_seed`` folds
    strings through their bytes, never ``hash``), and distinct per
    (slot, incarnation) so a replacement process never replays its
    predecessor's stream.
    """
    return derive_seed(service_seed, "proc-worker", slot, incarnation)
