"""Benchmark harness: regenerates every figure of the paper's evaluation.

- :mod:`repro.bench.workloads` — matrix/workload generators (the paper uses
  dense square DGEMM sweeps; extra distributions exercise the tolerance
  theory);
- :mod:`repro.bench.figures` — one builder per panel of the paper's
  Figure 2 plus the in-text claims (overhead table, reliability table);
- :mod:`repro.bench.reporting` — text-table rendering and result files;
- :mod:`repro.bench.harness` — the experiment runner and the
  ``python -m repro.bench`` CLI.
"""

from repro.bench.workloads import (
    Workload,
    gaussian,
    uniform,
    ill_scaled,
    adjacency,
    WORKLOADS,
)
from repro.bench.figures import (
    FigureSeries,
    fig2a_serial,
    fig2b_parallel,
    fig2c_serial_injection,
    fig2d_parallel_injection,
    overhead_table,
    reliability_table,
    ALL_FIGURES,
)
from repro.bench.harness import ExperimentRunner

__all__ = [
    "Workload",
    "gaussian",
    "uniform",
    "ill_scaled",
    "adjacency",
    "WORKLOADS",
    "FigureSeries",
    "fig2a_serial",
    "fig2b_parallel",
    "fig2c_serial_injection",
    "fig2d_parallel_injection",
    "overhead_table",
    "reliability_table",
    "ALL_FIGURES",
    "ExperimentRunner",
]
