"""CLI: regenerate the paper's figures.

Examples::

    python -m repro.bench                     # all figures, modeled only
    python -m repro.bench --figure fig2a
    python -m repro.bench --validate          # + real scaled-down campaigns
    python -m repro.bench --out results/
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import ALL_FIGURES
from repro.bench.harness import ExperimentRunner


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the FT-GEMM paper's evaluation figures.",
    )
    parser.add_argument(
        "--figure",
        choices=sorted(ALL_FIGURES),
        action="append",
        help="figure id to build (repeatable; default: all)",
    )
    parser.add_argument(
        "--out", default="results", help="output directory for evidence files"
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="also run real scaled-down injection campaigns (slower)",
    )
    args = parser.parse_args(argv)

    runner = ExperimentRunner(args.out, validate=args.validate)
    for figure_id in args.figure or sorted(ALL_FIGURES):
        runner.run(figure_id)
    print(runner.report())
    print(f"evidence files written to {runner.out_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
