"""Rendering and persisting figure series."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.util.formatting import format_gflops, format_percent, format_table


@dataclass
class FigureSeries:
    """One regenerated table/figure: x values against named series.

    ``paper_claims`` records the published numbers the series should
    reproduce in shape; ``observations`` is filled by the builder with the
    measured counterparts, so the rendered report is self-contained.
    """

    figure_id: str
    title: str
    x_label: str
    x: list
    series: dict[str, list[float]] = field(default_factory=dict)
    paper_claims: dict[str, str] = field(default_factory=dict)
    observations: dict[str, str] = field(default_factory=dict)

    def add(self, name: str, values: list[float]) -> None:
        if len(values) != len(self.x):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(self.x)} x points"
            )
        self.series[name] = values

    def ratio(self, a: str, b: str) -> float:
        """Mean ratio of two series minus one (the paper's +x.xx% style)."""
        va, vb = self.series[a], self.series[b]
        return sum(x / y for x, y in zip(va, vb)) / len(va) - 1.0

    def to_table(self) -> str:
        headers = [self.x_label] + list(self.series)
        rows = []
        for i, xv in enumerate(self.x):
            rows.append(
                [str(xv)] + [format_gflops(self.series[s][i]) for s in self.series]
            )
        parts = [format_table(headers, rows, title=f"{self.figure_id}: {self.title}")]
        if self.paper_claims or self.observations:
            parts.append("")
            for key in sorted(set(self.paper_claims) | set(self.observations)):
                paper = self.paper_claims.get(key, "-")
                ours = self.observations.get(key, "-")
                parts.append(f"  {key}: paper {paper} | measured {ours}")
        return "\n".join(parts)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2)

    def save(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.figure_id}.txt"
        path.write_text(self.to_table() + "\n")
        (directory / f"{self.figure_id}.json").write_text(self.to_json() + "\n")
        return path


def observed_percent(value: float) -> str:
    """Shared formatting for observation entries."""
    return format_percent(value)
