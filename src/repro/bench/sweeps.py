"""Parameter-sweep utilities and the shape study.

:func:`blocking_sweep` prices a grid of (M_C, K_C) choices with the
performance model — the modeled counterpart of the cache-simulator
ablation, showing the paper's 192/384 sitting on the plateau.

:func:`overhead_vs_k` studies rank-k updates (``m = n`` large, ``k``
small). The result is a ridge, not a slope: at large ``k`` the O(n²)
checksum flops are amortized by O(n²k) compute (the paper's regime); at
very small ``k`` the GEMM itself turns memory-bound and the fused checksum
*compute* hides entirely under the DRAM bottleneck — that hiding is the
whole point of fusion; only near the roofline crossover, where neither leg
has slack, does the overhead peak.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.reporting import FigureSeries
from repro.gemm.blocking import BlockingConfig
from repro.perfmodel.gemm_model import GemmPerfModel
from repro.simcpu.machine import MachineSpec
from repro.util.errors import ConfigError


def blocking_sweep(
    mc_values: Sequence[int] = (96, 144, 192, 240, 288),
    kc_values: Sequence[int] = (192, 288, 384, 480, 576),
    *,
    n: int = 4096,
    machine: MachineSpec | None = None,
) -> FigureSeries:
    """Modeled GFLOPS over an (M_C, K_C) grid at fixed N_C.

    One series per K_C, indexed by M_C — a text heatmap. The defaults
    bracket the paper's choice.
    """
    machine = machine or MachineSpec.cascade_lake_w2255()
    base = BlockingConfig()
    fig = FigureSeries(
        figure_id="blocking_sweep",
        title=f"Modeled GFLOPS vs (MC, KC) at n={n}",
        x_label="MC",
        x=list(mc_values),
    )
    best = (0.0, None, None)
    for kc in kc_values:
        series = []
        for mc in mc_values:
            if mc % base.mr != 0:
                raise ConfigError(f"MC={mc} is not a multiple of MR={base.mr}")
            cfg = base.with_(mc=mc, kc=kc)
            gflops = GemmPerfModel(machine, cfg, mode="ori").gflops(n)
            series.append(gflops)
            if gflops > best[0]:
                best = (gflops, mc, kc)
        fig.add(f"KC={kc}", series)
    fig.observations = {
        "best": f"MC={best[1]}, KC={best[2]} at {best[0]:.1f} GFLOPS "
                f"(paper: MC=192, KC=384)"
    }
    return fig


def overhead_vs_k(
    k_values: Sequence[int] = (32, 64, 128, 256, 384, 768, 1536),
    *,
    mn: int = 4096,
    machine: MachineSpec | None = None,
) -> FigureSeries:
    """Fused-FT overhead of rank-k updates across the roofline regimes."""
    machine = machine or MachineSpec.cascade_lake_w2255()
    fig = FigureSeries(
        figure_id="overhead_vs_k",
        title=f"FT overhead vs inner dimension (m=n={mn})",
        x_label="k",
        x=list(k_values),
    )
    ori = GemmPerfModel(machine, mode="ori")
    ft = GemmPerfModel(machine, mode="ft")
    overheads = []
    rates = []
    for k in k_values:
        o = ori.breakdown(mn, mn, k)
        f = ft.breakdown(mn, mn, k)
        overheads.append(100.0 * f.overhead_vs(o))
        rates.append(f.gflops)
    peak_k = fig.x[overheads.index(max(overheads))]
    fig.add("FT GFLOPS", rates)
    fig.add("overhead %", overheads)
    fig.observations = {
        "regime": (
            f"overhead peaks at {max(overheads):.1f}% near k={peak_k} (the "
            f"roofline crossover); memory-bound small k hides the fused "
            f"checksum compute ({overheads[0]:.1f}%), large k amortizes it "
            f"({overheads[-1]:.1f}%)"
        )
    }
    return fig
