"""Workload generators for tests, campaigns and benchmarks.

The paper's sweeps use dense random DGEMM operands. We add distributions
that stress the parts a dense Gaussian cannot: ill-scaled matrices probe
the round-off tolerance theory (false-positive hunting), adjacency
matrices (via networkx) carry the graph-analytics example workload, and
near-rank-deficient inputs produce checksums with heavy cancellation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.errors import ConfigError
from repro.util.rng import make_rng

#: the paper's sweep sizes
SERIAL_SIZES = (2048, 4096, 6144, 8192, 10240)
PARALLEL_SIZES = (512, 1024, 2048, 4096, 8192, 12288, 16384, 20480)
#: laptop-scale stand-ins used by the real-execution benchmarks
BENCH_SIZES = (128, 256, 384, 512)


@dataclass(frozen=True)
class Workload:
    """A named generator of GEMM operand pairs."""

    name: str
    description: str
    make_fn: Callable[[int, int, np.random.Generator], np.ndarray]

    def operands(
        self, m: int, n: int, k: int, *, seed: int | None = 0
    ) -> tuple[np.ndarray, np.ndarray]:
        if min(m, n, k) <= 0:
            raise ConfigError(f"invalid workload dims {m}x{n}x{k}")
        rng = make_rng(seed)
        return self.make_fn(m, k, rng), self.make_fn(k, n, rng)

    def square(self, n: int, *, seed: int | None = 0) -> tuple[np.ndarray, np.ndarray]:
        return self.operands(n, n, n, seed=seed)


def _gaussian(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    return rng.standard_normal((rows, cols))


def _uniform(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(-1.0, 1.0, size=(rows, cols))


def _ill_scaled(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    """Rows scaled over ~12 orders of magnitude: checksum residual bounds
    must track the envelope, not a global norm, to avoid false positives."""
    base = rng.standard_normal((rows, cols))
    scales = np.logspace(-6, 6, rows)
    rng.shuffle(scales)
    return base * scales[:, None]


def _cancelling(rows: int, cols: int, rng: np.random.Generator) -> np.ndarray:
    """Large entries of alternating sign: row/column sums cancel almost
    completely, the worst case for checksum round-off."""
    mags = rng.uniform(1e3, 1e6, size=(rows, cols))
    signs = np.where(np.arange(cols) % 2 == 0, 1.0, -1.0)
    return mags * signs[None, :]


def adjacency(n: int, *, p: float = 0.05, seed: int | None = 0) -> np.ndarray:
    """Dense adjacency matrix of a random (Erdős–Rényi) digraph.

    Used by the graph-analytics example: powers of the adjacency matrix
    count walks, a classic integer-valued GEMM workload where any silent
    corruption is immediately visible as a non-integer count.
    """
    import networkx as nx

    if n <= 0:
        raise ConfigError(f"graph size must be positive, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ConfigError(f"edge probability must be in [0,1], got {p}")
    graph = nx.gnp_random_graph(n, p, seed=seed, directed=True)
    return nx.to_numpy_array(graph, dtype=np.float64)


gaussian = Workload("gaussian", "i.i.d. standard normal entries", _gaussian)
uniform = Workload("uniform", "i.i.d. uniform [-1, 1] entries", _uniform)
ill_scaled = Workload(
    "ill_scaled", "rows spanning 12 orders of magnitude", _ill_scaled
)
cancelling = Workload(
    "cancelling", "large alternating-sign entries (checksum cancellation)",
    _cancelling,
)

WORKLOADS: dict[str, Workload] = {
    w.name: w for w in (gaussian, uniform, ill_scaled, cancelling)
}
