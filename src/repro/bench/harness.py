"""The experiment runner behind ``python -m repro.bench``."""

from __future__ import annotations

import time
from pathlib import Path

from repro.bench.figures import ALL_FIGURES, build
from repro.bench.reporting import FigureSeries
from repro.util.errors import ConfigError


class ExperimentRunner:
    """Builds figures, prints them, and persists the evidence files."""

    def __init__(self, out_dir: str | Path = "results", *, validate: bool = False):
        self.out_dir = Path(out_dir)
        self.validate = validate
        self.built: dict[str, FigureSeries] = {}
        self.timings: dict[str, float] = {}

    def run(self, figure_id: str, **kwargs) -> FigureSeries:
        if figure_id in ("fig2c", "fig2d") and "validate" not in kwargs:
            kwargs["validate"] = self.validate
        start = time.perf_counter()
        fig = build(figure_id, **kwargs)
        self.timings[figure_id] = time.perf_counter() - start
        self.built[figure_id] = fig
        fig.save(self.out_dir)
        return fig

    def run_all(self) -> dict[str, FigureSeries]:
        for figure_id in ALL_FIGURES:
            self.run(figure_id)
        return self.built

    def report(self) -> str:
        if not self.built:
            raise ConfigError("no figures built yet; call run()/run_all() first")
        chunks = []
        for figure_id, fig in self.built.items():
            chunks.append(fig.to_table())
            chunks.append(f"  [built in {self.timings[figure_id]:.2f}s]")
            chunks.append("")
        return "\n".join(chunks)
