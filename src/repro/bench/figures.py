"""Builders for every figure/table of the paper's evaluation.

Each builder returns a :class:`FigureSeries` holding the regenerated series
alongside the paper's published claims and our measured counterparts, so
the harness output doubles as the EXPERIMENTS.md evidence.

Panels (paper Figure 2):

- 2(a) serial GFLOPS vs size — MKL / OpenBLAS / BLIS / FT-GEMM Ori /
  FT-GEMM w/ FT, sizes 2048²…10240²;
- 2(b) the parallel counterpart, 512²…20480², 10 threads;
- 2(c) serial GFLOPS vs injected error count (0…20) at a representative
  size — baselines are flat *and wrong* under injection, FT-GEMM pays only
  the per-error recovery cost;
- 2(d) the parallel counterpart.

In-text claims: the fused-vs-classic overhead ("~15 % → 2.94 %") and the
reliability statement ("hundreds of errors injected per minute") get their
own tables. The injection panels can optionally run *real* scaled-down
campaigns (``validate=True``) so the correctness half of the claim is
demonstrated, not assumed.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines import BLIS, MKL, FTGemmLibrary, OpenBLAS
from repro.bench.reporting import FigureSeries, observed_percent
from repro.bench.workloads import PARALLEL_SIZES, SERIAL_SIZES
from repro.core.config import FTGemmConfig
from repro.gemm.blocking import BlockingConfig
from repro.perfmodel.overhead import average_overheads, overhead_curve
from repro.util.errors import ConfigError

#: representative sizes for the injection panels (single-size bar charts in
#: the poster); chosen mid-sweep
FIG2C_N = 6144
FIG2D_N = 8192


def _library_set(threads: int) -> dict[str, object]:
    return {
        "MKL": MKL(),
        "OpenBLAS": OpenBLAS(),
        "BLIS": BLIS(),
        "FT-GEMM Ori": FTGemmLibrary("ori", threads=threads),
        "FT-GEMM w/ FT": FTGemmLibrary("ft", threads=threads),
    }


def _modeled(lib, n: int, threads: int, injected: int = 0) -> float:
    if isinstance(lib, FTGemmLibrary):
        return lib.modeled_gflops(n, injected_errors=injected)
    return lib.modeled_gflops(n, threads=threads)


def fig2a_serial(sizes: Sequence[int] = SERIAL_SIZES) -> FigureSeries:
    """Fig. 2(a): serial DGEMM performance comparison."""
    fig = FigureSeries(
        figure_id="fig2a",
        title="Serial DGEMM, modeled GFLOPS on Xeon W-2255",
        x_label="n",
        x=list(sizes),
    )
    libs = _library_set(threads=1)
    for name, lib in libs.items():
        fig.add(name, [_modeled(lib, n, 1) for n in sizes])
    fig.paper_claims = {
        "Ori vs baselines": "+3.33%..+22.19%",
        "FT overhead vs Ori": "1.17%..3.58% (avg ~2.94%)",
    }
    gaps = [fig.ratio("FT-GEMM Ori", b) for b in ("MKL", "OpenBLAS", "BLIS")]
    overhead = -fig.ratio("FT-GEMM w/ FT", "FT-GEMM Ori")
    fig.observations = {
        "Ori vs baselines": f"{observed_percent(min(gaps))}..{observed_percent(max(gaps))}",
        "FT overhead vs Ori": observed_percent(overhead),
    }
    return fig


def fig2b_parallel(
    sizes: Sequence[int] = PARALLEL_SIZES, threads: int = 10
) -> FigureSeries:
    """Fig. 2(b): parallel DGEMM performance comparison."""
    fig = FigureSeries(
        figure_id="fig2b",
        title=f"Parallel DGEMM ({threads} threads), modeled GFLOPS",
        x_label="n",
        x=list(sizes),
    )
    libs = _library_set(threads=threads)
    for name, lib in libs.items():
        fig.add(name, [_modeled(lib, n, threads) for n in sizes])
    fig.paper_claims = {
        "FT vs BLIS": "+16.97%",
        "FT vs OpenBLAS": "comparable",
        "FT vs MKL": "slightly slower",
        "FT overhead vs Ori": "0.16%..3.53% (avg 1.79%)",
    }
    fig.observations = {
        "FT vs BLIS": observed_percent(fig.ratio("FT-GEMM w/ FT", "BLIS")),
        "FT vs OpenBLAS": observed_percent(fig.ratio("FT-GEMM w/ FT", "OpenBLAS")),
        "FT vs MKL": observed_percent(fig.ratio("FT-GEMM w/ FT", "MKL")),
        "FT overhead vs Ori": observed_percent(
            -fig.ratio("FT-GEMM w/ FT", "FT-GEMM Ori")
        ),
    }
    return fig


def _injection_panel(
    figure_id: str,
    n: int,
    threads: int,
    error_counts: Sequence[int],
    paper: dict[str, str],
    *,
    validate: bool,
    validate_size: int = 96,
) -> FigureSeries:
    fig = FigureSeries(
        figure_id=figure_id,
        title=(
            f"{'Serial' if threads == 1 else f'Parallel ({threads}t)'} DGEMM "
            f"at n={n} under error injection, modeled GFLOPS"
        ),
        x_label="errors",
        x=list(error_counts),
    )
    libs = _library_set(threads=threads)
    for name, lib in libs.items():
        if name == "FT-GEMM Ori":
            continue  # the poster's injection panels show the FT variant
        fig.add(
            name,
            [
                _modeled(lib, n, threads, injected=e if "FT" in name else 0)
                for e in error_counts
            ],
        )
    fig.paper_claims = dict(paper)
    at_max = {name: fig.series[name][-1] for name in fig.series}
    ours = at_max["FT-GEMM w/ FT"]
    fig.observations = {
        f"FT vs {b}": observed_percent(ours / at_max[b] - 1.0)
        for b in ("MKL", "OpenBLAS", "BLIS")
    }
    fig.observations["baselines under injection"] = (
        "produce corrupted results (no detection); FT-GEMM corrects all"
    )
    if validate:
        fig.observations["validation"] = _validate_injection(
            threads, error_counts, validate_size
        )
    return fig


def _validate_injection(
    threads: int, error_counts: Sequence[int], size: int
) -> str:
    """Run real scaled-down campaigns: every result must verify correct."""
    from repro.core.ftgemm import FTGemm
    from repro.core.parallel import ParallelFTGemm
    from repro.faults.campaign import CampaignConfig, run_campaign

    config = FTGemmConfig(blocking=BlockingConfig.small(mr=8, nr=6))
    total_injected = 0
    for errors in error_counts:
        driver = (
            FTGemm(config)
            if threads == 1
            else ParallelFTGemm(config, n_threads=min(threads, 4))
        )
        result = run_campaign(
            CampaignConfig(
                m=size, n=size, k=size, runs=2, errors_per_call=errors, seed=errors
            ),
            driver,
        )
        if not result.all_correct:
            return f"FAILED at {errors} errors: {result.max_final_error:.2e}"
        total_injected += result.injected
    return (
        f"real scaled-down campaigns (n={size}): {total_injected} faults "
        f"injected, all final results correct"
    )


def fig2c_serial_injection(
    n: int = FIG2C_N,
    error_counts: Sequence[int] = (0, 5, 10, 15, 20),
    *,
    validate: bool = False,
) -> FigureSeries:
    """Fig. 2(c): serial performance while tolerating injected errors."""
    return _injection_panel(
        "fig2c",
        n,
        1,
        error_counts,
        {
            "FT vs OpenBLAS": "+22.89%",
            "FT vs BLIS": "+21.56%",
            "FT vs MKL": "+4.98%",
        },
        validate=validate,
    )


def fig2d_parallel_injection(
    n: int = FIG2D_N,
    error_counts: Sequence[int] = (0, 5, 10, 15, 20),
    threads: int = 10,
    *,
    validate: bool = False,
) -> FigureSeries:
    """Fig. 2(d): parallel performance while tolerating injected errors."""
    return _injection_panel(
        "fig2d",
        n,
        threads,
        error_counts,
        {
            "FT vs OpenBLAS": "comparable",
            "FT vs BLIS": "+16.83%",
        },
        validate=validate,
    )


def overhead_table(
    sizes: Sequence[int] = SERIAL_SIZES, threads: int = 1
) -> FigureSeries:
    """In-text claim: fusing drops FT overhead from ~15 % to ~3 %."""
    points = overhead_curve(sizes, threads=threads)
    fig = FigureSeries(
        figure_id="overhead" if threads == 1 else f"overhead_{threads}t",
        title="FT overhead: fused (paper) vs classic (non-fused) ABFT",
        x_label="n",
        x=list(sizes),
    )
    fig.add("Ori GFLOPS", [p.ori_gflops for p in points])
    fig.add("fused GFLOPS", [p.ft_gflops for p in points])
    fig.add("classic GFLOPS", [p.classic_gflops for p in points])
    fig.add("fused ov %", [p.fused_overhead * 100 for p in points])
    fig.add("classic ov %", [p.classic_overhead * 100 for p in points])
    fused, classic = average_overheads(points)
    fig.paper_claims = {"overhead": "classic ~15% -> fused 2.94%"}
    fig.observations = {
        "overhead": (
            f"classic {observed_percent(classic)} -> fused "
            f"{observed_percent(fused)}"
        )
    }
    return fig


def reliability_table(
    rates_per_minute: Sequence[float] = (0, 60, 180, 360, 600),
    *,
    n: int = 128,
    runs: int = 3,
    seed: int = 0,
) -> FigureSeries:
    """Abstract claim: correct results under hundreds of errors per minute.

    Runs *real* campaigns at a laptop-scale size: each rate is converted to
    per-call Poisson error counts through the modeled call duration of the
    paper-scale matrix, so the per-call fault load matches what the testbed
    would absorb at that physical rate.
    """
    from repro.core.ftgemm import FTGemm
    from repro.faults.campaign import CampaignConfig, run_campaign
    from repro.perfmodel.gemm_model import GemmPerfModel

    call_seconds = GemmPerfModel(mode="ft").seconds(FIG2C_N)
    config = FTGemmConfig(blocking=BlockingConfig.small(mr=8, nr=6))
    fig = FigureSeries(
        figure_id="reliability",
        title=f"Reliability vs injection rate (real campaigns at n={n})",
        x_label="err/min",
        x=list(rates_per_minute),
    )
    injected: list[float] = []
    detected: list[float] = []
    correct: list[float] = []
    for rate in rates_per_minute:
        result = run_campaign(
            CampaignConfig(
                m=n,
                n=n,
                k=n,
                runs=runs,
                errors_per_call=None,
                rate_per_minute=rate,
                call_seconds=call_seconds,
                seed=seed + int(rate),
            ),
            FTGemm(config),
        )
        injected.append(float(result.injected))
        detected.append(float(result.detected))
        correct.append(100.0 * result.correct_results / result.runs)
    fig.add("injected", injected)
    fig.add("detected", detected)
    fig.add("correct %", correct)
    fig.paper_claims = {
        "reliability": "correct under hundreds of errors injected per minute"
    }
    all_ok = all(v == 100.0 for v in correct)
    fig.observations = {
        "reliability": (
            f"{int(sum(injected))} faults across rates up to "
            f"{max(rates_per_minute):.0f}/min; "
            + ("all results correct" if all_ok else "FAILURES OBSERVED")
        )
    }
    return fig


def scaling_table(
    thread_counts: Sequence[int] = (1, 2, 4, 6, 8, 10),
    n: int = 8192,
) -> FigureSeries:
    """Supporting table: strong scaling of the Figure-1 parallel scheme.

    Not a poster panel, but the claim "scalable parallel design" needs
    evidence: modeled GFLOPS and parallel efficiency across thread counts
    at a paper-scale size, for Ori and FT.
    """
    from repro.perfmodel.gemm_model import GemmPerfModel

    fig = FigureSeries(
        figure_id="scaling",
        title=f"Strong scaling at n={n} (modeled Xeon W-2255)",
        x_label="threads",
        x=list(thread_counts),
    )
    ori = []
    ft = []
    eff = []
    for t in thread_counts:
        o = GemmPerfModel(mode="ori", threads=t).gflops(n)
        f = GemmPerfModel(mode="ft", threads=t).gflops(n)
        ori.append(o)
        ft.append(f)
        eff.append(100.0 * f / (ft[0] * t))
    fig.add("Ori GFLOPS", ori)
    fig.add("FT GFLOPS", ft)
    fig.add("FT efficiency %", eff)
    fig.paper_claims = {"scaling": "scalable parallel design (Sec 2.3)"}
    fig.observations = {
        "scaling": f"{eff[-1]:.1f}% parallel efficiency at "
                   f"{thread_counts[-1]} threads"
    }
    return fig


def serve_table(
    batch_limits: Sequence[int] = (1, 4, 16),
    *,
    requests: int = 48,
    shape: tuple[int, int, int] = (4, 48, 48),
    workers: int = 1,
    seed: int = 0,
) -> FigureSeries:
    """Supporting table: serving throughput vs the coalescing limit.

    Extension beyond the poster — the serving subsystem's core claim:
    stacking compatible requests into one protected product amortizes the
    per-call FT fixed costs (prologue, B̃ packing + encoding, fused
    verification), so coalesced batches serve a multiple of the singleton
    throughput. A burst of uniform-shape shared-B requests is pushed
    through one worker at each ``max_batch`` limit; ``max_batch=1`` is the
    singleton baseline.
    """
    import time

    import numpy as np

    from repro.serve import GemmRequest, GemmService, ServiceConfig

    m, k, n = shape
    rng = np.random.default_rng(seed)
    b_shared = rng.standard_normal((k, n))
    operands = [rng.standard_normal((m, k)) for _ in range(requests)]
    fig = FigureSeries(
        figure_id="serve",
        title=(
            f"Serving throughput vs coalescing limit "
            f"({requests} x {m}x{n}x{k} shared-B requests, "
            f"{workers} worker)"
        ),
        x_label="max_batch",
        x=list(batch_limits),
    )
    throughput: list[float] = []
    batches: list[float] = []
    for max_batch in batch_limits:
        service = GemmService(
            ServiceConfig(
                workers=workers,
                max_batch=max_batch,
                window_s=0.001,
                ft=FTGemmConfig(blocking=BlockingConfig.small(mr=8, nr=6)),
            )
        ).start()
        t0 = time.perf_counter()
        tickets = [
            service.submit(GemmRequest(a, b_shared)) for a in operands
        ]
        service.drain()
        elapsed = time.perf_counter() - t0
        responses = [t.result(30.0) for t in tickets]
        assert all(r.ok for r in responses)
        for a, r in zip(operands, responses):
            np.testing.assert_allclose(
                r.result.c, a @ b_shared, rtol=1e-9, atol=1e-9
            )
        throughput.append(requests / elapsed)
        batches.append(float(service.scheduler.stats.batches))
    fig.add("throughput req/s", throughput)
    fig.add("batches", batches)
    fig.add("speedup vs singleton", [t / throughput[0] for t in throughput])
    best = max(throughput) / throughput[0]
    fig.paper_claims = {
        "serve": "amortized FT fixed costs: coalesced serving beats "
                 "singleton dispatch by a multiple"
    }
    fig.observations = {
        "serve": f"max_batch={batch_limits[int(np.argmax(throughput))]} "
                 f"serves {best:.1f}x the singleton throughput"
    }
    return fig


def panel_cache_table(
    *,
    requests: int = 96,
    warmup: int = 16,
    repeats: int = 3,
    shape: tuple[int, int, int] = (2, 512, 1024),
    pool: int = 4,
    zipf_s: float = 1.2,
    max_batch: int = 4,
    cache_mib: int = 64,
    seed: int = 7,
) -> FigureSeries:
    """Supporting table: hot-B serving throughput, panel cache off vs on.

    Extension beyond the poster — the cross-request complement of
    :func:`serve_table`. Coalescing amortizes B̃ packing *within* a batch;
    the :class:`~repro.gemm.panelcache.PanelCache` amortizes it *across*
    batches when the same weight matrix keeps arriving (the hot-operand
    inference pattern). Requests draw their B from a small Zipf-skewed
    pool; both configurations run the same coalescing scheduler, so any
    gap is the cache's alone. A warm-up phase (excluded from timing)
    absorbs the one-time encode misses — the committed number is the
    steady-state hot-B throughput over the best of ``repeats`` measured
    phases (interference only ever slows a phase down, so best-of is the
    low-noise estimator; both columns get the same treatment). Every
    response is still audited against the NumPy oracle — the cache never
    weakens the ABFT guarantee: reused panels are re-verified against
    their stored checksums at admission.

    Single worker: per-worker drivers already isolate packing state, and
    one worker keeps the off/on comparison free of GIL scheduling noise.
    """
    import time

    import numpy as np

    from repro.serve import GemmRequest, GemmService, ServiceConfig

    m, k, n = shape
    blocking = BlockingConfig(mc=64, kc=512, nc=1024, mr=8, nr=6)
    fig = FigureSeries(
        figure_id="panel_cache",
        title=(
            f"Hot-B serving throughput, panel cache off vs on "
            f"({requests} x {m}x{n}x{k} requests, Zipf(s={zipf_s}) over "
            f"{pool} B operands, max_batch={max_batch}, 1 worker)"
        ),
        x_label="panel cache",
        x=["off", f"{cache_mib} MiB"],
    )
    throughput: list[float] = []
    hits: list[float] = []
    misses: list[float] = []
    for budget in (None, cache_mib * (1 << 20)):
        rng = np.random.default_rng(seed)
        pool_b = [rng.standard_normal((k, n)) for _ in range(pool)]
        ranks = np.arange(1.0, pool + 1.0)
        zipf_p = ranks ** -zipf_s
        zipf_p /= zipf_p.sum()

        def draw(count):
            return [
                (
                    rng.standard_normal((m, k)),
                    pool_b[int(rng.choice(pool, p=zipf_p))],
                )
                for _ in range(count)
            ]

        # operands are pre-generated so the timed loop holds only
        # submit + wait, not rng work
        warm_ops = draw(warmup)
        measured_ops = [draw(requests) for _ in range(repeats)]
        service = GemmService(
            ServiceConfig(
                workers=1,
                max_batch=max_batch,
                window_s=0.002,
                ft=FTGemmConfig(blocking=blocking),
                panel_cache_bytes=budget,
            )
        ).start()

        def phase(ops):
            return [(a, b, service.submit(GemmRequest(a, b))) for a, b in ops]

        # warm-up: absorbs the cold encode misses (and first-call
        # workspace allocation on the off path) so every measured phase
        # sees steady state
        for _, _, ticket in phase(warm_ops):
            ticket.result(120.0)
        best = 0.0
        for ops in measured_ops:
            t0 = time.perf_counter()
            pairs = phase(ops)
            responses = [(a, b, t.result(120.0)) for a, b, t in pairs]
            elapsed = time.perf_counter() - t0
            assert all(r.ok for _, _, r in responses)
            for a, b, r in responses:
                np.testing.assert_allclose(
                    r.result.c, a @ b, rtol=1e-9, atol=1e-9
                )
            best = max(best, requests / elapsed)
        stats = service.stats().get("panel_cache", {})
        service.shutdown()
        throughput.append(best)
        hits.append(float(stats.get("hits", 0)))
        misses.append(float(stats.get("misses", 0)))
    fig.add("throughput req/s", throughput)
    fig.add("cache hits", hits)
    fig.add("cache misses", misses)
    fig.add(
        "speedup vs cache-off", [t / throughput[0] for t in throughput]
    )
    speedup = throughput[1] / throughput[0]
    fig.paper_claims = {
        "panel_cache": "cross-request B̃+checksum reuse: hot-B serving at "
                       ">= 2x the cache-off throughput, on top of "
                       "coalescing"
    }
    fig.observations = {
        "panel_cache": f"cache-on serves {speedup:.2f}x the cache-off "
                       f"throughput ({hits[1]:.0f} hits / "
                       f"{misses[1]:.0f} misses after warm-up)"
    }
    return fig


def kernel_mix_table(
    *,
    requests: int = 160,
    fault_rate: float = 0.3,
    errors_per_call: int = 2,
    seed: int = 0,
) -> FigureSeries:
    """Supporting table: the four-kernel blend (GEMM/GEMV/TRSM/FFT)
    served through the fault-tolerant stack, clean vs fault storm.

    Extension beyond the poster — the ProtectedKernel registry's core
    claim: one serving stack carries the whole FT-BLAS-shaped family
    (ABFT where checksums amortize, DMR where they cannot) and the
    per-kernel oracle audit stays clean even when a storm of transient
    and sticky faults strikes every kernel's own injection sites.
    """
    from repro.serve import (
        ServiceConfig,
        ShapeSpec,
        WorkloadConfig,
        run_serve_workload,
    )

    shapes = (
        ShapeSpec(8, 32, 32, weight=0.35),
        ShapeSpec(24, 16, 1, weight=0.25, kernel="gemv"),
        ShapeSpec(1, 32, 3, weight=0.2, kernel="trsm"),
        ShapeSpec(1, 1, 32, weight=0.2, private_b=True, kernel="fft"),
    )
    config = ServiceConfig(
        workers=2,
        capacity=max(64, 2 * requests),
        max_batch=16,
        ft=FTGemmConfig(blocking=BlockingConfig.small()),
    )
    reports = {}
    for label, rate in (("clean", 0.0), ("storm", fault_rate)):
        workload = WorkloadConfig(
            duration_s=120.0,
            arrival_rate=2000.0,
            max_requests=requests,
            fault_rate=rate,
            fail_stop_fraction=0.0,
            errors_per_call=errors_per_call,
            seed=seed + 17,
            shapes=shapes,
        )
        reports[label] = run_serve_workload(
            config, workload, timeout_s=300.0
        )
    kernels = ["gemm", "gemv", "trsm", "fft"]
    fig = FigureSeries(
        figure_id="kernel_mix",
        title=(
            f"Mixed-kernel serving audit ({requests} requests per run, "
            f"storm fault rate {fault_rate:.0%}, "
            f"{errors_per_call} errors/call)"
        ),
        x_label="kernel",
        x=kernels,
    )
    for label, report in reports.items():
        tallies = report.kernels
        for metric in ("submitted", "ok", "wrong"):
            fig.add(
                f"{label} {metric}",
                [
                    float(tallies.get(k, {}).get(metric, 0))
                    for k in kernels
                ],
            )
    storm = reports["storm"]
    fig.paper_claims = {
        "kernel_mix": "one FT serving stack, whole kernel family: "
                      "zero lost/duplicated/wrong under a fault storm"
    }
    fig.observations = {
        "kernel_mix": (
            f"storm: {storm.submitted} requests, "
            f"ok={storm.responses.get('ok', 0)}, lost={storm.lost}, "
            f"duplicates={storm.duplicates}, wrong={storm.wrong}, "
            f"{storm.throughput_rps:.0f} req/s"
        )
    }
    return fig


ALL_FIGURES = {
    "fig2a": fig2a_serial,
    "fig2b": fig2b_parallel,
    "fig2c": fig2c_serial_injection,
    "fig2d": fig2d_parallel_injection,
    "overhead": overhead_table,
    "reliability": reliability_table,
    "scaling": scaling_table,
    "serve": serve_table,
    "panel_cache": panel_cache_table,
    "kernel_mix": kernel_mix_table,
}


def build(figure_id: str, **kwargs) -> FigureSeries:
    """Build one figure by id (harness / CLI entry point)."""
    if figure_id not in ALL_FIGURES:
        raise ConfigError(
            f"unknown figure {figure_id!r}; known: {sorted(ALL_FIGURES)}"
        )
    return ALL_FIGURES[figure_id](**kwargs)
