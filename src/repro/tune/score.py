"""Score surviving candidates: analytic model plus host-overhead pricing.

:class:`~repro.perfmodel.gemm_model.GemmPerfModel` prices the *machine*
cost of a candidate (simcpu FMA cycles, packing passes, DRAM legs, barrier
sync), but it is deliberately blind to what dominates a pure-Python
implementation: the fixed interpreter cost of every pack/macro-kernel
*invocation* and — in tile dispatch — every micro-tile dispatch. Without
that term every ``mc`` is equally good on an L2-resident shape and the
ranking is noise; with it, the model correctly predicts that a tall-skinny
problem wants the largest legal ``mc`` (fewest block invocations) and that
tile dispatch is only competitive when the tile count is trivial.

The host constants are calibrated once against measurement on this
interpreter (see ``benchmarks/bench_tune_search.py``, which reports the
rank correlation between these predictions and wall-clock truth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gemm.blocking import n_blocks
from repro.perfmodel.constants import ModelConstants
from repro.perfmodel.gemm_model import GemmPerfModel
from repro.perfmodel.roofline import arithmetic_intensity, attainable_gflops
from repro.perfmodel.traffic import gemm_dram_traffic
from repro.simcpu.machine import MachineSpec
from repro.simcpu.vector import VectorUnit
from repro.tune.db import TunedConfig
from repro.util.errors import ConfigError

__all__ = [
    "HOST_BARRIER_SECONDS",
    "HOST_CALL_SECONDS",
    "HOST_TILE_SECONDS",
    "ScoredCandidate",
    "score",
    "score_all",
]

#: Interpreter cost of one pack_a / pack_b / macro-kernel invocation.
HOST_CALL_SECONDS = 40e-6
#: Interpreter cost of one micro-tile dispatch under ``dispatch="tile"``.
HOST_TILE_SECONDS = 30e-6
#: Interpreter cost of one team barrier crossing when ``threads > 1``.
HOST_BARRIER_SECONDS = 150e-6


@dataclass(frozen=True)
class ScoredCandidate:
    """One candidate's predicted cost, decomposed for the funnel report."""

    config: TunedConfig
    model_seconds: float      # GemmPerfModel (machine-side) prediction
    host_seconds: float       # interpreter overhead term
    compute_cycles: float     # raw simcpu FMA cycles (per-core)
    roofline_gflops: float    # attainable bound at this candidate's traffic

    @property
    def predicted_seconds(self) -> float:
        return self.model_seconds + self.host_seconds

    def predicted_gflops(self, m: int, n: int, k: int) -> float:
        return 2.0 * m * n * k / self.predicted_seconds / 1e9


def _host_seconds(cand: TunedConfig, m: int, n: int, k: int) -> float:
    """Invocation-count pricing of the Python driver's loop nest."""
    n_p = n_blocks(k, cand.kc)
    n_j = n_blocks(n, cand.nc)
    n_i = n_blocks(m, cand.mc)
    calls = n_p * n_j          # pack_b, one per (p, j)
    calls += n_p * n_i         # pack_a, one per (p, i) — reused across j
    calls += n_p * n_j * n_i   # macro kernel
    seconds = calls * HOST_CALL_SECONDS
    if cand.dispatch == "tile":
        tiles = n_p * n_blocks(m, cand.mr) * n_blocks(n, cand.nr)
        seconds += tiles * HOST_TILE_SECONDS
    if cand.threads > 1:
        barriers = 1 + 2 * n_p * n_j
        seconds += barriers * HOST_BARRIER_SECONDS
    return seconds


def score(
    cand: TunedConfig,
    m: int,
    n: int,
    k: int,
    machine: MachineSpec,
    *,
    mode: str = "ft",
    constants: ModelConstants | None = None,
) -> ScoredCandidate:
    """Price one candidate for one shape."""
    if min(m, n, k) <= 0:
        raise ConfigError(f"invalid shape {m}x{n}x{k}")
    constants = constants or ModelConstants()
    model = GemmPerfModel(
        machine,
        cand.blocking(),
        mode=mode,
        threads=cand.threads,
        constants=constants,
    )
    breakdown = model.breakdown(m, n, k)
    cycles = VectorUnit(machine).gemm_compute_cycles(m, n, k, cand.mr, cand.nr)
    traffic = gemm_dram_traffic(m, n, k, cand.blocking(), machine, constants)
    roofline = attainable_gflops(
        arithmetic_intensity(breakdown.flops, traffic.total),
        machine,
        threads=cand.threads,
        constants=constants,
    )
    return ScoredCandidate(
        config=cand,
        model_seconds=breakdown.seconds,
        host_seconds=_host_seconds(cand, m, n, k),
        compute_cycles=cycles,
        roofline_gflops=roofline,
    )


def score_all(
    candidates: list[TunedConfig],
    m: int,
    n: int,
    k: int,
    machine: MachineSpec,
    *,
    mode: str = "ft",
    constants: ModelConstants | None = None,
) -> list[ScoredCandidate]:
    """Score every candidate, best (lowest predicted time) first.

    Ties break on the config key so the ordering — and therefore the
    measured top-K and the search winner — is deterministic across runs.
    """
    scored = [
        score(cand, m, n, k, machine, mode=mode, constants=constants)
        for cand in candidates
    ]
    scored.sort(key=lambda s: (s.predicted_seconds, s.config.key()))
    return scored
