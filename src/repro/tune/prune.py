"""Analytic pruning: kill infeasible candidates before anything is priced.

Three cuts, in order, each attributed to a named reason so the funnel is
auditable (``repro tune search`` prints the counts, the tests pin them):

1. **Shape clamping + dedup.** Block sizes larger than the problem are
   clamped to the smallest covering value (``mc`` to the micro-panel grid,
   ``kc``/``nc`` to the dimension); grid points that collapse onto an
   already-seen configuration die as ``duplicate_after_clamp``. This is
   what specializes one generic grid to a shape class.
2. **Hard resource bounds.** Tiles that spill the register file
   (:meth:`VectorUnit.check_tile`), Ã blocks beyond any useful L2
   residency, B̃ panels beyond any useful L3 residency, micro panels that
   cannot stream through L1, and thread counts the shape or machine cannot
   feed. The cache bounds are deliberately *feasibility* bounds (2–4x the
   nominal capacity): partial residency still computes correctly and the
   traffic model prices the spill — only hopeless points die here.
3. **Relative DRAM traffic.** :func:`gemm_dram_traffic` on the actual block
   partition; candidates moving more than ``traffic_factor`` times the
   bytes of the best survivor cannot win on any roofline and are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.perfmodel.constants import ModelConstants
from repro.perfmodel.traffic import gemm_dram_traffic
from repro.simcpu.machine import DOUBLE, MachineSpec
from repro.simcpu.vector import VectorUnit
from repro.tune.db import TunedConfig
from repro.util.errors import ConfigError

__all__ = ["PruneReport", "prune"]

#: Ã block feasibility bound, in multiples of L2 capacity.
L2_FEASIBLE_FACTOR = 2.0
#: B̃ panel feasibility bound, in multiples of last-level capacity.
L3_FEASIBLE_FACTOR = 2.0
#: Micro-panel streaming bound, in multiples of L1 capacity.
L1_FEASIBLE_FACTOR = 4.0


def _ceil_to(x: int, step: int) -> int:
    return -(-x // step) * step


@dataclass
class PruneReport:
    """Survivors plus a reason→count ledger of everything rejected."""

    survivors: list[TunedConfig] = field(default_factory=list)
    rejected: dict[str, int] = field(default_factory=dict)

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    @property
    def n_rejected(self) -> int:
        return sum(self.rejected.values())

    @property
    def total(self) -> int:
        return len(self.survivors) + self.n_rejected


def _clamp_to_shape(cand: TunedConfig, m: int, n: int, k: int) -> TunedConfig:
    """Shrink oversize block sizes to the smallest value covering the shape."""
    mc = min(cand.mc, _ceil_to(m, cand.mr))
    kc = min(cand.kc, k)
    nc = min(cand.nc, max(cand.nr, _ceil_to(n, cand.nr)))
    if (mc, kc, nc) == (cand.mc, cand.kc, cand.nc):
        return cand
    return TunedConfig(
        mc=mc, kc=kc, nc=nc, mr=cand.mr, nr=cand.nr,
        dispatch=cand.dispatch, threads=cand.threads, source=cand.source,
    )


def prune(
    candidates: list[TunedConfig],
    machine: MachineSpec,
    m: int,
    n: int,
    k: int,
    *,
    constants: ModelConstants | None = None,
    traffic_factor: float = 2.0,
) -> PruneReport:
    """Apply the three analytic cuts; survivors keep enumeration order."""
    if min(m, n, k) <= 0:
        raise ConfigError(f"invalid shape {m}x{n}x{k}")
    if traffic_factor < 1.0:
        raise ConfigError(f"traffic_factor must be >= 1, got {traffic_factor}")
    constants = constants or ModelConstants()
    vector = VectorUnit(machine)
    l1 = machine.cache(1).size_bytes
    l2 = machine.cache(2).size_bytes
    l3 = machine.last_level.size_bytes
    report = PruneReport()

    seen: set[tuple] = set()
    feasible: list[TunedConfig] = []
    for cand in candidates:
        cand = _clamp_to_shape(cand, m, n, k)
        if cand.key() in seen:
            report.reject("duplicate_after_clamp")
            continue
        seen.add(cand.key())
        try:
            vector.check_tile(cand.mr, cand.nr)
        except ConfigError:
            report.reject("register_spill")
            continue
        if cand.mc * cand.kc * DOUBLE > L2_FEASIBLE_FACTOR * l2:
            report.reject("a_block_exceeds_l2")
            continue
        if cand.kc * cand.nc * DOUBLE > L3_FEASIBLE_FACTOR * l3:
            report.reject("b_panel_exceeds_l3")
            continue
        if cand.kc * cand.nr * DOUBLE > L1_FEASIBLE_FACTOR * l1:
            report.reject("micro_panel_exceeds_l1")
            continue
        if cand.threads > machine.cores:
            report.reject("threads_exceed_cores")
            continue
        if cand.threads > m:
            report.reject("threads_exceed_rows")
            continue
        feasible.append(cand)

    if not feasible:
        return report

    traffic = [
        gemm_dram_traffic(m, n, k, cand.blocking(), machine, constants).total
        for cand in feasible
    ]
    floor = min(traffic)
    for cand, bytes_moved in zip(feasible, traffic):
        if floor > 0 and bytes_moved > traffic_factor * floor:
            report.reject("dram_traffic")
        else:
            report.survivors.append(cand)
    return report
