"""CLI entry points for ``python -m repro tune {search,show,apply}``.

The ``tune`` subcommand keeps its historic bare form (``repro tune`` derives
blocking parameters analytically for a — possibly rescaled — machine model;
that path lives in ``repro.__main__``) and gains three DSE actions:

- ``search`` — run the enumerate→prune→score→measure funnel over one or
  more shape classes and persist the winners into a :class:`TuningDB`;
- ``show``   — print a DB's entries (and why it would be ignored, if stale);
- ``apply``  — resolve one shape against a DB and run the tuned config
  head-to-head against the static default on real operands.

``--smoke`` is the CI shape of ``search``: the
:meth:`SearchSpace.small` grid on two seconds-scale shape classes, one
measurement repeat, DB written next to the working directory so the job
can upload it as an artifact.
"""

from __future__ import annotations

import json

from repro.simcpu.machine import MachineSpec
from repro.util.errors import ReproError

#: machine models the tune/serve CLI can bind a DB to
MACHINES = {
    "cascade-lake": MachineSpec.cascade_lake_w2255,
    "small-test": MachineSpec.small_test_machine,
}

#: default shape classes of ``--smoke``: one tall-skinny, one small-K —
#: the regimes where the paper's static blocking is furthest from optimal
SMOKE_SHAPES = ("256x48x24", "96x64x8")


def machine_for(name: str) -> MachineSpec:
    try:
        return MACHINES[name]()
    except KeyError:
        raise ReproError(
            f"unknown machine {name!r}; choose from {sorted(MACHINES)}"
        ) from None


def _print_result(result) -> None:
    shape = result.shape
    print(f"shape {shape.label}  (bucket {result.bucket})")
    rejected = ", ".join(
        f"{reason}={count}" for reason, count in sorted(result.rejected.items())
    ) or "none"
    print(
        f"  funnel   : {result.n_candidates} candidates -> "
        f"{result.n_scored} scored (rejected: {rejected})"
    )
    for i, scored in enumerate(result.top):
        cfg = scored.config
        line = (
            f"  top{i}     : mc={cfg.mc} kc={cfg.kc} nc={cfg.nc} "
            f"{cfg.mr}x{cfg.nr} {cfg.dispatch} t{cfg.threads} "
            f"pred={scored.predicted_seconds * 1e3:.2f}ms"
        )
        if result.measured:
            line += f" meas={result.measurements[i].seconds * 1e3:.2f}ms"
        print(line)
    static = result.static_scored
    line = (
        f"  static   : mc={static.config.mc} kc={static.config.kc} "
        f"nc={static.config.nc} {static.config.mr}x{static.config.nr} "
        f"pred={static.predicted_seconds * 1e3:.2f}ms"
    )
    if result.static_measurement is not None:
        line += f" meas={result.static_measurement.seconds * 1e3:.2f}ms"
    print(line)
    win = result.winner
    print(
        f"  winner   : mc={win.mc} kc={win.kc} nc={win.nc} "
        f"{win.mr}x{win.nr} {win.dispatch} t{win.threads} "
        f"coalesce={win.coalesce_limit or 'uncapped'} ({win.source})"
    )
    if result.speedup_vs_static is not None:
        print(f"  speedup  : {result.speedup_vs_static:.2f}x vs static")
    if result.rank_correlation is not None:
        print(f"  rank rho : {result.rank_correlation:+.2f} "
              f"(predicted vs measured, top-{len(result.top)})")


def cmd_search(args) -> int:
    from repro.gemm.blocking import BlockingConfig
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracer import NULL_TRACER
    from repro.tune.db import TuningDB
    from repro.tune.search import ShapeClass, run_search
    from repro.tune.space import SearchSpace

    machine = machine_for(args.machine)
    space_name = args.space
    shapes = list(args.shape or [])
    measure = args.measure
    repeats = args.repeats
    if args.smoke:
        space_name = "small"
        shapes = shapes or list(SMOKE_SHAPES)
        repeats = 1
    space = SearchSpace.named(space_name)
    if not shapes:
        raise ReproError("tune search needs at least one --shape MxNxK")
    static = (
        BlockingConfig.small() if space_name == "small" else BlockingConfig()
    )
    db = TuningDB.for_machine(machine, path=args.db)
    metrics = MetricsRegistry()
    tracer = None
    if args.trace:
        from repro.obs import Tracer, write_chrome_trace

        tracer = Tracer(metrics=metrics)
    print(
        f"machine {machine.name}  space {space.name!r}  "
        f"fingerprint {db.fingerprint}"
    )
    results = run_search(
        [ShapeClass.parse(s) for s in shapes],
        machine=machine,
        space=space,
        db=db,
        static=static,
        top_k=args.top_k,
        measure=measure,
        repeats=repeats,
        seed=args.seed,
        metrics=metrics,
        tracer=tracer if tracer is not None else NULL_TRACER,
    )
    for result in results:
        _print_result(result)
    db.save()
    print(f"db       : {len(db)} entries -> {db.path}")
    counters = metrics.snapshot()["counters"]
    funnel = {
        name: int(counters.get(f"tune.{name}", 0))
        for name in ("shapes", "candidates", "pruned", "scored", "measured")
    }
    print("counters : " + ", ".join(f"{k}={v}" for k, v in funnel.items()))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(
                [result.to_dict() for result in results],
                fh, indent=2, sort_keys=True,
            )
        print(f"report   : {args.json}")
    if tracer is not None:
        write_chrome_trace(args.trace, tracer)
        print(f"trace    : {len(tracer.events)} events -> {args.trace}")
    return 0


def cmd_show(args) -> int:
    from repro.tune.db import TuningDB

    machine = machine_for(args.machine)
    db = TuningDB.load(args.db, machine=machine)
    print(f"db        : {args.db}")
    print(f"machine   : {db.machine_name or '<unknown>'} "
          f"(fingerprint {db.fingerprint or '<none>'})")
    if db.stale:
        print(f"STALE     : {db.stale_reason} — every lookup falls back "
              f"to the static config")
    if not db.entries:
        print("entries   : none")
        return 0
    print(f"entries   : {len(db)}")
    for (bucket, dtype), tuned in sorted(db.entries.items()):
        perf = ""
        if tuned.measured_gflops:
            perf = f"  {tuned.measured_gflops:.3f} gflops measured"
        print(
            f"  {bucket}/{dtype}: mc={tuned.mc} kc={tuned.kc} nc={tuned.nc} "
            f"{tuned.mr}x{tuned.nr} {tuned.dispatch} t{tuned.threads} "
            f"coalesce={tuned.coalesce_limit or 'uncapped'} "
            f"({tuned.source}){perf}"
        )
    return 0


def cmd_apply(args) -> int:
    from repro.gemm.blocking import BlockingConfig
    from repro.tune.db import TunedConfig, TuningDB
    from repro.tune.measure import measure_candidate
    from repro.tune.search import ShapeClass

    if not args.shape:
        raise ReproError("tune apply needs exactly one --shape MxNxK")
    if len(args.shape) > 1:
        raise ReproError("tune apply takes a single --shape")
    shape = ShapeClass.parse(args.shape[0])
    machine = machine_for(args.machine)
    db = TuningDB.load(args.db, machine=machine)
    tuned = db.resolve(shape.m, shape.n, shape.k)
    if tuned is None:
        reason = db.stale_reason if db.stale else "no entry for this bucket"
        print(f"no tuned config for {shape.label}: {reason}")
        print("the service would run this shape on its static config")
        return 1
    static = TunedConfig.from_blocking(
        BlockingConfig.small() if args.space == "small" else BlockingConfig(),
        source="static",
    )
    t_static = measure_candidate(
        static, shape.m, shape.n, shape.k,
        seed=args.seed, repeats=args.repeats,
    )
    t_tuned = measure_candidate(
        tuned, shape.m, shape.n, shape.k,
        seed=args.seed, repeats=args.repeats,
    )
    print(f"shape  : {shape.label}")
    print(f"tuned  : mc={tuned.mc} kc={tuned.kc} nc={tuned.nc} "
          f"{tuned.mr}x{tuned.nr} {tuned.dispatch} t{tuned.threads} "
          f"-> {t_tuned.seconds * 1e3:.2f}ms "
          f"(verified={t_tuned.verified})")
    print(f"static : mc={static.mc} kc={static.kc} nc={static.nc} "
          f"{static.mr}x{static.nr} "
          f"-> {t_static.seconds * 1e3:.2f}ms "
          f"(verified={t_static.verified})")
    print(f"speedup: {t_static.seconds / t_tuned.seconds:.2f}x")
    return 0 if t_tuned.verified and t_static.verified else 1
