"""Measurement confirmation: run the top-K candidates on real hardware.

Everything before this stage is a model; this stage is the ground truth
that keeps the model honest. Each candidate executes the *actual* protected
GEMM (``FTGemm`` / ``ParallelFTGemm`` with a threads backend) on seeded
operands, best-of-N wall clock, and the search reports the Spearman rank
correlation between predicted and measured orderings so a drifting host
model is visible rather than silently mis-ranking winners.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.tune.db import TunedConfig
from repro.util.errors import ConfigError
from repro.util.rng import derive_seed, make_rng

__all__ = ["Measurement", "measure_candidate", "spearman"]


@dataclass(frozen=True)
class Measurement:
    """Best-of-N wall clock of one candidate on one shape."""

    seconds: float
    gflops: float
    verified: bool
    repeats: int


def _driver(cand: TunedConfig, *, scheme: str):
    config = FTGemmConfig(blocking=cand.blocking(), checksum_scheme=scheme)
    if cand.threads > 1:
        return ParallelFTGemm(config, n_threads=cand.threads, backend="threads")
    return FTGemm(config)


def measure_candidate(
    cand: TunedConfig,
    m: int,
    n: int,
    k: int,
    *,
    seed: int = 0,
    repeats: int = 2,
    warmup: int = 1,
    scheme: str = "dual",
) -> Measurement:
    """Time ``cand`` on seeded ``m x n x k`` operands (best of ``repeats``)."""
    if repeats < 1:
        raise ConfigError(f"repeats must be >= 1, got {repeats}")
    rng = make_rng(derive_seed(seed, "tune.measure", m, n, k))
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    driver = _driver(cand, scheme=scheme)
    verified = True
    for _ in range(warmup):
        driver.gemm(a, b)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = driver.gemm(a, b)
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        verified = verified and bool(getattr(result, "verified", True))
    return Measurement(
        seconds=best,
        gflops=2.0 * m * n * k / best / 1e9,
        verified=verified,
        repeats=repeats,
    )


def _ranks(values: list[float]) -> list[float]:
    """Average ranks (1-based), ties sharing their mean rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for idx in order[i : j + 1]:
            ranks[idx] = mean_rank
        i = j + 1
    return ranks


def spearman(xs: list[float], ys: list[float]) -> float:
    """Spearman rank correlation; 0.0 when undefined (n < 2 or constant)."""
    if len(xs) != len(ys):
        raise ConfigError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        return 0.0
    rx, ry = _ranks(list(xs)), _ranks(list(ys))
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0.0 or vy == 0.0:
        return 0.0
    return cov / (vx * vy) ** 0.5
