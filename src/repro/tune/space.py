"""Search-space definition for the blocking-parameter DSE.

A :class:`SearchSpace` is a named cross-product of candidate values for
every knob the serving path can act on: the three cache-block sizes, the
register-tile shape, the macro-kernel dispatch mode, and the worker thread
count. ``coalesce_limits`` is carried alongside but *not* enumerated — the
scheduler cap is picked analytically from the winning config's footprint
(see :func:`repro.tune.search.choose_coalesce_limit`) because a single-call
measurement cannot rank it.

Enumeration applies only machine-independent legality (``mc % mr``, tile
within block); machine-dependent feasibility (register file, cache
footprints, DRAM traffic) is the prune stage's job, so the funnel report
can say *why* each candidate died.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.tune.db import TunedConfig
from repro.util.errors import ConfigError

__all__ = ["SearchSpace"]


@dataclass(frozen=True)
class SearchSpace:
    """A named grid of candidate execution configurations."""

    name: str
    mc: tuple[int, ...]
    kc: tuple[int, ...]
    nc: tuple[int, ...]
    tiles: tuple[tuple[int, int], ...]
    dispatch: tuple[str, ...] = ("auto",)
    threads: tuple[int, ...] = (1,)
    coalesce_limits: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        for field_name in ("mc", "kc", "nc", "tiles", "dispatch", "threads"):
            if not getattr(self, field_name):
                raise ConfigError(f"search space {self.name!r}: {field_name} is empty")

    # ------------------------------------------------------------ enumeration
    def candidates(self) -> list[TunedConfig]:
        """Every legal point of the grid, in deterministic order.

        Illegal combinations (``mc`` not a multiple of ``mr``, tile larger
        than its block) are skipped silently — they are grid artifacts, not
        interesting rejections.
        """
        out: list[TunedConfig] = []
        for (mr, nr), mc, kc, nc, dispatch, threads in product(
            self.tiles, self.mc, self.kc, self.nc, self.dispatch, self.threads
        ):
            if mc % mr != 0 or mr > mc or nr > nc:
                continue
            out.append(
                TunedConfig(
                    mc=mc, kc=kc, nc=nc, mr=mr, nr=nr,
                    dispatch=dispatch, threads=threads, source="search",
                )
            )
        return out

    def size(self) -> int:
        return len(self.candidates())

    # ------------------------------------------------------- canned instances
    @staticmethod
    def small() -> "SearchSpace":
        """A seconds-scale space around :meth:`BlockingConfig.small` — the
        grid the CI smoke and the doc walkthrough search."""
        return SearchSpace(
            name="small",
            mc=(4, 8, 16),
            kc=(4, 8, 16),
            nc=(12, 16, 32),
            tiles=((4, 4),),
            dispatch=("auto", "tile"),
            threads=(1,),
            coalesce_limits=(0, 4),
        )

    @staticmethod
    def default() -> "SearchSpace":
        """The production grid: brackets the paper's Cascade Lake point
        (192, 384, 9216, 16x14) with alternatives that win on shapes the
        paper never tuned for (tall-skinny, small-K)."""
        return SearchSpace(
            name="default",
            mc=(64, 128, 192, 256, 512, 1024, 2048),
            kc=(32, 64, 128, 256, 384),
            nc=(64, 256, 1024, 4096, 9216),
            tiles=((16, 14), (8, 8), (8, 6)),
            dispatch=("auto",),
            threads=(1, 2),
            coalesce_limits=(0, 4, 16),
        )

    @staticmethod
    def named(name: str) -> "SearchSpace":
        """Look up a canned space by name (the CLI's ``--space`` flag)."""
        spaces = {"small": SearchSpace.small, "default": SearchSpace.default}
        if name not in spaces:
            raise ConfigError(
                f"unknown search space {name!r}; choose from {sorted(spaces)}"
            )
        return spaces[name]()
