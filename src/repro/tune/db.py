"""Persistent shape→config tuning database.

The DSE harness (:mod:`repro.tune.search`) distills each searched shape
class into one winning :class:`TunedConfig`; this module stores those
winners on disk as versioned JSON keyed by ``(shape bucket, dtype)`` under
a **machine fingerprint**, and serves them back to the serving tier at
admission time.

Design rules:

- **Shape buckets, not exact shapes.** Requests rarely repeat exact
  dimensions; :func:`shape_bucket` rounds each of (m, n, k) up to the next
  power of two so one searched representative covers its whole class.
- **Byte-stable JSON.** :meth:`TuningDB.to_json` sorts keys and fixes the
  indentation, so saving the same entries twice yields identical bytes —
  the round-trip tests and the CI artifact diff rely on this.
- **Fingerprint invalidation, never wrong answers.** A DB recorded on one
  machine (or an older schema version) is *stale* on another: it loads
  fine, but :meth:`TuningDB.resolve` answers ``None`` for everything, so
  the service silently falls back to its static config instead of applying
  another machine's blocking parameters.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.gemm.blocking import BlockingConfig
from repro.simcpu.machine import MachineSpec
from repro.util.errors import ConfigError

__all__ = [
    "SCHEMA_VERSION",
    "TunedConfig",
    "TuningDB",
    "machine_fingerprint",
    "shape_bucket",
]

#: Bump whenever the on-disk layout or the meaning of a field changes; a
#: version-mismatched file loads as stale (resolve always misses).
SCHEMA_VERSION = 1


def _bucket_dim(x: int) -> int:
    """Round a dimension up to the next power of two (minimum 1)."""
    if x < 1:
        raise ConfigError(f"shape dimension must be >= 1, got {x}")
    return 1 << (int(x) - 1).bit_length()


def shape_bucket(m: int, n: int, k: int) -> str:
    """The shape-class key of an ``m x n x k`` problem, e.g. ``m512n64k32``.

    Dimensions are rounded up to powers of two so every request within a
    ~2x band shares the entry its representative was tuned on.
    """
    return f"m{_bucket_dim(m)}n{_bucket_dim(n)}k{_bucket_dim(k)}"


def machine_fingerprint(machine: MachineSpec) -> str:
    """A 16-hex-digit stable digest of everything the search depends on.

    Derived from the full :class:`MachineSpec` (cores, frequencies, ports,
    lanes, every cache level, memory system), so *any* change to the
    modeled machine invalidates previously recorded tunings.
    """
    spec = dataclasses.asdict(machine)
    blob = json.dumps(spec, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TunedConfig:
    """One shape class's winning execution configuration.

    The first six fields mirror :class:`~repro.gemm.blocking.BlockingConfig`;
    ``threads`` selects serial vs team execution inside a worker, and
    ``coalesce_limit`` caps how many compatible requests the scheduler may
    stack into one batch for this class (0 means "no extra cap"). The
    trailing metadata records where the entry came from and how fast the
    search predicted/measured it, for `repro tune show` and the CI artifact.
    """

    mc: int
    kc: int
    nc: int
    mr: int = 16
    nr: int = 14
    dispatch: str = "auto"
    threads: int = 1
    coalesce_limit: int = 0
    predicted_gflops: float = 0.0
    measured_gflops: float = 0.0
    source: str = "search"

    def __post_init__(self) -> None:
        # constructing the BlockingConfig runs the full legality check
        # (positive, mc % mr, tile vs block bounds) exactly once, up front
        self.blocking()
        if not isinstance(self.threads, int) or self.threads < 1:
            raise ConfigError(f"threads must be a positive int, got {self.threads!r}")
        if not isinstance(self.coalesce_limit, int) or self.coalesce_limit < 0:
            raise ConfigError(
                f"coalesce_limit must be a non-negative int, got {self.coalesce_limit!r}"
            )

    # ------------------------------------------------------------ conversion
    def blocking(self) -> BlockingConfig:
        """The blocking parameters as the GEMM layer's config object."""
        return BlockingConfig(
            mc=self.mc, kc=self.kc, nc=self.nc,
            mr=self.mr, nr=self.nr, dispatch=self.dispatch,
        )

    @classmethod
    def from_blocking(
        cls,
        blocking: BlockingConfig,
        *,
        threads: int = 1,
        coalesce_limit: int = 0,
        source: str = "static",
    ) -> "TunedConfig":
        return cls(
            mc=blocking.mc, kc=blocking.kc, nc=blocking.nc,
            mr=blocking.mr, nr=blocking.nr, dispatch=blocking.dispatch,
            threads=threads, coalesce_limit=coalesce_limit, source=source,
        )

    def key(self) -> tuple:
        """The execution-relevant identity (metadata excluded) — what the
        worker pools key their driver caches on."""
        return (self.mc, self.kc, self.nc, self.mr, self.nr,
                self.dispatch, self.threads)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "TunedConfig":
        if not isinstance(data, dict):
            raise ConfigError(f"tuned config must be a mapping, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(cls)}
        missing = {"mc", "kc", "nc"} - set(data)
        if missing:
            raise ConfigError(f"tuned config missing fields: {sorted(missing)}")
        return cls(**{name: value for name, value in data.items() if name in known})


@dataclass
class TuningDB:
    """In-memory view of one machine's shape→config store.

    ``stale`` marks a DB whose file did not match this process's machine
    fingerprint or schema version: it still *shows* (so ``repro tune show``
    can explain why nothing applies) but every :meth:`resolve` misses.
    """

    fingerprint: str
    machine_name: str = ""
    path: str | None = None
    entries: dict[tuple[str, str], TunedConfig] = field(default_factory=dict)
    stale: bool = False
    stale_reason: str = ""

    # ---------------------------------------------------------- construction
    @classmethod
    def for_machine(cls, machine: MachineSpec, *, path: str | None = None) -> "TuningDB":
        """A fresh, empty DB bound to ``machine``'s fingerprint."""
        return cls(
            fingerprint=machine_fingerprint(machine),
            machine_name=machine.name,
            path=path,
        )

    @classmethod
    def load(cls, path: str, *, machine: MachineSpec | None = None) -> "TuningDB":
        """Load a DB file; mismatches yield a *stale* DB, not an error.

        With ``machine`` given (the serving path), the file's fingerprint
        must match the current machine or every lookup falls back; without
        it (inspection tools), the file is trusted as-is.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot load tuning DB {path!r}: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigError(f"tuning DB {path!r} is not a JSON object")
        db = cls(
            fingerprint=str(payload.get("fingerprint", "")),
            machine_name=str(payload.get("machine", "")),
            path=path,
        )
        version = payload.get("version")
        if version != SCHEMA_VERSION:
            db.stale = True
            db.stale_reason = f"schema version {version!r} != {SCHEMA_VERSION}"
        elif machine is not None:
            want = machine_fingerprint(machine)
            if db.fingerprint != want:
                db.stale = True
                db.stale_reason = (
                    f"machine fingerprint {db.fingerprint or '<none>'} does not "
                    f"match this machine ({want})"
                )
        for key, entry in (payload.get("entries") or {}).items():
            bucket, _, dtype = str(key).partition("/")
            db.entries[(bucket, dtype or "float64")] = TunedConfig.from_dict(entry)
        return db

    # --------------------------------------------------------------- queries
    def resolve(self, m: int, n: int, k: int, *, dtype: str = "float64") -> TunedConfig | None:
        """The tuned config for this shape class, or ``None`` (use static)."""
        if self.stale:
            return None
        return self.entries.get((shape_bucket(m, n, k), dtype))

    def put(self, m: int, n: int, k: int, tuned: TunedConfig, *, dtype: str = "float64") -> str:
        """Record ``tuned`` as the winner for the shape's bucket; returns the
        bucket key it landed under."""
        bucket = shape_bucket(m, n, k)
        self.entries[(bucket, dtype)] = tuned
        return bucket

    def __len__(self) -> int:
        return len(self.entries)

    # ----------------------------------------------------------- persistence
    def to_json(self) -> str:
        """Byte-stable serialization: sorted keys, fixed indent, one
        trailing newline — identical entries always produce identical bytes."""
        payload = {
            "version": SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "machine": self.machine_name,
            "entries": {
                f"{bucket}/{dtype}": tuned.to_dict()
                for (bucket, dtype), tuned in self.entries.items()
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def save(self, path: str | None = None) -> str:
        """Write atomically (tmp + rename) to ``path`` or the bound path."""
        target = path or self.path
        if not target:
            raise ConfigError("tuning DB has no path to save to")
        tmp = f"{target}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
        os.replace(tmp, target)
        self.path = target
        return target
