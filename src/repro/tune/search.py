"""The DSE orchestrator: enumerate → prune → score → measure → persist.

One :func:`run_search` call walks a list of shape classes through the
funnel and records each winner in a :class:`~repro.tune.db.TuningDB`. The
static configuration is always measured alongside the predicted top-K, and
the winner is whatever actually ran fastest — so a recorded entry can never
be slower than the fallback it replaces (if the static config wins, the
entry *is* the static config, tagged ``source="static"``).

Observability mirrors every other subsystem: ``tune.*`` counters count the
funnel stages, and each stage runs under a trace span so a search shows up
in Perfetto like a serve run does.

Determinism: with ``measure=False`` the search is a pure function of
(space, shapes, machine) — scoring ties break on the config key — and with
measurement enabled the operands are derived from ``seed``, so repeated
runs on the same machine agree up to timer noise.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.gemm.blocking import BlockingConfig
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.perfmodel.constants import ModelConstants
from repro.simcpu.machine import DOUBLE, MachineSpec
from repro.tune.db import TunedConfig, TuningDB, shape_bucket
from repro.tune.measure import Measurement, measure_candidate, spearman
from repro.tune.prune import prune
from repro.tune.score import ScoredCandidate, score, score_all
from repro.tune.space import SearchSpace
from repro.util.errors import ConfigError

__all__ = ["ShapeClass", "ShapeSearchResult", "choose_coalesce_limit", "run_search"]


@dataclass(frozen=True)
class ShapeClass:
    """One representative problem the search tunes for."""

    m: int
    n: int
    k: int
    name: str = ""

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ConfigError(f"invalid shape {self.m}x{self.n}x{self.k}")

    @property
    def label(self) -> str:
        return self.name or f"{self.m}x{self.n}x{self.k}"

    @classmethod
    def parse(cls, text: str) -> "ShapeClass":
        """Parse the CLI's ``MxNxK`` / ``M,N,K`` shape syntax."""
        parts = text.replace("x", ",").split(",")
        if len(parts) != 3:
            raise ConfigError(f"shape must be MxNxK, got {text!r}")
        try:
            m, n, k = (int(p) for p in parts)
        except ValueError as exc:
            raise ConfigError(f"shape must be MxNxK of ints, got {text!r}") from exc
        return cls(m=m, n=n, k=k)


@dataclass(frozen=True)
class ShapeSearchResult:
    """Everything one shape's walk through the funnel produced."""

    shape: ShapeClass
    bucket: str
    n_candidates: int
    rejected: dict[str, int]
    n_scored: int
    top: tuple[ScoredCandidate, ...]
    measurements: tuple[Measurement, ...]  # parallel to ``top``; empty if unmeasured
    static_scored: ScoredCandidate
    static_measurement: Measurement | None
    winner: TunedConfig
    rank_correlation: float | None  # Spearman(predicted, measured) over top-K

    @property
    def measured(self) -> bool:
        return bool(self.measurements)

    @property
    def speedup_vs_static(self) -> float | None:
        """Measured static/winner time ratio (>1 means the DB entry wins)."""
        if self.static_measurement is None:
            return None
        winner_seconds = min(
            (meas.seconds for meas in self.measurements), default=None
        )
        if winner_seconds is None:
            return None
        return self.static_measurement.seconds / min(
            winner_seconds, self.static_measurement.seconds
        )

    def to_dict(self) -> dict:
        """JSON-friendly summary (the CLI's ``--json`` and the benchmark)."""
        return {
            "shape": {"m": self.shape.m, "n": self.shape.n, "k": self.shape.k,
                      "name": self.shape.label},
            "bucket": self.bucket,
            "candidates": self.n_candidates,
            "rejected": dict(sorted(self.rejected.items())),
            "scored": self.n_scored,
            "top": [
                {
                    "config": s.config.to_dict(),
                    "predicted_seconds": s.predicted_seconds,
                    "measured_seconds": (
                        self.measurements[i].seconds if self.measured else None
                    ),
                }
                for i, s in enumerate(self.top)
            ],
            "static": {
                "config": self.static_scored.config.to_dict(),
                "predicted_seconds": self.static_scored.predicted_seconds,
                "measured_seconds": (
                    self.static_measurement.seconds
                    if self.static_measurement is not None
                    else None
                ),
            },
            "winner": self.winner.to_dict(),
            "rank_correlation": self.rank_correlation,
            "speedup_vs_static": self.speedup_vs_static,
        }


def choose_coalesce_limit(
    shape: ShapeClass,
    machine: MachineSpec,
    options: tuple[int, ...],
    *,
    constants: ModelConstants | None = None,
) -> int:
    """Pick the scheduler's batch cap for this class analytically.

    Coalescing stacks the A operands of compatible requests into one tall
    GEMM; a single call cannot measure it, but its constraint is plain
    footprint arithmetic: the stacked ``limit * m x k`` operand should stay
    within the effective last-level cache or the batched call starts paying
    DRAM for what separate calls kept resident. We return the largest
    option whose stack fits — or 0 ("no extra cap") when even the largest
    fits, since capping below feasibility only costs batching wins.
    """
    constants = constants or ModelConstants()
    budget = machine.last_level.size_bytes * constants.l3_effective_fraction
    per_request = shape.m * shape.k * DOUBLE
    caps = sorted(o for o in options if o > 0)
    if not caps or per_request * caps[-1] <= budget:
        return 0
    fitting = [o for o in caps if per_request * o <= budget]
    return fitting[-1] if fitting else caps[0]


def run_search(
    shapes: list[ShapeClass],
    *,
    machine: MachineSpec | None = None,
    space: SearchSpace | None = None,
    db: TuningDB | None = None,
    static: BlockingConfig | None = None,
    top_k: int = 3,
    measure: bool = True,
    repeats: int = 2,
    seed: int = 0,
    mode: str = "ft",
    constants: ModelConstants | None = None,
    metrics=NULL_METRICS,
    tracer=NULL_TRACER,
) -> list[ShapeSearchResult]:
    """Tune every shape class; record winners into ``db`` when given."""
    if top_k < 1:
        raise ConfigError(f"top_k must be >= 1, got {top_k}")
    machine = machine or MachineSpec.cascade_lake_w2255()
    space = space or SearchSpace.default()
    static = static or BlockingConfig()
    constants = constants or ModelConstants()
    tr = tracer if tracer.enabled else None
    results: list[ShapeSearchResult] = []

    candidates = space.candidates()
    for shape in shapes:
        metrics.inc("tune.shapes")
        span = tr.span("tune.search", cat="tune", args={
            "shape": shape.label, "space": space.name,
        }) if tr else _NULL_CTX
        with span:
            metrics.inc("tune.candidates", len(candidates))
            with tr.span("tune.prune", cat="tune") if tr else _NULL_CTX:
                report = prune(
                    candidates, machine, shape.m, shape.n, shape.k,
                    constants=constants,
                )
            metrics.inc("tune.pruned", report.n_rejected)

            with tr.span("tune.score", cat="tune") if tr else _NULL_CTX:
                scored = score_all(
                    report.survivors, shape.m, shape.n, shape.k, machine,
                    mode=mode, constants=constants,
                )
            metrics.inc("tune.scored", len(scored))
            if not scored:
                raise ConfigError(
                    f"search space {space.name!r} has no feasible candidate "
                    f"for shape {shape.label} on {machine.name}"
                )
            top = tuple(scored[:top_k])
            static_cand = TunedConfig.from_blocking(static, source="static")
            static_scored = score(
                static_cand, shape.m, shape.n, shape.k, machine,
                mode=mode, constants=constants,
            )

            measurements: tuple[Measurement, ...] = ()
            static_meas: Measurement | None = None
            rank_corr: float | None = None
            if measure:
                with tr.span("tune.measure", cat="tune",
                             args={"top_k": len(top)}) if tr else _NULL_CTX:
                    measurements = tuple(
                        measure_candidate(
                            s.config, shape.m, shape.n, shape.k,
                            seed=seed, repeats=repeats,
                        )
                        for s in top
                    )
                    static_meas = measure_candidate(
                        static_cand, shape.m, shape.n, shape.k,
                        seed=seed, repeats=repeats,
                    )
                metrics.inc("tune.measured", len(measurements) + 1)
                if len(top) >= 2:
                    rank_corr = spearman(
                        [s.predicted_seconds for s in top],
                        [meas.seconds for meas in measurements],
                    )
                best_i = min(
                    range(len(top)), key=lambda i: measurements[i].seconds
                )
                if static_meas.seconds <= measurements[best_i].seconds:
                    winner, winner_meas = static_cand, static_meas
                    winner_pred = static_scored
                    metrics.inc("tune.winner_static")
                else:
                    winner = top[best_i].config
                    winner_meas = measurements[best_i]
                    winner_pred = top[best_i]
                    metrics.inc("tune.winner_search")
            else:
                winner, winner_meas, winner_pred = top[0].config, None, top[0]
                metrics.inc("tune.winner_search")

            winner = _finalize(
                winner, winner_pred, winner_meas, shape, machine,
                space.coalesce_limits, constants,
            )
            bucket = shape_bucket(shape.m, shape.n, shape.k)
            if db is not None:
                db.put(shape.m, shape.n, shape.k, winner)
                metrics.inc("tune.db_entries")

            results.append(ShapeSearchResult(
                shape=shape,
                bucket=bucket,
                n_candidates=len(candidates),
                rejected=dict(report.rejected),
                n_scored=len(scored),
                top=top,
                measurements=measurements,
                static_scored=static_scored,
                static_measurement=static_meas,
                winner=winner,
                rank_correlation=rank_corr,
            ))
    return results


def _finalize(
    winner: TunedConfig,
    predicted: ScoredCandidate,
    measured: Measurement | None,
    shape: ShapeClass,
    machine: MachineSpec,
    coalesce_options: tuple[int, ...],
    constants: ModelConstants,
) -> TunedConfig:
    """Attach the analytic coalesce cap and the perf metadata to a winner."""
    return dataclasses.replace(
        winner,
        coalesce_limit=choose_coalesce_limit(
            shape, machine, coalesce_options, constants=constants
        ),
        predicted_gflops=predicted.predicted_gflops(shape.m, shape.n, shape.k),
        measured_gflops=measured.gflops if measured is not None else 0.0,
    )


class _NullCtx:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_CTX = _NullCtx()
