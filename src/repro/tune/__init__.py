"""Auto-tuning design-space exploration (DSE) for the serving path.

The paper tunes one machine by hand; this package turns the repro's
analytic machinery (:mod:`repro.perfmodel`, :mod:`repro.simcpu`) into an
automated search whose winners the service consults at admission time:

- :mod:`repro.tune.space` — the candidate grid (blocking, tile, dispatch,
  threads);
- :mod:`repro.tune.prune` — analytic feasibility cuts with a reason ledger;
- :mod:`repro.tune.score` — perf-model + interpreter-overhead pricing;
- :mod:`repro.tune.measure` — top-K wall-clock confirmation;
- :mod:`repro.tune.search` — the orchestrator tying the funnel together;
- :mod:`repro.tune.db` — the persistent shape→config :class:`TuningDB`.

See ``docs/TUNING.md`` for the full story and a CLI walkthrough.
"""

from repro.tune.db import (
    SCHEMA_VERSION,
    TunedConfig,
    TuningDB,
    machine_fingerprint,
    shape_bucket,
)
from repro.tune.measure import Measurement, measure_candidate, spearman
from repro.tune.prune import PruneReport, prune
from repro.tune.score import ScoredCandidate, score, score_all
from repro.tune.search import (
    ShapeClass,
    ShapeSearchResult,
    choose_coalesce_limit,
    run_search,
)
from repro.tune.space import SearchSpace

__all__ = [
    "SCHEMA_VERSION",
    "Measurement",
    "PruneReport",
    "ScoredCandidate",
    "SearchSpace",
    "ShapeClass",
    "ShapeSearchResult",
    "TunedConfig",
    "TuningDB",
    "choose_coalesce_limit",
    "machine_fingerprint",
    "measure_candidate",
    "prune",
    "run_search",
    "score",
    "score_all",
    "shape_bucket",
    "spearman",
]
