"""Preallocated packing workspace (the Ã/B̃ buffer arena).

Real GotoBLAS-family kernels allocate their packing buffers once (or from a
pool) and reuse them for every block of every call; the original driver here
instead paid one ``np.zeros`` per packed block — tens of allocator round
trips per call. :class:`Workspace` owns the two buffers at the geometry a
``(m, n, k)`` problem implies under a :class:`~repro.gemm.blocking.BlockingConfig`
and hands out exact-shape views for :func:`~repro.gemm.packing.pack_a` /
:func:`~repro.gemm.packing.pack_b` ``out=`` parameters:

- the **Ã arena** covers *all* of M at once — ``ceil(m / M_R)`` micro
  panels of depth ``min(K_C, k)`` — so a packed A block can stay resident
  and be reused across every j-block of a K-block instead of being repacked
  per ``(p, j, i)``;
- the **B̃ arena** covers one ``K_C x N_C`` block, the paper's shared
  buffer.

A workspace is reusable across calls with the same implied geometry;
:meth:`Workspace.obtain` recycles a compatible instance and replaces an
incompatible one.
"""

from __future__ import annotations

import numpy as np

from repro.gemm.blocking import BlockingConfig
from repro.util.errors import ShapeError


class Workspace:
    """The Ã/B̃ packing arena for one problem geometry."""

    def __init__(self, config: BlockingConfig, m: int, n: int, k: int):
        if min(m, n, k) <= 0:
            raise ShapeError(f"invalid workspace geometry {m}x{n}x{k}")
        self.config = config
        self.depth = min(config.kc, k)
        self.a_panels = config.micro_panels_m(m)
        self.b_panels = config.micro_panels_n(min(config.nc, n))
        self.a_buf = np.zeros((self.a_panels, self.depth, config.mr))
        self.b_buf = np.zeros((self.b_panels, self.depth, config.nr))

    def fits(self, config: BlockingConfig, m: int, n: int, k: int) -> bool:
        """Whether this arena already covers the given problem geometry.

        Coverage, not equality: panel shapes (``mr``/``nr``) must match, but
        a larger arena serves any smaller problem — the block views slice
        exactly what a pass needs."""
        return (
            self.config.mr == config.mr
            and self.config.nr == config.nr
            and self.depth >= min(config.kc, k)
            and self.a_panels >= config.micro_panels_m(m)
            and self.b_panels >= config.micro_panels_n(min(config.nc, n))
        )

    @classmethod
    def obtain(
        cls,
        current: "Workspace | None",
        config: BlockingConfig,
        m: int,
        n: int,
        k: int,
    ) -> "Workspace":
        """Reuse ``current`` when compatible, else allocate a fresh arena."""
        if current is not None and current.fits(config, m, n, k):
            return current
        return cls(config, m, n, k)

    # ------------------------------------------------------------ block views
    def a_view(self, i0: int, n_panels: int, plen: int) -> np.ndarray:
        """The ``out=`` buffer for packing the A block whose first row is
        ``i0`` (``i0`` is a multiple of ``M_C``, hence of ``M_R``)."""
        if i0 % self.config.mr:
            # a misaligned block start would silently land on the panels
            # of the *previous* block: the batched kernel masks the
            # aliasing (its flat projections are memoized copies) while
            # tile mode consumes the live, overlapping views — fail loud
            # here instead of computing garbage three layers down
            raise ShapeError(
                f"A block start {i0} is not aligned to the {self.config.mr}-row "
                f"panel grid (mc must be a multiple of mr)"
            )
        first = i0 // self.config.mr
        if first + n_panels > self.a_panels or plen > self.depth:
            raise ShapeError(
                f"A view (panels {first}:{first + n_panels}, depth {plen}) "
                f"outside arena ({self.a_panels} panels, depth {self.depth})"
            )
        return self.a_buf[first : first + n_panels, :plen, :]

    def b_view(self, n_panels: int, plen: int) -> np.ndarray:
        """The ``out=`` buffer for packing one ``(p, j)`` B block."""
        if n_panels > self.b_panels or plen > self.depth:
            raise ShapeError(
                f"B view ({n_panels} panels, depth {plen}) outside arena "
                f"({self.b_panels} panels, depth {self.depth})"
            )
        return self.b_buf[:n_panels, :plen, :]

    @property
    def nbytes(self) -> int:
        return self.a_buf.nbytes + self.b_buf.nbytes
