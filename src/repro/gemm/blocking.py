"""Cache-blocking configuration and loop partitioning.

The paper's AVX-512 DGEMM uses ``M_C = 192``, ``K_C = 384``, ``N_C = 9216``
with an AVX-512 micro tile; we default to the BLIS Skylake-X ``16 x 14``
double-precision tile (28 accumulator registers + 4 operand registers = all
32 zmm registers). :func:`iter_blocks` yields the partition of one dimension,
exactly the ``(offset, length)`` pairs of the paper's Figure 1 loop headers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from repro.util.errors import ConfigError


#: Legal macro-kernel dispatch modes: ``"auto"`` picks the fastest legal
#: mode per call (batched on the clean path, tile whenever a per-tile
#: consumer — an ``on_tile`` hook, a memory sink, or a fault injector — is
#: attached); ``"tile"`` forces the per-tile sweep; ``"batched"`` requests
#: the block-level contraction but still degrades to tile mode when
#: per-tile granularity is required.
DISPATCH_MODES = ("auto", "tile", "batched")


@dataclass(frozen=True)
class BlockingConfig:
    """Blocking parameters of the packed GEMM.

    ``mc``/``kc``/``nc`` are the cache-block step sizes of the three outer
    loops; ``mr``/``nr`` is the register-tile (micro kernel) shape. The
    defaults are the paper's tuned values for Cascade Lake. ``dispatch``
    selects the macro-kernel execution mode (see :data:`DISPATCH_MODES`).
    """

    mc: int = 192
    kc: int = 384
    nc: int = 9216
    mr: int = 16
    nr: int = 14
    dispatch: str = "auto"

    def __post_init__(self) -> None:
        for name in ("mc", "kc", "nc", "mr", "nr"):
            value = getattr(self, name)
            # bool is an int subclass but never a meaningful block size;
            # numpy integers (tuning sweeps enumerate grids with numpy)
            # are coerced so a frozen config always holds plain ints and
            # hashes/serialises identically however it was built
            if isinstance(value, bool):
                raise ConfigError(f"{name} must be a positive int, got {value!r}")
            if not isinstance(value, int):
                index = getattr(value, "__index__", None)
                if index is None:
                    raise ConfigError(
                        f"{name} must be a positive int, got {value!r}"
                    )
                value = index()
                object.__setattr__(self, name, value)
            if value <= 0:
                raise ConfigError(f"{name} must be a positive int, got {value!r}")
        if self.dispatch not in DISPATCH_MODES:
            raise ConfigError(
                f"dispatch must be one of {DISPATCH_MODES}, got {self.dispatch!r}"
            )
        if self.mr > self.mc:
            raise ConfigError(f"mr ({self.mr}) cannot exceed mc ({self.mc})")
        if self.nr > self.nc:
            raise ConfigError(f"nr ({self.nr}) cannot exceed nc ({self.nc})")
        if self.mc % self.mr != 0:
            raise ConfigError(
                f"mc ({self.mc}) must be a multiple of mr ({self.mr}) so "
                f"A-panels tile the L2 block exactly"
            )

    def with_(self, **kwargs) -> "BlockingConfig":
        """Return a modified copy (used by tuning sweeps and ablations)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------ footprints
    @property
    def a_block_doubles(self) -> int:
        """Elements of one packed Ã block (the L2-resident operand)."""
        return self.mc * self.kc

    @property
    def b_panel_doubles(self) -> int:
        """Elements of one packed B̃ panel (the L3-resident operand)."""
        return self.kc * self.nc

    @property
    def c_tile_doubles(self) -> int:
        return self.mr * self.nr

    def micro_panels_m(self, mlen: int) -> int:
        """Number of mr-row micro panels covering ``mlen`` rows."""
        return -(-mlen // self.mr)

    def micro_panels_n(self, nlen: int) -> int:
        return -(-nlen // self.nr)

    @staticmethod
    def small(mr: int = 4, nr: int = 4, dispatch: str = "auto") -> "BlockingConfig":
        """A small configuration for tests: exercises every edge case
        (partial blocks, partial panels) with matrices of a few dozen rows."""
        return BlockingConfig(mc=8, kc=8, nc=12, mr=mr, nr=nr, dispatch=dispatch)


def iter_blocks(total: int, step: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, length)`` pairs partitioning ``range(total)``.

    Matches the paper's loop header ``for p = 0; p < K; p += K_C`` with
    ``p_inc = (K - p > K_C) ? K_C : K - p``.
    """
    if total < 0:
        raise ConfigError(f"total must be non-negative, got {total}")
    if step <= 0:
        raise ConfigError(f"step must be positive, got {step}")
    for start in range(0, total, step):
        yield start, min(step, total - start)


def block_starts(total: int, step: int) -> list[int]:
    """The start offsets of :func:`iter_blocks` (used by verification code)."""
    return [start for start, _ in iter_blocks(total, step)]


def n_blocks(total: int, step: int) -> int:
    """Number of blocks covering ``total``; 0 for an empty range."""
    if total < 0:
        raise ConfigError(f"total must be non-negative, got {total}")
    if step <= 0:
        raise ConfigError(f"step must be positive, got {step}")
    return -(-total // step)
