"""The blocked GEMM driver (paper Section 2.1, Figure 1 loop structure).

:class:`BlockedGemm` runs the full packed loop nest in the paper's order —
``p`` over K (step ``K_C``), ``j`` over N (step ``N_C``), ``i`` over M (step
``M_C``) — packing ``B̃`` per ``(p, j)`` and ``Ã`` per ``(p, j, i)``, then
sweeping the macro kernel. It is the non-fault-tolerant baseline ("FT-GEMM:
Ori"); :class:`repro.core.ftgemm.FTGemm` extends it with the fused ABFT
operations through the protected extension points.

Instrumentation: when constructed with a memory ``sink`` (a
:class:`~repro.simcpu.cache.CacheHierarchy`, :class:`~repro.simcpu.tlb.TLBSim`
or :class:`~repro.simcpu.trace.AccessTrace`) and an :class:`AddressLayout`,
the driver emits the real bulk address stream of every pass, which is what
the blocking ablation replays to show the paper's ``M_C/K_C/N_C`` choice
keeping Ã in L2 and B̃ in L3.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.gemm.blocking import BlockingConfig, iter_blocks
from repro.gemm.macrokernel import TileHook, macro_kernel, macro_kernel_batched
from repro.gemm.packing import PackedPanels, pack_a, pack_b
from repro.gemm.workspace import Workspace
from repro.obs.tracer import NULL_SPAN, NULL_TRACER
from repro.simcpu.counters import Counters
from repro.simcpu.trace import MemoryAccess
from repro.util.errors import ShapeError
from repro.util.validation import as_2d_float64, check_gemm_operands

DOUBLE = 8


class MemorySink(Protocol):
    """Anything that can consume a bulk memory access."""

    def access(self, access: MemoryAccess) -> object: ...


class AddressLayout:
    """Assigns page-aligned simulated virtual addresses to named arrays.

    The instrumented driver describes its traffic in terms of these named
    regions; real pointer values are irrelevant, only relative placement and
    alignment matter for cache/TLB behaviour.
    """

    def __init__(self, page_bytes: int = 4096):
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ShapeError(f"page_bytes must be a power of two, got {page_bytes}")
        self.page_bytes = page_bytes
        self._next = page_bytes  # keep address 0 unused
        self._regions: dict[str, tuple[int, int]] = {}

    def add(self, name: str, nbytes: int) -> int:
        """Reserve ``nbytes`` for ``name``; returns the base address."""
        if name in self._regions:
            raise ShapeError(f"region {name!r} already laid out")
        if nbytes <= 0:
            raise ShapeError(f"region {name!r} has invalid size {nbytes}")
        base = self._next
        pages = -(-nbytes // self.page_bytes)
        self._next += pages * self.page_bytes
        self._regions[name] = (base, nbytes)
        return base

    def base(self, name: str) -> int:
        return self._regions[name][0]

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def region(self, name: str) -> tuple[int, int]:
        return self._regions[name]

    @property
    def total_bytes(self) -> int:
        return self._next - self.page_bytes


class BlockedGemm:
    """Packed, cache-blocked ``C = alpha*A@B + beta*C`` (in place on C)."""

    def __init__(
        self,
        config: BlockingConfig | None = None,
        *,
        counters: Counters | None = None,
        sink: MemorySink | None = None,
        tracer=None,
    ):
        self.config = config or BlockingConfig()
        self.counters = counters if counters is not None else Counters()
        self.sink = sink
        #: structured tracer (:mod:`repro.obs`); the NULL_TRACER default
        #: keeps every instrumented site a no-op
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # hot-path alias: the live Tracer when enabled, else None — call
        # sites test `self._tr is not None` before building span arguments
        self._tr = self.tracer if self.tracer.enabled else None
        # guards against nested root spans (FTGemm opens the root itself
        # so verification/recovery fall inside it)
        self._root_active = False
        self.layout: AddressLayout | None = None
        # strides (bytes per row) of the live operands, set per call
        self._row_bytes: dict[str, int] = {}
        #: packing arena, reused across calls with the same geometry
        self.workspace: Workspace | None = None
        #: macro-kernel mode actually used by the most recent call
        self.last_mode: str | None = None
        # per-call state of the dispatch/reuse machinery
        self._mode = "tile"
        self._reuse_a = False
        self._c_fresh = False
        self._a_cache: dict[int, PackedPanels] = {}
        #: admitted pre-packed B grid for the current call (PanelCache hit)
        self._b_grid = None

    # ------------------------------------------------------------ public API
    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None = None,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        on_tile: TileHook | None = None,
        packed_b: "object | None" = None,
    ) -> np.ndarray:
        """Run the blocked GEMM; returns C (allocated when ``c is None``).

        ``packed_b`` optionally supplies a pre-packed-and-encoded B
        (:class:`~repro.gemm.panelcache.PackedB` for this ``b`` under this
        driver's blocking config): the per-(p, j) pack pass is skipped and
        the resident panels are consumed directly. Instrumented runs (a
        memory ``sink``) ignore it — they exist to replay the exact
        per-pass address stream, which a cache hit would elide.
        """
        a = as_2d_float64(a, "A")
        b = as_2d_float64(b, "B")
        self._c_fresh = c is None
        if c is None:
            m, n, _ = check_gemm_operands(a, b)
            c = np.zeros((m, n), dtype=np.float64)
            beta = 0.0
        else:
            c = as_2d_float64(c, "C")
        m, n, k = check_gemm_operands(a, b, c)
        cfg = self.config
        if self.sink is not None:
            self._lay_out(m, n, k)
        self.workspace = Workspace.obtain(self.workspace, cfg, m, n, k)
        self._reuse_a = self._fast_path()
        self._mode = self._resolve_mode(on_tile)
        self.last_mode = self._mode
        self._b_grid = self._admit_packed_b(packed_b, b, k, n)
        tr = self._tr = self.tracer if self.tracer.enabled else None

        try:
            if tr is not None and not self._root_active:
                self._root_active = True
                try:
                    with tr.span("gemm", cat="driver",
                                 args={"m": m, "n": n, "k": k,
                                       "mode": self._mode,
                                       "reuse_a": self._reuse_a,
                                       "cached_b": self._b_grid is not None}):
                        self._run_loops(a, b, c, alpha, beta, m, n, k, on_tile)
                finally:
                    self._root_active = False
            else:
                self._run_loops(a, b, c, alpha, beta, m, n, k, on_tile)
        finally:
            self._b_grid = None
        return c

    def _run_loops(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        alpha: float,
        beta: float,
        m: int,
        n: int,
        k: int,
        on_tile: TileHook | None,
    ) -> None:
        """The Figure-1 loop nest (factored out so the root span wraps it)."""
        cfg = self.config
        tr = self._tr
        self._begin(m, n, k, a, b, c, alpha, beta)
        with (tr.span("scale_c", cat="scale", args={"beta": beta})
              if tr is not None else NULL_SPAN):
            self._scale_c(c, beta)

        n_pblocks = len(list(iter_blocks(k, cfg.kc)))
        for p_idx, (p0, plen) in enumerate(iter_blocks(k, cfg.kc)):
            last_p = p_idx == n_pblocks - 1
            self._a_cache.clear()
            for j_idx, (j0, jlen) in enumerate(iter_blocks(n, cfg.nc)):
                first_j = j_idx == 0
                if self._b_grid is not None:
                    packed_b = self._pack_b_cached(
                        self._b_grid, p_idx, j_idx, p0, plen, j0, jlen
                    )
                else:
                    packed_b = self._pack_b_block(b, p0, plen, j0, jlen)
                for i0, ilen in iter_blocks(m, cfg.mc):
                    packed_a = self._obtain_packed_a(
                        a, i0, ilen, p0, plen, alpha, first_j=first_j
                    )
                    c_block = c[i0 : i0 + ilen, j0 : j0 + jlen]
                    self._run_macro(
                        packed_a,
                        packed_b,
                        c_block,
                        i0=i0,
                        j0=j0,
                        last_p=last_p,
                        on_tile=on_tile,
                    )
            self._after_p(p_idx, last_p, c)
        self._a_cache.clear()
        self._finish(c)

    # -------------------------------------------------------- dispatch layer
    def _fast_path(self) -> bool:
        """Whether the clean-path optimizations (packed-Ã reuse across
        j-blocks, skipping the redundant zeroing of a fresh C) are legal.

        A memory ``sink`` replays the exact per-pass address stream of the
        paper's Figure-1 loop order, so instrumented runs keep the original
        schedule. Subclasses with additional per-pass observers (e.g. a
        fault injector) restrict this further.
        """
        return self.sink is None

    def _resolve_mode(self, on_tile: TileHook | None) -> str:
        """Pick the macro-kernel mode for this call.

        ``tile`` whenever per-tile granularity is required — a ``dispatch=
        "tile"`` config, an ``on_tile`` hook, or an instrumented/injected
        run — otherwise ``batched``. An explicit ``dispatch="batched"``
        request degrades to tile mode under the same conditions (the fast
        path must never change observable per-tile behaviour).
        """
        if self.config.dispatch == "tile":
            return "tile"
        if on_tile is not None or not self._fast_path():
            return "tile"
        return "batched"

    def _admit_packed_b(self, packed_b, b: np.ndarray, k: int, n: int):
        """Validate and admit a pre-packed B for this call, or None.

        A geometry mismatch is a caller error (the cache keys on blocking
        parameters, so a mismatched entry should never reach a driver);
        instrumented runs decline the grid to keep their address stream
        faithful. Subclasses restrict admission further (FTGemm declines
        it on injected runs so fault campaigns keep their exact
        schedules).
        """
        if packed_b is None or self.sink is not None:
            return None
        if not packed_b.matches(self.config, k, n):
            raise ShapeError(
                f"packed_b geometry (k={packed_b.k}, n={packed_b.n}, "
                f"kc={packed_b.kc}, nc={packed_b.nc}, nr={packed_b.nr}) "
                f"does not match call (k={k}, n={n}) under "
                f"kc={self.config.kc}, nc={self.config.nc}, "
                f"nr={self.config.nr}"
            )
        return packed_b

    def _pack_b_cached(
        self, grid, p_idx: int, j_idx: int,
        p0: int, plen: int, j0: int, jlen: int,
    ) -> PackedPanels:
        """Serve B̃ for this ``(p, j)`` from the admitted grid: no packing
        work, no pack bytes booked. FTGemm overrides this to replay the
        B-side fused checksum updates from the cached partials."""
        return grid.block(p_idx, j_idx).packed

    def _obtain_packed_a(
        self,
        a: np.ndarray,
        i0: int,
        ilen: int,
        p0: int,
        plen: int,
        alpha: float,
        *,
        first_j: bool,
    ) -> PackedPanels:
        """Pack ``Ã`` for this ``(p, i)`` — or reuse the copy packed on an
        earlier j-block of the same K-block."""
        cached = self._a_cache.get(i0) if self._reuse_a else None
        if cached is None:
            packed = self._pack_a_block(a, i0, ilen, p0, plen, alpha, first_j=first_j)
            if self._reuse_a:
                self._a_cache[i0] = packed
            return packed
        self._reuse_a_block(a, cached, i0, ilen, p0, plen, alpha)
        return cached

    # ------------------------------------------------- overridable internals
    def _begin(
        self,
        m: int,
        n: int,
        k: int,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        alpha: float,
        beta: float,
    ) -> None:
        """Per-call setup; FTGemm allocates and encodes checksums here."""

    def _scale_c(self, c: np.ndarray, beta: float) -> None:
        """The ``C = beta*C`` pass. FTGemm fuses checksum encoding in here."""
        m, n = c.shape
        if beta == 0.0:
            if self._c_fresh:
                # C was allocated (zeroed) by gemm(c=None) this call:
                # re-zeroing it would be a pure extra pass — no work is
                # done, so no bytes are counted and no traffic emitted
                return
            c[:] = 0.0
            self.counters.stores_bytes += c.nbytes
            self._emit("C", 0, 0, m, n, write=True)
        elif beta != 1.0:
            c *= beta
            self.counters.loads_bytes += c.nbytes
            self.counters.stores_bytes += c.nbytes
            self._emit("C", 0, 0, m, n, write=False)
            self._emit("C", 0, 0, m, n, write=True)

    def _pack_b_block(
        self, b: np.ndarray, p0: int, plen: int, j0: int, jlen: int
    ) -> PackedPanels:
        """Pack ``B(p0:p0+plen, j0:j0+jlen)`` into B̃ panels."""
        tr = self._tr
        cm = (tr.span(
            "pack_b", cat="pack",
            args={"p0": p0, "j0": j0,
                  "bytes": self.config.micro_panels_n(jlen)
                  * self.config.nr * plen * DOUBLE},
        ) if tr is not None else NULL_SPAN)
        with cm:
            block = b[p0 : p0 + plen, j0 : j0 + jlen]
            out = self.workspace.b_view(self.config.micro_panels_n(jlen), plen)
            packed = pack_b(block, self.config.nr, out=out)
            self.counters.loads_bytes += block.nbytes
            self.counters.pack_b_bytes += packed.nbytes
            self.counters.stores_bytes += packed.nbytes
            self._emit("B", p0, j0, plen, jlen, write=False)
            self._emit_packed("Btilde", packed, write=True)
        return packed

    def _pack_a_block(
        self,
        a: np.ndarray,
        i0: int,
        ilen: int,
        p0: int,
        plen: int,
        alpha: float,
        *,
        first_j: bool,
    ) -> PackedPanels:
        """Pack ``alpha * A(i0:i0+ilen, p0:p0+plen)`` into Ã panels.

        Alpha is folded into Ã (one multiply per element during the packing
        pass, the standard trick), so the micro kernel needs no scaling.
        ``first_j`` reports whether this is the first N-block of the current
        K-block (on the fast path Ã is packed once per ``(p, i)`` and reused
        across j-blocks; on instrumented/injected runs it is repacked for
        every j block, per Figure 1's loop order — subclasses fusing
        per-(p, i) work can key off this flag).
        """
        tr = self._tr
        cm = (tr.span(
            "pack_a", cat="pack",
            args={"i0": i0, "p0": p0,
                  "bytes": self.config.micro_panels_m(ilen)
                  * self.config.mr * plen * DOUBLE},
        ) if tr is not None else NULL_SPAN)
        with cm:
            block = a[i0 : i0 + ilen, p0 : p0 + plen]
            out = self.workspace.a_view(i0, self.config.micro_panels_m(ilen), plen)
            packed = pack_a(block, self.config.mr, out=out)
            if alpha != 1.0:
                # fold alpha into Ã in place (padding rows are zero, so
                # scaling the whole buffer is safe) — no per-block temporary
                out *= alpha
            self.counters.loads_bytes += block.nbytes
            self.counters.pack_a_bytes += packed.nbytes
            self.counters.stores_bytes += packed.nbytes
            self._emit("A", i0, p0, ilen, plen, write=False)
            self._emit_packed("Atilde", packed, write=True)
        return packed

    def _reuse_a_block(
        self,
        a: np.ndarray,
        packed: PackedPanels,
        i0: int,
        ilen: int,
        p0: int,
        plen: int,
        alpha: float,
    ) -> None:
        """Called instead of :meth:`_pack_a_block` when the packed Ã of this
        ``(p, i)`` is reused from an earlier j-block: no packing work, no
        bytes moved. FTGemm re-derives its per-(p, j, i) fused checksum
        update here from the resident packed buffer."""

    def _run_macro(
        self,
        packed_a: PackedPanels,
        packed_b: PackedPanels,
        c_block: np.ndarray,
        *,
        i0: int,
        j0: int,
        last_p: bool,
        on_tile: TileHook | None,
    ) -> None:
        """One macro-kernel invocation; FTGemm adds checksum-ref collection."""
        tr = self._tr
        targs = {"i0": i0, "j0": j0} if tr is not None else None
        if self._mode == "batched":
            macro_kernel_batched(
                packed_a,
                packed_b,
                c_block,
                counters=self.counters,
                tracer=tr,
                trace_args=targs,
            )
        else:
            macro_kernel(
                packed_a,
                packed_b,
                c_block,
                on_tile=on_tile,
                counters=self.counters,
                tracer=tr,
                trace_args=targs,
            )
        self._emit_macro_traffic(packed_a, packed_b, c_block, i0, j0)

    def _after_p(self, p_idx: int, last_p: bool, c: np.ndarray) -> None:
        """Called after each K-block completes; FTGemm's eager mode probes
        the running checksums here."""

    def _finish(self, c: np.ndarray) -> None:
        """Post-loop work; FTGemm verifies and corrects here."""

    # --------------------------------------------------------- address layer
    def _lay_out(self, m: int, n: int, k: int) -> None:
        cfg = self.config
        layout = AddressLayout()
        layout.add("A", m * k * DOUBLE)
        layout.add("B", k * n * DOUBLE)
        layout.add("C", m * n * DOUBLE)
        layout.add("Atilde", cfg.micro_panels_m(cfg.mc) * cfg.mr * cfg.kc * DOUBLE)
        layout.add("Btilde", cfg.micro_panels_n(cfg.nc) * cfg.nr * cfg.kc * DOUBLE)
        self.layout = layout
        self._row_bytes = {"A": k * DOUBLE, "B": n * DOUBLE, "C": n * DOUBLE}

    def _emit(
        self, name: str, r0: int, c0: int, rlen: int, clen: int, *, write: bool
    ) -> None:
        """Emit one access per contiguous row segment of a matrix region."""
        if self.sink is None or self.layout is None:
            return
        base = self.layout.base(name)
        row_bytes = self._row_bytes[name]
        seg = clen * DOUBLE
        for r in range(r0, r0 + rlen):
            addr = base + r * row_bytes + c0 * DOUBLE
            self.sink.access(MemoryAccess(addr, seg, write=write, label=name))

    def _emit_packed(self, name: str, packed: PackedPanels, *, write: bool) -> None:
        """Packed buffers are contiguous: one access for the whole buffer."""
        if self.sink is None or self.layout is None:
            return
        self.sink.access(
            MemoryAccess(self.layout.base(name), packed.nbytes, write=write, label=name)
        )

    def _emit_macro_traffic(
        self,
        packed_a: PackedPanels,
        packed_b: PackedPanels,
        c_block: np.ndarray,
        i0: int,
        j0: int,
    ) -> None:
        """The macro kernel re-reads Ã per B-panel sweep, streams B̃ once per
        A-panel, and read-modify-writes the C block row-wise."""
        self.counters.loads_bytes += (
            packed_b.n_panels * packed_a.nbytes
            + packed_a.n_panels * packed_b.nbytes
            + c_block.nbytes
        )
        self.counters.stores_bytes += c_block.nbytes
        if self.sink is None or self.layout is None:
            return
        # each of the n_panels B sweeps streams the whole Ã block once
        for _ in range(packed_b.n_panels):
            self.sink.access(
                MemoryAccess(
                    self.layout.base("Atilde"),
                    packed_a.nbytes,
                    write=False,
                    label="Atilde",
                )
            )
        for _ in range(packed_a.n_panels):
            self.sink.access(
                MemoryAccess(
                    self.layout.base("Btilde"),
                    packed_b.nbytes,
                    write=False,
                    label="Btilde",
                )
            )
        mlen, nlen = c_block.shape
        self._emit("C", i0, j0, mlen, nlen, write=False)
        self._emit("C", i0, j0, mlen, nlen, write=True)
