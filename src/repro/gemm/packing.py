"""Packing of A and B blocks into micro-panel buffers (Ã, B̃).

GotoBLAS-style GEMM never feeds the micro kernel from the original matrices:
an ``M_C x K_C`` block of ``A`` is repacked into ``ceil(M_C/M_R)`` panels,
each storing its ``M_R`` rows column-interleaved, so the kernel streams
through ``Ã`` with unit stride; likewise ``B`` into ``K_C x N_R`` panels.
The paper fuses checksum encoding into these packing passes — the fused
variants live in :mod:`repro.core.ftgemm`, built on the same primitives.

Packed layout: a 3-D array ``(n_panels, k, r)`` where ``r`` is ``M_R`` (for
Ã) or ``N_R`` (for B̃). Ragged edges are zero-padded: padding contributes
zeros to micro-kernel products, so edge handling needs no special cases, at
the cost of a few wasted FMAs — exactly what real kernels do.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ShapeError


@dataclass(frozen=True)
class PackedPanels:
    """A packed operand buffer plus its logical geometry.

    ``data`` has shape ``(n_panels, depth, r)``; ``valid`` is the number of
    logical rows (Ã) / columns (B̃) covered, i.e. the unpadded extent.
    """

    data: np.ndarray
    valid: int

    def __post_init__(self) -> None:
        if self.data.ndim != 3:
            raise ShapeError(f"packed buffer must be 3-D, got {self.data.shape}")
        if not 0 < self.valid <= self.data.shape[0] * self.data.shape[2]:
            raise ShapeError(
                f"valid extent {self.valid} outside packed capacity "
                f"{self.data.shape[0] * self.data.shape[2]}"
            )

    @property
    def n_panels(self) -> int:
        return self.data.shape[0]

    @property
    def depth(self) -> int:
        return self.data.shape[1]

    @property
    def r(self) -> int:
        return self.data.shape[2]

    def panel(self, idx: int) -> np.ndarray:
        """The ``(depth, r)`` view of one micro panel."""
        return self.data[idx]

    def panel_extent(self, idx: int) -> int:
        """Logical (unpadded) width of panel ``idx``."""
        if not 0 <= idx < self.n_panels:
            raise IndexError(f"panel {idx} out of range [0, {self.n_panels})")
        return min(self.r, self.valid - idx * self.r)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    # ------------------------------------------------- flat 2-D projections
    # The batched macro kernel contracts whole blocks with one BLAS call and
    # needs the panels laid out as an ordinary matrix. Both projections are
    # cached on the instance: a PackedPanels is created per packing pass, so
    # the cache lives exactly as long as the packed values do (reusing a
    # workspace buffer creates a fresh PackedPanels and a fresh cache).

    def rows(self) -> np.ndarray:
        """Ã as a ``(n_panels * r, depth)`` matrix: panel rows stacked, so
        row ``g`` is logical row ``g`` of the (padded) packed block."""
        cached = self.__dict__.get("_rows")
        if cached is None:
            cached = np.ascontiguousarray(
                self.data.transpose(0, 2, 1).reshape(self.n_panels * self.r, self.depth)
            )
            object.__setattr__(self, "_rows", cached)
        return cached

    def cols(self) -> np.ndarray:
        """B̃ as a ``(depth, n_panels * r)`` matrix: panel columns side by
        side, so column ``g`` is logical column ``g`` of the packed block."""
        cached = self.__dict__.get("_cols")
        if cached is None:
            cached = np.ascontiguousarray(
                self.data.transpose(1, 0, 2).reshape(self.depth, self.n_panels * self.r)
            )
            object.__setattr__(self, "_cols", cached)
        return cached


def pack_a(a_block: np.ndarray, mr: int, *, out: np.ndarray | None = None) -> PackedPanels:
    """Pack an ``(mlen, klen)`` block of A into ``M_R``-row micro panels.

    Panel ``i`` holds rows ``i*mr : i*mr+mr`` transposed to ``(klen, mr)`` so
    that for each depth step the ``mr`` A values the kernel broadcasts are
    contiguous. Rows past ``mlen`` are zero.
    """
    if a_block.ndim != 2:
        raise ShapeError(f"A block must be 2-D, got shape {a_block.shape}")
    mlen, klen = a_block.shape
    n_panels = -(-mlen // mr)
    if out is None:
        out = np.zeros((n_panels, klen, mr), dtype=np.float64)
    else:
        if out.shape != (n_panels, klen, mr):
            raise ShapeError(
                f"out buffer shape {out.shape} != required {(n_panels, klen, mr)}"
            )
        out[:] = 0.0
    full = mlen // mr
    if full:
        # bulk transpose of the full panels in one vectorized move
        out[:full] = (
            a_block[: full * mr].reshape(full, mr, klen).transpose(0, 2, 1)
        )
    if full != n_panels:
        tail = a_block[full * mr :]
        out[full, :, : tail.shape[0]] = tail.T
    return PackedPanels(data=out, valid=mlen)


def pack_b(b_block: np.ndarray, nr: int, *, out: np.ndarray | None = None) -> PackedPanels:
    """Pack a ``(klen, nlen)`` block of B into ``N_R``-column micro panels.

    Panel ``j`` holds columns ``j*nr : j*nr+nr`` as ``(klen, nr)``; for each
    depth step the ``nr`` B values the kernel multiplies are contiguous.
    """
    if b_block.ndim != 2:
        raise ShapeError(f"B block must be 2-D, got shape {b_block.shape}")
    klen, nlen = b_block.shape
    n_panels = -(-nlen // nr)
    if out is None:
        out = np.zeros((n_panels, klen, nr), dtype=np.float64)
    else:
        if out.shape != (n_panels, klen, nr):
            raise ShapeError(
                f"out buffer shape {out.shape} != required {(n_panels, klen, nr)}"
            )
        out[:] = 0.0
    full = nlen // nr
    if full:
        out[:full] = b_block[:, : full * nr].reshape(klen, full, nr).transpose(1, 0, 2)
    if full != n_panels:
        tail = b_block[:, full * nr :]
        out[full, :, : tail.shape[1]] = tail
    return PackedPanels(data=out, valid=nlen)


def panels_from_cols(cols: np.ndarray, nr: int, valid: int) -> PackedPanels:
    """Reinterpret a flat ``(klen, n_panels*nr)`` column projection as B̃
    micro panels **without copying**.

    The panel cache stores each K-block's B̃ as one contiguous column
    matrix (so admission re-verification is a single reduction); the macro
    kernels want the ``(n_panels, klen, nr)`` panel layout. Both are views
    of the same bytes — panel ``j`` is columns ``j*nr : j*nr+nr`` — so an
    ``as_strided`` reinterpretation recovers the panel axes for free. The
    flat matrix is additionally pre-seeded as the ``cols()`` projection, so
    the batched macro kernel's one-BLAS-call path also skips its
    materialisation copy.
    """
    if cols.ndim != 2:
        raise ShapeError(f"cols must be 2-D, got shape {cols.shape}")
    klen, width = cols.shape
    if width % nr:
        raise ShapeError(
            f"cols width {width} is not a multiple of the panel width {nr}"
        )
    n_panels = width // nr
    s0, s1 = cols.strides
    data = np.lib.stride_tricks.as_strided(
        cols, shape=(n_panels, klen, nr), strides=(nr * s1, s0, s1)
    )
    packed = PackedPanels(data=data, valid=valid)
    object.__setattr__(packed, "_cols", cols)
    return packed


def unpack_a(packed: PackedPanels) -> np.ndarray:
    """Inverse of :func:`pack_a` (tests only): recover the ``(mlen, klen)`` block."""
    n_panels, klen, mr = packed.data.shape
    rows = packed.data.transpose(0, 2, 1).reshape(n_panels * mr, klen)
    return rows[: packed.valid].copy()


def unpack_b(packed: PackedPanels) -> np.ndarray:
    """Inverse of :func:`pack_b` (tests only): recover the ``(klen, nlen)`` block."""
    n_panels, klen, nr = packed.data.shape
    cols = packed.data.transpose(1, 0, 2).reshape(klen, n_panels * nr)
    return cols[:, : packed.valid].copy()
