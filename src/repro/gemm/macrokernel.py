"""The macro kernel: one ``M_C x N_C`` block of C updated from packed panels.

Two implementations of the same contraction live here:

- :func:`macro_kernel` sweeps the micro kernel over every (A-panel,
  B-panel) pair — the faithful model of the paper's register-tile loop.
  Two extension points exist for the layers above:

  - ``on_tile(c_tile, i0, j0)`` is called after each tile update with a
    writable view — the fault injector corrupts tiles here (the paper
    injects errors "into each of our computing kernels"). It runs *before*
    reference checksums are read from the tile: a soft error in an FMA
    result is held in the same register the fused checksum code then
    consumes, which is exactly why the error becomes visible as a
    reference-vs-predicted mismatch;
  - when ``row_ref``/``col_ref`` are given, the reference checksums of the
    freshly updated tiles are accumulated into them (Section 2.2's
    register-level reuse). The caller passes them only on the final K-block
    iteration, when C holds its final value.

- :func:`macro_kernel_batched` computes all tiles of the block in **one**
  vectorized contraction over the flattened panel arrays and derives the
  fused reference checksums as block-level reductions. It produces the same
  values (up to floating-point summation order) and books the *identical*
  counter totals — microkernel calls are counted per logical tile even
  though no Python-level tile loop runs — but offers no per-tile hook; the
  dispatch layer falls back to :func:`macro_kernel` whenever per-tile
  granularity is required.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gemm.microkernel import microkernel, tile_flops
from repro.gemm.packing import PackedPanels
from repro.obs.tracer import NULL_SPAN
from repro.simcpu.counters import Counters
from repro.util.errors import ShapeError

TileHook = Callable[[np.ndarray, int, int], None]


def _trace_span(tracer, name: str, trace_args: dict | None):
    """A compute-phase span for one macro-kernel sweep, or the no-op span.

    ``trace_args`` may carry a ``"tid"`` key (the logical team thread, set
    by the parallel driver) — it becomes the span's thread row rather than
    a payload argument.
    """
    if tracer is None:
        return NULL_SPAN
    args = dict(trace_args) if trace_args else {}
    tid = args.pop("tid", 0)
    return tracer.span(name, cat="compute", tid=tid, args=args or None)


def _check_macro_args(
    packed_a: PackedPanels,
    packed_b: PackedPanels,
    c_block: np.ndarray,
    row_ref: np.ndarray | None,
    col_ref: np.ndarray | None,
    row_ref_w: np.ndarray | None,
    col_ref_w: np.ndarray | None,
    row_weights: np.ndarray | None,
    col_weights: np.ndarray | None,
) -> tuple[bool, bool]:
    """Shared argument validation; returns ``(collect, weighted)``."""
    mlen, nlen = c_block.shape
    if packed_a.valid != mlen or packed_b.valid != nlen:
        raise ShapeError(
            f"C block {c_block.shape} does not match packed extents "
            f"({packed_a.valid}, {packed_b.valid})"
        )
    if packed_a.depth != packed_b.depth:
        raise ShapeError(
            f"packed depths differ: {packed_a.depth} vs {packed_b.depth}"
        )
    collect = row_ref is not None or col_ref is not None
    if collect and (row_ref is None or col_ref is None):
        raise ShapeError("row_ref and col_ref must be given together")
    if collect and (row_ref.shape != (nlen,) or col_ref.shape != (mlen,)):
        raise ShapeError(
            f"checksum refs must be ({nlen},) and ({mlen},), got "
            f"{row_ref.shape} and {col_ref.shape}"
        )
    weighted = row_ref_w is not None or col_ref_w is not None
    if weighted:
        if any(v is None for v in (row_ref_w, col_ref_w, row_weights, col_weights)):
            raise ShapeError(
                "weighted refs need row_ref_w, col_ref_w, row_weights and "
                "col_weights together"
            )
        if not collect:
            raise ShapeError("weighted refs require the plain refs as well")
        if row_weights.shape != (mlen,) or col_weights.shape != (nlen,):
            raise ShapeError(
                f"weights must be ({mlen},) and ({nlen},), got "
                f"{row_weights.shape} and {col_weights.shape}"
            )
        if row_ref_w.shape != (nlen,) or col_ref_w.shape != (mlen,):
            raise ShapeError(
                f"weighted refs must be ({nlen},) and ({mlen},), got "
                f"{row_ref_w.shape} and {col_ref_w.shape}"
            )
    return collect, weighted


def macro_kernel(
    packed_a: PackedPanels,
    packed_b: PackedPanels,
    c_block: np.ndarray,
    *,
    row_ref: np.ndarray | None = None,
    col_ref: np.ndarray | None = None,
    row_ref_w: np.ndarray | None = None,
    col_ref_w: np.ndarray | None = None,
    row_weights: np.ndarray | None = None,
    col_weights: np.ndarray | None = None,
    on_tile: TileHook | None = None,
    counters: Counters | None = None,
    tracer=None,
    trace_args: dict | None = None,
) -> None:
    """Compute ``c_block += Ã · B̃`` in register tiles, in place.

    ``c_block`` is an ``(mlen, nlen)`` writable view of C with
    ``mlen == packed_a.valid`` and ``nlen == packed_b.valid``. ``row_ref``
    (length ``nlen``) and ``col_ref`` (length ``mlen``) — both optional,
    together — receive ``+= eᵀC_block`` / ``+= C_block·e`` fused into the
    tile sweep.

    The weighted-checksum scheme additionally passes ``row_ref_w`` /
    ``col_ref_w`` with ``row_weights`` (the *global* row weights of this
    block's rows, length ``mlen``) and ``col_weights`` (length ``nlen``):
    they receive ``+= w_rowsᵀ C_block`` / ``+= C_block · w_cols``.
    """
    mlen, nlen = c_block.shape
    collect, weighted = _check_macro_args(
        packed_a, packed_b, c_block,
        row_ref, col_ref, row_ref_w, col_ref_w, row_weights, col_weights,
    )

    mr = packed_a.r
    nr = packed_b.r
    depth = packed_a.depth
    # fail-continue semantics: corrupted operands (inf/NaN from injected
    # faults) must flow through the kernel silently, as they would through
    # hardware FMAs — detection is the checksum layer's job
    with _trace_span(tracer, "macro_kernel", trace_args), \
            np.errstate(invalid="ignore", over="ignore"):
        for ia in range(packed_a.n_panels):
            i0 = ia * mr
            tm = packed_a.panel_extent(ia)
            a_panel = packed_a.panel(ia)
            for jb in range(packed_b.n_panels):
                j0 = jb * nr
                tn = packed_b.panel_extent(jb)
                b_panel = packed_b.panel(jb)
                c_tile = c_block[i0 : i0 + tm, j0 : j0 + tn]
                update = microkernel(a_panel, b_panel)
                c_tile += update[:tm, :tn]
                if on_tile is not None:
                    on_tile(c_tile, i0, j0)
                if collect:
                    row_ref[j0 : j0 + tn] += c_tile.sum(axis=0)
                    col_ref[i0 : i0 + tm] += c_tile.sum(axis=1)
                if weighted:
                    row_ref_w[j0 : j0 + tn] += row_weights[i0 : i0 + tm] @ c_tile
                    col_ref_w[i0 : i0 + tm] += c_tile @ col_weights[j0 : j0 + tn]
                if counters is not None:
                    counters.microkernel_calls += 1
                    counters.fma_flops += tile_flops(mr, nr, depth)
                    if collect:
                        counters.checksum_flops += 2 * tm * tn
                    if weighted:
                        counters.checksum_flops += 4 * tm * tn


def macro_kernel_batched(
    packed_a: PackedPanels,
    packed_b: PackedPanels,
    c_block: np.ndarray,
    *,
    row_ref: np.ndarray | None = None,
    col_ref: np.ndarray | None = None,
    row_ref_w: np.ndarray | None = None,
    col_ref_w: np.ndarray | None = None,
    row_weights: np.ndarray | None = None,
    col_weights: np.ndarray | None = None,
    counters: Counters | None = None,
    tracer=None,
    trace_args: dict | None = None,
) -> None:
    """Compute ``c_block += Ã · B̃`` as one block-level contraction.

    Semantically identical to :func:`macro_kernel` (same arguments, same
    counter totals, values equal up to floating-point summation order) but
    every micro tile is produced by a single matrix product over the
    flattened panel arrays, and the fused reference checksums are block
    reductions of the freshly updated C block instead of per-tile sums.

    There is deliberately no ``on_tile`` parameter: per-tile observation is
    what forces the dispatch layer back onto :func:`macro_kernel`.
    """
    mlen, nlen = c_block.shape
    collect, weighted = _check_macro_args(
        packed_a, packed_b, c_block,
        row_ref, col_ref, row_ref_w, col_ref_w, row_weights, col_weights,
    )
    depth = packed_a.depth
    with _trace_span(tracer, "macro_kernel_batched", trace_args), \
            np.errstate(invalid="ignore", over="ignore"):
        # (padded_m, depth) @ (depth, padded_n): one BLAS call for the block;
        # the padded rows/columns fall away in the slice-accumulate
        update = packed_a.rows() @ packed_b.cols()
        c_block += update[:mlen, :nlen]
        if collect:
            row_ref += c_block.sum(axis=0)
            col_ref += c_block.sum(axis=1)
        if weighted:
            row_ref_w += row_weights @ c_block
            col_ref_w += c_block @ col_weights
    if counters is not None:
        tiles = packed_a.n_panels * packed_b.n_panels
        counters.microkernel_calls += tiles
        counters.fma_flops += tiles * tile_flops(packed_a.r, packed_b.r, depth)
        if collect:
            counters.checksum_flops += 2 * mlen * nlen
        if weighted:
            counters.checksum_flops += 4 * mlen * nlen
