"""Reference GEMM implementations.

:func:`gemm_reference` is the trusted oracle (NumPy ``dot``, which plays the
role MKL plays in the paper's "verify our final computation results against
MKL"). :func:`gemm_naive` is a three-loop scalar implementation retained for
property tests at tiny sizes — it shares no code path with either the oracle
or the blocked implementation, so agreement among all three is meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_gemm_operands


def gemm_reference(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray:
    """Trusted ``C = alpha*A@B + beta*C`` via NumPy.

    Returns a new array; ``c`` is never modified (unlike the blocked
    drivers, which update in place — the oracle must stay side-effect free
    so it can be called mid-verification on corrupted state).
    """
    m, n, _ = check_gemm_operands(a, b, c)
    out = alpha * (a @ b)
    if c is not None and beta != 0.0:
        out += beta * c
    if out.shape != (m, n):  # defensive: alpha scalar broadcast kept shape
        raise AssertionError("oracle produced wrong shape")
    return out


def gemm_naive(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    alpha: float = 1.0,
    beta: float = 0.0,
) -> np.ndarray:
    """Scalar triple-loop GEMM. O(mnk) Python — only for tiny matrices."""
    m, n, k = check_gemm_operands(a, b, c)
    out = np.zeros((m, n), dtype=np.float64)
    if c is not None and beta != 0.0:
        for i in range(m):
            for j in range(n):
                out[i, j] = beta * c[i, j]
    for i in range(m):
        for j in range(n):
            acc = 0.0
            for p in range(k):
                acc += a[i, p] * b[p, j]
            out[i, j] += alpha * acc
    return out
