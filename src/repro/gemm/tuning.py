"""Analytical blocking-parameter selection (paper Section 2.3).

The paper states the cache blocking parameters "are tuned to fit with the
physical cache size", landing on ``M_C=192, K_C=384, N_C=9216`` for AVX-512.
This module reproduces that tuning as an explicit model:

- the **micro tile** ``M_R x N_R`` maximizes FMA-pipeline utilization under
  the register budget (enough independent accumulators to hide FMA latency,
  no spills), tie-broken by the tile's flops-per-byte ``mr*nr/(mr+nr)`` —
  on the Cascade Lake spec this yields the classic ``16 x 14`` DGEMM tile;
- ``K_C``/``M_C`` size the packed Ã block to a target fraction of the
  private L2 (``Ã = M_C x K_C`` with the paper's 1:2 aspect ratio, ~56 % of
  L2, leaving room for the B̃ stream and C tiles);
- ``N_C`` sizes the packed B̃ panel against the shared L3 with the paper's
  ~1.4x oversubscription (B̃ streams; full residency is not required),
  rounded up to a multiple of ``K_C``.

On :func:`MachineSpec.cascade_lake_w2255` this model returns exactly the
paper's published triple, and the cache-simulator ablation
(``benchmarks/bench_ablation_blocking.py``) shows it sits at the miss-rate
sweet spot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gemm.blocking import BlockingConfig
from repro.simcpu.machine import DOUBLE, MachineSpec
from repro.simcpu.vector import VectorUnit
from repro.util.errors import ConfigError

#: fraction of L2 the packed Ã block may occupy
L2_FILL = 0.5625
#: M_C : K_C aspect ratio (the paper's 192:384)
MC_KC_RATIO = 0.5
#: B̃ oversubscription factor against the shared L3
L3_FILL = 1.4


@dataclass(frozen=True)
class TileChoice:
    mr: int
    nr: int
    accumulators: int
    efficiency: float
    flops_per_element: float


def tune_micro_tile(machine: MachineSpec) -> TileChoice:
    """Pick the register tile: max pipeline efficiency, then max reuse."""
    vu = VectorUnit(machine)
    lanes = machine.vector_lanes_f64
    best: TileChoice | None = None
    for a_vecs in range(1, machine.vector_registers):
        mr = a_vecs * lanes
        # largest nr that still fits the register file for this mr
        nr = (machine.vector_registers - a_vecs - 2) // a_vecs
        if nr < 1:
            continue
        eff = vu.tile_efficiency(mr, nr)
        reuse = (mr * nr) / (mr + nr)
        cand = TileChoice(mr, nr, vu.accumulators(mr, nr), eff, reuse)
        if best is None or (cand.efficiency, cand.flops_per_element) > (
            best.efficiency,
            best.flops_per_element,
        ):
            best = cand
    if best is None:
        raise ConfigError(
            f"no feasible micro tile for {machine.name} "
            f"({machine.vector_registers} registers)"
        )
    return best


def _round_up(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


def _round_down(value: int, multiple: int) -> int:
    rounded = (value // multiple) * multiple
    return max(rounded, multiple)


def tune_blocking(
    machine: MachineSpec,
    *,
    mr: int | None = None,
    nr: int | None = None,
) -> BlockingConfig:
    """Derive the full :class:`BlockingConfig` from a machine's cache sheet."""
    if mr is None or nr is None:
        tile = tune_micro_tile(machine)
        mr = mr or tile.mr
        nr = nr or tile.nr
    l2 = machine.cache(2).size_bytes
    l3 = machine.last_level.size_bytes
    # mc*kc*8 = L2_FILL * L2 with mc = MC_KC_RATIO * kc
    kc_raw = math.sqrt(L2_FILL * l2 / (DOUBLE * MC_KC_RATIO))
    kc = max(_round_down(int(kc_raw), mr), mr)
    mc = max(_round_down(int(MC_KC_RATIO * kc), mr), mr)
    nc_raw = int(L3_FILL * l3 / (kc * DOUBLE))
    nc = max(_round_up(nc_raw, kc), nr)
    return BlockingConfig(mc=mc, kc=kc, nc=nc, mr=mr, nr=nr)


def blocking_footprints(config: BlockingConfig) -> dict[str, int]:
    """Byte footprints of the cache-resident structures for a config.

    Keys: ``a_block`` (Ã, targets L2), ``b_panel`` (B̃, targets L3),
    ``a_micro``/``b_micro`` (panels streamed through L1 by the kernel), and
    ``c_tile`` (register resident).
    """
    return {
        "a_block": config.mc * config.kc * DOUBLE,
        "b_panel": config.kc * config.nc * DOUBLE,
        "a_micro": config.mr * config.kc * DOUBLE,
        "b_micro": config.kc * config.nr * DOUBLE,
        "c_tile": config.mr * config.nr * DOUBLE,
    }


def fits_report(config: BlockingConfig, machine: MachineSpec) -> dict[str, bool]:
    """Which structure fits which target level (used by tests and docs)."""
    fp = blocking_footprints(config)
    return {
        "a_block_in_l2": fp["a_block"] <= machine.cache(2).size_bytes,
        "b_micro_in_l2": fp["b_micro"] <= machine.cache(2).size_bytes,
        "c_tile_in_registers": (
            fp["c_tile"]
            <= machine.vector_registers * machine.vector_lanes_f64 * DOUBLE
        ),
        # the tuner rounds N_C up to a K_C multiple, which can add up to
        # (kc-1) columns of kc doubles beyond the raw budget
        "b_panel_within_l3_budget": (
            fp["b_panel"]
            <= L3_FILL * machine.last_level.size_bytes
            + (config.kc - 1) * config.kc * DOUBLE
        ),
    }
