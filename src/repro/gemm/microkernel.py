"""Register-tile micro kernels.

``microkernel`` computes the rank-``k`` update of one ``M_R x N_R`` tile of C
from one Ã panel and one B̃ panel — the NumPy stand-in for the paper's
AVX-512 assembly inner loop (its cycle cost is modeled separately by
:class:`repro.simcpu.vector.VectorUnit`).

``microkernel_ft`` is the *fused* variant of Section 2.2: after updating the
tile it immediately produces the tile's row and column sums — "we reuse the
computed C elements at register level to update the reference checksums" —
so the reference-checksum pass costs no extra pass over C.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ShapeError


def microkernel(a_panel: np.ndarray, b_panel: np.ndarray) -> np.ndarray:
    """Return the ``(mr, nr)`` update ``a_panelᵀ @ b_panel``.

    ``a_panel`` is ``(k, mr)`` and ``b_panel`` is ``(k, nr)`` — the packed
    layouts of :mod:`repro.gemm.packing`; the contraction runs over the
    shared depth axis exactly like the assembly kernel's k-loop of FMAs.
    """
    if a_panel.ndim != 2 or b_panel.ndim != 2:
        raise ShapeError(
            f"panels must be 2-D, got {a_panel.shape} and {b_panel.shape}"
        )
    if a_panel.shape[0] != b_panel.shape[0]:
        raise ShapeError(
            f"panel depths differ: A panel {a_panel.shape}, B panel {b_panel.shape}"
        )
    return a_panel.T @ b_panel


def microkernel_ft(
    a_panel: np.ndarray,
    b_panel: np.ndarray,
    c_tile: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Fused update-and-checksum: ``c_tile += a_panelᵀ @ b_panel``; returns
    ``(row_sums, col_sums)`` of the *updated* tile.

    ``row_sums`` has length ``nr`` (``eᵀ C_tile``, contributes to the row
    checksum ``C^r_ref``); ``col_sums`` has length ``mr`` (``C_tile · e``,
    contributes to ``C^c_ref``). ``c_tile`` must be a writable view into C.
    """
    update = microkernel(a_panel, b_panel)
    if c_tile.shape != update.shape:
        raise ShapeError(
            f"C tile shape {c_tile.shape} != update shape {update.shape}"
        )
    c_tile += update
    return c_tile.sum(axis=0), c_tile.sum(axis=1)


def tile_flops(mr: int, nr: int, k: int) -> int:
    """FMA flops of one micro-kernel call (2 per multiply-add)."""
    return 2 * mr * nr * k
