"""Blocked, packed GEMM substrate (the paper's Section 2.1).

This package is the paper's baseline DGEMM rebuilt in NumPy with the exact
GotoBLAS structure the poster describes:

- the three outer loops partition ``K`` (step ``K_C``), ``N`` (step ``N_C``)
  and ``M`` (step ``M_C``) in the order of the paper's Figure 1;
- ``A`` blocks are packed into micro-panel buffers ``Ã`` (thread-private in
  the parallel scheme), ``B`` panels into the shared buffer ``B̃``;
- the macro kernel updates an ``M_C x N_C`` block of ``C`` by sweeping
  ``M_R x N_R`` micro kernels over the packed panels.

The compute inside a micro kernel is a NumPy ``dot`` on the packed panels —
the algorithmic structure (what is packed when, what is resident where, how
many times each byte moves) is identical to the paper's assembly version,
which is what the cache simulator and performance model consume.
"""

from repro.gemm.blocking import (
    BlockingConfig,
    DISPATCH_MODES,
    iter_blocks,
    block_starts,
)
from repro.gemm.reference import gemm_reference, gemm_naive
from repro.gemm.packing import (
    pack_a,
    pack_b,
    panels_from_cols,
    unpack_a,
    unpack_b,
    PackedPanels,
)
from repro.gemm.panelcache import PackedB, PanelCache, encode_b
from repro.gemm.microkernel import microkernel, microkernel_ft
from repro.gemm.macrokernel import macro_kernel, macro_kernel_batched
from repro.gemm.driver import BlockedGemm, AddressLayout
from repro.gemm.workspace import Workspace
from repro.gemm.tuning import tune_blocking, blocking_footprints

__all__ = [
    "BlockingConfig",
    "DISPATCH_MODES",
    "iter_blocks",
    "block_starts",
    "gemm_reference",
    "gemm_naive",
    "pack_a",
    "pack_b",
    "panels_from_cols",
    "unpack_a",
    "unpack_b",
    "PackedPanels",
    "PackedB",
    "PanelCache",
    "encode_b",
    "microkernel",
    "microkernel_ft",
    "macro_kernel",
    "macro_kernel_batched",
    "BlockedGemm",
    "AddressLayout",
    "Workspace",
    "tune_blocking",
    "blocking_footprints",
]
