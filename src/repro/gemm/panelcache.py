"""Cross-request packed-panel + checksum cache for hot B operands.

The serving tier's "model weights" pattern — millions of activations
against one resident weight matrix — repeats the same ``pack B → B̃``
pass (and its fused checksum encoding) for every request. This module
caches that work across requests:

- :func:`encode_b` packs an entire B operand into the driver's per-(p, j)
  block grid **once**, together with every B-only quantity the fused ABFT
  path derives from it: the column-checksum partials ``B^c = B_blk·e``,
  their envelopes ``|B_blk|·e``, the weighted partials ``B_blk·w``, and
  the ``|B̃|`` projection the roundoff envelope needs. The A-dependent
  ledger updates (``C^r += A^r·B_blk`` and its envelope) cannot be
  cached — the driver recomputes them per call from the resident panels.
- :class:`PanelCache` keys entries on **buffer identity plus a cheap
  content fingerprint**, evicts LRU against a byte budget (the same
  currency as the :class:`~repro.gemm.workspace.Workspace` arena), and
  supports explicit invalidation when a caller mutates a cached B.

Trust model (distrust-the-cache): a resident panel lives outside any
single protected call, so it is **re-verified against its stored
checksums on every reuse** before a driver consumes it. Verification is
two exact reductions per K-block — one over the consolidated
``[B̃; |B̃|]`` buffer (the buffers the macro kernel and the fused envelope
actually read), one over the consolidated checksum-partial rows — so a
fault that corrupts a resident panel or its envelope is caught at
admission instead of poisoning every later request. The stored partial
vectors themselves are additionally covered downstream: a corrupted
``B^c`` shifts the predicted column checksum and trips the ordinary ABFT
verification, which recomputes from the *source* operand. Corruption
below the exact-sum detection floor (sub-ulp perturbations) is bounded by
the same roundoff envelope that bounds it on the uncached path.

Memory layout: per K-block ``p`` one contiguous ``(2·plen, W)`` ``stack``
buffer holds ``B̃``'s flat column projection on top of ``|B̃|``; the
per-(p, j) :class:`~repro.gemm.packing.PackedPanels` are zero-copy strided
views into it (:func:`~repro.gemm.packing.panels_from_cols`), so a cache
hit feeds both macro-kernel modes without materialising anything.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.gemm.blocking import BlockingConfig, iter_blocks
from repro.gemm.packing import PackedPanels, panels_from_cols
from repro.obs.metrics import NULL_METRICS
from repro.util.errors import ConfigError, ShapeError

DOUBLE = 8

#: sample grid edge for the content fingerprint: corners plus a strided
#: interior, at most FP_SAMPLE x FP_SAMPLE elements per lookup
FP_SAMPLE = 8


def fingerprint_of(b: np.ndarray) -> tuple:
    """Cheap content fingerprint: shape plus a CRC over a deterministic
    sample grid (corners + strided interior, ≤ 64 elements).

    O(1) in the operand size, so it can run on every lookup; it catches
    in-place mutation probabilistically — a mutation that dodges the
    sample grid needs :meth:`PanelCache.invalidate` (the authoritative
    path) or is caught by the downstream ABFT verification.
    """
    m, n = b.shape
    ri = np.linspace(0, m - 1, num=min(m, FP_SAMPLE)).astype(np.intp)
    ci = np.linspace(0, n - 1, num=min(n, FP_SAMPLE)).astype(np.intp)
    sample = np.ascontiguousarray(b[np.ix_(ri, ci)])
    return (m, n, zlib.crc32(sample.tobytes()))


@dataclass(eq=False)
class EncodedBBlock:
    """One (p, j) block of a cached B: the packed panels plus every
    B-only fused-encode product the driver would otherwise recompute."""

    #: zero-copy strided view into the owning :class:`_PanelSet` stack
    packed: PackedPanels
    #: ``|B̃|`` columns of this block, ``(plen, width)`` view
    abs_cols: np.ndarray
    #: ``B^c`` partial ``B_blk·e`` (bit-identical to the fused path)
    bc: np.ndarray
    #: envelope partial ``|B_blk|·e``
    abs_bc: np.ndarray
    #: weighted partial ``B_blk·w`` with the block's global column weights
    bc_w: np.ndarray
    #: logical (unpadded) column extent
    jlen: int


@dataclass(eq=False)
class _PanelSet:
    """Consolidated per-K-block storage: one ``[B̃; |B̃|]`` stack, one
    checksum-partial matrix, and their stored verification sums."""

    #: ``(2*plen, W)``: rows ``[:plen]`` are B̃'s column projection,
    #: rows ``[plen:]`` are ``|B̃|``
    stack: np.ndarray
    #: ``(3*n_jblocks, plen)``: rows ``[3j, 3j+1, 3j+2]`` are the j-th
    #: block's ``bc`` / ``abs_bc`` / ``bc_w`` partials
    aux: np.ndarray
    #: stored admission checksums (exact sums at encode time)
    ver_stack: np.ndarray
    ver_aux: np.ndarray
    blocks: list[EncodedBBlock] = field(default_factory=list)

    def verify(self) -> bool:
        """Exact re-reduction of every cached byte vs the stored sums."""
        return np.array_equal(
            self.stack.sum(axis=0), self.ver_stack
        ) and np.array_equal(self.aux.sum(axis=1), self.ver_aux)

    @property
    def nbytes(self) -> int:
        return (
            self.stack.nbytes
            + self.aux.nbytes
            + self.ver_stack.nbytes
            + self.ver_aux.nbytes
        )


@dataclass(eq=False)
class PackedB:
    """A whole B operand, packed and checksum-encoded for one blocking
    geometry. Built by :func:`encode_b`; consumed by the drivers via
    ``gemm(..., packed_b=...)``."""

    #: the source operand — held so ``id(source)`` stays valid for the
    #: cache key lifetime and re-encoding after invalidation reads the
    #: authoritative values
    source: np.ndarray
    fingerprint: tuple
    k: int
    n: int
    kc: int
    nc: int
    nr: int
    psets: list[_PanelSet] = field(default_factory=list)

    def block(self, p_idx: int, j_idx: int) -> EncodedBBlock:
        return self.psets[p_idx].blocks[j_idx]

    def matches(self, config: BlockingConfig, k: int, n: int) -> bool:
        """Whether this encoding serves a call of geometry (k, n) under
        ``config`` (only the B-side parameters matter)."""
        return (self.k, self.n, self.kc, self.nc, self.nr) == (
            k,
            n,
            config.kc,
            config.nc,
            config.nr,
        )

    def verify(self) -> bool:
        return all(pset.verify() for pset in self.psets)

    @property
    def nbytes(self) -> int:
        return sum(pset.nbytes for pset in self.psets)

    @staticmethod
    def estimate_nbytes(k: int, n: int, config: BlockingConfig) -> int:
        """Exact byte cost of ``encode_b(b, config)`` for a (k, n) B,
        computable without building anything (the oversize pre-check)."""
        total = 0
        jblocks = list(iter_blocks(n, config.nc))
        width = sum(
            config.micro_panels_n(jlen) * config.nr for _, jlen in jblocks
        )
        n_j = len(jblocks)
        for _, plen in iter_blocks(k, config.kc):
            total += 2 * plen * width * DOUBLE  # stack
            total += 3 * n_j * plen * DOUBLE  # aux
            total += (width + 3 * n_j) * DOUBLE  # stored sums
        return total


def encode_b(b: np.ndarray, config: BlockingConfig) -> PackedB:
    """Pack and checksum-encode an entire B under ``config``'s geometry.

    This is the cold-miss path: it performs exactly the per-(p, j) work
    the fused driver would (pack + ``B^c`` + envelope + weighted
    partials) but into cache-owned consolidated buffers, once, instead
    of into the per-call workspace arena on every request. The weighted
    partials are always encoded so one entry serves both checksum
    schemes.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 2:
        raise ShapeError(f"B must be 2-D, got shape {b.shape}")
    k, n = b.shape
    fp = fingerprint_of(b)
    entry = PackedB(
        source=b,
        fingerprint=fp,
        k=k,
        n=n,
        kc=config.kc,
        nc=config.nc,
        nr=config.nr,
    )
    jblocks = list(iter_blocks(n, config.nc))
    widths = [config.micro_panels_n(jlen) * config.nr for _, jlen in jblocks]
    total_w = sum(widths)
    for p0, plen in iter_blocks(k, config.kc):
        stack = np.zeros((2 * plen, total_w), dtype=np.float64)
        cols = stack[:plen]
        abs_cols = stack[plen:]
        aux = np.zeros((3 * len(jblocks), plen), dtype=np.float64)
        pset = _PanelSet(
            stack=stack,
            aux=aux,
            ver_stack=np.empty(0),
            ver_aux=np.empty(0),
        )
        woff = 0
        for j_idx, (j0, jlen) in enumerate(jblocks):
            width = widths[j_idx]
            b_blk = b[p0 : p0 + plen, j0 : j0 + jlen]
            # the cols projection of pack_b is [B_blk | 0-padding]
            cols[:, woff : woff + jlen] = b_blk
            np.abs(
                cols[:, woff : woff + width],
                out=abs_cols[:, woff : woff + width],
            )
            aux[3 * j_idx] = b_blk.sum(axis=1)
            aux[3 * j_idx + 1] = np.abs(b_blk).sum(axis=1)
            # global column weights of the weighted scheme: w_n = 1..n
            aux[3 * j_idx + 2] = b_blk @ np.arange(
                j0 + 1.0, j0 + jlen + 1.0
            )
            packed = panels_from_cols(
                cols[:, woff : woff + width], config.nr, jlen
            )
            pset.blocks.append(
                EncodedBBlock(
                    packed=packed,
                    abs_cols=abs_cols[:, woff : woff + width],
                    bc=aux[3 * j_idx],
                    abs_bc=aux[3 * j_idx + 1],
                    bc_w=aux[3 * j_idx + 2],
                    jlen=jlen,
                )
            )
            woff += width
        # stored admission checksums: the exact reductions verify() redoes
        pset.ver_stack = stack.sum(axis=0)
        pset.ver_aux = aux.sum(axis=1)
        entry.psets.append(pset)
    return entry


class PanelCache:
    """Content-keyed LRU cache of :class:`PackedB` entries.

    Keying: ``(id(b), kc, nc, nr)`` — the entry pins its source array so
    the id cannot be recycled while the entry lives; a lookup additionally
    requires source **identity** and a matching content fingerprint, so an
    in-place mutation of a cached B invalidates its entry on the next
    lookup (and :meth:`invalidate` does so eagerly).

    Budget: entries are charged their consolidated buffer bytes against
    ``budget_bytes`` (the same currency as the Workspace arena); inserting
    past the budget evicts LRU entries until the total fits again. An
    entry that alone exceeds the budget is never built (counted
    ``oversize``; the caller packs per-request as before).

    Thread safety: one lock guards the map and the counters; the encode
    (miss) and re-verify (hit) passes run outside it — entries are
    immutable after construction, and an acquired entry stays valid even
    if concurrently evicted (the caller holds the reference).
    """

    def __init__(
        self,
        budget_bytes: int,
        *,
        metrics=NULL_METRICS,
        tracer=None,
    ) -> None:
        if budget_bytes < 1:
            raise ConfigError(
                f"budget_bytes must be >= 1, got {budget_bytes}"
            )
        self.budget_bytes = int(budget_bytes)
        self.metrics = metrics
        self.tracer = tracer
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, PackedB] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._reverify_failures = 0
        self._oversize = 0
        #: sliding window of lookup outcomes for the degraded-mode signal
        self._recent: deque[bool] = deque(maxlen=64)
        #: tid lane per consulting thread: spans from one thread are
        #: sequential, so giving each thread its own lane keeps the
        #: structural trace contract (spans on a lane nest or stay
        #: disjoint) under concurrent workers
        self._lanes: dict[int, int] = {}

    # -------------------------------------------------------------- lookups
    def acquire(self, b: np.ndarray, config: BlockingConfig) -> PackedB | None:
        """Return a verified :class:`PackedB` for ``b`` under ``config``,
        building (and caching) it on a miss. Returns None only when the
        entry would not fit the budget at all — the caller then runs the
        ordinary per-call packing path."""
        key = (id(b), config.kc, config.nc, config.nr)
        fp = fingerprint_of(b)
        entry = self._lookup(key, b, fp)
        if entry is not None:
            if self._reverify(entry):
                return entry
            # resident corruption: drop the entry and rebuild from source
            self._discard(key, entry, counter="_reverify_failures",
                          metric="panel_cache.reverify_failed")
        estimate = PackedB.estimate_nbytes(b.shape[0], b.shape[1], config)
        if estimate > self.budget_bytes:
            with self._lock:
                self._oversize += 1
            self.metrics.inc("panel_cache.oversize")
            return None
        tr = self.tracer
        if tr is not None:
            with tr.span(
                "panel_cache.pack",
                cat="panel_cache",
                tid=self._lane(),
                args={"k": b.shape[0], "n": b.shape[1], "bytes": estimate},
            ):
                built = encode_b(b, config)
        else:
            built = encode_b(b, config)
        return self._insert(key, built)

    def _lane(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            lane = self._lanes.get(ident)
            if lane is None:
                lane = 3000 + len(self._lanes)
                self._lanes[ident] = lane
            return lane

    def peek(self, b: np.ndarray, config: BlockingConfig) -> PackedB | None:
        """The resident entry for ``b`` (no LRU move, no stats); tests and
        introspection only."""
        key = (id(b), config.kc, config.nc, config.nr)
        with self._lock:
            entry = self._entries.get(key)
            return entry if entry is not None and entry.source is b else None

    def touch(self, b_id: int) -> bool:
        """Refresh the LRU recency of every entry for operand id ``b_id``
        (the scheduler's admission-time consult: a batch forming around a
        hot B keeps its panels resident). Returns True when any entry is
        resident."""
        found = False
        with self._lock:
            for key in [k for k in self._entries if k[0] == b_id]:
                self._entries.move_to_end(key)
                found = True
        if found:
            self.metrics.inc("panel_cache.sched_hot")
        return found

    def invalidate(self, b: np.ndarray) -> int:
        """Explicitly drop every entry for ``b`` (any geometry) — the
        authoritative path when a caller mutates a cached operand in
        place. Returns the number of entries dropped."""
        dropped = 0
        with self._lock:
            for key in [
                k
                for k, e in self._entries.items()
                if k[0] == id(b) and e.source is b
            ]:
                entry = self._entries.pop(key)
                self._bytes -= entry.nbytes
                self._invalidations += 1
                dropped += 1
            if dropped:
                self._update_gauges()
        if dropped:
            self.metrics.inc("panel_cache.invalidations", dropped)
        return dropped

    # ------------------------------------------------------------ internals
    def _lookup(self, key: tuple, b: np.ndarray, fp: tuple) -> PackedB | None:
        with self._lock:
            entry = self._entries.get(key)
            stale = entry is not None and (
                entry.source is not b or entry.fingerprint != fp
            )
            if stale:
                # the operand was mutated in place (or the id was
                # recycled): the entry no longer describes these values
                self._entries.pop(key)
                self._bytes -= entry.nbytes
                self._invalidations += 1
                self._update_gauges()
                entry = None
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                self._recent.append(True)
            else:
                self._misses += 1
                self._recent.append(False)
        if entry is not None:
            self.metrics.inc("panel_cache.hits")
        else:
            self.metrics.inc("panel_cache.misses")
            if stale:
                self.metrics.inc("panel_cache.invalidations")
        return entry

    def _reverify(self, entry: PackedB) -> bool:
        tr = self.tracer
        if tr is not None:
            lane = self._lane()
            with tr.span(
                "panel_cache.reverify",
                cat="panel_cache",
                tid=lane,
                args={"k": entry.k, "n": entry.n},
            ):
                ok = entry.verify()
            if not ok:
                tr.event(
                    "panel_cache.corrupt",
                    cat="panel_cache",
                    tid=lane,
                    args={"k": entry.k, "n": entry.n},
                )
        else:
            ok = entry.verify()
        return ok

    def _discard(self, key: tuple, entry: PackedB, *, counter: str,
                 metric: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)
            if self._entries.get(key) is entry:
                self._entries.pop(key)
                self._bytes -= entry.nbytes
                self._update_gauges()
        self.metrics.inc(metric)

    def _insert(self, key: tuple, built: PackedB) -> PackedB:
        tr = self.tracer
        evicted = 0
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing.source is built.source:
                # a concurrent miss built the same entry first: keep it
                return existing
            if existing is not None:
                self._bytes -= existing.nbytes
                self._entries.pop(key)
            self._entries[key] = built
            self._bytes += built.nbytes
            while self._bytes > self.budget_bytes and len(self._entries) > 1:
                _, victim = self._entries.popitem(last=False)
                self._bytes -= victim.nbytes
                self._evictions += 1
                evicted += 1
            self._update_gauges()
        if evicted:
            self.metrics.inc("panel_cache.evictions", evicted)
            if tr is not None:
                tr.event(
                    "panel_cache.evict",
                    cat="panel_cache",
                    tid=self._lane(),
                    args={"evicted": evicted},
                )
        return built

    def _update_gauges(self) -> None:
        self.metrics.set_gauge("panel_cache.bytes", float(self._bytes))
        self.metrics.set_gauge(
            "panel_cache.entries", float(len(self._entries))
        )

    # ------------------------------------------------------------ inspection
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def recent_hit_ratio(self) -> float:
        """Hit ratio over the last ≤ 64 lookups (0.0 when none yet) — the
        degraded-mode signal: a hot cache makes batches cheaper, so the
        service can tolerate a deeper backlog before shedding quality."""
        with self._lock:
            if not self._recent:
                return 0.0
            return sum(self._recent) / len(self._recent)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "invalidations": self._invalidations,
                "reverify_failed": self._reverify_failures,
                "oversize": self._oversize,
            }
