"""Traditional (non-fused) online ABFT GEMM — the scheme fusion replaces.

This is a *real, runnable* implementation, not just a model mode: the same
blocked kernel as FT-GEMM, but every checksum operation is a dedicated
pass, exactly the structure the paper's Section 2.2 criticizes:

1. encode ``A^r = eᵀA`` — separate sweep of A;
2. encode ``B^c = B·e`` — separate sweep of B;
3. predicted checksums via standalone GEMVs (``A^r·B`` re-reads B,
   ``A·B^c`` re-reads A);
4. plain blocked GEMM;
5. verification — a separate sweep over C per K-block (online) or once at
   the end (offline), configurable.

Counters therefore show a large ``ft_extra_bytes`` where the fused driver
shows zero — the pair is compared element-for-element by the overhead
benchmarks, and the performance model prices this structure as its
``"classic"`` mode.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FTGemmConfig
from repro.core.results import FTGemmResult, VerificationReport
from repro.core.verification import ChecksumLedger, Verifier
from repro.gemm.driver import BlockedGemm
from repro.simcpu.counters import Counters
from repro.util.errors import ConfigError
from repro.util.validation import as_2d_float64, check_gemm_operands


class TraditionalABFT:
    """Non-fused online/offline ABFT around the blocked GEMM."""

    def __init__(self, config: FTGemmConfig | None = None, *, online: bool = True):
        self.config = config or FTGemmConfig()
        if not self.config.enable_ft:
            raise ConfigError("TraditionalABFT is inherently fault tolerant; "
                              "use BlockedGemm for an unprotected baseline")
        self.ft_config = self.config  # campaign-compat alias
        self.online = online
        self.counters = Counters()

    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None = None,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        injector=None,
    ) -> FTGemmResult:
        a = as_2d_float64(a, "A")
        b = as_2d_float64(b, "B")
        if c is None:
            m, n, _ = check_gemm_operands(a, b)
            c = np.zeros((m, n), dtype=np.float64)
            beta = 0.0
        else:
            c = as_2d_float64(c, "C")
        m, n, k = check_gemm_operands(a, b, c)
        self.counters = counters = Counters()
        ledger = ChecksumLedger.zeros(m, n)
        c0 = None
        if beta != 0.0 and self.config.keep_original_c:
            c0 = c.copy()

        # --- dedicated encode passes (each is a full extra memory sweep)
        a_row = alpha * a.sum(axis=0)
        abs_a_row = abs(alpha) * np.abs(a).sum(axis=0)
        b_col = b.sum(axis=1)
        abs_b_col = np.abs(b).sum(axis=1)
        counters.checksum_flops += 2 * (m * k + k * n)
        counters.ft_extra_bytes += a.nbytes + b.nbytes
        if injector is not None:
            injector.visit("checksum", a_row)

        # --- standalone GEMVs re-reading A and B for the predictions
        ledger.row_pred = a_row @ b
        ledger.col_pred = alpha * (a @ b_col)
        ledger.env_row = abs_a_row @ np.abs(b)
        ledger.env_col = abs(alpha) * (np.abs(a) @ abs_b_col)
        counters.checksum_flops += 4 * (k * n + m * k)
        counters.ft_extra_bytes += 2 * (a.nbytes + b.nbytes)

        if beta != 0.0:
            abs_c = np.abs(c)
            ledger.c0_abs_row = abs_c.sum(axis=0)
            ledger.c0_abs_col = abs_c.sum(axis=1)
            scaled = beta * c
            if injector is not None:
                injector.visit("scale", scaled)
            c[:] = scaled
            ledger.row_pred += c.sum(axis=0)
            ledger.col_pred += c.sum(axis=1)
            counters.checksum_flops += 6 * m * n
            counters.ft_extra_bytes += 2 * c.nbytes
        else:
            c[:] = 0.0

        # --- the plain blocked product, with per-K-block online probes
        driver = BlockedGemm(self.config.blocking, counters=counters)
        probes: list[VerificationReport] = []

        original_after_p = driver._after_p

        def after_p(p_idx: int, last_p: bool, cc: np.ndarray) -> None:
            original_after_p(p_idx, last_p, cc)
            if not self.online or last_p:
                return
            # online verification: a dedicated sweep of C per K-block —
            # this is precisely the O(n^2) cost fusion eliminates
            counters.ft_extra_bytes += cc.nbytes
            counters.checksum_flops += 2 * cc.size
            counters.verifications += 1

        driver._after_p = after_p  # bound per call; driver is private here

        def tile_hook(tile: np.ndarray, i0: int, j0: int) -> None:
            if injector is not None:
                injector.visit("microkernel", tile)

        def pack_probe(site: str, data: np.ndarray) -> None:
            if injector is not None:
                injector.visit(site, data)

        # packing hooks: wrap the pack methods to expose injection sites
        orig_pack_a = driver._pack_a_block
        orig_pack_b = driver._pack_b_block

        def pack_a(aa, i0, ilen, p0, plen, al, *, first_j):
            packed = orig_pack_a(aa, i0, ilen, p0, plen, al, first_j=first_j)
            pack_probe("pack_a", packed.data)
            return packed

        def pack_b(bb, p0, plen, j0, jlen):
            packed = orig_pack_b(bb, p0, plen, j0, jlen)
            pack_probe("pack_b", packed.data)
            return packed

        driver._pack_a_block = pack_a
        driver._pack_b_block = pack_b
        driver.gemm(a, b, c, alpha=alpha, beta=1.0 if beta != 0.0 else 0.0,
                    on_tile=tile_hook)

        # --- final dedicated verification sweep over C
        ledger.row_ref = c.sum(axis=0)
        ledger.col_ref = c.sum(axis=1)
        counters.checksum_flops += 2 * c.size
        counters.ft_extra_bytes += c.nbytes

        verifier = Verifier(
            a, b, alpha=alpha, beta=beta, c0=c0,
            config=self.config, counters=counters,
        )
        reports, verified = verifier.finalize(c, ledger)
        if injector is not None:
            injector.mark_detected(counters.errors_detected)
        return FTGemmResult(
            c=c,
            counters=counters,
            reports=probes + reports,
            verified=verified,
            ft_enabled=True,
        )
