"""FT-GEMM exposed through the baseline-library interface.

Adapters so the figure harness can iterate one list of "libraries": the
numerics come from the real :class:`~repro.core.ftgemm.FTGemm` /
:class:`~repro.core.parallel.ParallelFTGemm` drivers, the modeled testbed
performance from :class:`~repro.perfmodel.gemm_model.GemmPerfModel` — so,
unlike the baselines, FT-GEMM's curve is *derived* (kernel model + counted
checksum work), not a calibrated profile.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import FTGemmConfig
from repro.core.ftgemm import FTGemm
from repro.core.parallel import ParallelFTGemm
from repro.perfmodel.constants import ModelConstants
from repro.perfmodel.gemm_model import GemmPerfModel
from repro.simcpu.machine import MachineSpec
from repro.util.errors import ConfigError


class FTGemmLibrary:
    """Our implementation, presented like a library for the harness.

    ``variant``: ``"ori"`` (no fault tolerance) or ``"ft"`` (fused ABFT).
    ``threads > 1`` switches both the real driver (simulated team) and the
    performance model to the parallel scheme.
    """

    def __init__(
        self,
        variant: str = "ft",
        *,
        threads: int = 1,
        machine: MachineSpec | None = None,
        config: FTGemmConfig | None = None,
        constants: ModelConstants | None = None,
    ):
        if variant not in ("ori", "ft"):
            raise ConfigError(f"variant must be 'ori' or 'ft', got {variant!r}")
        self.variant = variant
        self.threads = threads
        self.machine = machine or MachineSpec.cascade_lake_w2255()
        if config is None:
            config = FTGemmConfig() if variant == "ft" else FTGemmConfig.unprotected()
        elif config.enable_ft != (variant == "ft"):
            raise ConfigError(
                f"config.enable_ft={config.enable_ft} conflicts with "
                f"variant={variant!r}"
            )
        self.config = config
        self.model = GemmPerfModel(
            self.machine,
            config.blocking,
            mode=variant if variant == "ori" else "ft",
            threads=threads,
            constants=constants,
        )
        if threads == 1:
            self._driver = FTGemm(config)
        else:
            self._driver = ParallelFTGemm(config, n_threads=threads)

    @property
    def name(self) -> str:
        label = "FT-GEMM: Ori" if self.variant == "ori" else "FT-GEMM w/ FT"
        return label if self.threads == 1 else f"{label} ({self.threads}t)"

    # ---------------------------------------------------------- computation
    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None = None,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        injector=None,
    ) -> np.ndarray:
        result = self._driver.gemm(
            a, b, c, alpha=alpha, beta=beta, injector=injector
        )
        return result.c

    def gemm_result(self, a, b, c=None, *, alpha=1.0, beta=0.0, injector=None):
        """Full :class:`FTGemmResult` (detection/correction evidence)."""
        return self._driver.gemm(a, b, c, alpha=alpha, beta=beta, injector=injector)

    # ----------------------------------------------------------- performance
    def modeled_gflops(
        self, n: int, *, threads: int | None = None, injected_errors: int = 0
    ) -> float:
        if threads is not None and threads != self.threads:
            raise ConfigError(
                "thread count is fixed at construction for FTGemmLibrary"
            )
        return self.model.gflops(n, injected_errors=injected_errors)

    def modeled_seconds(
        self,
        m: int,
        n: int | None = None,
        k: int | None = None,
        *,
        injected_errors: int = 0,
    ) -> float:
        return self.model.seconds(m, n, k, injected_errors=injected_errors)
