"""BLIS 0.8.0 (modeled).

The weakest baseline in both of the paper's sweeps: FT-GEMM with fault
tolerance is 16.97 % faster in the parallel comparison (16.83 % under
injection) and >21 % faster serially. The calibrated curve lives in
:mod:`repro.baselines.profiles`.
"""

from __future__ import annotations

from repro.baselines.library import BlasLibrary
from repro.baselines.profiles import PROFILES
from repro.simcpu.machine import MachineSpec


class BLIS(BlasLibrary):
    """Modeled BLIS 0.8.0 DGEMM."""

    def __init__(self, machine: MachineSpec | None = None):
        super().__init__(PROFILES["BLIS"], machine)
