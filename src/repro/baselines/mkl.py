"""Intel oneMKL 2020.2 (modeled).

The closed-source reference point of the paper's evaluation: the strongest
baseline — within a few percent of FT-GEMM serially (the paper's Ori is
3.33 %+ faster), and slightly *ahead* of FT-GEMM with fault tolerance in
the parallel sweep ("slightly underperforming the close-sourced Intel
MKL"). The calibrated curve lives in :mod:`repro.baselines.profiles`.
"""

from __future__ import annotations

from repro.baselines.library import BlasLibrary
from repro.baselines.profiles import PROFILES
from repro.simcpu.machine import MachineSpec


class MKL(BlasLibrary):
    """Modeled Intel oneMKL 2020.2 DGEMM."""

    def __init__(self, machine: MachineSpec | None = None):
        super().__init__(PROFILES["MKL"], machine)
