"""OpenBLAS 0.3.13 (modeled).

In the paper's serial measurements OpenBLAS trails FT-GEMM by the largest
margin of the three baselines (Fig. 2(c): FT-GEMM +22.89 % even under
injection); in the parallel sweep it is "comparable" to FT-GEMM with fault
tolerance. The calibrated curve lives in :mod:`repro.baselines.profiles`.
"""

from __future__ import annotations

from repro.baselines.library import BlasLibrary
from repro.baselines.profiles import PROFILES
from repro.simcpu.machine import MachineSpec


class OpenBLAS(BlasLibrary):
    """Modeled OpenBLAS 0.3.13 DGEMM."""

    def __init__(self, machine: MachineSpec | None = None):
        super().__init__(PROFILES["OpenBLAS"], machine)
