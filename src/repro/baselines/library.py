"""The common baseline-library interface.

A :class:`BlasLibrary` answers two questions:

- *what would it compute?* — :meth:`gemm` (a trusted NumPy product; the
  baselines carry no fault tolerance, so under injection their results are
  simply wrong, which the error-injection benchmarks demonstrate);
- *how fast would it run on the paper's testbed?* — :meth:`modeled_gflops`
  / :meth:`modeled_seconds` from its calibrated efficiency profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.profiles import EfficiencyProfile
from repro.simcpu.machine import MachineSpec
from repro.util.errors import ConfigError
from repro.util.validation import as_2d_float64, check_gemm_operands


@dataclass(frozen=True)
class LibraryPerf:
    """One modeled performance sample."""

    library: str
    n: int
    threads: int
    gflops: float
    seconds: float


class BlasLibrary:
    """A modeled baseline BLAS library."""

    def __init__(
        self,
        profile: EfficiencyProfile,
        machine: MachineSpec | None = None,
    ):
        self.profile = profile
        self.machine = machine or MachineSpec.cascade_lake_w2255()

    @property
    def name(self) -> str:
        return self.profile.name

    # ---------------------------------------------------------- computation
    def gemm(
        self,
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray | None = None,
        *,
        alpha: float = 1.0,
        beta: float = 0.0,
        injector=None,
    ) -> np.ndarray:
        """Compute the product; faults (if any) silently corrupt the result.

        The injector's ``microkernel`` site is honoured on the output —
        baselines have no packing structure to instrument and, crucially,
        no detection: this is the unprotected comparison point of the
        paper's Fig. 2(c)/(d).
        """
        a = as_2d_float64(a, "A")
        b = as_2d_float64(b, "B")
        if c is not None:
            c = as_2d_float64(c, "C")
        check_gemm_operands(a, b, c)
        out = alpha * (a @ b)
        if c is not None and beta != 0.0:
            out += beta * c
        if injector is not None:
            injector.visit("microkernel", out)
        return out

    # ----------------------------------------------------------- performance
    def modeled_gflops(self, n: int, *, threads: int = 1) -> float:
        if threads > self.machine.cores:
            raise ConfigError(
                f"{threads} threads exceed {self.machine.cores} cores"
            )
        return self.profile.gflops(n, self.machine, threads=threads)

    def modeled_seconds(
        self, m: int, n: int | None = None, k: int | None = None, *, threads: int = 1
    ) -> float:
        n = m if n is None else n
        k = m if k is None else k
        return self.profile.seconds(m, n, k, self.machine, threads=threads)

    def perf_sample(self, n: int, *, threads: int = 1) -> LibraryPerf:
        gf = self.modeled_gflops(n, threads=threads)
        return LibraryPerf(
            library=self.name,
            n=n,
            threads=threads,
            gflops=gf,
            seconds=2.0 * n**3 / (gf * 1e9),
        )
