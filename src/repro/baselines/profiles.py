"""Calibrated efficiency profiles of the baseline BLAS libraries.

A profile maps problem size → fraction of machine peak, separately for
serial and 10-thread execution:

``eff(n) = eff_inf + (eff_ref − eff_inf) · (n_ref / n) ** shape``

(``n_ref`` = 2048 serial / 512 parallel — the smallest sizes of the paper's
sweeps). This two-point form captures both libraries that ramp up with size
and libraries that peak early and decay (TLB pressure at huge n).

Calibration constraints (from the poster's reported numbers):

========= ===========================================================
library   constraint reproduced
========= ===========================================================
MKL       serial: FT-GEMM Ori faster by ~3.3 % at 2048 growing to
          ~7 % (poster: 3.33 %–22.19 % across libraries, MKL at the
          low end; Fig 2(c): FT still +4.98 % vs MKL);
          parallel: FT-GEMM w/ FT "slightly underperforming MKL"
          (avg ratio ≈ 0.99)
OpenBLAS  serial: ≈21–23 % behind FT-GEMM Ori (the high end of the
          3.33–22.19 % range; Fig 2(c): FT +22.89 %);
          parallel: "comparable to OpenBLAS" (avg ratio ≈ 1.00)
BLIS      serial: ≈21–22 % behind (Fig 2(c): FT +21.56 %);
          parallel: FT +16.97 % (Fig 2(b)), +16.83 % under
          injection (Fig 2(d))
========= ===========================================================

The numbers below were fit against the analytic model of
:mod:`repro.perfmodel` for FT-GEMM itself; the calibration test suite
(``tests/test_calibration.py``) asserts every constraint with explicit
tolerance bands, so any drift in either side is caught.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simcpu.machine import MachineSpec
from repro.util.errors import ConfigError

SERIAL_REF_N = 2048
PARALLEL_REF_N = 512


@dataclass(frozen=True)
class EfficiencyProfile:
    """Size-dependent efficiency curve of one library."""

    name: str
    serial_eff_ref: float
    serial_eff_inf: float
    parallel_eff_ref: float
    parallel_eff_inf: float
    serial_shape: float = 1.0
    parallel_shape: float = 1.0

    def __post_init__(self) -> None:
        for field_name in (
            "serial_eff_ref",
            "serial_eff_inf",
            "parallel_eff_ref",
            "parallel_eff_inf",
        ):
            value = getattr(self, field_name)
            if not 0.0 < value <= 1.0:
                raise ConfigError(f"{self.name}: {field_name}={value} not in (0, 1]")
        if self.serial_shape <= 0 or self.parallel_shape <= 0:
            raise ConfigError(f"{self.name}: shapes must be positive")

    def efficiency(self, n: int, *, threads: int = 1) -> float:
        """Fraction of peak at square size ``n``."""
        if n <= 0:
            raise ConfigError(f"n must be positive, got {n}")
        if threads == 1:
            ref, inf_, shape, n_ref = (
                self.serial_eff_ref,
                self.serial_eff_inf,
                self.serial_shape,
                SERIAL_REF_N,
            )
        else:
            ref, inf_, shape, n_ref = (
                self.parallel_eff_ref,
                self.parallel_eff_inf,
                self.parallel_shape,
                PARALLEL_REF_N,
            )
        # below the reference size the curve keeps following the same law,
        # clamped to physically meaningful efficiencies (no library exceeds
        # ~98% of peak or collapses entirely)
        eff = inf_ + (ref - inf_) * (n_ref / n) ** shape
        return min(max(eff, 0.05), 0.98)

    def gflops(self, n: int, machine: MachineSpec, *, threads: int = 1) -> float:
        return self.efficiency(n, threads=threads) * machine.peak_gflops(threads)

    def seconds(self, m: int, n: int, k: int, machine: MachineSpec, *, threads: int = 1) -> float:
        """Duration of an m×n×k call, rated at the geometric-mean size."""
        size = round((m * n * k) ** (1.0 / 3.0))
        rate = self.gflops(max(size, 1), machine, threads=threads)
        return 2.0 * m * n * k / (rate * 1e9)


#: the calibrated comparison set
PROFILES: dict[str, EfficiencyProfile] = {
    "MKL": EfficiencyProfile(
        name="MKL",
        serial_eff_ref=0.885,
        serial_eff_inf=0.838,
        parallel_eff_ref=0.660,
        parallel_eff_inf=0.920,
    ),
    "OpenBLAS": EfficiencyProfile(
        name="OpenBLAS",
        serial_eff_ref=0.745,
        serial_eff_inf=0.745,
        parallel_eff_ref=0.660,
        parallel_eff_inf=0.905,
    ),
    "BLIS": EfficiencyProfile(
        name="BLIS",
        serial_eff_ref=0.750,
        serial_eff_inf=0.750,
        parallel_eff_ref=0.560,
        parallel_eff_inf=0.775,
    ),
}
