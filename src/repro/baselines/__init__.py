"""Baseline BLAS libraries and the classic (non-fused) ABFT scheme.

The paper compares against Intel oneMKL 2020.2, OpenBLAS 0.3.13 and BLIS
0.8.0 — compiled binaries we cannot run. Each baseline here is:

- **numerically** a trusted NumPy product (what matters for campaign
  verification — the paper itself verifies "against MKL");
- **performance-wise** a calibrated :class:`EfficiencyProfile` — an
  efficiency-vs-size curve around the machine's peak, with the calibration
  constraints (which published ratio each constant reproduces) documented
  in :mod:`repro.baselines.profiles`.

:class:`TraditionalABFT` is the real, runnable non-fused ABFT GEMM (separate
encode/verify passes around the same blocked kernel) — the baseline whose
~15 % overhead the paper's fusion removes.
"""

from repro.baselines.library import BlasLibrary, LibraryPerf
from repro.baselines.profiles import EfficiencyProfile, PROFILES
from repro.baselines.mkl import MKL
from repro.baselines.openblas import OpenBLAS
from repro.baselines.blis import BLIS
from repro.baselines.ftgemm_lib import FTGemmLibrary
from repro.baselines.traditional_abft import TraditionalABFT

__all__ = [
    "BlasLibrary",
    "LibraryPerf",
    "EfficiencyProfile",
    "PROFILES",
    "MKL",
    "OpenBLAS",
    "BLIS",
    "FTGemmLibrary",
    "TraditionalABFT",
    "all_libraries",
]


def all_libraries() -> list[BlasLibrary]:
    """The comparison set of the paper's figures (baselines only)."""
    return [MKL(), OpenBLAS(), BLIS()]
