"""Cross-thread reductions of per-thread checksum partials.

The B̃ packing is partitioned along N, so each thread's ``B^c_share`` holds
the column checksum of only *its* packed chunk; the true ``B^c`` for the
current (p, j) block is the element-wise sum across threads — the paper's
"extra stage of reduction operation among threads".

In the paper every thread performs the (tiny, O(T·K_C)) reduction into its
own private ``B^c_reduce`` buffer after the barrier — duplicated work beats
a second barrier. :func:`reduce_partials` is that operation;
:func:`tree_reduce` is the log-depth variant used when the partial vectors
are long enough that duplication would dominate (and it is exercised by the
parallel-scaling benchmarks).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ShapeError


def reduce_partials(partials: list[np.ndarray], out: np.ndarray | None = None) -> np.ndarray:
    """Element-wise sum of the per-thread partial vectors.

    All partials must share one shape; ``out`` (when given) receives the
    result in place — the private ``B^c_reduce`` buffer of one thread.
    """
    if not partials:
        raise ShapeError("nothing to reduce")
    shape = partials[0].shape
    for idx, p in enumerate(partials):
        if p.shape != shape:
            raise ShapeError(
                f"partial {idx} has shape {p.shape}, expected {shape}"
            )
    if out is None:
        out = np.zeros(shape, dtype=np.float64)
    else:
        if out.shape != shape:
            raise ShapeError(f"out has shape {out.shape}, expected {shape}")
        out[:] = 0.0
    for p in partials:
        out += p
    return out


def tree_reduce(partials: list[np.ndarray]) -> np.ndarray:
    """Pairwise (log-depth) reduction; numerically this is the summation
    order a tree barrier would produce — tests assert it agrees with
    :func:`reduce_partials` within round-off."""
    if not partials:
        raise ShapeError("nothing to reduce")
    level = [p.astype(np.float64, copy=True) for p in partials]
    while len(level) > 1:
        nxt: list[np.ndarray] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(level[i] + level[i + 1])
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]
