"""Thread teams with OpenMP-style barrier semantics.

A *worker* is a generator function ``worker(tid) -> Iterator[None]`` whose
``yield`` statements are barriers: every thread must reach the same yield
before any proceeds — exactly ``#pragma omp barrier``. Workers must all
execute the same number of barriers (enforced; a mismatched worker is a
deadlock on real hardware and raises here).

Two backends:

- :class:`SimulatedTeam` steps all generators round-robin in the calling
  thread. Deterministic and reproducible — the default for tests, campaigns
  and figure generation. The step order within a round is by thread id,
  which is *one* legal OpenMP interleaving; code whose result depends on
  intra-round order is racy and the property tests hunt for that by
  comparing against the rotated-order team.
- :class:`ThreadTeam` runs each worker on an OS thread with a shared
  :class:`threading.Barrier`. NumPy kernels release the GIL, so the packing
  and macro-kernel phases genuinely overlap.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator

from repro.util.errors import ConfigError, SimulationError

Worker = Callable[[int], Iterator[None]]


class Team:
    """Common interface: ``run(worker)`` executes one parallel region."""

    def __init__(self, n_threads: int):
        if n_threads <= 0:
            raise ConfigError(f"n_threads must be positive, got {n_threads}")
        self.n_threads = n_threads
        self.barriers_executed = 0

    def run(self, worker: Worker) -> None:
        raise NotImplementedError


class SimulatedTeam(Team):
    """Deterministic single-OS-thread execution of a parallel region.

    ``order`` optionally permutes the within-round step order (default
    ``0..T-1``); campaigns use rotated orders to check schedule-independence.
    """

    def __init__(self, n_threads: int, order: list[int] | None = None):
        super().__init__(n_threads)
        if order is None:
            order = list(range(n_threads))
        if sorted(order) != list(range(n_threads)):
            raise ConfigError(
                f"order must be a permutation of 0..{n_threads - 1}, got {order}"
            )
        self.order = order

    def run(self, worker: Worker) -> None:
        gens = {tid: worker(tid) for tid in range(self.n_threads)}
        live: dict[int, Iterator[None]] = dict(gens)
        while live:
            finished: list[int] = []
            for tid in self.order:
                if tid not in live:
                    continue
                try:
                    next(live[tid])
                except StopIteration:
                    finished.append(tid)
            for tid in finished:
                del live[tid]
            if live and finished:
                raise SimulationError(
                    f"barrier mismatch: threads {sorted(finished)} finished while "
                    f"{sorted(live)} are still waiting at a barrier"
                )
            if not finished:
                self.barriers_executed += 1


class ThreadTeam(Team):
    """Real OS threads joined by a :class:`threading.Barrier` at each yield."""

    def __init__(self, n_threads: int, timeout: float | None = 60.0):
        super().__init__(n_threads)
        self.timeout = timeout

    def run(self, worker: Worker) -> None:
        barrier = threading.Barrier(self.n_threads)
        errors: list[BaseException] = []
        errors_lock = threading.Lock()
        barrier_counts = [0] * self.n_threads

        def body(tid: int) -> None:
            try:
                for _ in worker(tid):
                    barrier_counts[tid] += 1
                    barrier.wait(timeout=self.timeout)
            except threading.BrokenBarrierError:
                # another thread failed or mismatched; its error is recorded
                pass
            except BaseException as exc:  # propagate worker failures
                with errors_lock:
                    errors.append(exc)
                barrier.abort()

        threads = [
            threading.Thread(target=body, args=(tid,), name=f"ftgemm-{tid}")
            for tid in range(self.n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        if len(set(barrier_counts)) > 1:
            raise SimulationError(
                f"barrier mismatch across threads: counts {barrier_counts}"
            )
        self.barriers_executed += barrier_counts[0]


def make_team(n_threads: int, backend: str = "simulated") -> Team:
    """Factory: ``"simulated"`` (deterministic) or ``"threads"`` (real)."""
    if backend == "simulated":
        return SimulatedTeam(n_threads)
    if backend == "threads":
        return ThreadTeam(n_threads)
    raise ConfigError(f"unknown team backend {backend!r}")
