"""Thread teams with OpenMP-style barrier semantics and fail-stop survival.

A *worker* is a generator function ``worker(tid) -> Iterator[None]`` whose
``yield`` statements are barriers: every thread must reach the same yield
before any proceeds — exactly ``#pragma omp barrier``. Workers must all
execute the same number of barriers (enforced; a mismatched worker is a
deadlock on real hardware and raises here).

Two backends:

- :class:`SimulatedTeam` steps all generators round-robin in the calling
  thread. Deterministic and reproducible — the default for tests, campaigns
  and figure generation. The step order within a round is by thread id,
  which is *one* legal OpenMP interleaving; code whose result depends on
  intra-round order is racy and the property tests hunt for that by
  comparing against the rotated-order team.
- :class:`ThreadTeam` runs each worker on an OS thread with a monitored
  barrier. NumPy kernels release the GIL, so the packing and macro-kernel
  phases genuinely overlap.

Fail-stop faults (:class:`repro.faults.models.FailStop`) kill a chosen
thread on arrival at a chosen barrier — its segment work is done, but it
never passes the barrier again. Both backends *detect* the death rather
than deadlock: the simulated team notices the missed barrier in its
round-robin accounting; the threaded team's survivors poll while stalled
at the barrier and remove parties that exited without completing
(timeout-based liveness detection, the practical fail-stop detector of
MPI/ULFM-style runtimes). Deaths are recorded on ``team.deaths`` so the
driver can run a recovery epoch; the team itself never repairs data.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.util.errors import ConfigError, SimulationError

Worker = Callable[[int], Iterator[None]]


@dataclass(frozen=True)
class ThreadDeath:
    """One fail-stop event observed during a parallel region."""

    tid: int
    #: barrier index the thread died at (its segment work up to this
    #: barrier completed; the barrier itself was never passed)
    barrier: int
    #: barrier index at which the survivors noticed the death
    detected_at: int


def _kill_schedule(fail_stops: Iterable) -> dict[int, int]:
    """``tid → earliest kill barrier`` from FailStop-like objects."""
    kills: dict[int, int] = {}
    for stop in fail_stops:
        tid = stop.thread
        barrier = stop.barrier
        if tid in kills:
            kills[tid] = min(kills[tid], barrier)
        else:
            kills[tid] = barrier
    return kills


class Team:
    """Common interface: ``run(worker)`` executes one parallel region."""

    def __init__(self, n_threads: int, fail_stops: Iterable = (),
                 tracer=None):
        if n_threads <= 0:
            raise ConfigError(f"n_threads must be positive, got {n_threads}")
        self.n_threads = n_threads
        self.barriers_executed = 0
        #: a live Tracer or None. When set, every barrier produces one
        #: per-thread "barrier_wait" span (arrival → release) plus a
        #: ``barrier.wait_us.t<tid>`` histogram sample, and every detected
        #: fail-stop death one "fault.failstop" instant event.
        self.tracer = tracer
        self._kills = _kill_schedule(fail_stops)
        for tid in self._kills:
            if tid >= n_threads:
                raise ConfigError(
                    f"fail-stop targets thread {tid} but the team has "
                    f"{n_threads} threads"
                )
        #: fail-stop events observed during the last ``run``
        self.deaths: list[ThreadDeath] = []

    @property
    def dead_tids(self) -> set[int]:
        return {d.tid for d in self.deaths}

    def run(self, worker: Worker) -> None:
        raise NotImplementedError


class SimulatedTeam(Team):
    """Deterministic single-OS-thread execution of a parallel region.

    ``order`` optionally permutes the within-round step order (default
    ``0..T-1``); campaigns use rotated orders to check schedule-independence.
    A fail-stop kill closes the victim's generator when it arrives at the
    scheduled barrier; the missed-barrier accounting (the thread is absent
    from every later round) is how the death is "detected" here.
    """

    def __init__(
        self,
        n_threads: int,
        order: list[int] | None = None,
        fail_stops: Iterable = (),
        tracer=None,
    ):
        super().__init__(n_threads, fail_stops, tracer=tracer)
        if order is None:
            order = list(range(n_threads))
        if sorted(order) != list(range(n_threads)):
            raise ConfigError(
                f"order must be a permutation of 0..{n_threads - 1}, got {order}"
            )
        self.order = order

    def run(self, worker: Worker) -> None:
        self.deaths = []
        tr = self.tracer
        gens = {tid: worker(tid) for tid in range(self.n_threads)}
        live: dict[int, Iterator[None]] = dict(gens)
        barrier_counts = {tid: 0 for tid in gens}
        while live:
            finished: list[int] = []
            died: list[int] = []
            # per-round arrival timestamps: a thread "waits" from the moment
            # its step returns until the round's last arrival releases all
            arrivals: dict[int, float] = {}
            for tid in self.order:
                if tid not in live:
                    continue
                try:
                    next(live[tid])
                except StopIteration:
                    finished.append(tid)
                    continue
                arrived_at = barrier_counts[tid]
                if self._kills.get(tid) == arrived_at:
                    live[tid].close()
                    died.append(tid)
                    self.deaths.append(
                        ThreadDeath(tid, barrier=arrived_at, detected_at=arrived_at)
                    )
                    if tr is not None:
                        tr.event("fault.failstop", cat="fault", tid=tid,
                                 args={"barrier": arrived_at,
                                       "detected_at": arrived_at})
                    continue
                if tr is not None:
                    arrivals[tid] = tr.now_us()
                barrier_counts[tid] += 1
            for tid in finished + died:
                del live[tid]
            if live and finished:
                raise SimulationError(
                    f"barrier mismatch: threads {sorted(finished)} finished while "
                    f"{sorted(live)} are still waiting at a barrier"
                )
            if not finished:
                self.barriers_executed += 1
                if tr is not None and arrivals:
                    release = tr.now_us()
                    barrier_idx = self.barriers_executed - 1
                    for tid, t_arr in arrivals.items():
                        tr.complete("barrier_wait", cat="sync", tid=tid,
                                    t0_us=t_arr,
                                    args={"barrier": barrier_idx})
                        tr.metrics.observe(f"barrier.wait_us.t{tid}",
                                           release - t_arr)


class _MonitoredBarrier:
    """A shrinkable barrier with stall-driven liveness detection.

    Like :class:`threading.Barrier`, but a waiter that stalls past the poll
    interval invokes ``on_stall(generation)``, which may report newly
    detected dead parties; the barrier then shrinks and releases the
    survivors. ``timeout`` still bounds a genuinely wedged region.
    """

    def __init__(self, parties: int, *, poll: float = 0.01, timeout: float = 60.0):
        self._cond = threading.Condition()
        self.parties = parties
        self._count = 0
        self._generation = 0
        self._poll = poll
        self._timeout = timeout
        self._broken = False

    def abort(self) -> None:
        with self._cond:
            self._broken = True
            self._cond.notify_all()

    def _release(self) -> None:
        self._count = 0
        self._generation += 1
        self._cond.notify_all()

    def wait(self, on_stall: Callable[[int], int] | None = None) -> None:
        with self._cond:
            if self._broken:
                raise threading.BrokenBarrierError
            generation = self._generation
            self._count += 1
            if self._count >= self.parties:
                self._release()
                return
            deadline = time.monotonic() + self._timeout
            while generation == self._generation and not self._broken:
                notified = self._cond.wait(self._poll)
                if generation != self._generation or self._broken:
                    break
                if not notified:
                    removed = on_stall(generation) if on_stall is not None else 0
                    if removed:
                        self.parties -= removed
                        if self._count >= self.parties:
                            self._release()
                            return
                    elif time.monotonic() > deadline:
                        self._broken = True
                        self._cond.notify_all()
                        raise SimulationError(
                            f"barrier timed out after {self._timeout}s with "
                            f"{self._count}/{self.parties} arrived"
                        )
            if self._broken:
                raise threading.BrokenBarrierError


class ThreadTeam(Team):
    """Real OS threads joined by a monitored barrier at each yield.

    A fail-stop victim returns from its thread body without notifying
    anyone — exactly how a real dead worker behaves. Survivors stalled at
    the next barrier detect it (the thread has exited without completing
    its program), shrink the barrier, record the death, and continue.
    """

    def __init__(
        self,
        n_threads: int,
        timeout: float | None = 60.0,
        fail_stops: Iterable = (),
        tracer=None,
    ):
        super().__init__(n_threads, fail_stops, tracer=tracer)
        self.timeout = timeout

    def run(self, worker: Worker) -> None:
        self.deaths = []
        tr = self.tracer
        n = self.n_threads
        barrier = _MonitoredBarrier(n, timeout=self.timeout or 60.0)
        errors: list[BaseException] = []
        state_lock = threading.Lock()
        barrier_counts = [0] * n
        exited = [False] * n
        completed = [False] * n
        current_barrier = [0] * n
        detected: set[int] = set()

        def on_stall(generation: int) -> int:
            # called by a stalled waiter under the barrier lock: count
            # threads that exited without finishing their program and were
            # not yet accounted for
            removed = 0
            with state_lock:
                for tid in range(n):
                    if exited[tid] and not completed[tid] and tid not in detected:
                        detected.add(tid)
                        self.deaths.append(
                            ThreadDeath(
                                tid,
                                barrier=current_barrier[tid],
                                detected_at=generation,
                            )
                        )
                        if tr is not None:
                            tr.event("fault.failstop", cat="fault", tid=tid,
                                     args={"barrier": current_barrier[tid],
                                           "detected_at": generation})
                        removed += 1
            return removed

        def body(tid: int) -> None:
            gen = worker(tid)
            try:
                passed = 0
                for _ in gen:
                    with state_lock:
                        current_barrier[tid] = passed
                    if self._kills.get(tid) == passed:
                        gen.close()
                        return  # fail-stop: vanish without reaching the barrier
                    if tr is not None:
                        t_arr = tr.now_us()
                    barrier.wait(on_stall)
                    if tr is not None:
                        tr.complete("barrier_wait", cat="sync", tid=tid,
                                    t0_us=t_arr, args={"barrier": passed})
                        tr.metrics.observe(f"barrier.wait_us.t{tid}",
                                           tr.now_us() - t_arr)
                    passed += 1
                    barrier_counts[tid] = passed
                with state_lock:
                    completed[tid] = True
            except threading.BrokenBarrierError:
                # another thread failed or mismatched; its error is recorded
                pass
            except BaseException as exc:  # propagate worker failures
                with state_lock:
                    errors.append(exc)
                barrier.abort()
            finally:
                with state_lock:
                    exited[tid] = True

        threads = [
            threading.Thread(target=body, args=(tid,), name=f"ftgemm-{tid}")
            for tid in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        # deaths nobody was left to observe (e.g. every thread fail-stopped
        # in the same round): account for them now the region is over
        for tid in range(n):
            if exited[tid] and not completed[tid] and tid not in detected:
                detected.add(tid)
                self.deaths.append(
                    ThreadDeath(
                        tid,
                        barrier=current_barrier[tid],
                        detected_at=current_barrier[tid],
                    )
                )
                if tr is not None:
                    tr.event("fault.failstop", cat="fault", tid=tid,
                             args={"barrier": current_barrier[tid],
                                   "detected_at": current_barrier[tid]})
        survivor_counts = {
            barrier_counts[tid] for tid in range(n) if tid not in self.dead_tids
        }
        if len(survivor_counts) > 1:
            raise SimulationError(
                f"barrier mismatch across threads: counts {barrier_counts}"
            )
        if survivor_counts:
            self.barriers_executed += survivor_counts.pop()


def make_team(
    n_threads: int,
    backend: str = "simulated",
    *,
    fail_stops: Iterable = (),
    order: list[int] | None = None,
    tracer=None,
) -> Team:
    """Factory: ``"simulated"`` (deterministic) or ``"threads"`` (real)."""
    if backend == "simulated":
        return SimulatedTeam(n_threads, order=order, fail_stops=fail_stops,
                             tracer=tracer)
    if backend == "threads":
        return ThreadTeam(n_threads, fail_stops=fail_stops, tracer=tracer)
    raise ConfigError(f"unknown team backend {backend!r}")
