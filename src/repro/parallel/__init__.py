"""Parallel execution substrate for the threaded FT-GEMM (paper Fig. 1).

The paper's scheme is an OpenMP parallel region with barriers. We substitute:

- :mod:`repro.parallel.team` — thread teams running *generator* workers that
  ``yield`` at each ``#pragma omp barrier``. The **simulated** backend steps
  all workers deterministically in a single OS thread (bit-reproducible
  interleavings, used by tests and the figures); the **threads** backend runs
  the same workers on real OS threads with :class:`threading.Barrier`
  (NumPy releases the GIL, so packing/macro work genuinely overlaps);
- :mod:`repro.parallel.partition` — the M-dimension row partition for C/A
  ownership and the panel-granular N-dimension partition for cooperative B̃
  packing;
- :mod:`repro.parallel.reduction` — the cross-thread reduction of the
  per-thread partial column checksums ``B^c_share`` (the "extra stage of
  reduction operation among threads" of Section 2.3).
"""

from repro.parallel.team import Team, SimulatedTeam, ThreadTeam, make_team
from repro.parallel.partition import (
    partition_rows,
    partition_panels,
    owner_of_row,
)
from repro.parallel.reduction import reduce_partials, tree_reduce

__all__ = [
    "Team",
    "SimulatedTeam",
    "ThreadTeam",
    "make_team",
    "partition_rows",
    "partition_panels",
    "owner_of_row",
    "reduce_partials",
    "tree_reduce",
]
