"""Work partitioning for the threaded FT-GEMM.

Section 2.3: "The computation workload on the C matrix is partitioned along
the M-dimension" (each thread owns a contiguous row slice of C and A, and
the matching slices of the column checksums), while "the memory access
workloads [for B̃] are partitioned along the N-dimension and each thread is
responsible for packing a chunk of B̃".

The B̃ partition works at *micro-panel* granularity so no two threads ever
write into the same ``N_R``-wide panel (panels are the unit of contiguous
packed storage — element-granular splits would make threads share cache
lines, i.e. false sharing).
"""

from __future__ import annotations

from repro.util.errors import ConfigError


def _balanced_chunks(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous chunks whose sizes
    differ by at most one. Trailing chunks may be empty when parts > total."""
    if total < 0:
        raise ConfigError(f"total must be non-negative, got {total}")
    if parts <= 0:
        raise ConfigError(f"parts must be positive, got {parts}")
    base, extra = divmod(total, parts)
    chunks: list[tuple[int, int]] = []
    start = 0
    for t in range(parts):
        length = base + (1 if t < extra else 0)
        chunks.append((start, length))
        start += length
    return chunks


def partition_rows(m: int, n_threads: int) -> list[tuple[int, int]]:
    """Per-thread ``(ms, mlen)`` row slices of C/A — the paper's
    "compute offset ms and length mlen"."""
    return _balanced_chunks(m, n_threads)


def partition_panels(n_panels: int, n_threads: int) -> list[tuple[int, int]]:
    """Per-thread ``(first_panel, n_panels)`` chunks of a B̃ packing job."""
    return _balanced_chunks(n_panels, n_threads)


def owner_of_row(row: int, partition: list[tuple[int, int]]) -> int:
    """Which thread owns ``row`` under a :func:`partition_rows` result."""
    for tid, (start, length) in enumerate(partition):
        if start <= row < start + length:
            return tid
    raise ConfigError(f"row {row} outside the partitioned range")
