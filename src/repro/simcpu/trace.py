"""Memory access traces.

The instrumented GEMM driver emits bulk :class:`MemoryAccess` records (one per
packed-panel read, per micro-kernel operand stream, per C-block update) rather
than one event per scalar load — the cache simulator expands ranges to line
granularity itself. :class:`AccessTrace` is a recording sink used by tests and
the blocking ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class MemoryAccess:
    """A contiguous byte-range access.

    ``addr`` is a simulated virtual address (the allocator in
    :mod:`repro.gemm.driver` lays arrays out in a flat address space);
    ``write`` marks stores; ``label`` carries provenance ("A", "Btilde", ...)
    for per-structure miss attribution.
    """

    addr: int
    size: int
    write: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.addr < 0 or self.size <= 0:
            raise ValueError(f"invalid access: addr={self.addr}, size={self.size}")

    def lines(self, line_bytes: int) -> range:
        """Indices of the cache lines this access touches."""
        first = self.addr // line_bytes
        last = (self.addr + self.size - 1) // line_bytes
        return range(first, last + 1)


class AccessTrace:
    """A bounded in-memory recording of accesses.

    Holds at most ``capacity`` events (drops and counts the overflow) so an
    instrumented run on a larger matrix cannot exhaust memory.
    """

    def __init__(self, capacity: int = 1_000_000):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.events: list[MemoryAccess] = []
        self.dropped = 0

    def record(self, access: MemoryAccess) -> None:
        if len(self.events) < self.capacity:
            self.events.append(access)
        else:
            self.dropped += 1

    def access(self, access: MemoryAccess) -> None:
        """Memory-sink interface: a trace just records what it is handed,
        so it can sit wherever a cache/TLB simulator would."""
        self.record(access)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.events)

    def total_bytes(self, *, writes: bool | None = None, label: str | None = None) -> int:
        """Total bytes moved, optionally filtered by direction and label."""
        total = 0
        for ev in self.events:
            if writes is not None and ev.write != writes:
                continue
            if label is not None and ev.label != label:
                continue
            total += ev.size
        return total

    def labels(self) -> set[str]:
        return {ev.label for ev in self.events}
