"""Set-associative LRU cache simulator.

Used by the blocking-parameter ablation (exp ``A-blocking`` in DESIGN.md):
the instrumented blocked GEMM replays its real address stream through a
:class:`CacheHierarchy` configured from a :class:`MachineSpec`, and the miss
counts show why the paper's ``M_C``/``K_C``/``N_C`` keep the `Ã` panel in L2
and the `B̃` panel in L3.

The simulator works at line granularity with true LRU per set. Bulk ranges
(from :class:`MemoryAccess`) are expanded internally; repeated lines within a
single access are touched once per line, matching hardware behaviour for a
streaming read.
"""

from __future__ import annotations

from repro.simcpu.counters import CacheCounters
from repro.simcpu.machine import CacheSpec, MachineSpec
from repro.simcpu.trace import MemoryAccess
from repro.util.errors import SimulationError


class CacheSim:
    """One set-associative LRU cache level with write-back/write-allocate."""

    def __init__(self, spec: CacheSpec):
        self.spec = spec
        self.counters = CacheCounters()
        # each set is a dict {tag: dirty}; dict iteration order serves as the
        # LRU queue (oldest first) — re-inserting a tag moves it to the back
        self._sets: list[dict[int, bool]] = [dict() for _ in range(spec.n_sets)]

    # ----------------------------------------------------------------- state
    def reset(self) -> None:
        self.counters.reset()
        for s in self._sets:
            s.clear()

    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def contains(self, addr: int) -> bool:
        line = addr // self.spec.line_bytes
        return (line // self.spec.n_sets) in self._sets[line % self.spec.n_sets]

    # ---------------------------------------------------------------- access
    def access_line(self, line: int, write: bool) -> tuple[bool, bool]:
        """Touch one line; returns ``(hit, evicted_dirty)``."""
        set_idx = line % self.spec.n_sets
        tag = line // self.spec.n_sets
        cset = self._sets[set_idx]
        self.counters.accesses += 1
        evicted_dirty = False
        if tag in cset:
            self.counters.hits += 1
            dirty = cset.pop(tag) or write
            cset[tag] = dirty  # move to MRU position
            return True, False
        self.counters.misses += 1
        if len(cset) >= self.spec.associativity:
            victim_tag = next(iter(cset))
            evicted_dirty = cset.pop(victim_tag)
            self.counters.evictions += 1
            if evicted_dirty:
                self.counters.writebacks += 1
        cset[tag] = write
        return False, evicted_dirty

    def access(self, access: MemoryAccess) -> int:
        """Replay one bulk access; returns the number of missing lines."""
        misses = 0
        for line in access.lines(self.spec.line_bytes):
            hit, _ = self.access_line(line, access.write)
            if not hit:
                misses += 1
        return misses


class CacheHierarchy:
    """An inclusive-miss chain of :class:`CacheSim` levels plus memory.

    A miss at L(i) is forwarded to L(i+1); a miss at the last level counts as
    a DRAM access. ``mem_lines`` accumulates the lines fetched from memory and
    ``mem_writeback_lines`` the dirty lines written back from the last level
    — together they are the DRAM traffic the roofline model prices.
    """

    def __init__(self, levels: list[CacheSim]):
        if not levels:
            raise SimulationError("hierarchy needs at least one level")
        line = levels[0].spec.line_bytes
        for lv in levels:
            if lv.spec.line_bytes != line:
                raise SimulationError("all levels must share a line size")
        self.levels = levels
        self.line_bytes = line
        self.mem_lines = 0
        self.mem_writeback_lines = 0

    @classmethod
    def from_machine(cls, machine: MachineSpec) -> "CacheHierarchy":
        return cls([CacheSim(spec) for spec in machine.caches])

    def reset(self) -> None:
        for lv in self.levels:
            lv.reset()
        self.mem_lines = 0
        self.mem_writeback_lines = 0

    def access(self, access: MemoryAccess) -> None:
        for line in access.lines(self.line_bytes):
            self._access_line(line, access.write)

    def _access_line(self, line: int, write: bool) -> None:
        for depth, lv in enumerate(self.levels):
            hit, evicted_dirty = lv.access_line(line, write)
            if evicted_dirty and depth == len(self.levels) - 1:
                self.mem_writeback_lines += 1
            if hit:
                return
        self.mem_lines += 1

    def replay(self, accesses) -> None:
        for acc in accesses:
            self.access(acc)

    # ------------------------------------------------------------- reporting
    @property
    def mem_bytes(self) -> int:
        return (self.mem_lines + self.mem_writeback_lines) * self.line_bytes

    def miss_rates(self) -> dict[int, float]:
        return {lv.spec.level: lv.counters.miss_rate for lv in self.levels}

    def counters_by_level(self) -> dict[int, CacheCounters]:
        return {lv.spec.level: lv.counters for lv in self.levels}
