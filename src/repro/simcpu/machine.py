"""Machine parameter sheets.

:class:`MachineSpec` collects everything the performance model and the cache
simulator need to know about a CPU. The default instance reproduces the
paper's testbed — an Intel Xeon W-2255 (Cascade Lake-W) with DDR4-2933.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.errors import ConfigError

DOUBLE = 8  # bytes per float64


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and cost parameters of one cache level."""

    level: int
    size_bytes: int
    line_bytes: int
    associativity: int
    latency_cycles: float
    #: sustained bytes/cycle the level can feed the core (load bandwidth)
    bandwidth_bytes_per_cycle: float
    #: shared among all cores (True for the Cascade Lake L3)
    shared: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ConfigError(f"invalid cache geometry: {self}")
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ConfigError(
                f"L{self.level}: size {self.size_bytes} not divisible by "
                f"line*assoc ({self.line_bytes}*{self.associativity})"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    @property
    def capacity_doubles(self) -> int:
        return self.size_bytes // DOUBLE


@dataclass(frozen=True)
class MachineSpec:
    """Parameter sheet for a target CPU.

    ``freq_ghz`` is the base frequency; ``simd_freq_ghz`` the sustained clock
    under full-width FMA load (AVX-512 license downclock on Cascade Lake).
    """

    name: str
    cores: int
    freq_ghz: float
    simd_freq_ghz: float
    fma_ports: int
    vector_lanes_f64: int
    caches: tuple[CacheSpec, ...]
    mem_bandwidth_gbs: float
    mem_latency_ns: float
    #: architectural FP registers available to a micro kernel (zmm0..zmm31)
    vector_registers: int = 32
    #: 4 KiB pages unless a spec overrides (the paper's packing exists to
    #: keep the kernel's working set within dtlb reach)
    page_bytes: int = 4096
    dtlb_entries: int = 64
    dtlb_associativity: int = 4
    #: fraction of memory/compute overlap the out-of-order core achieves for
    #: streaming kernels (1.0 = perfect overlap => pure roofline max())
    overlap: float = 0.95

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError(f"cores must be positive, got {self.cores}")
        if not self.caches:
            raise ConfigError("at least one cache level is required")
        levels = [c.level for c in self.caches]
        if levels != sorted(levels) or len(set(levels)) != len(levels):
            raise ConfigError(f"cache levels must be increasing/unique: {levels}")
        if not 0.0 <= self.overlap <= 1.0:
            raise ConfigError(f"overlap must be in [0,1], got {self.overlap}")

    # ------------------------------------------------------------------ peaks
    @property
    def flops_per_cycle_per_core(self) -> float:
        """FMA counts as 2 flops; each port retires one full-width FMA/cycle."""
        return 2.0 * self.fma_ports * self.vector_lanes_f64

    @property
    def peak_gflops_serial(self) -> float:
        return self.flops_per_cycle_per_core * self.simd_freq_ghz

    @property
    def peak_gflops_parallel(self) -> float:
        return self.peak_gflops_serial * self.cores

    def peak_gflops(self, threads: int) -> float:
        if threads <= 0:
            raise ConfigError(f"threads must be positive, got {threads}")
        return self.peak_gflops_serial * min(threads, self.cores)

    def cache(self, level: int) -> CacheSpec:
        for c in self.caches:
            if c.level == level:
                return c
        raise ConfigError(f"{self.name} has no L{level} cache")

    @property
    def last_level(self) -> CacheSpec:
        return self.caches[-1]

    def with_(self, **kwargs) -> "MachineSpec":
        """Return a modified copy (the ablations sweep single parameters)."""
        return replace(self, **kwargs)

    # -------------------------------------------------------------- factories
    @staticmethod
    def cascade_lake_w2255() -> "MachineSpec":
        """The paper's testbed: Xeon W-2255, 10 cores, 3.7 GHz, DDR4-2933.

        Cascade Lake-W has two 512-bit FMA ports per core; the sustained
        AVX-512 clock is ~3.5 GHz on this part. Four DDR4-2933 channels give
        a theoretical 93.9 GB/s.
        """
        return MachineSpec(
            name="Intel Xeon W-2255 (Cascade Lake)",
            cores=10,
            freq_ghz=3.7,
            simd_freq_ghz=3.5,
            fma_ports=2,
            vector_lanes_f64=8,
            caches=(
                CacheSpec(1, 32 * 1024, 64, 8, 4, 128.0, shared=False),
                CacheSpec(2, 1024 * 1024, 64, 16, 14, 64.0, shared=False),
                CacheSpec(3, 19712 * 1024, 64, 11, 50, 32.0, shared=True),
            ),
            mem_bandwidth_gbs=93.9,
            mem_latency_ns=90.0,
        )

    @staticmethod
    def small_test_machine() -> "MachineSpec":
        """A deliberately tiny machine so cache behaviour is testable with
        matrices of a few hundred elements (unit tests / ablations)."""
        return MachineSpec(
            name="test-machine",
            cores=4,
            freq_ghz=1.0,
            simd_freq_ghz=1.0,
            fma_ports=1,
            vector_lanes_f64=4,
            caches=(
                CacheSpec(1, 1024, 64, 2, 2, 32.0, shared=False),
                CacheSpec(2, 8192, 64, 4, 8, 16.0, shared=False),
                CacheSpec(3, 65536, 64, 8, 30, 8.0, shared=True),
            ),
            mem_bandwidth_gbs=8.0,
            mem_latency_ns=100.0,
            vector_registers=16,
            dtlb_entries=8,
        )
