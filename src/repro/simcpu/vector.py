"""Cycle model of the AVX-512 FMA pipeline.

The paper's micro kernel is hand-written AVX-512 assembly. We cannot execute
that from Python, so :class:`VectorUnit` reproduces its *cost*: given a
register-tile shape ``M_R x N_R`` and depth ``K_C`` it returns the cycles the
Cascade Lake FMA pipeline needs, accounting for

- issue throughput (``fma_ports`` full-width FMAs per cycle),
- FMA latency (accumulator dependency chains must be covered by enough
  independent accumulators or the pipeline stalls),
- register pressure (tiles that exceed the 32 zmm registers spill and are
  rejected by :meth:`check_tile`).

This is the standard analytical model used to derive BLIS-style micro-kernel
shapes; for the paper's 10-core part it reproduces why ``M_R x N_R`` tiles on
AVX-512 are chosen around 8-31 accumulators (e.g. 8x6, 16x14 halves, 31x1…).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simcpu.machine import MachineSpec
from repro.util.errors import ConfigError

#: FMA latency in cycles on Skylake-X / Cascade Lake
FMA_LATENCY_CYCLES = 4


@dataclass(frozen=True)
class TileCost:
    """Cost report for one micro-kernel invocation."""

    cycles: float
    fma_issues: int
    efficiency: float  # achieved / peak FMA throughput
    registers_used: int


class VectorUnit:
    """Analytical cost model of a per-core SIMD FMA pipeline."""

    def __init__(self, machine: MachineSpec, fma_latency: int = FMA_LATENCY_CYCLES):
        if fma_latency <= 0:
            raise ConfigError(f"fma_latency must be positive, got {fma_latency}")
        self.machine = machine
        self.lanes = machine.vector_lanes_f64
        self.ports = machine.fma_ports
        self.latency = fma_latency
        self.registers = machine.vector_registers

    # -------------------------------------------------------------- geometry
    def accumulators(self, mr: int, nr: int) -> int:
        """Vector registers holding the C tile: ceil(mr/lanes) * nr."""
        return math.ceil(mr / self.lanes) * nr

    def registers_needed(self, mr: int, nr: int) -> int:
        """C accumulators + one column of A vectors + 1-2 broadcast B regs."""
        a_regs = math.ceil(mr / self.lanes)
        b_regs = 2
        return self.accumulators(mr, nr) + a_regs + b_regs

    def check_tile(self, mr: int, nr: int) -> None:
        if mr <= 0 or nr <= 0:
            raise ConfigError(f"tile must be positive, got {mr}x{nr}")
        need = self.registers_needed(mr, nr)
        if need > self.registers:
            raise ConfigError(
                f"micro tile {mr}x{nr} needs {need} vector registers "
                f"but only {self.registers} exist (would spill)"
            )

    # ------------------------------------------------------------------ cost
    def tile_efficiency(self, mr: int, nr: int) -> float:
        """Fraction of peak FMA issue the dependency chains allow.

        Each accumulator register is updated once per k-iteration; with ``a``
        independent accumulators the pipeline can keep ``a / (latency*ports)``
        of its slots busy, capped at 1.
        """
        self.check_tile(mr, nr)
        acc = self.accumulators(mr, nr)
        return min(1.0, acc / (self.latency * self.ports))

    def microkernel_cost(self, mr: int, nr: int, kc: int) -> TileCost:
        """Cycles for one C(mr,nr) += A(mr,kc) @ B(kc,nr) rank-kc update."""
        self.check_tile(mr, nr)
        if kc <= 0:
            raise ConfigError(f"kc must be positive, got {kc}")
        a_vecs = math.ceil(mr / self.lanes)
        fma_issues = a_vecs * nr * kc
        eff = self.tile_efficiency(mr, nr)
        throughput_cycles = fma_issues / (self.ports * eff)
        # ramp: the first `latency` iterations fill the pipeline
        cycles = throughput_cycles + self.latency
        return TileCost(
            cycles=cycles,
            fma_issues=fma_issues,
            efficiency=eff,
            registers_used=self.registers_needed(mr, nr),
        )

    def gemm_compute_cycles(self, m: int, n: int, k: int, mr: int, nr: int) -> float:
        """Cycles of pure FMA work for a full m×n×k GEMM tiled mr×nr.

        Edge tiles are costed at their true (smaller) shape; this is what the
        timing model uses as the compute leg of the roofline.
        """
        if min(m, n, k) <= 0:
            raise ConfigError(f"gemm dims must be positive, got {m}x{n}x{k}")
        total = 0.0
        m_full, m_rem = divmod(m, mr)
        n_full, n_rem = divmod(n, nr)

        def tile_cycles(tm: int, tn: int) -> float:
            return self.microkernel_cost(tm, tn, k).cycles

        if m_full and n_full:
            total += m_full * n_full * tile_cycles(mr, nr)
        if m_rem and n_full:
            total += n_full * tile_cycles(m_rem, nr)
        if m_full and n_rem:
            total += m_full * tile_cycles(mr, n_rem)
        if m_rem and n_rem:
            total += tile_cycles(m_rem, n_rem)
        return total

    def flops_to_cycles(self, flops: float, efficiency: float = 1.0) -> float:
        """Convert a raw flop count to cycles at a given pipeline efficiency."""
        if efficiency <= 0:
            raise ConfigError(f"efficiency must be positive, got {efficiency}")
        peak = self.machine.flops_per_cycle_per_core
        return flops / (peak * efficiency)
