"""Stride prefetcher model.

The paper's testbed runs with "hardware prefetchers enabled according to
the Intel BIOS default" — and packed GEMM is co-designed with them: packing
turns every kernel operand into a unit-stride stream the L2 streamer can
follow perfectly, which is part of why Ã/B̃ exist at all.

:class:`PrefetchingHierarchy` wraps a :class:`CacheHierarchy` with a
reference-prediction table: per memory region it tracks the last line and
stride of the access stream; once a stride repeats (``trigger`` times), the
next ``degree`` lines are prefetched into the hierarchy. Demand accesses
that land on prefetched lines become hits; the usefulness counters separate
prefetches that were consumed from those that polluted.

The blocking ablation uses this to show packed streams reaching near-100 %
prefetch coverage while the unpacked (strided) walk defeats the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simcpu.cache import CacheHierarchy
from repro.simcpu.trace import MemoryAccess
from repro.util.errors import ConfigError


@dataclass
class PrefetchStats:
    issued: int = 0
    useful: int = 0
    demand_accesses: int = 0
    covered: int = 0  # demand lines that hit because a prefetch fetched them

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0

    @property
    def coverage(self) -> float:
        return self.covered / self.demand_accesses if self.demand_accesses else 0.0


@dataclass
class _StreamEntry:
    last_line: int
    stride: int = 0
    confidence: int = 0


class PrefetchingHierarchy:
    """A stride prefetcher in front of a cache hierarchy.

    ``region_bits`` defines the stream granularity (default 12 → 4 KiB
    pages, matching the Intel streamer's page-bounded behaviour);
    ``degree`` is the prefetch depth, ``trigger`` the stride confirmations
    required before issuing.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        *,
        degree: int = 4,
        trigger: int = 2,
        table_size: int = 16,
        region_bits: int = 12,
    ):
        if degree < 1 or trigger < 1 or table_size < 1:
            raise ConfigError(
                f"invalid prefetcher geometry: degree={degree}, "
                f"trigger={trigger}, table={table_size}"
            )
        self.hierarchy = hierarchy
        self.degree = degree
        self.trigger = trigger
        self.table_size = table_size
        self.region_bits = region_bits
        self.stats = PrefetchStats()
        self._table: dict[int, _StreamEntry] = {}
        self._prefetched: set[int] = set()

    @property
    def line_bytes(self) -> int:
        return self.hierarchy.line_bytes

    def reset(self) -> None:
        self.hierarchy.reset()
        self.stats = PrefetchStats()
        self._table.clear()
        self._prefetched.clear()

    # ---------------------------------------------------------------- sink
    def access(self, access: MemoryAccess) -> None:
        for line in access.lines(self.line_bytes):
            self._demand_line(line, access.write)

    def replay(self, accesses) -> None:
        for acc in accesses:
            self.access(acc)

    # ------------------------------------------------------------ internals
    def _demand_line(self, line: int, write: bool) -> None:
        self.stats.demand_accesses += 1
        if line in self._prefetched:
            self._prefetched.discard(line)
            self.stats.useful += 1
            self.stats.covered += 1
        self.hierarchy._access_line(line, write)
        self._train(line)

    def _train(self, line: int) -> None:
        region = (line * self.line_bytes) >> self.region_bits
        entry = self._table.get(region)
        if entry is None:
            if len(self._table) >= self.table_size:
                # evict the oldest stream (dict order = insertion order)
                self._table.pop(next(iter(self._table)))
            self._table[region] = _StreamEntry(last_line=line)
            return
        stride = line - entry.last_line
        if stride == 0:
            return
        if stride == entry.stride:
            entry.confidence += 1
        else:
            entry.stride = stride
            entry.confidence = 1
        entry.last_line = line
        if entry.confidence >= self.trigger:
            self._issue(line, stride)

    def _issue(self, line: int, stride: int) -> None:
        region = (line * self.line_bytes) >> self.region_bits
        for step in range(1, self.degree + 1):
            target = line + step * stride
            if target < 0 or target in self._prefetched:
                continue
            # hardware streamers do not cross the 4 KiB page boundary —
            # the physical address of the next page is unknown to them
            if (target * self.line_bytes) >> self.region_bits != region:
                break
            if self.hierarchy.levels[0].contains(target * self.line_bytes):
                continue  # already resident: no fetch issued
            self.stats.issued += 1
            self._prefetched.add(target)
            self.hierarchy._access_line(target, write=False)

    # ------------------------------------------------------------- plumbing
    @property
    def mem_lines(self) -> int:
        return self.hierarchy.mem_lines

    def miss_rates(self) -> dict[int, float]:
        return self.hierarchy.miss_rates()
