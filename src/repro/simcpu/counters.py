"""Event counters shared by the simulated components.

:class:`Counters` is the single record every instrumented path writes into:
the GEMM driver counts flops/loads/stores, the cache hierarchy fills one
:class:`CacheCounters` per level, and the performance model consumes the
totals. Counters support ``+`` so per-thread records can be reduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CacheCounters:
    """Hit/miss statistics for one cache (or TLB) level."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __add__(self, other: "CacheCounters") -> "CacheCounters":
        return CacheCounters(
            accesses=self.accesses + other.accesses,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
            writebacks=self.writebacks + other.writebacks,
        )

    def reset(self) -> None:
        self.accesses = self.hits = self.misses = 0
        self.evictions = self.writebacks = 0


@dataclass
class Counters:
    """Aggregate execution counters for one (FT-)GEMM invocation.

    ``fma_flops`` counts the multiply-add flops of the main product (2 per
    FMA); ``checksum_flops`` counts the extra arithmetic the ABFT scheme
    adds; the ``*_bytes`` fields are the algorithmic (cache-oblivious) memory
    volumes the traffic model refines per level.
    """

    fma_flops: int = 0
    checksum_flops: int = 0
    loads_bytes: int = 0
    stores_bytes: int = 0
    #: extra bytes moved only because of fault tolerance (classic ABFT pays
    #: these; the fused scheme's ambition is to keep this at zero)
    ft_extra_bytes: int = 0
    pack_a_bytes: int = 0
    pack_b_bytes: int = 0
    microkernel_calls: int = 0
    barriers: int = 0
    verifications: int = 0
    errors_detected: int = 0
    errors_corrected: int = 0
    blocks_recomputed: int = 0
    cache: dict[int, CacheCounters] = field(default_factory=dict)

    @property
    def total_flops(self) -> int:
        return self.fma_flops + self.checksum_flops

    @property
    def total_bytes(self) -> int:
        return self.loads_bytes + self.stores_bytes + self.ft_extra_bytes

    def cache_level(self, level: int) -> CacheCounters:
        """Return (creating on demand) the counter record for cache ``level``."""
        if level not in self.cache:
            self.cache[level] = CacheCounters()
        return self.cache[level]

    def __add__(self, other: "Counters") -> "Counters":
        merged_cache: dict[int, CacheCounters] = {}
        for level in set(self.cache) | set(other.cache):
            merged_cache[level] = self.cache.get(level, CacheCounters()) + other.cache.get(
                level, CacheCounters()
            )
        return Counters(
            fma_flops=self.fma_flops + other.fma_flops,
            checksum_flops=self.checksum_flops + other.checksum_flops,
            loads_bytes=self.loads_bytes + other.loads_bytes,
            stores_bytes=self.stores_bytes + other.stores_bytes,
            ft_extra_bytes=self.ft_extra_bytes + other.ft_extra_bytes,
            pack_a_bytes=self.pack_a_bytes + other.pack_a_bytes,
            pack_b_bytes=self.pack_b_bytes + other.pack_b_bytes,
            microkernel_calls=self.microkernel_calls + other.microkernel_calls,
            barriers=self.barriers + other.barriers,
            verifications=self.verifications + other.verifications,
            errors_detected=self.errors_detected + other.errors_detected,
            errors_corrected=self.errors_corrected + other.errors_corrected,
            blocks_recomputed=self.blocks_recomputed + other.blocks_recomputed,
            cache=merged_cache,
        )

    def reset(self) -> None:
        self.fma_flops = self.checksum_flops = 0
        self.loads_bytes = self.stores_bytes = self.ft_extra_bytes = 0
        self.pack_a_bytes = self.pack_b_bytes = 0
        self.microkernel_calls = self.barriers = self.verifications = 0
        self.errors_detected = self.errors_corrected = self.blocks_recomputed = 0
        for c in self.cache.values():
            c.reset()
