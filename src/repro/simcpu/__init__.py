"""Simulated x86 CPU substrate.

The paper evaluates on a real Intel Xeon W-2255 (Cascade Lake). This package
substitutes that hardware with:

- :class:`MachineSpec` — the parameter sheet of the target CPU (frequencies,
  FMA ports, vector width, cache geometry, memory bandwidth), with a factory
  for the paper's exact part (:func:`MachineSpec.cascade_lake_w2255`);
- :class:`CacheSim` / :class:`CacheHierarchy` — set-associative LRU cache
  simulators driven by the *actual address streams* of the blocked GEMM
  implementation (used by the blocking-parameter ablation);
- :class:`TLBSim` — page-granularity TLB model (packing exists to reduce TLB
  misses; the ablation shows that);
- :class:`VectorUnit` — cycle model of the AVX-512 FMA pipeline used to cost
  micro kernels;
- :class:`Counters` — the event record every simulated component writes into.
"""

from repro.simcpu.machine import CacheSpec, MachineSpec
from repro.simcpu.counters import Counters, CacheCounters
from repro.simcpu.cache import CacheSim, CacheHierarchy
from repro.simcpu.tlb import TLBSim
from repro.simcpu.vector import VectorUnit
from repro.simcpu.trace import AccessTrace, MemoryAccess
from repro.simcpu.prefetch import PrefetchingHierarchy, PrefetchStats

__all__ = [
    "CacheSpec",
    "MachineSpec",
    "Counters",
    "CacheCounters",
    "CacheSim",
    "CacheHierarchy",
    "TLBSim",
    "VectorUnit",
    "AccessTrace",
    "MemoryAccess",
    "PrefetchingHierarchy",
    "PrefetchStats",
]
