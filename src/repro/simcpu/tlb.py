"""Data-TLB simulator.

Packing `A`/`B` into contiguous buffers exists largely to keep the micro
kernel's working set inside the data TLB (the paper: "to minimize TLB misses
in performance-sensitive computing kernels"). :class:`TLBSim` is a small
set-associative LRU translation cache at page granularity; the ablation in
``benchmarks/bench_ablation_blocking.py`` replays the kernel's access stream
with and without packing to show the miss-count difference.
"""

from __future__ import annotations

from repro.simcpu.counters import CacheCounters
from repro.simcpu.machine import MachineSpec
from repro.simcpu.trace import MemoryAccess
from repro.util.errors import ConfigError


class TLBSim:
    """Set-associative LRU TLB over 4 KiB (configurable) pages."""

    def __init__(self, entries: int, associativity: int, page_bytes: int = 4096):
        if entries <= 0 or associativity <= 0 or page_bytes <= 0:
            raise ConfigError(
                f"invalid TLB geometry: entries={entries}, "
                f"assoc={associativity}, page={page_bytes}"
            )
        if entries % associativity != 0:
            raise ConfigError(
                f"entries ({entries}) must be a multiple of associativity "
                f"({associativity})"
            )
        self.entries = entries
        self.associativity = associativity
        self.page_bytes = page_bytes
        self.n_sets = entries // associativity
        self.counters = CacheCounters()
        self._sets: list[dict[int, None]] = [dict() for _ in range(self.n_sets)]

    @classmethod
    def from_machine(cls, machine: MachineSpec) -> "TLBSim":
        return cls(machine.dtlb_entries, machine.dtlb_associativity, machine.page_bytes)

    def reset(self) -> None:
        self.counters.reset()
        for s in self._sets:
            s.clear()

    def access_page(self, page: int) -> bool:
        """Translate one page; returns True on a TLB hit."""
        set_idx = page % self.n_sets
        tag = page // self.n_sets
        tset = self._sets[set_idx]
        self.counters.accesses += 1
        if tag in tset:
            self.counters.hits += 1
            tset.pop(tag)
            tset[tag] = None
            return True
        self.counters.misses += 1
        if len(tset) >= self.associativity:
            tset.pop(next(iter(tset)))
            self.counters.evictions += 1
        tset[tag] = None
        return False

    def access(self, access: MemoryAccess) -> int:
        """Replay one bulk access; returns the number of page misses."""
        first = access.addr // self.page_bytes
        last = (access.addr + access.size - 1) // self.page_bytes
        misses = 0
        for page in range(first, last + 1):
            if not self.access_page(page):
                misses += 1
        return misses

    def replay(self, accesses) -> None:
        for acc in accesses:
            self.access(acc)
