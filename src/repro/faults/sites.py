"""Injection sites: the instrumented points of the FT-GEMM pipeline.

Mirrors where the paper's source-level injector strikes ("into each of our
computing kernels"). Each site corresponds to one hook the drivers invoke:

- ``microkernel`` — the freshly computed C tile after a rank-K_C update; a
  fault here models a wrong FMA result still in registers. Detected by the
  reference-vs-predicted checksum mismatch and usually *corrected* in place.
- ``pack_a`` / ``pack_b`` — a corrupted element of a packed buffer; the
  error spreads along a whole row/column strip of C, producing multi-column
  (or multi-row) residual patterns that force block recomputation.
- ``scale`` — the ``C = βC`` pass; protected by DMR (the pass is duplicated
  and compared) because it happens before checksums exist.
- ``checksum`` — corruption of a checksum vector itself; shows up as a
  one-sided residual, resolved by re-deriving the checksum, never by
  touching C.
"""

from __future__ import annotations

SITE_MICROKERNEL = "microkernel"
SITE_PACK_A = "pack_a"
SITE_PACK_B = "pack_b"
SITE_SCALE = "scale"
SITE_CHECKSUM = "checksum"
#: compute results of the protected L1/L2 BLAS routines (repro.blas) —
#: the FT-BLAS substrate's DMR-protected kernels
SITE_BLAS = "blas_compute"

#: every instrumented site
ALL_SITES: tuple[str, ...] = (
    SITE_MICROKERNEL,
    SITE_PACK_A,
    SITE_PACK_B,
    SITE_SCALE,
    SITE_CHECKSUM,
    SITE_BLAS,
)

#: the compute-kernel sites the paper's Fig. 2(c)/(d) campaigns target
KERNEL_SITES: tuple[str, ...] = (SITE_MICROKERNEL, SITE_PACK_A, SITE_PACK_B)


def validate_site(site: str) -> str:
    if site not in ALL_SITES:
        raise ValueError(f"unknown injection site {site!r}; known: {ALL_SITES}")
    return site
