"""Injection sites: the instrumented points of the FT-GEMM pipeline.

Mirrors where the paper's source-level injector strikes ("into each of our
computing kernels"). Each site corresponds to one hook the drivers invoke;
what a strike at each site *does* depends on the fault model riding on it
(transient, persistent, burst, or fail-stop). The full taxonomy —
site × duration × detection mechanism × recovery path — lives in the
fault-taxonomy table in ``DESIGN.md`` (mirrored in ``docs/TUTORIAL.md``).
"""

from __future__ import annotations

SITE_MICROKERNEL = "microkernel"
SITE_PACK_A = "pack_a"
SITE_PACK_B = "pack_b"
SITE_SCALE = "scale"
SITE_CHECKSUM = "checksum"
#: compute results of the protected L1/L2 BLAS routines (repro.blas) —
#: the FT-BLAS substrate's DMR-protected kernels
SITE_BLAS = "blas_compute"
#: per-stage butterfly output of the checksum-protected FFT
#: (:mod:`repro.kernels.fft`); one invocation per radix-2 stage
SITE_FFT = "fft_stage"

#: every instrumented site
ALL_SITES: tuple[str, ...] = (
    SITE_MICROKERNEL,
    SITE_PACK_A,
    SITE_PACK_B,
    SITE_SCALE,
    SITE_CHECKSUM,
    SITE_BLAS,
    SITE_FFT,
)

#: the compute-kernel sites the paper's Fig. 2(c)/(d) campaigns target
KERNEL_SITES: tuple[str, ...] = (SITE_MICROKERNEL, SITE_PACK_A, SITE_PACK_B)


def validate_site(site: str) -> str:
    if site not in ALL_SITES:
        raise ValueError(f"unknown injection site {site!r}; known: {ALL_SITES}")
    return site
