"""Detection-coverage analysis.

ABFT cannot detect errors below the round-off tolerance — and does not need
to: such errors are numerically indistinguishable from legitimate rounding.
These tools measure that boundary instead of asserting it:

- :func:`magnitude_sweep` injects additive errors of controlled relative
  magnitude and reports, per magnitude, the detection rate and the final
  relative error — showing detection switching on exactly where errors
  start to matter;
- :func:`site_coverage` runs one campaign per injection site (and per
  checksum scheme) and tabulates detection/correction/recompute/correctness
  — the coverage matrix of the protection design.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.reporting import FigureSeries
from repro.core.config import FTGemmConfig
from repro.faults.campaign import plan_for_gemm, site_invocation_counts
from repro.faults.injector import FaultInjector, InjectionPlan
from repro.faults.models import Additive
from repro.faults.sites import ALL_SITES, KERNEL_SITES
from repro.util.errors import ConfigError
from repro.util.rng import derive_seed, make_rng


def magnitude_sweep(
    relative_magnitudes: Sequence[float] = (
        1e-16, 1e-13, 1e-10, 1e-7, 1e-4, 1e-1, 1e2,
    ),
    *,
    n: int = 64,
    runs: int = 10,
    config: FTGemmConfig | None = None,
    seed: int = 0,
) -> FigureSeries:
    """Detection rate and residual damage vs injected error magnitude.

    Magnitudes are relative to the typical |C| element; each run injects
    one additive error at a random micro-kernel invocation.
    """
    from repro.core.ftgemm import FTGemm

    if runs <= 0:
        raise ConfigError(f"runs must be positive, got {runs}")
    config = config or FTGemmConfig.small()
    driver = FTGemm(config)
    counts = site_invocation_counts(n, n, n, config.blocking)
    fig = FigureSeries(
        figure_id="coverage_magnitude",
        title=f"Detection vs injected relative magnitude (n={n}, {runs} runs each)",
        x_label="rel-mag",
        x=[f"{m:.0e}" for m in relative_magnitudes],
    )
    detect_rates = []
    damage = []
    for mag_idx, rel in enumerate(relative_magnitudes):
        detected = 0
        worst = 0.0
        for run in range(runs):
            rng = make_rng(derive_seed(seed, "mag", mag_idx, run))
            a = rng.standard_normal((n, n))
            b = rng.standard_normal((n, n))
            expected = a @ b
            typical = float(np.abs(expected).mean())
            slot = int(rng.integers(counts["microkernel"]))
            injector = FaultInjector(
                InjectionPlan.single(
                    "microkernel",
                    slot,
                    model=Additive(magnitude=rel * typical),
                    seed=derive_seed(seed, "victim", mag_idx, run),
                )
            )
            result = driver.gemm(a, b, injector=injector)
            assert result.verified
            detected += int(result.detected > 0)
            rel_err = float(
                np.abs(result.c - expected).max() / (typical + 1e-300)
            )
            worst = max(worst, rel_err)
        detect_rates.append(100.0 * detected / runs)
        damage.append(worst)
    fig.add("detected %", detect_rates)
    fig.add("worst rel err", damage)
    # the boundary statement: everything undetected is also harmless
    harmless = all(
        d == 100.0 or w < 1e-10 for d, w in zip(detect_rates, damage)
    )
    fig.observations = {
        "boundary": (
            "every undetected magnitude leaves relative error < 1e-10 "
            "(below round-off relevance)"
            if harmless
            else "COVERAGE GAP: undetected error with visible damage"
        )
    }
    return fig


def site_coverage(
    *,
    n: int = 56,
    runs: int = 4,
    errors_per_run: int = 2,
    config: FTGemmConfig | None = None,
    seed: int = 0,
) -> FigureSeries:
    """Per-site, per-scheme campaign outcomes — the coverage matrix."""
    from repro.core.ftgemm import FTGemm
    from repro.gemm.reference import gemm_reference

    base = config or FTGemmConfig.small()
    # the matrix covers the GEMM pipeline; sites owned by other kernels
    # (blas_compute, fft_stage) have their own campaigns
    gemm_sites = site_invocation_counts(n, n, n, base.blocking)
    sites = [s for s in ALL_SITES if s in gemm_sites]
    fig = FigureSeries(
        figure_id="coverage_sites",
        title=f"Coverage by injection site (n={n}, {runs}x{errors_per_run} errors)",
        x_label="site",
        x=list(sites),
    )
    for scheme in ("dual", "weighted"):
        cfg = base.with_(checksum_scheme=scheme)
        driver = FTGemm(cfg)
        correct_col = []
        repair_col = []
        counts = site_invocation_counts(n, n, n, cfg.blocking)
        for site in sites:
            # a site cannot take more strikes than it has invocation slots
            # (the scaling pass runs exactly once per call)
            n_errors = min(errors_per_run, counts[site])
            correct = 0
            repairs = 0
            for run in range(runs):
                rng = make_rng(derive_seed(seed, scheme, site, run))
                a = rng.standard_normal((n, n))
                b = rng.standard_normal((n, n))
                plan = plan_for_gemm(
                    n, n, n, cfg.blocking, n_errors,
                    sites=(site,),
                    seed=derive_seed(seed, "plan", scheme, site, run),
                )
                result = driver.gemm(a, b, injector=FaultInjector(plan))
                expected = gemm_reference(a, b)
                scale = float(np.abs(expected).max()) + 1.0
                ok = float(np.abs(result.c - expected).max()) <= 1e-8 * scale
                correct += int(ok and result.verified)
                repairs += result.corrected + result.recomputed_blocks
            correct_col.append(100.0 * correct / runs)
            repair_col.append(float(repairs))
        fig.add(f"{scheme}: correct %", correct_col)
        fig.add(f"{scheme}: repairs", repair_col)
    all_ok = all(
        v == 100.0
        for name, series in fig.series.items()
        if name.endswith("correct %")
        for v in series
    )
    fig.observations = {
        "matrix": "all sites fully covered by both schemes"
        if all_ok
        else "COVERAGE GAP at some site"
    }
    return fig
