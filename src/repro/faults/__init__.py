"""Soft-error injection framework.

The paper validates FT-GEMM by injecting "multiple computing errors into
each of our computing kernels ... at the source code level to minimize the
performance impact". This package reproduces that methodology:

- :mod:`repro.faults.models` — what a fault does to a value (bit flip in the
  float64 representation, additive offset, stuck value, scaling);
- :mod:`repro.faults.sites` — where faults can strike (micro-kernel output,
  packing buffers, the scaling pass, checksum encodings);
- :mod:`repro.faults.injector` — the hook object the FT driver consults at
  every site; follows a deterministic :class:`InjectionPlan` so campaigns
  are exactly reproducible;
- :mod:`repro.faults.campaign` — builds plans (k errors per call, or a rate
  in errors/minute converted through modeled call duration) and aggregates
  detection/correction statistics over many runs.
"""

from repro.faults.models import (
    FaultModel,
    BitFlip,
    Additive,
    StuckValue,
    Scaling,
    StuckBit,
    RowBurst,
    ColBurst,
    FailStop,
    PROC_KILL_PHASES,
    ProcKill,
)
from repro.faults.sites import (
    SITE_MICROKERNEL,
    SITE_PACK_A,
    SITE_PACK_B,
    SITE_SCALE,
    SITE_CHECKSUM,
    ALL_SITES,
    KERNEL_SITES,
)
from repro.faults.injector import FaultInjector, InjectionPlan, InjectionRecord
from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
    errors_per_call_from_rate,
    plan_for_gemm,
    site_invocation_counts,
    site_invocation_counts_parallel,
    parallel_thread_map,
)

__all__ = [
    "FaultModel",
    "BitFlip",
    "Additive",
    "StuckValue",
    "Scaling",
    "StuckBit",
    "RowBurst",
    "ColBurst",
    "FailStop",
    "PROC_KILL_PHASES",
    "ProcKill",
    "SITE_MICROKERNEL",
    "SITE_PACK_A",
    "SITE_PACK_B",
    "SITE_SCALE",
    "SITE_CHECKSUM",
    "ALL_SITES",
    "KERNEL_SITES",
    "FaultInjector",
    "InjectionPlan",
    "InjectionRecord",
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "errors_per_call_from_rate",
    "plan_for_gemm",
    "site_invocation_counts",
    "site_invocation_counts_parallel",
    "parallel_thread_map",
    "magnitude_sweep",
    "site_coverage",
]


def __getattr__(name):
    # stats builds on bench reporting; import lazily to keep the package
    # import graph a DAG (bench -> core -> faults)
    if name in ("magnitude_sweep", "site_coverage"):
        from repro.faults import stats

        return getattr(stats, name)
    raise AttributeError(f"module 'repro.faults' has no attribute {name!r}")
