"""Fault models: what a transient error does to a floating-point value.

The paper's scope is *fail-continue* soft errors from computing logic
("e.g., 1+1=3"): a computation silently produces a wrong value and execution
continues. Each model here transforms one float64 in place; the injector
picks the victim element and invocation.

:class:`BitFlip` is the canonical model. Note that flips in the low mantissa
bits produce relative errors below the checksum round-off tolerance — they
are mathematically undetectable by ABFT *and* numerically harmless; the
default bit range therefore spans the high mantissa and exponent bits, the
region where real silent data corruption matters. The campaign machinery
reports detectability so the boundary is measurable rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class FaultModel:
    """Base class; subclasses implement :meth:`apply` on a scalar float."""

    name: str = "identity"

    def apply(self, value: float, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class BitFlip(FaultModel):
    """Flip one bit of the IEEE-754 binary64 representation.

    ``bit`` pins the flipped bit (0 = LSB of the mantissa, 52–62 = exponent,
    63 = sign); ``None`` draws uniformly from ``bit_range`` per injection.
    """

    name: str = "bitflip"
    bit: int | None = None
    bit_range: tuple[int, int] = (40, 62)

    def __post_init__(self) -> None:
        lo, hi = self.bit_range
        if not (0 <= lo <= hi <= 63):
            raise ConfigError(f"bit_range must be within [0, 63], got {self.bit_range}")
        if self.bit is not None and not 0 <= self.bit <= 63:
            raise ConfigError(f"bit must be in [0, 63], got {self.bit}")

    def apply(self, value: float, rng: np.random.Generator) -> float:
        bit = self.bit
        if bit is None:
            lo, hi = self.bit_range
            bit = int(rng.integers(lo, hi + 1))
        raw = np.float64(value).view(np.uint64)
        flipped = raw ^ np.uint64(1 << bit)
        result = flipped.view(np.float64)
        # keep fail-continue semantics: an exponent flip can land on inf/nan,
        # which real ABFT must also survive, so we pass it through unchanged
        return float(result)


@dataclass(frozen=True)
class Additive(FaultModel):
    """Add a fixed absolute offset — the simplest calibrated-magnitude fault."""

    name: str = "additive"
    magnitude: float = 1.0

    def __post_init__(self) -> None:
        if self.magnitude == 0.0:
            raise ConfigError("additive magnitude of 0 would be a no-op fault")

    def apply(self, value: float, rng: np.random.Generator) -> float:
        return value + self.magnitude


@dataclass(frozen=True)
class StuckValue(FaultModel):
    """Replace the value outright (stuck-at output, wrong-result writeback)."""

    name: str = "stuck"
    value: float = 0.0

    def apply(self, value: float, rng: np.random.Generator) -> float:
        return self.value


@dataclass(frozen=True)
class Scaling(FaultModel):
    """Multiply by a factor (dropped/duplicated partial product)."""

    name: str = "scaling"
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.factor == 1.0:
            raise ConfigError("scaling factor of 1 would be a no-op fault")

    def apply(self, value: float, rng: np.random.Generator) -> float:
        return value * self.factor


def default_model() -> FaultModel:
    """The campaign default: high-impact bit flips."""
    return BitFlip()
